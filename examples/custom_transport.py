#!/usr/bin/env python
"""Extending the library: plug a custom congestion controller into the
simulator in ~20 lines.

The :class:`~repro.transport.base.WindowFlow` engine handles reliability,
ACKs, RTO, and pacing; a subclass only decides how ``cwnd`` moves.  Here we
build a toy AIAD ("additive increase, additive decrease") controller and
race it against DCTCP on a shared bottleneck.

Usage::

    python examples/custom_transport.py
"""

from repro import LinkSpec, Simulator, dumbbell
from repro.sim.units import GBPS, MS, US
from repro.transport.base import WindowFlow
from repro.transport.dctcp import DctcpFlow, dctcp_marking_threshold_bytes


class AiadFlow(WindowFlow):
    """Additive increase (+1/RTT), additive decrease (-5 on loss)."""

    ecn_capable = True  # let the switch mark us, but we only react to loss

    def cc_on_round(self, acks, marks, avg_rtt_ps):
        self.cwnd += 1

    def cc_on_dupack_loss(self):
        self.cwnd = max(self.cwnd - 5, self.min_cwnd)

    def cc_on_timeout(self):
        self.cwnd = self.min_cwnd


def main() -> None:
    sim = Simulator(seed=7)
    k = dctcp_marking_threshold_bytes(10 * GBPS)
    topo = dumbbell(
        sim, n_pairs=2,
        bottleneck=LinkSpec(rate_bps=10 * GBPS, prop_delay_ps=4 * US,
                            ecn_threshold_bytes=k),
    )
    ours = AiadFlow(topo.senders[0], topo.receivers[0], None)
    theirs = DctcpFlow(topo.senders[1], topo.receivers[1], None)

    sim.run(until=50 * MS)
    for name, flow in (("AIAD (custom)", ours), ("DCTCP", theirs)):
        rate = flow.bytes_delivered * 8 / 0.05 / 1e9
        print(f"{name:14s}: {rate:5.2f} Gbit/s over 50 ms, "
              f"{flow.retransmissions} retransmissions, cwnd={flow.cwnd:.1f}")
    print(f"bottleneck max queue: {topo.net.max_data_queue_bytes() / 1e3:.1f} KB")
    ours.stop()
    theirs.stop()


if __name__ == "__main__":
    main()

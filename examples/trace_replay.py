#!/usr/bin/env python
"""Workload traces: generate once, replay identically across protocols.

Comparing protocols fairly requires *identical* arrivals.  This script
samples a Web Server workload, saves it as a trace file, then replays the
same trace under ExpressPass and DCTCP and prints the per-flow FCT deltas.

Usage::

    python examples/trace_replay.py [n_flows]
"""

import sys
import tempfile

from repro import Simulator, LinkSpec
from repro.experiments.runner import get_harness
from repro.sim.units import GBPS, SEC, US
from repro.topology import single_switch
from repro.workloads import WEB_SERVER, dump_trace, load_trace, poisson_specs


def replay(specs, protocol):
    sim = Simulator(seed=7)
    harness = get_harness(protocol, 10 * GBPS, 20 * US)
    spec = harness.adapt_link(LinkSpec(rate_bps=10 * GBPS, prop_delay_ps=2 * US))
    topo = single_switch(sim, 8, link=spec)
    harness.install(sim, topo.net)
    flows = [harness.flow(topo.hosts[s.src], topo.hosts[s.dst], s.size_bytes,
                          start_ps=s.start_ps) for s in specs]
    sim.run(until=specs[-1].start_ps + 2 * SEC)
    return flows


def main() -> None:
    n_flows = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    rng_sim = Simulator(seed=7)
    specs = poisson_specs(rng_sim.rng("workload"), WEB_SERVER, n_flows,
                          n_hosts=8, arrival_rate_fps=2e4)

    with tempfile.NamedTemporaryFile("w+", suffix=".csv", delete=False) as fh:
        count = dump_trace(specs, fh)
        path = fh.name
    print(f"saved {count} flows to {path}")
    replayed = load_trace(path)
    assert replayed == specs, "trace round-trip must be exact"

    results = {}
    for protocol in ("expresspass", "dctcp"):
        flows = replay(replayed, protocol)
        done = [f for f in flows if f.completed]
        mean_ms = sum(f.fct_ps for f in done) / len(done) / 1e9
        results[protocol] = mean_ms
        print(f"{protocol:12s}: {len(done)}/{len(flows)} flows, "
              f"mean FCT {mean_ms:.3f} ms")
    ratio = results["dctcp"] / results["expresspass"]
    print(f"\nidentical arrivals, mean-FCT ratio DCTCP/ExpressPass: {ratio:.2f}x")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Convergence demo (Fig 13): five flows arriving and departing over time.

Prints an ASCII throughput timeline per flow: watch each newcomer grab its
fair share within a few RTTs and the shares re-balance as flows leave —
while the bottleneck queue stays in the KB range.

Usage::

    python examples/convergence_demo.py [expresspass|dctcp]
"""

import sys

from repro.experiments.fig13_convergence_behavior import run
from repro.sim.units import MS
from repro.viz import sparkline, timeline


def main() -> None:
    protocol = sys.argv[1] if len(sys.argv) > 1 else "expresspass"
    print(f"running {protocol}: 5 flows, one arriving every 50 ms, "
          "departing in reverse order...\n")
    result = run(protocol, n_flows=5, stagger_ps=50 * MS, sample_ps=5 * MS)

    series = {
        f"flow {j}": [row.get(f"flow{j}_gbps") or 0.0 for row in result.rows]
        for j in range(5)
    }
    print("throughput timeline (one column per 5 ms, shared 9 Gb/s scale):")
    print(timeline(series, hi=9.0, ascii_only=True))
    queue = [row.get("queue_kb") or 0.0 for row in result.rows]
    print(f"queue  |{sparkline(queue, lo=0, hi=40, ascii_only=True)}| "
          "(full block = 40 KB)")
    print(f"\nmax queue: {result.meta['max_queue_bytes'] / 1e3:.1f} KB, "
          f"data drops: {result.meta['data_drops']}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Realistic datacenter traffic on an oversubscribed Clos fabric (§6.3).

Generates Poisson flow arrivals with the paper's Web Search size
distribution (Table 2) at 60 % ToR-uplink load, runs them under
ExpressPass and DCTCP, and prints the flow-completion-time breakdown by
size bucket — the paper's Fig 19 story: ExpressPass wins small/medium
flows, pays a little on elephants.

Usage::

    python examples/datacenter_workload.py [n_flows]
"""

import sys

from repro.core.params import REALISTIC_WORKLOAD_PARAMS
from repro.experiments.realistic import run_realistic


def main() -> None:
    n_flows = int(sys.argv[1]) if len(sys.argv) > 1 else 250
    print(f"simulating {n_flows} Web Search flows at load 0.6 under "
          "ExpressPass and DCTCP (a few minutes)...\n")
    runs = []
    for protocol in ("expresspass", "dctcp"):
        params = REALISTIC_WORKLOAD_PARAMS if protocol == "expresspass" else None
        runs.append(run_realistic(protocol, "web_search", load=0.6,
                                  n_flows=n_flows, ep_params=params,
                                  size_cap_bytes=10_000_000))

    for run in runs:
        print(f"== {run.protocol} ==")
        print(f"  completed {run.completed}/{len(run.flows)} flows, "
              f"max queue {run.max_queue_kb:.1f} KB, "
              f"drops {run.data_drops}, "
              f"credit waste {run.credit_waste_ratio:.1%}")
        for bucket in ("S", "M", "L", "XL"):
            stats = run.fct_by_bucket.get(bucket)
            if stats is None:
                continue
            print(f"  {bucket:>2s}: {stats.count:4d} flows  "
                  f"avg {stats.mean_s * 1e3:8.3f} ms  "
                  f"p99 {stats.p99_s * 1e3:8.3f} ms")
        print()

    ep, dctcp = runs
    s_ep = ep.fct_by_bucket.get("S")
    s_dc = dctcp.fct_by_bucket.get("S")
    if s_ep and s_dc:
        print(f"small-flow p99 speedup of ExpressPass over DCTCP: "
              f"{s_dc.p99_s / s_ep.p99_s:.2f}x")


if __name__ == "__main__":
    main()

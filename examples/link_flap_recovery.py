#!/usr/bin/env python
"""Link-flap recovery demo: watch a fabric absorb a core-link failure.

A k=4 fat tree carries 8 inter-pod ExpressPass flows.  At 6 ms the
``agg0_0``–``core0`` link goes down; routing reconverges 200 µs later and
the link returns at 10 ms.  The timeline shows aggregate goodput dipping
while flows reroute, then snapping back to the pre-fault level.

Run it a second way to see the transport save itself without routing help:
``--slow-routing`` delays reconvergence past the end of the run, so the
dead-path watchdog inside each flow (3 consecutive all-lost credit updates
-> re-hash + feedback reset) is the only recovery mechanism.

Usage::

    python examples/link_flap_recovery.py [--slow-routing] [--seed N]
"""

import argparse

from repro.chaos.scenarios import run_point
from repro.sim.units import MS, US


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--slow-routing", action="store_true",
                    help="reconvergence slower than the run: only the "
                         "transport watchdog can recover the flows")
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    reconverge = 100 * MS if args.slow_routing else 200 * US
    print("k=4 fat tree, 8 inter-pod ExpressPass flows; "
          "agg0_0<->core0 down at 6 ms, up at 10 ms")
    print("routing reconvergence: "
          + ("never (watchdog-only recovery)" if args.slow_routing
             else "200 us after each change"))

    result = run_point("link-flap", seed=args.seed, bin_ps=250 * US,
                       reconverge_delay_ps=reconverge, series=True)

    from repro.viz import sparkline
    gbps = result["gbps_series"]
    bin_ms = result["bin_ps"] / MS
    hi = max(gbps) or 1.0
    print()
    print(f"aggregate goodput, one column per {bin_ms:g} ms "
          f"(full block = {hi:.1f} Gb/s):")
    print(f"  |{sparkline(gbps, lo=0, hi=hi, ascii_only=True)}|")
    marks = "".join("v" if abs(i * bin_ms - 6.0) < bin_ms / 2 or
                    abs(i * bin_ms - 10.0) < bin_ms / 2 else " "
                    for i in range(len(gbps)))
    print(f"   {marks}   (v = link down / link up)")
    print()
    print(f"  pre-fault goodput : {result['pre_gbps']:7.2f} Gb/s")
    print(f"  dip during fault  : {result['low_gbps']:7.2f} Gb/s")
    print(f"  post-fault goodput: {result['post_gbps']:7.2f} Gb/s "
          f"({result['recovered_frac']:.1%} of pre-fault)")
    print(f"  time to recover   : {result['recovery_ms']:7.2f} ms "
          f"after fault onset")
    print(f"  path re-hashes    : {result['rehashes']:4d}   "
          f"watchdog recoveries: {result['recoveries']}")
    print(f"  stalled flows     : {result['stalled']:4d}   "
          f"audit violations   : {result['violations']}")
    print()
    print("PASS" if result["ok"] else "FAIL")


if __name__ == "__main__":
    main()

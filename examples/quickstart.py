#!/usr/bin/env python
"""Quickstart: two ExpressPass flows sharing a 10 G bottleneck.

Runs in a couple of seconds and prints per-flow completion times plus the
fabric-wide loss/queue audit — the paper's headline properties (zero data
loss, KB-scale queues) visible in ten lines of code.

Usage::

    python examples/quickstart.py
"""

from repro import (
    ExpressPassFlow,
    ExpressPassParams,
    LinkSpec,
    Simulator,
    dumbbell,
)
from repro.sim.units import GBPS, SEC, US, fmt_time


def main() -> None:
    sim = Simulator(seed=1)
    topo = dumbbell(
        sim,
        n_pairs=2,
        bottleneck=LinkSpec(rate_bps=10 * GBPS, prop_delay_ps=4 * US),
    )
    params = ExpressPassParams(rtt_hint_ps=40 * US)
    flows = [
        ExpressPassFlow(src, dst, size_bytes=10_000_000, params=params)
        for src, dst in zip(topo.senders, topo.receivers)
    ]

    sim.run(until=1 * SEC)

    for flow in flows:
        rate = flow.bytes_delivered * 8 / (flow.fct_ps / 1e12) / 1e9
        print(f"flow {flow.fid}: {flow.bytes_delivered:,} B in "
              f"{fmt_time(flow.fct_ps)}  ({rate:.2f} Gbit/s goodput, "
              f"{flow.credits_wasted} credits wasted)")
    print(f"max data queue anywhere : {topo.net.max_data_queue_bytes():,} B")
    print(f"data packets dropped    : {topo.net.total_data_drops()}")
    print(f"credit packets dropped  : {topo.net.total_credit_drops()} "
          "(credit drops are the congestion signal - this is normal)")


if __name__ == "__main__":
    main()

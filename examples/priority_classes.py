#!/usr/bin/env python
"""QoS via credit classes (§7 "Multiple traffic classes").

ExpressPass enforces data-path QoS on the *credit* path: weight the credit
queues 3:1 at the bottleneck and the reverse data shares follow, with the
total still metered to the safe credit rate.  No per-flow state, no data-
path priority queues.

Usage::

    python examples/priority_classes.py
"""

from repro import ExpressPassFlow, ExpressPassParams, LinkSpec, Simulator, dumbbell
from repro.net.classes import install_credit_classes
from repro.sim.units import GBPS, MS, US


def main() -> None:
    sim = Simulator(seed=3)
    topo = dumbbell(sim, n_pairs=2,
                    bottleneck=LinkSpec(rate_bps=10 * GBPS, prop_delay_ps=4 * US))
    # Credits toward the senders cross the reverse bottleneck port.
    install_credit_classes(topo.bottleneck_rev, weights={0: 3, 1: 1})

    params = ExpressPassParams(rtt_hint_ps=40 * US)
    gold = ExpressPassFlow(topo.senders[0], topo.receivers[0], None, params=params)
    bronze = ExpressPassFlow(topo.senders[1], topo.receivers[1], None, params=params)
    gold.credit_class = 0
    bronze.credit_class = 1

    sim.run(until=30 * MS)  # warm up
    base = (gold.bytes_delivered, bronze.bytes_delivered)
    sim.run(until=80 * MS)
    g = (gold.bytes_delivered - base[0]) * 8 / 0.05 / 1e9
    b = (bronze.bytes_delivered - base[1]) * 8 / 0.05 / 1e9
    gold.stop()
    bronze.stop()

    print(f"gold   (weight 3): {g:5.2f} Gbit/s")
    print(f"bronze (weight 1): {b:5.2f} Gbit/s")
    print(f"achieved ratio   : {g / b:4.2f}  (configured 3.0)")
    print(f"aggregate        : {g + b:5.2f} Gbit/s "
          "(still the full credit-metered capacity)")
    print(f"data drops       : {topo.net.total_data_drops()}")


if __name__ == "__main__":
    main()

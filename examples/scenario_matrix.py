#!/usr/bin/env python
"""Declarative evaluation: build a scenario spec in code, run the matrix.

Constructs a small transport-comparison scenario (no YAML file needed —
a spec is just a dict), compiles it into runtime tasks, runs the
cross-product through the pool/cache, and prints the ranked comparison
the `repro matrix` CLI would show.  Also demonstrates filtering and the
JSONL report round-trip.

Usage::

    python examples/scenario_matrix.py
"""

import sys
import tempfile
from pathlib import Path

from repro import runtime
from repro.scenarios import (
    Scenario,
    compile_scenario,
    format_report,
    run_matrix,
    validate_report_jsonl,
    write_report_jsonl,
)

SPEC = {
    "schema": "repro.scenarios/v1",
    "name": "example-matrix",
    "description": "3 transports x 2 flow counts on a 10G dumbbell",
    "topology": {"kind": "dumbbell"},
    "workload": {"kind": "persistent", "n_flows": 2},
    "transport": {"protocol": "expresspass"},
    "timing": {"warmup_ps": 3_000_000_000,    # 3 ms — demo-sized windows
               "measure_ps": 3_000_000_000},
    "sweep": {
        "transport.protocol": ["expresspass", "dctcp", "rcp"],
        "workload.n_flows": [2, 8],
    },
    "report": {
        "compare": "transport.protocol",
        "objectives": {"utilization": "max", "fairness": "max",
                       "max_queue_kb": "min"},
    },
}


def main() -> int:
    scenario = Scenario.from_dict(SPEC)
    matrix = compile_scenario(scenario)
    print(f"{scenario.name}: {len(matrix)} cells "
          f"({len(matrix.filtered('protocol=expresspass').cells)} per "
          f"transport); fingerprints are stable, so reruns hit the cache\n")

    with runtime.using(progress=False):
        outcome = run_matrix(scenario)
    if not outcome.ok:
        for res in outcome.failed:
            print(f"FAILED {res.label}: {res.error}", file=sys.stderr)
        return 1

    print(format_report(outcome.report))

    with tempfile.TemporaryDirectory() as tmp:
        dest = Path(tmp) / "report.jsonl"
        n = write_report_jsonl(dest, outcome.report)
        stats = validate_report_jsonl(dest)
        print(f"\nreport round-trip: {n} records written, "
              f"validated {stats['records']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Two roads to zero loss: PFC-backed RDMA transports vs credit scheduling.

DCQCN and TIMELY — the congestion controls deployed for RDMA — prevent
loss with Priority Flow Control: switches pause their upstream neighbors
when queues grow.  ExpressPass prevents loss by *scheduling* data with
credits, so queues never grow in the first place.  This script runs the
same 8-to-1 incast under all three and prints what each mechanism costs.

Usage::

    python examples/rdma_lossless.py
"""

from repro.experiments.rdma_comparison import run
from repro.experiments import format_table


def main() -> None:
    print("running an 8-to-1 incast (64 KB responses) under ExpressPass, "
          "DCQCN+PFC, and TIMELY+PFC...\n")
    result = run(fan_in=8, response_kb=64)
    print(format_table(result))
    by = {r["protocol"]: r for r in result.rows}
    print()
    print("All three achieve zero data loss — but differently:")
    print(f"  ExpressPass : {by['expresspass']['max_queue_kb']:.1f} KB max queue, "
          f"{by['expresspass']['pfc_pauses']} PFC pauses (credits schedule the data)")
    print(f"  DCQCN       : {by['dcqcn']['max_queue_kb']:.1f} KB max queue, "
          f"{by['dcqcn']['pfc_pauses']} PFC pauses (queue absorbed, upstream paused)")
    print(f"  TIMELY      : {by['timely']['max_queue_kb']:.1f} KB max queue, "
          f"{by['timely']['pfc_pauses']} PFC pauses (RTT gradient reacts early)")


if __name__ == "__main__":
    main()

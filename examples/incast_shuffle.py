#!/usr/bin/env python
"""Heavy incast: a MapReduce-style shuffle, ExpressPass vs DCTCP (§6.2).

Eight hosts on one ToR run an all-to-all shuffle (two tasks per host, each
task sending 100 KB to every task on every other host).  The interesting
number is the *tail*: DCTCP stragglers stretch the max FCT while
ExpressPass's credit scheduling keeps the distribution tight.

Usage::

    python examples/incast_shuffle.py
"""

from repro.experiments.fig17_shuffle import run_point


def main() -> None:
    print("running shuffle under ExpressPass and DCTCP "
          "(~1 minute of simulation)...\n")
    rows = [
        run_point(protocol, n_hosts=8, tasks_per_host=2, flow_bytes=100_000)
        for protocol in ("expresspass", "dctcp")
    ]
    header = f"{'protocol':12s} {'flows':>6s} {'p50 ms':>8s} {'p99 ms':>8s} {'max ms':>8s} {'drops':>6s}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['protocol']:12s} {row['flows']:6d} "
              f"{row['fct_ms_p50']:8.2f} {row['fct_ms_p99']:8.2f} "
              f"{row['fct_ms_max']:8.2f} {row['data_drops']:6d}")
    ep, dctcp = rows
    print(f"\ntail (max FCT) advantage of ExpressPass: "
          f"{dctcp['fct_ms_max'] / ep['fct_ms_max']:.2f}x "
          "(the paper's testbed measured ~6.7x at 2496 flows/host)")


if __name__ == "__main__":
    main()

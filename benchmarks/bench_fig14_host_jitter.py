"""Fig 6(b)/14: host credit-processing delay and inter-credit gap CDFs.

Paper anchors: host delay median 0.38 us / p99.99 6.2 us (SoftNIC); the
inter-credit gap centers on one credit slot (~1.3 us at 10 G) with jitter
well above the tens-of-ns fairness requirement.
"""

import pytest

from repro.experiments import fig14_host_jitter
from benchmarks.conftest import emit


def test_fig14_host_delay_model(once):
    result = once(fig14_host_jitter.run_host_delay, samples=100_000)
    emit(result)
    by = {r["percentile"]: r["delay_us"] for r in result.rows}
    assert by[50] == pytest.approx(0.38, rel=0.1)
    assert by[99.99] == pytest.approx(6.2, rel=0.2)


def test_fig14_inter_credit_gap(once):
    result = once(fig14_host_jitter.run_inter_credit_gap)
    emit(result)
    by = {r["percentile"]: r["gap_us"] for r in result.rows}
    ideal = result.meta["ideal_gap_us"]
    assert by[50] == pytest.approx(ideal, rel=0.05)
    # Spread (p99 - p1) comfortably exceeds the tens-of-ns fairness need.
    assert (by[99] - by[1]) * 1000 > 20  # ns

"""Fig 8: initial-rate trade-off — convergence time vs wasted credits.

Paper shape: dropping alpha from 1 to 1/32 grows convergence from 2 to
~14 RTTs while single-packet-flow credit waste falls from ~80 credits
toward ~2.
"""

from repro.experiments import fig08_initial_rate
from benchmarks.conftest import emit


def test_fig08_initial_rate(once):
    alphas = (1.0, 0.5, 0.25, 1 / 16, 1 / 32)
    result = once(fig08_initial_rate.run, alphas=alphas, max_rtts=600)
    emit(result)
    by = {r["alpha"]: r for r in result.rows}
    # Credit waste decreases monotonically as alpha drops...
    wastes = [by[a]["wasted_credits"] for a in alphas]
    assert wastes[0] > wastes[-1]
    assert wastes[0] > 3 * wastes[-1]
    # ...while convergence slows.
    conv_full = by[1.0]["convergence_rtts"]
    conv_low = by[1 / 32]["convergence_rtts"]
    assert conv_full is not None
    assert conv_low is None or conv_low > conv_full

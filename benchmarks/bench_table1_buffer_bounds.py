"""Table 1: zero-loss buffer bounds per port class (pure analysis).

Paper values (KB): 10/40 -> ToR down 577.3, ToR up 19.0, core 131.1;
40/100 -> 1060 / 37.2 / 221.8.  Both Eq. 1 readings are emitted: the
conservative "literal" bound brackets the paper's ToR-down figure, the
"tight" reading its ToR-up/core figures (see module docstring of
repro.calculus.bounds).
"""

from repro.experiments import table1_buffer_bounds
from benchmarks.conftest import emit


def test_table1_buffer_bounds(once):
    literal = once(table1_buffer_bounds.run, mode="literal")
    tight = table1_buffer_bounds.run(mode="tight")
    emit(literal)
    emit(tight)

    lit = literal.rows[0]  # 32-ary fat tree (10/40)
    tgt = tight.rows[0]
    # Shape criteria vs the paper's Table 1:
    assert 0.7 * 577.3 < lit["tor_down_kb"] < 1.3 * 577.3
    assert 0.8 * 19.0 < tgt["tor_up_kb"] < 1.2 * 19.0
    # Ordering: ToR down needs by far the most buffer; ToR up the least.
    for row in literal.rows + tight.rows:
        assert row["tor_down_kb"] > row["tor_up_kb"]
    # Sub-linear growth with link speed (paper §3.1).
    assert literal.rows[1]["tor_down_kb"] < 4 * literal.rows[0]["tor_down_kb"]

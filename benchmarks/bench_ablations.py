"""Ablations of ExpressPass design choices (beyond the paper's figures).

* Path symmetry (§3.1): turning symmetric hashing off on a fat tree breaks
  the credit/data path coupling — queues grow well beyond the bounded
  symmetric case.
* Opportunistic low-priority burst (§7): small-flow FCT drops by roughly
  one RTT as the burst budget grows, with zero impact on loss.
"""

from repro.experiments import ablations
from benchmarks.conftest import emit, scaled


def test_ablation_path_symmetry(once):
    result = once(ablations.run_symmetry_ablation, n_flows=scaled(120))
    emit(result)
    by = {r["routing"]: r for r in result.rows}
    sym, asym = by["symmetric"], by["asymmetric"]
    assert sym["data_drops"] == 0
    # Asymmetric routing decouples credit metering from the data path:
    # data queues grow several-fold (and may drop).
    assert asym["max_queue_kb"] > 2 * sym["max_queue_kb"]


def test_ablation_opportunistic_burst(once):
    result = once(ablations.run_opportunistic_ablation,
                  burst_sizes=(0, 16), n_flows=scaled(150))
    emit(result)
    by = {r["burst_segments"]: r for r in result.rows}
    # The burst removes about a credit-request RTT from small flows.
    assert by[16]["S_avg_fct_us"] < by[0]["S_avg_fct_us"]
    assert by[16]["completed"] == by[0]["completed"]

"""Benchmark support: result emission and scaling.

Each benchmark regenerates one of the paper's tables/figures at a scaled-down
default (DESIGN.md §2).  The rendered table is written to
``benchmarks/results/<name>.txt`` and printed (visible with ``pytest -s``);
``EXPERIMENTS.md`` records the paper-vs-measured comparison.

Set ``REPRO_SCALE`` > 1 to enlarge the runs toward paper scale (flows,
durations, and sweep sizes multiply where meaningful).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Global scale knob: 1 = CI-friendly defaults, larger = closer to the paper.
SCALE = float(os.environ.get("REPRO_SCALE", "1"))


def scaled(n: int, minimum: int = 1) -> int:
    """Scale an integer parameter by REPRO_SCALE."""
    return max(minimum, int(n * SCALE))


def emit(result) -> str:
    """Render, persist, and print an ExperimentResult table."""
    text = format_table(result)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = "".join(c if c.isalnum() else "_" for c in result.name)[:80]
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    print()
    print(text)
    return text


@pytest.fixture
def once(benchmark):
    """Run the (expensive) experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)

    return runner

"""Benchmark support: result emission and scaling.

Each benchmark regenerates one of the paper's tables/figures at a scaled-down
default (DESIGN.md §2).  The rendered table is written to
``benchmarks/results/<name>.txt`` and printed (visible with ``pytest -s``);
``EXPERIMENTS.md`` records the paper-vs-measured comparison.

Set ``REPRO_SCALE`` > 1 to enlarge the runs toward paper scale (flows,
durations, and sweep sizes multiply where meaningful).

Sweep-based experiments execute through :mod:`repro.runtime`, so the
``REPRO_*`` environment knobs apply to benchmark runs too:
``REPRO_PARALLEL=4 pytest benchmarks/ ...`` fans each sweep out over 4
worker processes, and results are memoised in the on-disk cache (keyed by
code fingerprint + parameters + seed) so a warm rerun of an unchanged tree
is near-instant; ``REPRO_NO_CACHE=1`` forces cold runs.  The terminal
summary reports the runtime configuration and cache state.
"""

from __future__ import annotations

import hashlib
import os
import pathlib

import pytest

from repro import runtime
from repro.experiments import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Global scale knob: 1 = CI-friendly defaults, larger = closer to the paper.
SCALE = float(os.environ.get("REPRO_SCALE", "1"))


def scaled(n: int, minimum: int = 1) -> int:
    """Scale an integer parameter by REPRO_SCALE."""
    return max(minimum, int(n * SCALE))


def emit(result) -> str:
    """Render, persist, and print an ExperimentResult table."""
    text = format_table(result)
    RESULTS_DIR.mkdir(exist_ok=True)
    full = "".join(c if c.isalnum() else "_" for c in result.name)
    slug = full[:80]
    if len(full) > 80:
        # Truncation could map two long names to the same file; a short
        # stable hash of the full name keeps them distinct.
        slug += "-" + hashlib.sha1(result.name.encode()).hexdigest()[:8]
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    print()
    print(text)
    return text


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Report how sweeps executed: worker count and cache state."""
    cfg = runtime.get_config()
    line = f"repro.runtime: parallel={cfg.parallel}"
    if cfg.cache_enabled:
        cache = runtime.ResultCache(cfg.resolved_cache_dir(),
                                    cfg.max_cache_bytes, cfg.max_cache_entries)
        stats = cache.stats()
        line += (f", cache {stats['entries']} entries"
                 f" / {stats['total_bytes'] / 1e6:.1f} MB at {stats['dir']}")
    else:
        line += ", cache disabled"
    terminalreporter.write_line(line)


@pytest.fixture
def once(benchmark):
    """Run the (expensive) experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)

    return runner

"""Fig 13: five staggered flows arriving/departing — ExpressPass vs DCTCP.

Paper shape (testbed): ExpressPass shows stable fair-share plateaus with a
max queue of 18 KB; DCTCP oscillates with up to 240.7 KB of queue.
"""

from repro.experiments import fig13_convergence_behavior
from benchmarks.conftest import emit


def test_fig13_convergence_behavior(once):
    def both():
        ep = fig13_convergence_behavior.run(
            "expresspass", n_flows=5, stagger_ps=20_000_000_000,
            sample_ps=5_000_000_000)
        dctcp = fig13_convergence_behavior.run(
            "dctcp", n_flows=5, stagger_ps=20_000_000_000,
            sample_ps=5_000_000_000)
        return ep, dctcp

    ep, dctcp = once(both)
    emit(ep)
    emit(dctcp)

    ep_maxq = ep.meta["max_queue_bytes"]
    dctcp_maxq = dctcp.meta["max_queue_bytes"]
    # ExpressPass: KB-scale queue, zero loss; DCTCP queues 10x+ more.
    assert ep_maxq < 20_000
    assert ep.meta["data_drops"] == 0
    assert dctcp_maxq > 5 * ep_maxq
    # During the middle of the run all five ExpressPass flows are active and
    # share the link: total goodput high at every sample in that window.
    mid = [r for r in ep.rows if 85 <= r["time_ms"] <= 110]
    for row in mid:
        total = sum(v for k, v in row.items()
                    if k.startswith("flow") and v is not None)
        assert total > 6.0  # Gbit/s of 9.0 achievable

"""Fig 6(a): credit pacing jitter vs fairness of credit drops (naive mode).

Paper shape: perfect pacing with deterministic drop ordering is unfair;
randomization (pacer jitter + randomized credit sizes creating drain jitter
at switches) restores fairness.  Our reproduction isolates the mechanisms:
with credit-size randomization *off* and zero jitter, fairness collapses;
with it on, fairness is restored at every jitter level.
"""

from repro.experiments import fig06_jitter
from repro.experiments.runner import ExperimentResult
from benchmarks.conftest import emit, scaled


def test_fig06_jitter_fairness(once):
    def run_both():
        rows = []
        for randomize in (False, True):
            for j in (0.0, 0.01, 0.04):
                for n in (16, scaled(64)):
                    rows.append(fig06_jitter.run_point(
                        j, n, randomize_credit_size=randomize,
                        warmup_ps=2_000_000_000, windows=4,
                    ))
        return ExperimentResult(
            "Fig 6a jitter & credit-size randomization vs fairness",
            ["jitter", "flows", "randomized_sizes", "fairness"], rows)

    result = once(run_both)
    emit(result)

    def fairness(j, n, rand):
        return next(r["fairness"] for r in result.rows
                    if r["jitter"] == j and r["flows"] == n
                    and r["randomized_sizes"] == rand)

    # More pacer jitter improves the worst case with fixed-size credits
    # (the paper's core claim: randomization breaks drop synchronization).
    assert fairness(0.04, 16, False) > fairness(0.0, 16, False) + 0.05
    # Every randomized configuration stays reasonably fair over 1 ms
    # windows even with zero pacer jitter (credit-size jitter suffices).
    for j in (0.0, 0.01, 0.04):
        for n in (16,):
            assert fairness(j, n, True) > 0.65

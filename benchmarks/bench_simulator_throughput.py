"""Simulator performance: event-loop and packet-forwarding throughput.

Not a paper figure — these benches track the substrate's own speed so
regressions in the hot path (event heap, port scheduler, ExpressPass
feedback) show up in CI.  Unlike the figure benches these run multiple
rounds for real statistics.

Besides the pytest-benchmark entry points, this module is a standalone
runner for the CI perf-smoke job::

    PYTHONPATH=src python benchmarks/bench_simulator_throughput.py \
        --output BENCH_simcore.json --check benchmarks/BENCH_simcore.json

It measures events/sec for the pure event loop (heap and calendar
schedulers, sparse chain and dense many-timer shapes), a serial ExpressPass
dumbbell, a small sweep on two workers, fig15-style cell throughput on
the packet vs fluid backends, and a fat-tree persistent cell serial vs
sharded (``repro.sim.parallel``), then writes them to a JSON report
alongside the committed pre-PR baseline.  ``--check`` exits non-zero if
any metric falls below its absolute floor or regresses more than 20 %
against the committed report's numbers.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from time import perf_counter

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, dumbbell


def test_event_loop_throughput(benchmark):
    """Pure scheduler: a self-rescheduling timer chain."""

    def run():
        sim = Simulator(seed=0)
        state = {"n": 0}

        def tick():
            state["n"] += 1
            if state["n"] < 100_000:
                sim.schedule(1000, tick)

        sim.schedule(0, tick)
        sim.run()
        return state["n"]

    assert benchmark(run) == 100_000


def test_expresspass_packet_rate(benchmark):
    """End-to-end protocol throughput: events/sec for a 2-flow dumbbell."""

    def run():
        sim = Simulator(seed=1)
        topo = dumbbell(sim, n_pairs=2,
                        bottleneck=LinkSpec(rate_bps=10 * GBPS,
                                            prop_delay_ps=4 * US))
        params = ExpressPassParams(rtt_hint_ps=40 * US)
        flows = [ExpressPassFlow(s, r, None, params=params)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=5 * MS)
        for f in flows:
            f.stop()
        return sim.events_processed

    events = benchmark(run)
    assert events > 50_000  # ~5 ms of 10 G credit-scheduled traffic


# --- standalone runner (CI perf smoke) ---------------------------------------

#: Events/sec measured at the pre-optimisation seed (commit cba716c) on the
#: reference container; the committed BENCH_simcore.json carries these so
#: the speedup of the repro.perf work stays visible.
PRE_PR_BASELINE = {
    "event_loop": 834_090,
    "expresspass_dumbbell": 188_202,
}

#: Absolute floors (events/sec; cells/sec for the fig15 keys): ~4-5x below
#: the optimised reference numbers, so only a catastrophic hot-path
#: regression — not a slow CI machine — trips them.
FLOORS = {
    "event_loop": 250_000,
    "event_loop_calendar": 80_000,
    "event_loop_dense_heap": 90_000,
    "event_loop_dense_calendar": 120_000,
    "expresspass_dumbbell": 60_000,
    "sweep_parallel2": 60_000,
    "fig15_cells_packet": 0.2,
    "fig15_cells_fluid": 20,
    "fattree_cell_serial": 0.08,
    "fattree_cell_shards2": 0.05,
}

#: ``--check`` fails when a metric drops below this fraction of the
#: committed report's number.
REGRESSION_TOLERANCE = 0.8


def _bench_event_loop(sched: str = "heap") -> tuple:
    """(events, seconds) for the 100k self-rescheduling timer chain.

    A single pending event at all times: the heap's best case, kept as the
    calendar backend's worst-case honesty row.
    """
    sim = Simulator(seed=0, sched=sched)
    state = {"n": 0}

    def tick():
        state["n"] += 1
        if state["n"] < 100_000:
            sim.schedule(1000, tick)

    sim.schedule(0, tick)
    t0 = perf_counter()
    sim.run()
    return state["n"], perf_counter() - t0


#: Dense event-loop population: enough concurrent timers that the heap's
#: O(log n) sift (and its cache behaviour) dominates, which is the regime
#: the calendar queue exists for — ExpressPass at fabric scale keeps a
#: pending credit event per flow.
_DENSE_TIMERS = 524_288
_DENSE_EVENTS = 400_000


def _dense_run(sched: str) -> tuple:
    """(events, seconds) with ``_DENSE_TIMERS`` concurrent periodic timers.

    The ticks do nothing but reschedule — the queue operations are the
    thing under test — and only the run loop is timed; the initial
    scheduling burst is setup.  The half-million live closures and entry
    tuples are frozen out of the collector for the timed region: cyclic-GC
    traversals otherwise dwarf the queue-op difference being measured.
    """
    import gc

    sim = Simulator(seed=0, sched=sched)

    def mk(period):
        def tick():
            sim.schedule(period, tick)
        return tick

    for i in range(_DENSE_TIMERS):
        sim.schedule(i * 7 + 1, mk(999_983 + 13 * (i % 29)))
    gc.collect()
    gc.freeze()
    t0 = perf_counter()
    processed = sim.run(max_events=_DENSE_EVENTS)
    elapsed = perf_counter() - t0
    gc.unfreeze()
    return processed, elapsed


#: Partner results queued by the interleaved dense measurement below.
_dense_pending = {"heap": [], "calendar": []}


def _bench_dense_event_loop(sched: str) -> tuple:
    """One dense round per scheduler, measured back-to-back.

    The heap-vs-calendar ratio is the point of these two rows, and on a
    shared CI machine throughput drifts by tens of percent between
    measurement moments — so each call times *both* schedulers adjacently
    and queues the partner's result for the partner's next call, keeping
    every compared pair temporally local.
    """
    pending = _dense_pending[sched]
    if pending:
        return pending.pop(0)
    other = "calendar" if sched == "heap" else "heap"
    mine = _dense_run(sched)
    _dense_pending[other].append(_dense_run(other))
    return mine


def _dumbbell_events(seed: int = 1, n_pairs: int = 2, run_ms: int = 5) -> int:
    """Run the 2-flow ExpressPass dumbbell; returns events processed."""
    sim = Simulator(seed=seed)
    topo = dumbbell(sim, n_pairs=n_pairs,
                    bottleneck=LinkSpec(rate_bps=10 * GBPS,
                                        prop_delay_ps=4 * US))
    params = ExpressPassParams(rtt_hint_ps=40 * US)
    flows = [ExpressPassFlow(s, r, None, params=params)
             for s, r in zip(topo.senders, topo.receivers)]
    sim.run(until=run_ms * MS)
    for f in flows:
        f.stop()
    return sim.events_processed


def _bench_dumbbell() -> tuple:
    t0 = perf_counter()
    events = _dumbbell_events()
    return events, perf_counter() - t0


def _bench_sweep_parallel2() -> tuple:
    """(events, seconds) for a 4-task dumbbell sweep on 2 workers.

    Exercises the same hot path under ``repro.runtime`` process-pool
    dispatch (cache off, so the simulations really run).  Aggregate
    events/sec is total events over sweep wall time.
    """
    from repro import runtime
    from repro.runtime.task import TaskSpec

    specs = [TaskSpec(_dumbbell_events,
                      {"seed": seed, "run_ms": 3},
                      label=f"dumbbell seed={seed}")
             for seed in range(4)]
    t0 = perf_counter()
    with runtime.using(parallel=2, cache_enabled=False, progress=False):
        results = runtime.run_tasks(specs, name="bench_sweep")
    elapsed = perf_counter() - t0
    events = sum(r.value for r in results if r.ok)
    if not events:
        raise RuntimeError(
            f"sweep produced no events: {[r.error for r in results]}")
    return events, elapsed


#: fig15-style grid both backends run for the cells/sec comparison.
_FIG15_GRID = (("expresspass", 4), ("expresspass", 16), ("dctcp", 4))


def _bench_fig15_cells(backend: str) -> tuple:
    """(cells, seconds) for a small fig15-style persistent-flow grid.

    The fluid backend's reason to exist is scanning grids like this far
    faster than packet level; the committed report pins the speedup.
    """
    from repro.scenarios.cells import run_persistent
    from repro.sim.fluid.cells import run_fluid

    fn = run_fluid if backend == "fluid" else run_persistent
    t0 = perf_counter()
    for protocol, n_flows in _FIG15_GRID:
        fn(protocol=protocol, n_flows=n_flows,
           warmup_ps=2 * MS, measure_ps=2 * MS)
    return len(_FIG15_GRID), perf_counter() - t0


#: Fat-tree persistent cell both execution modes run for the serial vs
#: sharded comparison.
_SHARDED_KW = dict(protocol="expresspass", n_flows=4, topology="fat_tree",
                   topo_params={"k": 4})

#: Partner results queued by the interleaved sharded measurement below.
_sharded_pending = {1: [], 2: []}


def _sharded_cell_run(shards: int) -> tuple:
    """(cells, seconds) for one fat-tree persistent cell at ``shards``.

    At smoke scale this is an *overhead* row, not a speedup row: the
    cut-link lookahead is a few microseconds of simulated time, so the
    conservative window loop synchronizes thousands of times per
    millisecond and process dispatch dominates — sharding pays off only
    when per-window event density is much higher.  The committed ratio
    keeps that overhead visible (and bounded); bit-identity of the rows
    themselves is pinned by ``tests/test_sharded.py``, not here.
    """
    from repro.runtime import using
    from repro.scenarios.cells import run_persistent

    t0 = perf_counter()
    with using(shards=shards, cache_enabled=False, progress=False):
        run_persistent(warmup_ps=2 * MS, measure_ps=4 * MS, **_SHARDED_KW)
    return 1, perf_counter() - t0


def _bench_sharded_cell(shards: int) -> tuple:
    """One cell per execution mode, measured back-to-back (see the dense
    event-loop pairing above — the serial/sharded ratio is the point)."""
    pending = _sharded_pending[shards]
    if pending:
        return pending.pop(0)
    other = 2 if shards == 1 else 1
    mine = _sharded_cell_run(shards)
    _sharded_pending[other].append(_sharded_cell_run(other))
    return mine


SCENARIOS = {
    "event_loop": _bench_event_loop,
    "event_loop_calendar": lambda: _bench_event_loop("calendar"),
    "event_loop_dense_heap": lambda: _bench_dense_event_loop("heap"),
    "event_loop_dense_calendar": lambda: _bench_dense_event_loop("calendar"),
    "expresspass_dumbbell": _bench_dumbbell,
    "sweep_parallel2": _bench_sweep_parallel2,
    "fig15_cells_packet": lambda: _bench_fig15_cells("packet"),
    "fig15_cells_fluid": lambda: _bench_fig15_cells("fluid"),
    "fattree_cell_serial": lambda: _bench_sharded_cell(1),
    "fattree_cell_shards2": lambda: _bench_sharded_cell(2),
}


def measure(rounds: int = 3) -> dict:
    """Best-of-``rounds`` events/sec for every scenario."""
    current = {}
    for name, fn in SCENARIOS.items():
        best = 0.0
        for _ in range(max(1, rounds)):
            events, secs = fn()
            best = max(best, events / secs)
        # Cell-throughput rows can be fractional; keep their precision.
        current[name] = round(best) if best >= 1000 else round(best, 2)
        print(f"  {name:<26s} {current[name]:>12,} /s", file=sys.stderr)
    return current


def check(current: dict, committed: dict) -> list:
    """Return a list of failure strings (empty = pass)."""
    failures = []
    for name, eps in current.items():
        floor = FLOORS.get(name)
        if floor is not None and eps < floor:
            failures.append(
                f"{name}: {eps:,} events/s below absolute floor {floor:,}")
        ref = committed.get("current", {}).get(name)
        if ref and eps < REGRESSION_TOLERANCE * ref:
            failures.append(
                f"{name}: {eps:,} events/s is a "
                f"{100 * (1 - eps / ref):.0f}% regression vs committed "
                f"{ref:,} (tolerance {100 * (1 - REGRESSION_TOLERANCE):.0f}%)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Simulator core throughput bench (CI perf smoke).")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write the JSON report here")
    parser.add_argument("--rounds", type=int, default=3,
                        help="best-of rounds per scenario (default 3)")
    parser.add_argument("--check", default=None, metavar="BASELINE.json",
                        help="fail on floors or >20%% regression vs this "
                             "committed report")
    args = parser.parse_args(argv)

    print("bench_simulator_throughput:", file=sys.stderr)
    current = measure(args.rounds)
    report = {
        "bench": "simcore",
        "units": "events_per_second",
        "rounds": args.rounds,
        "baseline_pre_pr": PRE_PR_BASELINE,
        "current": current,
        "speedup_vs_pre_pr": {
            name: round(current[name] / base, 2)
            for name, base in PRE_PR_BASELINE.items() if name in current
        },
        # The two structural claims the scheduler/fluid work makes: the
        # calendar queue out-runs the heap once the pending set is dense,
        # and the fluid backend scans fig15-style grids orders of
        # magnitude faster than packet level.
        "speedups": {
            "calendar_vs_heap_dense_event_loop": round(
                current["event_loop_dense_calendar"]
                / current["event_loop_dense_heap"], 2),
            "fluid_vs_packet_fig15_cells": round(
                current["fig15_cells_fluid"]
                / current["fig15_cells_packet"], 1),
            # < 1 at smoke scale by design: conservative windows cost more
            # than they win until per-window event density is fabric-sized.
            # The committed ratio bounds that overhead.
            "sharded2_vs_serial_fattree_cell": round(
                current["fattree_cell_shards2"]
                / current["fattree_cell_serial"], 2),
        },
    }
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")

    if args.check:
        committed = json.loads(pathlib.Path(args.check).read_text())
        failures = check(current, committed)
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("perf check passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Simulator performance: event-loop and packet-forwarding throughput.

Not a paper figure — these benches track the substrate's own speed so
regressions in the hot path (event heap, port scheduler, ExpressPass
feedback) show up in CI.  Unlike the figure benches these run multiple
rounds for real statistics.

Besides the pytest-benchmark entry points, this module is a standalone
runner for the CI perf-smoke job::

    PYTHONPATH=src python benchmarks/bench_simulator_throughput.py \
        --output BENCH_simcore.json --check benchmarks/BENCH_simcore.json

It measures events/sec for three scenarios — the pure event loop, a serial
ExpressPass dumbbell, and a small sweep on two workers — and writes them to
a JSON report alongside the committed pre-PR baseline.  ``--check`` exits
non-zero if any metric falls below its absolute floor or regresses more
than 20 % against the committed report's numbers.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from time import perf_counter

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, dumbbell


def test_event_loop_throughput(benchmark):
    """Pure scheduler: a self-rescheduling timer chain."""

    def run():
        sim = Simulator(seed=0)
        state = {"n": 0}

        def tick():
            state["n"] += 1
            if state["n"] < 100_000:
                sim.schedule(1000, tick)

        sim.schedule(0, tick)
        sim.run()
        return state["n"]

    assert benchmark(run) == 100_000


def test_expresspass_packet_rate(benchmark):
    """End-to-end protocol throughput: events/sec for a 2-flow dumbbell."""

    def run():
        sim = Simulator(seed=1)
        topo = dumbbell(sim, n_pairs=2,
                        bottleneck=LinkSpec(rate_bps=10 * GBPS,
                                            prop_delay_ps=4 * US))
        params = ExpressPassParams(rtt_hint_ps=40 * US)
        flows = [ExpressPassFlow(s, r, None, params=params)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=5 * MS)
        for f in flows:
            f.stop()
        return sim.events_processed

    events = benchmark(run)
    assert events > 50_000  # ~5 ms of 10 G credit-scheduled traffic


# --- standalone runner (CI perf smoke) ---------------------------------------

#: Events/sec measured at the pre-optimisation seed (commit cba716c) on the
#: reference container; the committed BENCH_simcore.json carries these so
#: the speedup of the repro.perf work stays visible.
PRE_PR_BASELINE = {
    "event_loop": 834_090,
    "expresspass_dumbbell": 188_202,
}

#: Absolute floors (events/sec): ~4-5x below the optimised reference
#: numbers, so only a catastrophic hot-path regression — not a slow CI
#: machine — trips them.
FLOORS = {
    "event_loop": 250_000,
    "expresspass_dumbbell": 60_000,
    "sweep_parallel2": 60_000,
}

#: ``--check`` fails when a metric drops below this fraction of the
#: committed report's number.
REGRESSION_TOLERANCE = 0.8


def _bench_event_loop() -> tuple:
    """(events, seconds) for the 100k self-rescheduling timer chain."""
    sim = Simulator(seed=0)
    state = {"n": 0}

    def tick():
        state["n"] += 1
        if state["n"] < 100_000:
            sim.schedule(1000, tick)

    sim.schedule(0, tick)
    t0 = perf_counter()
    sim.run()
    return state["n"], perf_counter() - t0


def _dumbbell_events(seed: int = 1, n_pairs: int = 2, run_ms: int = 5) -> int:
    """Run the 2-flow ExpressPass dumbbell; returns events processed."""
    sim = Simulator(seed=seed)
    topo = dumbbell(sim, n_pairs=n_pairs,
                    bottleneck=LinkSpec(rate_bps=10 * GBPS,
                                        prop_delay_ps=4 * US))
    params = ExpressPassParams(rtt_hint_ps=40 * US)
    flows = [ExpressPassFlow(s, r, None, params=params)
             for s, r in zip(topo.senders, topo.receivers)]
    sim.run(until=run_ms * MS)
    for f in flows:
        f.stop()
    return sim.events_processed


def _bench_dumbbell() -> tuple:
    t0 = perf_counter()
    events = _dumbbell_events()
    return events, perf_counter() - t0


def _bench_sweep_parallel2() -> tuple:
    """(events, seconds) for a 4-task dumbbell sweep on 2 workers.

    Exercises the same hot path under ``repro.runtime`` process-pool
    dispatch (cache off, so the simulations really run).  Aggregate
    events/sec is total events over sweep wall time.
    """
    from repro import runtime
    from repro.runtime.task import TaskSpec

    specs = [TaskSpec(_dumbbell_events,
                      {"seed": seed, "run_ms": 3},
                      label=f"dumbbell seed={seed}")
             for seed in range(4)]
    t0 = perf_counter()
    with runtime.using(parallel=2, cache_enabled=False, progress=False):
        results = runtime.run_tasks(specs, name="bench_sweep")
    elapsed = perf_counter() - t0
    events = sum(r.value for r in results if r.ok)
    if not events:
        raise RuntimeError(
            f"sweep produced no events: {[r.error for r in results]}")
    return events, elapsed


SCENARIOS = {
    "event_loop": _bench_event_loop,
    "expresspass_dumbbell": _bench_dumbbell,
    "sweep_parallel2": _bench_sweep_parallel2,
}


def measure(rounds: int = 3) -> dict:
    """Best-of-``rounds`` events/sec for every scenario."""
    current = {}
    for name, fn in SCENARIOS.items():
        best = 0.0
        for _ in range(max(1, rounds)):
            events, secs = fn()
            best = max(best, events / secs)
        current[name] = round(best)
        print(f"  {name:<22s} {current[name]:>12,} events/s", file=sys.stderr)
    return current


def check(current: dict, committed: dict) -> list:
    """Return a list of failure strings (empty = pass)."""
    failures = []
    for name, eps in current.items():
        floor = FLOORS.get(name)
        if floor is not None and eps < floor:
            failures.append(
                f"{name}: {eps:,} events/s below absolute floor {floor:,}")
        ref = committed.get("current", {}).get(name)
        if ref and eps < REGRESSION_TOLERANCE * ref:
            failures.append(
                f"{name}: {eps:,} events/s is a "
                f"{100 * (1 - eps / ref):.0f}% regression vs committed "
                f"{ref:,} (tolerance {100 * (1 - REGRESSION_TOLERANCE):.0f}%)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Simulator core throughput bench (CI perf smoke).")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write the JSON report here")
    parser.add_argument("--rounds", type=int, default=3,
                        help="best-of rounds per scenario (default 3)")
    parser.add_argument("--check", default=None, metavar="BASELINE.json",
                        help="fail on floors or >20%% regression vs this "
                             "committed report")
    args = parser.parse_args(argv)

    print("bench_simulator_throughput:", file=sys.stderr)
    current = measure(args.rounds)
    report = {
        "bench": "simcore",
        "units": "events_per_second",
        "rounds": args.rounds,
        "baseline_pre_pr": PRE_PR_BASELINE,
        "current": current,
        "speedup_vs_pre_pr": {
            name: round(current[name] / base, 2)
            for name, base in PRE_PR_BASELINE.items() if name in current
        },
    }
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")

    if args.check:
        committed = json.loads(pathlib.Path(args.check).read_text())
        failures = check(current, committed)
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("perf check passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Simulator performance: event-loop and packet-forwarding throughput.

Not a paper figure — these benches track the substrate's own speed so
regressions in the hot path (event heap, port scheduler, ExpressPass
feedback) show up in CI.  Unlike the figure benches these run multiple
rounds for real statistics.
"""

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, dumbbell


def test_event_loop_throughput(benchmark):
    """Pure scheduler: a self-rescheduling timer chain."""

    def run():
        sim = Simulator(seed=0)
        state = {"n": 0}

        def tick():
            state["n"] += 1
            if state["n"] < 100_000:
                sim.schedule(1000, tick)

        sim.schedule(0, tick)
        sim.run()
        return state["n"]

    assert benchmark(run) == 100_000


def test_expresspass_packet_rate(benchmark):
    """End-to-end protocol throughput: events/sec for a 2-flow dumbbell."""

    def run():
        sim = Simulator(seed=1)
        topo = dumbbell(sim, n_pairs=2,
                        bottleneck=LinkSpec(rate_bps=10 * GBPS,
                                            prop_delay_ps=4 * US))
        params = ExpressPassParams(rtt_hint_ps=40 * US)
        flows = [ExpressPassFlow(s, r, None, params=params)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=5 * MS)
        for f in flows:
            f.stop()
        return sim.events_processed

    events = benchmark(run)
    assert events > 50_000  # ~5 ms of 10 G credit-scheduled traffic

"""Closed-loop partition/aggregate incast — the literal §2 workload.

The Fig 1 mechanism, measured with the request/response loop the paper
describes: the master's downlink queue stays sub-packet under ExpressPass
at any fan-in (credit arrivals schedule the responses), while DCTCP's
grows with fan-in.
"""

from repro.experiments import incast_closed_loop
from benchmarks.conftest import emit, scaled


def test_incast_closed_loop(once):
    fan_ins = (8, 32, scaled(64))
    result = once(incast_closed_loop.run,
                  protocols=("expresspass", "dctcp"),
                  fan_ins=fan_ins, rounds=30)
    emit(result)

    def row(protocol, n):
        return next(r for r in result.rows
                    if r["protocol"] == protocol and r["fan_in"] == n)

    for n in fan_ins:
        ep = row("expresspass", n)
        assert ep["rounds_done"] == 30
        assert ep["data_drops"] == 0
        # Credit scheduling keeps the incast queue at ~a packet, flat in N.
        assert ep["downlink_queue_max_pkts"] < 4
    # DCTCP's wave queue grows with fan-in.
    assert (row("dctcp", fan_ins[-1])["downlink_queue_max_pkts"]
            > 3 * row("dctcp", fan_ins[0])["downlink_queue_max_pkts"])

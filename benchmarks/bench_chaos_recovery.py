"""Chaos recovery: time-to-recover goodput after an agg–core link flap.

A k=4 fat tree carries 8 persistent inter-pod ExpressPass flows when the
``agg0_0``–``core0`` link goes down for 4 ms and comes back.  Across seeds
(swept through :mod:`repro.runtime`), every run must recover at least 90 %
of the pre-fault aggregate goodput within the measurement window, with no
stalled flow and zero audit violations — injected drops are budgeted, so a
clean pass means conservation held exactly despite the fault.

The second benchmark removes the routing safety net (reconvergence slower
than the run): recovery then comes solely from the transport watchdog
re-hashing dead paths, which is the machinery under test.
"""

from repro.chaos.scenarios import RECOVERY_FRACTION, run_point
from repro.experiments.runner import ExperimentResult, run_sweep
from repro.sim.units import MS
from benchmarks.conftest import emit, scaled


def _sweep(seeds, **common):
    rows = run_sweep(
        run_point,
        [{"scenario": "link-flap", "seed": s} for s in seeds],
        common=common,
        name="bench-chaos-recovery",
        label=lambda p: f"flap/seed{p['seed']}",
    )
    return ExperimentResult(
        name="chaos recovery: agg0_0-core0 link flap",
        columns=["seed", "pre_gbps", "low_gbps", "post_gbps",
                 "recovered_frac", "recovery_ms", "stalled", "violations",
                 "rehashes", "recoveries", "ok"],
        rows=rows,
        meta={"ok": all(r["ok"] for r in rows)},
    )


def _check(result):
    for row in result.rows:
        assert row["violations"] == 0, row
        assert row["stalled"] == 0, row
        assert row["recovery_ms"] >= 0, row
        assert row["recovered_frac"] >= RECOVERY_FRACTION, row
        # The fault must actually bite: goodput dips below the recovery bar.
        assert row["low_gbps"] < RECOVERY_FRACTION * row["pre_gbps"], row


def test_chaos_recovery_link_flap(once):
    seeds = range(1, 1 + scaled(3))
    result = once(_sweep, seeds)
    emit(result)
    _check(result)


def test_chaos_recovery_without_reconvergence(once):
    # Routing never reconverges within the run: flows must save themselves
    # by detecting the dead path and re-hashing onto a live core.
    seeds = range(1, 1 + scaled(2))
    result = once(_sweep, seeds, reconverge_delay_ps=100 * MS)
    result.name += " (no routing reconvergence)"
    emit(result)
    _check(result)
    assert all(r["recoveries"] > 0 for r in result.rows), \
        "watchdog never fired: recovery must come from path re-hash"

"""Fig 17 / §6.2: MapReduce shuffle FCT distribution under heavy incast.

Paper shape: DCTCP's median is slightly better, but ExpressPass wins by
1.5x at the 99th percentile and ~6.7x at the tail (stragglers).
"""

from repro.experiments import fig17_shuffle
from benchmarks.conftest import emit, scaled


def test_fig17_shuffle(once):
    result = once(
        fig17_shuffle.run,
        protocols=("expresspass", "dctcp"),
        n_hosts=8,
        tasks_per_host=scaled(2),
        flow_bytes=100_000,
    )
    emit(result)
    by = {r["protocol"]: r for r in result.rows}
    ep, dctcp = by["expresspass"], by["dctcp"]
    # Everybody finishes the shuffle.
    assert ep["completed"] == ep["flows"]
    assert dctcp["completed"] == dctcp["flows"]
    # ExpressPass never loses data under the incast.
    assert ep["data_drops"] == 0
    # The tail favours ExpressPass.
    assert ep["fct_ms_max"] < dctcp["fct_ms_max"]
    assert ep["fct_ms_p99"] < 1.5 * dctcp["fct_ms_p99"]

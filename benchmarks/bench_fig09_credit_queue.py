"""Fig 9: credit-queue capacity vs under-utilization.

Paper shape: one-credit queues under-utilize (bursty cross-port credit
arrivals get dropped); eight credits suffice for every flow count — the
paper's default.
"""

from repro.experiments import fig09_credit_queue
from benchmarks.conftest import emit, scaled


def test_fig09_credit_queue(once):
    result = once(
        fig09_credit_queue.run,
        flow_counts=(2, 8, scaled(16)),
        queue_sizes=(1, 2, 4, 8, 16),
        warmup_ps=10_000_000_000,
        measure_ps=20_000_000_000,
    )
    emit(result)

    def under(n, q):
        return next(r["under_utilization"] for r in result.rows
                    if r["flows"] == n and r["credit_queue"] == q)

    # Eight credits keep the under-utilization negligible at every flow
    # count (the paper's choice)...
    for n in (2, 8, 16):
        assert under(n, 8) < 0.02
        # ...and deeper queues buy nothing more.
        assert under(n, 16) < under(n, 8) + 0.02
    # Our pacing is smoother than the paper's ns-2 (jittered pacer plus
    # byte-metered NICs), so even a 1-credit queue loses only a fraction of
    # a percent here — the paper measured up to ~6 %.  The direction holds:
    # shallower queues never *help*.
    for n in (8, 16):
        assert under(n, 1) >= under(n, 4) - 0.005

"""Fig 18: sensitivity of tail FCT to (α, w_init).

Paper shape: lowering α/w_init trades short-flow FCT (slower start) for
large-flow FCT (fewer wasted credits); (1/16, 1/16) is the sweet spot.
"""

from repro.experiments import fig18_param_sensitivity
from benchmarks.conftest import emit, scaled


def test_fig18_param_sensitivity(once):
    result = once(
        fig18_param_sensitivity.run,
        sweep=((1 / 2, 1 / 2), (1 / 16, 1 / 16), (1 / 32, 1 / 32)),
        workload="cache_follower",
        load=0.6,
        n_flows=scaled(400),
        size_cap_bytes=10_000_000,
    )
    emit(result)
    by = {r["alpha"]: r for r in result.rows}
    # Lower alpha reduces credit waste...
    assert by["1/16"]["credit_waste"] < by["1/2"]["credit_waste"]
    # ...at some cost in short-flow tail FCT (allow noise; the paper's S
    # penalty at 1/16 is <2x).
    assert by["1/16"]["p99_fct_S_ms"] < 4 * by["1/2"]["p99_fct_S_ms"]

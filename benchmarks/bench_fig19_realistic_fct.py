"""Fig 19: avg / p99 FCT per flow-size bucket, five protocols.

Paper shape: ExpressPass wins S/M flows (no queueing + instant ramp),
by 1.3-5.1x on average vs DCTCP and more at p99; DCTCP/RCP win L/XL
flows (ExpressPass pays its credit reservation + waste).
"""

from repro.experiments import fig19_realistic_fct
from benchmarks.conftest import emit, scaled


def test_fig19_realistic_fct(once):
    result = once(
        fig19_realistic_fct.run,
        protocols=("expresspass", "rcp", "dctcp", "dx", "hull"),
        workload="web_search",
        load=0.6,
        n_flows=scaled(350),
        size_cap_bytes=10_000_000,
    )
    emit(result)

    def cell(protocol, bucket, key):
        row = next((r for r in result.rows
                    if r["protocol"] == protocol and r["bucket"] == bucket),
                   None)
        return row[key] if row else None

    ep_s = cell("expresspass", "S", "p99_fct_ms")
    dctcp_s = cell("dctcp", "S", "p99_fct_ms")
    # Short flows: ExpressPass beats DCTCP at the tail.
    assert ep_s is not None and dctcp_s is not None
    assert ep_s < dctcp_s
    # Large flows: DCTCP is competitive or better (credit reservation cost).
    ep_xl = cell("expresspass", "XL", "avg_fct_ms")
    dctcp_xl = cell("dctcp", "XL", "avg_fct_ms")
    if ep_xl is not None and dctcp_xl is not None:
        assert dctcp_xl < 1.5 * ep_xl

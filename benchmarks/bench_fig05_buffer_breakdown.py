"""Fig 5: maximum ToR-switch buffer by contributing source (pure analysis).

Paper shape: totals of tens of MB for the software setting (8-credit
queues, ∆d_host = 5.1 us) across (10/40), (40/100), (100/100); the
hardware-NIC setting (4 credits, 1 us) needs several times less; growth
with link speed is sub-linear; host delay dominates at higher speeds.
"""

from repro.experiments import table1_buffer_bounds
from benchmarks.conftest import emit


def test_fig05_buffer_breakdown(once):
    result = once(table1_buffer_bounds.run_fig5)
    emit(result)

    soft = [r for r in result.rows if r["setting"].startswith("(a)")]
    hw = [r for r in result.rows if r["setting"].startswith("(b)")]
    # Hardware NIC parameters shrink the requirement at every speed.
    for s, h in zip(soft, hw):
        assert h["total_mb"] < 0.6 * s["total_mb"]
    # Totals stay within commodity shared-buffer territory at 10/40.
    assert soft[0]["total_mb"] < 16
    # Sub-linear growth: 10x the edge speed needs << 10x the buffer.
    assert soft[2]["total_mb"] < 10 * soft[0]["total_mb"]
    # Host-delay contribution grows with link speed (Fig 5's stacking).
    assert soft[2]["host_delay_mb"] > soft[0]["host_delay_mb"]

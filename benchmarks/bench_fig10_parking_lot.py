"""Fig 10: parking-lot utilization — naive credits vs the feedback loop.

Paper values: naive drops to 83.3 % at two bottlenecks and ~60 % at six;
the feedback loop holds ~98 % everywhere.
"""

from repro.experiments import fig10_parking_lot
from benchmarks.conftest import emit


def test_fig10_parking_lot(once):
    result = once(
        fig10_parking_lot.run,
        counts=(1, 2, 4, 6),
        warmup_ps=20_000_000_000,
        measure_ps=30_000_000_000,
    )
    emit(result)

    def util(n, mode):
        return next(r["min_link_utilization"] for r in result.rows
                    if r["bottlenecks"] == n and r["mode"] == mode)

    # Single bottleneck: both modes saturate.
    assert util(1, "naive") > 0.95
    # Naive wastes upstream bandwidth, worsening with chain length.
    assert util(2, "naive") < 0.9
    assert util(6, "naive") < util(2, "naive") + 0.05
    assert util(6, "naive") < 0.7
    # The feedback loop repairs it (~98 % in the paper).
    for n in (2, 4, 6):
        assert util(n, "feedback") > 0.93

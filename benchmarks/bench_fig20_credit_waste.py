"""Fig 20: credit-waste ratio by workload, link speed, and α.

Paper shape: waste is inversely proportional to mean flow size (Web Server
worst: 34 % at 10 G / 60 % at 40 G with α=1/2) and grows with BDP; α=1/16
roughly halves it.
"""

from repro.experiments import fig20_credit_waste
from benchmarks.conftest import emit, scaled


def test_fig20_credit_waste(once):
    result = once(
        fig20_credit_waste.run,
        workloads=("data_mining", "web_server"),
        speeds_gbps=(10, 40),
        alphas=(1 / 2, 1 / 16),
        load=0.6,
        n_flows=scaled(250),
        size_cap_bytes=10_000_000,
    )
    emit(result)

    def waste(workload, gbps, alpha):
        return next(r["credit_waste"] for r in result.rows
                    if r["workload"] == workload and r["rate_gbps"] == gbps
                    and r["alpha"] == alpha)

    # Small-flow workloads waste far more credits than elephant workloads.
    assert waste("web_server", 10, "1/2") > 2 * waste("data_mining", 10, "1/2")
    # Higher link speed (bigger BDP) increases waste.
    assert waste("web_server", 40, "1/2") > waste("web_server", 10, "1/2")
    # Dropping alpha to 1/16 reduces waste substantially.
    assert waste("web_server", 10, "1/16") < waste("web_server", 10, "1/2")

"""Fig 15: utilization / fairness / max queue vs number of concurrent flows.

Paper shape: ExpressPass ~95 % utilization (its credit reservation), high
fairness, and KB-scale queues at every N; DCTCP 100 % utilization but
fairness collapsing with many flows and queue growing toward capacity;
RCP overflowing the buffer as flow count rises.
"""

from repro.experiments import fig15_flow_scalability
from benchmarks.conftest import emit, scaled


def test_fig15_flow_scalability(once):
    counts = (4, 16, 64, scaled(128))
    result = once(
        fig15_flow_scalability.run,
        protocols=("expresspass", "dctcp", "rcp"),
        flow_counts=counts,
        warmup_ps=30_000_000_000,
        measure_ps=30_000_000_000,
    )
    emit(result)

    def row(protocol, n):
        return next(r for r in result.rows
                    if r["protocol"] == protocol and r["flows"] == n)

    for n in counts:
        ep = row("expresspass", n)
        assert ep["utilization"] > 0.85
        assert ep["fairness"] > 0.9
        assert ep["data_drops"] == 0
        assert ep["max_queue_kb"] < 60
    # DCTCP's queue grows toward capacity as flows pile up (min cwnd of 2
    # per flow): at the largest count it is pushing the buffer and/or
    # dropping.  (The paper's outright fairness collapse appears once
    # min_cwnd x N far exceeds the buffer — beyond this default scale; run
    # with REPRO_SCALE>=2 to see it.)
    big = counts[-1]
    assert row("dctcp", big)["max_queue_kb"] > 300
    # DCTCP queues far more than ExpressPass at scale.
    assert (row("dctcp", big)["max_queue_kb"]
            > 3 * row("expresspass", big)["max_queue_kb"])
    # RCP loses packets heavily once flow count is large.
    assert row("rcp", big)["data_drops"] > 1000

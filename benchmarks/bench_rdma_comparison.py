"""ExpressPass vs DCQCN/TIMELY under incast (the §8 RDMA context).

All three deliver zero loss, but by different means with different costs:
DCQCN leans on PFC pauses and lets the queue climb toward XOFF; TIMELY
keeps the queue lower but still needs PFC as a safety net; ExpressPass
needs neither — its queue stays at a few packets with no pause events.
"""

from repro.experiments import rdma_comparison
from benchmarks.conftest import emit, scaled


def test_rdma_comparison(once):
    result = once(rdma_comparison.run, fan_in=scaled(8), response_kb=64)
    emit(result)
    by = {r["protocol"]: r for r in result.rows}
    for row in result.rows:
        assert row["data_drops"] == 0
        assert row["completed"] == scaled(8)
    ep, dcqcn = by["expresspass"], by["dcqcn"]
    assert ep["pfc_pauses"] == 0
    assert dcqcn["pfc_pauses"] > 0
    assert ep["max_queue_kb"] < 10
    assert dcqcn["max_queue_kb"] > 5 * ep["max_queue_kb"]

"""Fig 1: bottleneck data-queue length vs concurrent flows.

Paper shape: the credit-based scheme's max queue is flat in fan-in; the
ideal rate control's grows with fan-in; DCTCP's is the largest and hits the
buffer.  (Paper fan-outs reach 2048 on an 8-ary fat tree; default here is
8..64 on one ToR — same mechanism, see DESIGN.md §2.)
"""

from repro.experiments import fig01_queue_buildup
from benchmarks.conftest import emit, scaled


def test_fig01_queue_buildup(once):
    fan_ins = [8, 16, 32, scaled(64)]
    result = once(
        fig01_queue_buildup.run,
        protocols=("ideal", "dctcp", "expresspass"),
        fan_ins=fan_ins,
        n_hosts=16,
        duration_ps=10_000_000_000,  # 10 ms
    )
    emit(result)

    def series(protocol):
        return {r["fan_in"]: r for r in result.rows if r["protocol"] == protocol}

    ideal = series("ideal")
    dctcp = series("dctcp")
    xpass = series("expresspass")
    biggest = fan_ins[-1]
    # Credit scheduling bounds the queue regardless of fan-in...
    assert xpass[biggest]["queue_pkts_max"] < 24
    # ...while DCTCP's queue at high fan-in is far larger,
    assert dctcp[biggest]["queue_pkts_max"] > 4 * xpass[biggest]["queue_pkts_max"]
    # ...and even ideal per-flow pacing queues more than credits do.
    assert ideal[biggest]["queue_pkts_max"] > xpass[biggest]["queue_pkts_max"]

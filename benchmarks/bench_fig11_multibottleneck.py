"""Fig 11: multi-bottleneck fairness — Flow 0's share vs max-min ideal.

Paper shape: with the feedback loop Flow 0 tracks 1/(N+1) of the link
closely for small N and drifts mildly above it as N grows (sub-credit-per-
RTT regime); the naive scheme misallocates.
"""

from repro.experiments import fig11_multibottleneck
from benchmarks.conftest import emit, scaled


def test_fig11_multibottleneck(once):
    counts = (1, 4, 16, scaled(32))
    result = once(
        fig11_multibottleneck.run,
        counts=counts,
        warmup_ps=20_000_000_000,
        measure_ps=40_000_000_000,
    )
    emit(result)

    def row(n, mode):
        return next(r for r in result.rows
                    if r["cross_flows"] == n and r["mode"] == mode)

    # Feedback tracks max-min within 35 % for small N (paper: "closely
    # until four flows").
    for n in (1, 4):
        r = row(n, "feedback")
        assert abs(r["flow0_gbps"] - r["maxmin_ideal_gbps"]) \
            < 0.35 * r["maxmin_ideal_gbps"]
    # At larger N the gap grows but Flow 0 stays within 2x of ideal.
    big = row(counts[-1], "feedback")
    assert big["flow0_gbps"] < 2.5 * big["maxmin_ideal_gbps"]

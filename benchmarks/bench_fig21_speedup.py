"""Fig 21: average-FCT speed-up from 10 G to 40 G links.

Paper shape: larger flows gain more (small flows are RTT-bound);
ExpressPass posts strong gains (1.5-3.5x) thanks to speed-independent
convergence; RCP leads on the largest flows.
"""

from repro.experiments import fig21_speedup
from benchmarks.conftest import emit, scaled


def test_fig21_speedup(once):
    result = once(
        fig21_speedup.run,
        protocols=("expresspass", "rcp", "dctcp"),
        workload="web_search",
        load=0.6,
        n_flows=scaled(250),
        size_cap_bytes=10_000_000,
    )
    emit(result)

    def speedup(protocol, bucket):
        row = next((r for r in result.rows
                    if r["protocol"] == protocol and r["bucket"] == bucket),
                   None)
        return row["speedup_avg_fct"] if row else None

    # ExpressPass: large flows gain most, small flows are RTT-bound, and
    # the band matches the paper's 1.5-3.5x.
    ep_s, ep_xl = speedup("expresspass", "S"), speedup("expresspass", "XL")
    assert ep_s is not None and ep_xl is not None
    assert ep_xl > ep_s
    assert ep_s < 2.5
    assert ep_xl > 1.5
    # DCTCP benefits across buckets (exact per-bucket ordering is noisy at
    # this scale; the paper's full-scale runs put XL ahead).
    for bucket in ("S", "XL"):
        value = speedup("dctcp", bucket)
        assert value is not None and value > 1.0

"""Fig 16: convergence time at 10 G and 100 G link speeds.

Paper shape: ExpressPass converges in a few RTTs *independent of link
speed* (α=1/16 roughly doubles α=1/2's time); DCTCP's convergence grows
with the BDP (hundreds of RTTs at 10 G, thousands at 100 G); RCP converges
in a couple of RTTs at both speeds.  The DCTCP/100 G horizon is truncated
(reported as non-converged) to keep the benchmark tractable.
"""

from repro.experiments import fig16_link_speed_convergence
from benchmarks.conftest import emit


def test_fig16_convergence_speed(once):
    result = once(
        fig16_link_speed_convergence.run,
        protocols=("expresspass", "dctcp", "rcp"),
        rates_gbps=(10, 100),
        alpha_variants=(0.5, 1 / 16),
        max_rtts=800,
    )
    emit(result)

    def rtts(protocol, rate):
        row = next(r for r in result.rows
                   if r["protocol"] == protocol and r["rate_gbps"] == rate)
        return row["convergence_rtts"], row["converged"]

    ep_10, ok = rtts("expresspass(a=0.5)", 10)
    assert ok and ep_10 < 60
    ep_100, ok = rtts("expresspass(a=0.5)", 100)
    assert ok and ep_100 < 80
    # Speed independence: 100 G converges in a similar number of RTTs.
    assert ep_100 < 3 * ep_10 + 20
    # DCTCP is an order of magnitude slower at 10 G...
    dctcp_10, ok = rtts("dctcp", 10)
    assert (not ok) or dctcp_10 > 3 * ep_10
    # ...and fails to converge within the truncated 100 G horizon.
    dctcp_100, ok100 = rtts("dctcp", 100)
    assert (not ok100) or dctcp_100 > dctcp_10
    # RCP converges fast at both speeds.
    rcp_10, ok = rtts("rcp", 10)
    assert ok and rcp_10 < 20

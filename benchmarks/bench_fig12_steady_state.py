"""Fig 12 / §4: steady-state oscillation of the discrete feedback model.

Verifies the analysis: rates converge to C/N, the oscillation amplitude
decays to D* = C * w_min * (1 - 1/N), and w settles at w_min — for several
w_min values (larger w_min -> larger residual oscillation, faster
convergence: the trade-off §3.2 describes).
"""

from repro.experiments import fig12_steady_state
from benchmarks.conftest import emit


def test_fig12_steady_state(once):
    result = once(fig12_steady_state.run, n_flows=8, periods=400,
                  w_mins=(0.01, 0.04, 0.16))
    emit(result)
    rows = result.rows
    for row in rows:
        # Amplitude lands on the predicted D*.
        assert row["final_amplitude"] <= row["predicted_D_star"] * 1.3
        # All rates are within the oscillation band of fair share.
        assert row["max_rate_error_vs_fair"] < 2.5 * (0.1 + 8 * row["w_min"])
        assert row["final_w"] == row["w_min"]
    # Larger w_min -> larger residual oscillation (paper's trade-off).
    amplitudes = [r["final_amplitude"] for r in rows]
    assert amplitudes == sorted(amplitudes)

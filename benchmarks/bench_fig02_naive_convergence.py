"""Fig 2: convergence of the naive credit scheme vs TCP CUBIC vs DCTCP.

Paper shape (testbed): naive credits converge in ~1 RTT (25 us), CUBIC in
47 ms, DCTCP in 70 ms.  In simulation all are faster, but the ordering and
the order-of-magnitude gap to DCTCP hold.
"""

from repro.experiments import fig02_naive_convergence
from benchmarks.conftest import emit


def test_fig02_naive_convergence(once):
    result = once(
        fig02_naive_convergence.run,
        protocols=("expresspass-naive", "cubic", "dctcp"),
        max_wait_ps=200_000_000_000,  # 200 ms cap
    )
    emit(result)
    by = {r["protocol"]: r for r in result.rows}
    assert by["expresspass-naive"]["converged"]
    naive = by["expresspass-naive"]["convergence_rtts"]
    dctcp = by["dctcp"]["convergence_rtts"]
    # The credit scheme converges 10x+ faster than DCTCP.
    assert dctcp is None or dctcp > 10 * naive

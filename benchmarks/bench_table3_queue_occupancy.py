"""Table 3: average / maximum queue occupancy across loads and protocols.

Paper shape: ExpressPass's average queue is sub-KB and its maximum is a
topology property (flat in load); RCP pegs the queue near capacity at all
loads; DCTCP's queue grows with load; DX and HULL stay low.
"""

from repro.experiments import table3_queue_occupancy
from benchmarks.conftest import emit, scaled


def test_table3_queue_occupancy(once):
    result = once(
        table3_queue_occupancy.run,
        protocols=("expresspass", "rcp", "dctcp", "dx", "hull"),
        workloads=("web_search",),
        loads=(0.2, 0.6),
        n_flows=scaled(250),
        size_cap_bytes=10_000_000,
    )
    emit(result)

    def row(protocol, load):
        return next(r for r in result.rows
                    if r["protocol"] == protocol and r["load"] == load)

    # ExpressPass: tiny averages, load-insensitive maximum, zero loss.
    ep2, ep6 = row("expresspass", 0.2), row("expresspass", 0.6)
    assert ep6["avg_queue_kb"] < 2.0
    assert ep6["max_queue_kb"] < 2.5 * max(ep2["max_queue_kb"], 10)
    assert ep6["data_drops"] == 0
    # RCP's max queue dwarfs ExpressPass's at high load (pegged buffers).
    assert row("rcp", 0.6)["max_queue_kb"] > 4 * ep6["max_queue_kb"]
    # DCTCP queues more than ExpressPass on average.
    assert row("dctcp", 0.6)["avg_queue_kb"] > ep6["avg_queue_kb"]
    # DX and HULL keep small queues too (their design goal).
    assert row("dx", 0.6)["max_queue_kb"] < row("rcp", 0.6)["max_queue_kb"]

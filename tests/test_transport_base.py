"""Tests for the reliable window and rate transfer engines."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US
from repro.topology import LinkSpec, dumbbell
from repro.transport.base import RateFlow, WindowFlow

from tests.conftest import small_dumbbell


class FixedWindowFlow(WindowFlow):
    """A WindowFlow with no congestion control (fixed cwnd) for testing."""

    init_cwnd = 8.0


class TestWindowReliability:
    def test_completes_and_counts_bytes(self, sim):
        topo = small_dumbbell(sim)
        flow = FixedWindowFlow(topo.senders[0], topo.receivers[0], 100_000)
        sim.run(until=SEC)
        assert flow.completed
        assert flow.bytes_delivered == 100_000
        assert flow.retransmissions == 0

    def test_last_segment_partial(self, sim):
        topo = small_dumbbell(sim)
        flow = FixedWindowFlow(topo.senders[0], topo.receivers[0], 1501)
        sim.run(until=SEC)
        assert flow.completed
        assert flow.total_segments == 2
        assert flow.bytes_delivered == 1501

    def test_fct_includes_handshake(self, sim):
        topo = small_dumbbell(sim)
        flow = FixedWindowFlow(topo.senders[0], topo.receivers[0], 1000)
        sim.run(until=SEC)
        # One RTT handshake + one RTT data; dumbbell RTT ~25 us.
        assert flow.fct_ps > 35 * US

    def test_no_handshake_mode_is_faster(self):
        fcts = []
        for handshake in (True, False):
            sim = Simulator(seed=1)
            topo = small_dumbbell(sim)

            class F(FixedWindowFlow):
                pass

            F.handshake = handshake
            flow = F(topo.senders[0], topo.receivers[0], 1000)
            sim.run(until=SEC)
            fcts.append(flow.fct_ps)
        assert fcts[1] < fcts[0]

    def test_recovers_from_heavy_loss(self, sim):
        # A bottleneck buffer of ~4 MTUs forces drops with window 8.
        topo = small_dumbbell(sim, data_capacity_bytes=4 * 1538)
        flow = FixedWindowFlow(topo.senders[0], topo.receivers[0], 300_000)
        sim.run(until=SEC)
        assert flow.completed
        assert flow.bytes_delivered == 300_000
        assert flow.data_drops > 0
        assert flow.retransmissions > 0

    def test_two_flows_share_and_complete(self, sim):
        topo = small_dumbbell(sim, n_pairs=2)
        flows = [FixedWindowFlow(s, r, 200_000)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=SEC)
        assert all(f.completed for f in flows)

    def test_persistent_flow_never_completes(self, sim):
        topo = small_dumbbell(sim)
        flow = FixedWindowFlow(topo.senders[0], topo.receivers[0], None)
        sim.run(until=5 * MS)
        assert not flow.completed
        assert flow.bytes_delivered > 0

    def test_stop_halts_transmission(self, sim):
        topo = small_dumbbell(sim)
        flow = FixedWindowFlow(topo.senders[0], topo.receivers[0], None)
        sim.run(until=1 * MS)
        flow.stop()
        delivered = flow.bytes_delivered
        sim.run(until=2 * MS)
        # In-flight packets may still land; no new windows are sent.
        assert flow.bytes_delivered - delivered < 20 * flow.MSS


class TestPacedWindow:
    def test_paced_flow_completes(self, sim):
        class Paced(FixedWindowFlow):
            paced = True

        topo = small_dumbbell(sim)
        flow = Paced(topo.senders[0], topo.receivers[0], 100_000)
        sim.run(until=SEC)
        assert flow.completed

    def test_pacing_spreads_packets(self):
        # Paced sender never bursts the whole window back-to-back.
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)

        class Paced(FixedWindowFlow):
            paced = True
            init_cwnd = 16.0

        arrivals = []
        flow = Paced(topo.senders[0], topo.receivers[0], None)
        original = flow._at_receiver

        def tap(pkt):
            arrivals.append(sim.now)
            original(pkt)

        flow._at_receiver = tap
        sim.run(until=2 * MS)
        flow.stop()
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        # With pacing at cwnd/srtt the typical gap exceeds serialization time.
        big_gaps = [g for g in gaps if g > 1_230_400]
        assert len(big_gaps) > len(gaps) * 0.3


class TestRateFlow:
    def test_completes_at_configured_rate(self, sim):
        topo = small_dumbbell(sim)
        flow = RateFlow(topo.senders[0], topo.receivers[0], 150_000,
                        initial_rate_bps=1 * GBPS)
        sim.run(until=SEC)
        assert flow.completed
        # 150 KB at 1 Gbps ~ 1.2 ms; allow handshake and overhead slack.
        assert 1.0 * MS < flow.fct_ps < 3 * MS

    def test_rate_changed_repaces(self, sim):
        topo = small_dumbbell(sim)
        flow = RateFlow(topo.senders[0], topo.receivers[0], 1_500_000,
                        initial_rate_bps=0.1 * GBPS)
        sim.run(until=2 * MS)
        flow.rate_bps = 9 * GBPS
        flow.rate_changed()
        sim.run(until=10 * MS)
        assert flow.completed

    def test_loss_recovery_under_overload(self, sim):
        # Two fixed-rate senders overdrive the shared bottleneck: drops at
        # the middle link (the local NIC backpressure cannot help there),
        # recovered by dupack/partial-ack repair.
        topo = small_dumbbell(sim, n_pairs=2)
        flows = [RateFlow(s, r, 500_000, initial_rate_bps=8 * GBPS)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=SEC)
        assert all(f.completed for f in flows)
        assert topo.net.total_data_drops() > 0
        assert sum(f.retransmissions for f in flows) > 0

    def test_nic_backpressure_prevents_local_drops(self, sim):
        # A sender pacing faster than its own NIC must stall, not drop.
        topo = small_dumbbell(sim, data_capacity_bytes=4 * 1538)
        flow = RateFlow(topo.senders[0], topo.receivers[0], 500_000,
                        initial_rate_bps=20 * GBPS)
        sim.run(until=SEC)
        assert flow.completed
        nic = topo.senders[0].nic
        assert nic.data_queue.stats.dropped == 0

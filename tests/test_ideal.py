"""Tests for the oracle rate controller (max-min water-filling)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US
from repro.topology import LinkSpec, dumbbell, parking_lot
from repro.transport.ideal import (
    IdealFlow,
    OracleRateController,
    compute_path_ports,
    max_min_rates,
)

from tests.conftest import small_dumbbell


class TestWaterFilling:
    def _flows_on_shared_port(self, sim, n):
        topo = small_dumbbell(sim, n_pairs=n)
        oracle = OracleRateController(capacity_fraction=1.0)
        flows = [IdealFlow(s, r, None, oracle=oracle)
                 for s, r in zip(topo.senders, topo.receivers)]
        for f in flows:
            f.stop()
        return topo, flows

    def test_equal_split_on_single_bottleneck(self, sim):
        topo, flows = self._flows_on_shared_port(sim, 4)
        paths = {f: compute_path_ports(f) for f in flows}
        rates = max_min_rates(paths, capacity_fraction=1.0)
        for rate in rates.values():
            assert rate == pytest.approx(2.5 * GBPS)

    def test_parking_lot_max_min(self, sim):
        topo = parking_lot(sim, 2, link=LinkSpec())
        oracle = OracleRateController()
        long = IdealFlow(topo.long_src, topo.long_dst, None, oracle=oracle)
        crosses = [IdealFlow(s, d, None, oracle=oracle)
                   for s, d in zip(topo.cross_srcs, topo.cross_dsts)]
        for f in [long] + crosses:
            f.stop()
        paths = {f: compute_path_ports(f) for f in [long] + crosses}
        rates = max_min_rates(paths, capacity_fraction=1.0)
        # Long flow and each cross flow split each bottleneck in half.
        assert rates[long] == pytest.approx(5 * GBPS)
        for c in crosses:
            assert rates[c] == pytest.approx(5 * GBPS)

    def test_unconstrained_flow_gets_infinity(self, sim):
        # A flow whose ports carry no other flow is bounded only by its path.
        topo = small_dumbbell(sim, 1)
        oracle = OracleRateController(capacity_fraction=1.0)
        flow = IdealFlow(topo.senders[0], topo.receivers[0], None, oracle=oracle)
        flow.stop()
        rates = max_min_rates({flow: compute_path_ports(flow)}, 1.0)
        assert rates[flow] == pytest.approx(10 * GBPS)

    def test_empty_input(self):
        assert max_min_rates({}) == {}


class TestOracleEndToEnd:
    def test_rates_rebalance_on_churn(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=2)
        oracle = OracleRateController()
        f0 = IdealFlow(topo.senders[0], topo.receivers[0], None, oracle=oracle)
        sim.run(until=2 * MS)
        solo_rate = f0.rate_bps
        f1 = IdealFlow(topo.senders[1], topo.receivers[1], None, oracle=oracle)
        sim.run(until=4 * MS)
        assert f0.rate_bps == pytest.approx(solo_rate / 2, rel=0.01)
        f0.stop()
        f1.stop()

    def test_completion_releases_bandwidth(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=2)
        oracle = OracleRateController()
        short = IdealFlow(topo.senders[0], topo.receivers[0], 100_000, oracle=oracle)
        long = IdealFlow(topo.senders[1], topo.receivers[1], None, oracle=oracle)
        sim.run(until=20 * MS)
        assert short.completed
        assert long.rate_bps == pytest.approx(10 * GBPS * oracle.capacity_fraction,
                                              rel=0.01)
        long.stop()

    def test_near_zero_queue_with_one_flow(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=1)
        oracle = OracleRateController()
        flow = IdealFlow(topo.senders[0], topo.receivers[0], None, oracle=oracle)
        sim.run(until=10 * MS)
        flow.stop()
        # One perfectly paced flow leaves at most a couple of packets queued.
        assert topo.net.max_data_queue_bytes() <= 3 * 1538


@settings(deadline=None, max_examples=20)
@given(n=st.integers(min_value=1, max_value=8))
def test_water_filling_is_feasible_and_efficient(n):
    """Property: allocations never exceed any port capacity, and every flow
    is bottlenecked somewhere (max-min efficiency)."""
    sim = Simulator(seed=0)
    topo = small_dumbbell(sim, n_pairs=n)
    oracle = OracleRateController(capacity_fraction=1.0)
    flows = [IdealFlow(s, r, None, oracle=oracle)
             for s, r in zip(topo.senders, topo.receivers)]
    for f in flows:
        f.stop()
    paths = {f: compute_path_ports(f) for f in flows}
    rates = max_min_rates(paths, capacity_fraction=1.0)
    loads = {}
    for f, path in paths.items():
        for port in path:
            loads[port] = loads.get(port, 0.0) + rates[f]
    for port, load in loads.items():
        assert load <= port.rate_bps * 1.0001
    # The shared bottleneck is saturated.
    bottleneck_load = max(loads.values())
    assert bottleneck_load == pytest.approx(10 * GBPS, rel=0.001)

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import Simulator, runtime
from repro.sim.units import GBPS, US
from repro.topology import LinkSpec, dumbbell, single_switch


@pytest.fixture(autouse=True, scope="session")
def _isolated_runtime(tmp_path_factory):
    """Keep the suite hermetic: private result cache, serial, no ticker."""
    runtime.configure(cache_dir=tmp_path_factory.mktemp("repro-cache"),
                      parallel=0, progress=False)
    yield
    runtime.reset()


@pytest.fixture
def sim():
    return Simulator(seed=42)


@pytest.fixture
def spec_compile():
    """Compile a scenario spec file into its cell matrix.

    The doorway for spec-driven tests (``@pytest.mark.scenario``): dropping
    a new spec into ``scenarios/`` gets it validated and compiled by
    ``tests/test_scenarios_specs.py`` with no new test code.

    ``backend`` overrides the spec's engine choice ("packet"/"fluid")
    before validation, so every bundled spec can be compiled under both
    backends; validation still rejects combinations the fluid model cannot
    express (``scenarios.fluid_blockers``).
    """
    from repro import scenarios

    def _compile(path, seeds=None, backend=None):
        scenario = scenarios.load(path)
        if backend is not None and backend != scenario.backend:
            data = scenario.to_dict()
            data["backend"] = backend
            scenario = scenarios.Scenario.from_dict(
                data, source=str(path), base_dir=scenario.base_dir)
        return scenarios.compile_scenario(scenario, seeds=seeds)

    return _compile


def small_dumbbell(sim, n_pairs=2, rate=10 * GBPS, **spec_kwargs):
    """A 10G dumbbell with 4 us links (RTT ~26 us)."""
    spec = LinkSpec(rate_bps=rate, prop_delay_ps=4 * US, **spec_kwargs)
    return dumbbell(sim, n_pairs=n_pairs, bottleneck=spec)


def small_star(sim, n_hosts=4, rate=10 * GBPS, **spec_kwargs):
    spec = LinkSpec(rate_bps=rate, prop_delay_ps=2 * US, **spec_kwargs)
    return single_switch(sim, n_hosts, link=spec)

"""Tests for the closed-loop RPC application layer."""

import pytest

from repro.apps import PartitionAggregate, RpcClient
from repro.experiments.runner import get_harness
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US

from tests.conftest import small_star

EP_KW = dict(base_rtt_ps=20 * US)


def harness(name="expresspass"):
    return get_harness(name, 10 * GBPS, **EP_KW)


class TestRpcClient:
    def test_completes_requested_rounds(self):
        sim = Simulator(seed=1)
        topo = small_star(sim, 2)
        client = RpcClient(sim, harness(), topo.hosts[0], topo.hosts[1],
                           rounds=5)
        sim.run(until=SEC)
        assert client.completed_rounds == 5
        assert len(client.latencies_ps) == 5

    def test_latency_includes_both_directions(self):
        sim = Simulator(seed=1)
        topo = small_star(sim, 2)
        client = RpcClient(sim, harness(), topo.hosts[0], topo.hosts[1],
                           rounds=1)
        sim.run(until=SEC)
        # Two transfers, each needing a credit-request RTT: >= 2 base RTTs.
        assert client.latencies_ps[0] > 20 * US

    def test_closed_loop_is_sequential(self):
        sim = Simulator(seed=1)
        topo = small_star(sim, 2)
        client = RpcClient(sim, harness(), topo.hosts[0], topo.hosts[1],
                           rounds=3, think_time_ps=1 * MS)
        sim.run(until=SEC)
        # Rounds separated by at least the think time.
        assert client.completed_rounds == 3

    def test_stop_halts_rounds(self):
        sim = Simulator(seed=1)
        topo = small_star(sim, 2)
        client = RpcClient(sim, harness(), topo.hosts[0], topo.hosts[1])
        sim.run(until=5 * MS)
        done = client.completed_rounds
        assert done > 0
        client.stop()
        sim.run(until=10 * MS)
        assert client.completed_rounds <= done + 1

    def test_validation(self):
        sim = Simulator(seed=1)
        topo = small_star(sim, 2)
        with pytest.raises(ValueError):
            RpcClient(sim, harness(), topo.hosts[0], topo.hosts[1],
                      request_bytes=0)

    def test_works_over_dctcp(self):
        sim = Simulator(seed=1)
        h = get_harness("dctcp", 10 * GBPS, **EP_KW)
        from repro.topology import single_switch
        topo = single_switch(sim, 2, link=h.adapt_link(
            __import__("repro.topology", fromlist=["LinkSpec"]).LinkSpec()))
        client = RpcClient(sim, h, topo.hosts[0], topo.hosts[1], rounds=3)
        sim.run(until=SEC)
        assert client.completed_rounds == 3


class TestPartitionAggregate:
    def test_round_barrier(self):
        sim = Simulator(seed=1)
        topo = small_star(sim, 9)
        app = PartitionAggregate(sim, harness(), topo.hosts[0],
                                 topo.hosts[1:], rounds=4)
        sim.run(until=SEC)
        assert app.completed_rounds == 4
        assert len(app.round_latencies_ps) == 4

    def test_no_data_loss_under_wave_incast(self):
        sim = Simulator(seed=1)
        topo = small_star(sim, 13)
        app = PartitionAggregate(sim, harness(), topo.hosts[0],
                                 topo.hosts[1:], rounds=10,
                                 response_bytes=30_000)
        sim.run(until=2 * SEC)
        assert app.completed_rounds == 10
        assert topo.net.total_data_drops() == 0

    def test_requires_workers(self):
        sim = Simulator(seed=1)
        topo = small_star(sim, 2)
        with pytest.raises(ValueError):
            PartitionAggregate(sim, harness(), topo.hosts[0], [])

    def test_wave_latency_grows_with_fanin(self):
        latencies = []
        for n in (4, 12):
            sim = Simulator(seed=1)
            topo = small_star(sim, n + 1)
            app = PartitionAggregate(sim, harness(), topo.hosts[0],
                                     topo.hosts[1:], rounds=5,
                                     response_bytes=50_000)
            sim.run(until=2 * SEC)
            assert app.completed_rounds == 5
            latencies.append(sum(app.round_latencies_ps) / 5)
        assert latencies[1] > latencies[0]

"""End-to-end matrix runs and the spec-vs-legacy bit-identity pins."""

from __future__ import annotations

import pytest

from repro import scenarios
from repro.scenarios import Scenario, SpecError, run_matrix

# Short windows keep these under a few seconds each while still running the
# real simulator end to end.
_WARM = 2_000_000_000  # 2 ms
_MEAS = 2_000_000_000


def tiny_spec(**over) -> dict:
    spec = {
        "schema": "repro.scenarios/v1",
        "name": "tiny",
        "topology": {"kind": "dumbbell"},
        "workload": {"kind": "persistent", "n_flows": 2},
        "transport": {"protocol": "expresspass"},
        "timing": {"warmup_ps": _WARM, "measure_ps": _MEAS},
        "sweep": {"transport.protocol": ["expresspass", "dctcp"]},
        "report": {"compare": "transport.protocol"},
    }
    spec.update(over)
    return spec


class TestRunMatrix:
    def test_end_to_end_report(self, tmp_path):
        out = run_matrix(Scenario.from_dict(tiny_spec()))
        assert out.ok and not out.failed
        assert len(out.results) == 2
        rep = out.report
        assert {g["protocol"] for g in rep.groups} == \
            {"expresspass", "dctcp"}
        assert sorted(g["rank"] for g in rep.groups) == [1, 2]
        # Every cell row carries the metrics the persistent runner emits.
        for row in rep.rows:
            assert {"utilization", "fairness", "max_queue_kb"} <= set(row)
        # The report serializes and validates against its own schema.
        dest = tmp_path / "report.jsonl"
        scenarios.write_report_jsonl(dest, rep)
        stats = scenarios.validate_report_jsonl(dest)
        assert stats["records"]["cell"] == 2

    def test_rerun_hits_cache(self):
        # The odd prop delay keeps these cells distinct from every other
        # test's — the cache key hashes fn+kwargs, not the scenario name.
        spec = tiny_spec(name="tiny-cache",
                         topology={"kind": "dumbbell",
                                   "prop_delay_ps": 5_000_000})
        first = run_matrix(Scenario.from_dict(spec))
        assert not any(r.cached for r in first.results)
        second = run_matrix(Scenario.from_dict(spec))
        assert all(r.cached for r in second.results)
        assert [r.value for r in second.results] == \
            [r.value for r in first.results]

    def test_filter_narrows_and_empty_filter_raises(self):
        s = Scenario.from_dict(tiny_spec(name="tiny-filter"))
        out = run_matrix(s, cell_filter="protocol=dctcp")
        assert len(out.results) == 1
        assert out.results[0].value["protocol"] == "dctcp"
        with pytest.raises(SpecError) as exc:
            run_matrix(s, cell_filter="protocol=quic")
        assert exc.value.errors[0][0] == "<filter>"

    def test_seeds_override_is_innermost(self):
        s = Scenario.from_dict(tiny_spec(name="tiny-seeds"))
        out = run_matrix(s, seeds=[3, 4], cell_filter="protocol=expresspass")
        assert [r.value["seed"] for r in out.results] == [3, 4]


class TestBitIdentity:
    """The migrated fig15/fig19 runners must reproduce the hand-written
    path exactly — same floats, same row order."""

    def test_fig15_spec_matches_legacy(self):
        from repro.experiments import fig15_flow_scalability as f15

        kw = dict(protocols=("expresspass", "dctcp"), flow_counts=(2, 3),
                  warmup_ps=_WARM, measure_ps=_MEAS)
        spec_result = f15.run(**kw)
        legacy = f15.run_legacy(**kw)
        assert spec_result.columns == legacy.columns
        assert spec_result.rows == legacy.rows

    def test_fig15_explicit_ep_params_falls_back_to_legacy(self):
        from repro.core.params import ExpressPassParams
        from repro.experiments import fig15_flow_scalability as f15

        custom = ExpressPassParams(w_init=0.125)
        res = f15.run(protocols=("expresspass",), flow_counts=(2,),
                      warmup_ps=_WARM, measure_ps=_MEAS, ep_params=custom)
        legacy = f15.run_legacy(protocols=("expresspass",), flow_counts=(2,),
                                warmup_ps=_WARM, measure_ps=_MEAS,
                                ep_params=custom)
        assert res.rows == legacy.rows

    def test_fig19_spec_matches_legacy(self):
        from repro.experiments import fig19_realistic_fct as f19

        kw = dict(protocols=("expresspass", "dctcp"), n_flows=30,
                  drain_ps=50_000_000_000)
        spec_result = f19.run(**kw)
        legacy = f19.run_legacy(**kw)
        assert spec_result.columns == legacy.columns
        assert spec_result.rows == legacy.rows


class TestChaosCells:
    def test_fabric_chaos_cell_reports_recovery(self):
        spec = {
            "schema": "repro.scenarios/v1",
            "name": "chaos-cell",
            "topology": {"kind": "fat_tree", "params": {"k": 4}},
            "workload": {"kind": "persistent", "n_flows": 4},
            "transport": {"protocol": "expresspass"},
            "timing": {"warmup_ps": 2_000_000_000,
                       "measure_ps": 12_000_000_000,
                       "bin_ps": 500_000_000},
            "chaos": {"scenario": "link-down",
                      "fault_ps": 4_000_000_000,
                      "duration_ps": 3_000_000_000},
        }
        # "link-down" is not a named scenario — assert the vocabulary error
        # first, then run the real one.
        with pytest.raises(SpecError):
            Scenario.from_dict(spec)
        spec["chaos"]["scenario"] = "link-flap"
        out = run_matrix(Scenario.from_dict(spec))
        assert out.ok
        row = out.report.rows[0]
        assert row["faults"] >= 1
        assert row["pre_gbps"] > 0
        # recovered_frac is post/pre goodput, so it can overshoot 1.0 a bit.
        assert row["recovered_frac"] > 0.0

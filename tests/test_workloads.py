"""Tests for flow-size distributions (Table 2) and traffic generators."""

import random
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.fct import bucket_of
from repro.sim.units import KB, MB, SEC
from repro.workloads import (
    CACHE_FOLLOWER,
    DATA_MINING,
    WEB_SEARCH,
    WEB_SERVER,
    WORKLOADS,
    FlowSpec,
    incast_specs,
    permutation_specs,
    poisson_specs,
    shuffle_specs,
)
from repro.workloads.generators import poisson_arrival_rate_fps


class TestDistributionMeans:
    """The reconstruction must hit the paper's published averages."""

    @pytest.mark.parametrize("dist,target", [
        (DATA_MINING, 7.41 * MB),
        (WEB_SEARCH, 1.6 * MB),
        (CACHE_FOLLOWER, 701 * KB),
        (WEB_SERVER, 64 * KB),
    ])
    def test_analytic_mean_matches_target(self, dist, target):
        assert dist.mean_bytes == pytest.approx(target, rel=0.02)

    @pytest.mark.parametrize("name", list(WORKLOADS))
    def test_sampled_mean_matches_analytic(self, name):
        dist = WORKLOADS[name]
        rng = random.Random(123)
        mean = statistics.mean(dist.sample(rng) for _ in range(150_000))
        assert mean == pytest.approx(dist.mean_bytes, rel=0.12)


class TestBucketMix:
    def test_web_server_has_no_xl(self):
        rng = random.Random(5)
        assert all(WEB_SERVER.sample(rng) < 30 * MB for _ in range(20_000))
        assert max(WEB_SERVER.sample(rng) for _ in range(50_000)) < 1 * MB + 1

    def test_data_mining_s_fraction(self):
        rng = random.Random(5)
        samples = [DATA_MINING.sample(rng) for _ in range(50_000)]
        s_fraction = sum(1 for x in samples if bucket_of(x) == "S") / len(samples)
        assert s_fraction == pytest.approx(0.78, abs=0.02)

    def test_web_search_bucket_fractions_normalized(self):
        probs = WEB_SEARCH.bucket_probabilities()
        assert sum(probs) == pytest.approx(1.0)

    def test_data_mining_respects_cap(self):
        rng = random.Random(9)
        assert max(DATA_MINING.sample(rng) for _ in range(100_000)) <= 1000 * MB


class TestPoissonSpecs:
    def test_count_and_endpoints(self):
        rng = random.Random(1)
        specs = poisson_specs(rng, WEB_SERVER, 500, n_hosts=10,
                              arrival_rate_fps=1e5)
        assert len(specs) == 500
        assert all(0 <= s.src < 10 and 0 <= s.dst < 10 for s in specs)
        assert all(s.src != s.dst for s in specs)

    def test_arrival_times_increase(self):
        rng = random.Random(1)
        specs = poisson_specs(rng, WEB_SERVER, 200, 10, 1e5)
        starts = [s.start_ps for s in specs]
        assert starts == sorted(starts)

    def test_mean_interarrival_matches_rate(self):
        rng = random.Random(1)
        rate = 2e5
        specs = poisson_specs(rng, WEB_SERVER, 5000, 10, rate)
        gaps = [(b.start_ps - a.start_ps) / SEC
                for a, b in zip(specs, specs[1:])]
        assert statistics.mean(gaps) == pytest.approx(1 / rate, rel=0.1)

    def test_requires_two_hosts(self):
        with pytest.raises(ValueError):
            poisson_specs(random.Random(1), WEB_SERVER, 10, 1, 1e5)

    def test_load_to_rate_conversion(self):
        # load * capacity / (mean_size * 8 * cross_fraction)
        rate = poisson_arrival_rate_fps(0.6, 100e9, 1e6, cross_fraction=0.5)
        assert rate == pytest.approx(0.6 * 100e9 / (1e6 * 8 * 0.5))

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrival_rate_fps(0, 1e9, 1e6)


class TestIncastSpecs:
    def test_all_target_receiver(self):
        specs = incast_specs(8, receiver=0, bytes_per_sender=1000, n_hosts=9)
        assert len(specs) == 8
        assert all(s.dst == 0 for s in specs)
        assert all(s.src != 0 for s in specs)

    def test_workers_wrap_when_fan_in_exceeds_hosts(self):
        specs = incast_specs(20, receiver=0, bytes_per_sender=1000, n_hosts=5)
        assert len(specs) == 20
        assert all(1 <= s.src < 5 for s in specs)

    def test_jitter_spreads_starts(self):
        rng = random.Random(1)
        specs = incast_specs(16, 0, 1000, jitter_ps=10_000, rng=rng, n_hosts=17)
        assert len({s.start_ps for s in specs}) > 1


class TestShuffleSpecs:
    def test_flow_count(self):
        specs = shuffle_specs(n_hosts=4, tasks_per_host=2, bytes_per_flow=1000)
        # hosts*(hosts-1)*tasks^2
        assert len(specs) == 4 * 3 * 4

    def test_all_pairs_covered(self):
        specs = shuffle_specs(3, 1, 1000)
        pairs = {(s.src, s.dst) for s in specs}
        assert pairs == {(a, b) for a in range(3) for b in range(3) if a != b}


class TestPermutationSpecs:
    def test_ring(self):
        specs = permutation_specs(5, 1000)
        assert [(s.src, s.dst) for s in specs] == [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]


@settings(deadline=None, max_examples=25)
@given(name=st.sampled_from(list(WORKLOADS)), seed=st.integers(0, 2**31))
def test_samples_always_in_support(name, seed):
    dist = WORKLOADS[name]
    rng = random.Random(seed)
    for _ in range(200):
        size = dist.sample(rng)
        assert 64 <= size <= 1000 * MB

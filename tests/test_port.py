"""Tests for the egress port: transmission, credit metering, scheduling."""

import pytest

from repro.net.node import Node
from repro.net.packet import PacketKind, credit_packet, data_packet
from repro.net.port import Port
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, US


class SinkNode(Node):
    """Records everything it receives, with timestamps."""

    def __init__(self, sim, node_id):
        super().__init__(sim, node_id, f"sink{node_id}")
        self.received = []

    def receive(self, pkt, from_port):
        self.received.append((self.sim.now, pkt))


@pytest.fixture
def wire(sim):
    a = SinkNode(sim, 0)
    b = SinkNode(sim, 1)
    port = Port(sim, a, b, rate_bps=10 * GBPS, prop_delay_ps=1 * US,
                data_capacity_bytes=100_000, credit_capacity_pkts=8)
    return sim, port, b


def make_data(payload=1500, seq=0):
    return data_packet(0, 1, None, payload, seq=seq)


class TestTransmission:
    def test_delivery_after_tx_plus_prop(self, wire):
        sim, port, sink = wire
        port.send(make_data())
        sim.run()
        t, pkt = sink.received[0]
        assert t == 1_230_400 + 1 * US  # 1538B at 10G + 1us

    def test_back_to_back_serialization(self, wire):
        sim, port, sink = wire
        port.send(make_data(seq=0))
        port.send(make_data(seq=1))
        sim.run()
        t0, t1 = sink.received[0][0], sink.received[1][0]
        assert t1 - t0 == 1_230_400  # one MTU serialization apart

    def test_stats_count_data(self, wire):
        sim, port, sink = wire
        port.send(make_data())
        sim.run()
        assert port.stats.data_pkts_sent == 1
        assert port.stats.data_bytes_sent == 1538
        assert port.stats.credit_pkts_sent == 0


class TestCreditMetering:
    def test_credits_rate_limited_to_one_per_slot(self, wire):
        sim, port, sink = wire
        for i in range(20):
            port.send(credit_packet(0, 1, None, i))
        sim.run()
        times = [t for t, p in sink.received if p.is_credit]
        # One transmitted immediately + 8 queued; the rest were dropped.
        assert len(times) == 9
        gaps = [b - a for a, b in zip(times, times[1:])]
        # After the 2-credit burst allowance, gaps ~ one 1626B slot at 10G.
        slot = 1626 * 8 * 100  # ps at 10 Gbit/s
        assert all(g >= 0.9 * slot for g in gaps[2:])

    def test_credit_overflow_drops(self, wire):
        sim, port, _ = wire
        for i in range(20):
            port.send(credit_packet(0, 1, None, i))
        stats = port.credit_queue.stats
        assert stats.dropped == 20 - stats.enqueued
        assert stats.dropped > 0

    def test_data_fills_gaps_between_credits(self, wire):
        sim, port, sink = wire
        for i in range(4):
            port.send(credit_packet(0, 1, None, i))
        for i in range(10):
            port.send(make_data(seq=i))
        sim.run()
        kinds = [p.kind for _, p in sink.received]
        assert PacketKind.DATA in kinds and PacketKind.CREDIT in kinds
        # The line never idles while work exists: utilization ~ 100% of the
        # busy period.
        assert port.stats.busy_ps > 0

    def test_long_run_credit_rate_near_five_percent(self, wire):
        sim, port, sink = wire

        def feed(i=0):
            port.send(credit_packet(0, 1, None, i))
            sim.schedule(100_000, feed, i + 1)  # 10 credits per slot offered

        feed()
        sim.run(until=10_000_000_000)  # 10 ms
        credit_bytes = port.stats.credit_bytes_sent
        fraction = credit_bytes * 8 / (10 * GBPS * 0.01)
        assert 0.045 < fraction < 0.06


class TestDropCallbacks:
    def test_data_drop_notifies_flow(self, wire):
        sim, port, _ = wire

        class FakeFlow:
            drops = 0

            def on_data_dropped(self, pkt, port):
                self.drops += 1

        flow = FakeFlow()
        big = data_packet(0, 1, flow, 1500, seq=0)
        # Fill the queue beyond capacity.
        for i in range(70):
            port.send(data_packet(0, 1, None, 1500, seq=i))
        port.send(big)
        assert flow.drops == 1

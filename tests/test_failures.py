"""Tests for link-failure handling (§3.1: exclude failed links symmetrically)."""

import pytest

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator
from repro.sim.units import MS, SEC, US
from repro.topology import fat_tree

PARAMS = ExpressPassParams(rtt_hint_ps=60 * US)


def _make_probe_flow(topo, src, dst):
    flow = ExpressPassFlow(src, dst, None, params=PARAMS)
    flow.stop()
    return flow


def _trace_switch_path(topo, flow):
    """Trace the switch path of one probe packet for an existing flow (the
    flow's 4-tuple pins the ECMP choice, so repeated traces are comparable)."""
    sim = topo.net.sim
    pkt = Packet(PacketKind.DATA, flow.src.id, flow.dst.id, flow=flow,
                 payload_bytes=100, seq=0)
    pkt.hops = []
    flow.src.send(pkt)
    sim.run()
    return pkt.hops[:-1]


class TestFailover:
    def test_reroutes_around_failed_core_link(self):
        sim = Simulator(seed=2)
        ft = fat_tree(sim, k=4)
        probe = _make_probe_flow(ft, ft.hosts[0], ft.hosts[-1])
        before = _trace_switch_path(ft, probe)
        # Fail the agg->core link the path uses (hops: tor, agg, core, ...).
        agg = ft.net.nodes[before[1]]
        core = ft.net.nodes[before[2]]
        ft.net.fail_link(agg, core)
        after = _trace_switch_path(ft, probe)
        assert after != before
        assert (agg.id, core.id) not in zip(after, after[1:])
        assert after  # still connected

    def test_unidirectional_failure_excludes_both_directions(self):
        sim = Simulator(seed=2)
        ft = fat_tree(sim, k=4)
        probe = _make_probe_flow(ft, ft.hosts[0], ft.hosts[-1])
        before = _trace_switch_path(ft, probe)
        agg = ft.net.nodes[before[1]]
        core = ft.net.nodes[before[2]]
        ft.net.fail_link(agg, core, direction="a->b")  # only one direction!
        # Forward path avoids the half-dead link entirely (§3.1).
        after = _trace_switch_path(ft, probe)
        assert (agg.id, core.id) not in zip(after, after[1:])

    def test_flow_completes_across_mid_run_failure(self):
        sim = Simulator(seed=2)
        ft = fat_tree(sim, k=4)
        src, dst = ft.hosts[0], ft.hosts[-1]
        flow = ExpressPassFlow(src, dst, 5_000_000, params=PARAMS)
        path = None

        def fail():
            hops = _path_of(ft, flow)
            agg = ft.net.nodes[hops[1]]
            core = ft.net.nodes[hops[2]]
            ft.net.fail_link(agg, core)

        def _path_of(topo, f):
            from repro.transport.ideal import compute_path_ports
            return [p.peer.id for p in compute_path_ports(f)][:-1]

        sim.schedule(2 * MS, fail)
        sim.run(until=2 * SEC)
        assert flow.completed
        assert flow.bytes_delivered == 5_000_000

    def test_restore_link_reinstates_paths(self):
        sim = Simulator(seed=2)
        ft = fat_tree(sim, k=4)
        probe = _make_probe_flow(ft, ft.hosts[0], ft.hosts[-1])
        before = _trace_switch_path(ft, probe)
        agg = ft.net.nodes[before[1]]
        core = ft.net.nodes[before[2]]
        ft.net.fail_link(agg, core)
        ft.net.restore_link(agg, core)
        after = _trace_switch_path(ft, probe)
        assert after == before

    def test_down_port_drops_and_notifies(self):
        sim = Simulator(seed=2)
        ft = fat_tree(sim, k=4)
        src, dst = ft.hosts[0], ft.hosts[1]
        flow = ExpressPassFlow(src, dst, None, params=PARAMS)
        flow.stop()
        src.nic.up = False
        pkt = Packet(PacketKind.DATA, src.id, dst.id, flow=flow,
                     payload_bytes=100, seq=0)
        assert not src.send(pkt)
        assert flow.data_drops == 1

    def test_bad_direction_rejected(self):
        sim = Simulator(seed=2)
        ft = fat_tree(sim, k=4)
        with pytest.raises(ValueError):
            ft.net.fail_link(ft.tors[0], ft.aggs[0], direction="sideways")

    def test_unlinked_nodes_rejected(self):
        sim = Simulator(seed=2)
        ft = fat_tree(sim, k=4)
        with pytest.raises(ValueError):
            ft.net.fail_link(ft.hosts[0], ft.hosts[1])

"""Tests for the network-calculus buffer bounds (Table 1 / Fig 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.calculus import TopologyParams, buffer_bounds, tor_switch_buffer_breakdown
from repro.sim.units import GBPS, US


def params(host=10, core=40, credits=8, spread_us=5.1):
    return TopologyParams(
        host_rate_bps=host * GBPS,
        core_rate_bps=core * GBPS,
        credit_queue_pkts=credits,
        host_delay_spread_ps=int(spread_us * US),
    )


class TestShape:
    """The paper's qualitative claims about Table 1."""

    @pytest.mark.parametrize("mode", ["literal", "tight"])
    def test_tor_down_is_largest(self, mode):
        b = buffer_bounds(params(), mode)
        assert b.tor_down_bytes > b.tor_up_bytes
        assert b.tor_down_bytes > b.core_bytes / 4  # ToR down dominates per-port

    @pytest.mark.parametrize("mode", ["literal", "tight"])
    def test_uplinks_need_less_than_downlinks(self, mode):
        b = buffer_bounds(params(), mode)
        assert b.tor_up_bytes < b.tor_down_bytes

    def test_sublinear_growth_with_link_speed(self):
        slow = buffer_bounds(params(10, 40))
        fast = buffer_bounds(params(40, 100))
        # 4x the edge speed needs well under 4x the buffer.
        assert fast.tor_down_bytes < 4 * slow.tor_down_bytes

    def test_literal_matches_paper_tor_down_within_30pct(self):
        b = buffer_bounds(params(10, 40), "literal")
        assert b.tor_down_bytes == pytest.approx(577_300, rel=0.30)

    def test_tight_matches_paper_tor_up_within_20pct(self):
        b = buffer_bounds(params(10, 40), "tight")
        assert b.tor_up_bytes == pytest.approx(19_000, rel=0.20)
        b2 = buffer_bounds(params(40, 100), "tight")
        assert b2.tor_up_bytes == pytest.approx(37_200, rel=0.20)


class TestMonotonicity:
    def test_smaller_credit_queue_shrinks_bound(self):
        big = buffer_bounds(params(credits=8))
        small = buffer_bounds(params(credits=4))
        assert small.tor_down_bytes < big.tor_down_bytes
        assert small.core_bytes < big.core_bytes

    def test_smaller_host_spread_shrinks_bound(self):
        soft = buffer_bounds(params(spread_us=5.1))
        hw = buffer_bounds(params(spread_us=1.0))
        assert hw.tor_down_bytes < soft.tor_down_bytes

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            buffer_bounds(params(), "bogus")


class TestFig5Breakdown:
    def test_parts_sum_to_total(self):
        breakdown = tor_switch_buffer_breakdown(params(), k=32)
        parts = (breakdown["static_credit"] + breakdown["host_delay"]
                 + breakdown["credit_queue"] + breakdown["base"])
        assert parts == pytest.approx(breakdown["total"], rel=0.01)

    def test_hw_nic_setting_is_smaller(self):
        soft = tor_switch_buffer_breakdown(params(credits=8, spread_us=5.1))
        hw = tor_switch_buffer_breakdown(params(credits=4, spread_us=1.0))
        assert hw["total"] < soft["total"]

    def test_total_fits_commodity_buffers(self):
        # §3.1: shallow 10GbE switches have 9-16 MB shared buffer.
        breakdown = tor_switch_buffer_breakdown(params(10, 40), k=32)
        assert breakdown["total"] < 16e6


@settings(deadline=None, max_examples=30)
@given(
    host=st.sampled_from([10, 25, 40, 100]),
    core_mult=st.sampled_from([1, 2, 4]),
    credits=st.integers(min_value=1, max_value=16),
    spread=st.floats(min_value=0.1, max_value=10.0),
)
def test_bounds_always_positive_and_ordered(host, core_mult, credits, spread):
    p = params(host, host * core_mult, credits, spread)
    for mode in ("literal", "tight"):
        b = buffer_bounds(p, mode)
        assert b.tor_down_bytes > 0
        assert b.tor_up_bytes > 0
        assert b.core_bytes > 0
        assert b.tor_down_bytes >= b.tor_up_bytes

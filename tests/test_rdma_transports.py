"""Tests for the RDMA-era baselines (DCQCN, TIMELY) and the PFC substrate."""

import pytest

from repro.net.pfc import PfcController, install_pfc
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US
from repro.transport.dcqcn import DcqcnFlow, install_dcqcn_marking
from repro.transport.timely import TimelyFlow

from tests.conftest import small_dumbbell, small_star


class TestPfc:
    def test_validation(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            PfcController(sim, xoff_bytes=100, xon_bytes=100)

    def test_pause_prevents_loss_under_blast(self):
        """Uncontrolled senders + PFC: zero loss, pauses instead."""
        from repro.transport.base import RateFlow

        sim = Simulator(seed=1)
        topo = small_star(sim, 5)
        pfc = install_pfc(sim, topo.net.ports,
                          xoff_bytes=100_000, xon_bytes=60_000)
        sink = topo.hosts[0]
        flows = [RateFlow(h, sink, None, initial_rate_bps=9e9)
                 for h in topo.hosts[1:]]
        sim.run(until=20 * MS)
        for f in flows:
            f.stop()
        # Hosts never drop: they are paused instead (lossless fabric)...
        switch_ports = [p for p in topo.net.ports if p.node is topo.switch]
        assert sum(p.data_queue.stats.dropped for p in switch_ports) == 0
        assert pfc.pauses_sent > 0
        assert pfc.resumes_sent > 0

    def test_pause_blocks_data_not_credits(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        port = topo.bottleneck_fwd
        port.set_pfc_paused(True)
        from repro.net.packet import credit_packet, data_packet
        src, dst = topo.senders[0].id, topo.receivers[0].id
        port.send(data_packet(src, dst, None, 1500, seq=0))
        port.send(credit_packet(dst, src, None, 0))
        sim.run(until=1 * MS)
        assert port.stats.credit_pkts_sent == 1
        assert port.stats.data_pkts_sent == 0
        port.set_pfc_paused(False)
        sim.run(until=2 * MS)
        assert port.stats.data_pkts_sent == 1

    def test_head_of_line_blocking_is_observable(self):
        """PFC's known pathology: an incast victim pauses innocent traffic."""
        from repro.transport.base import RateFlow

        sim = Simulator(seed=1)
        topo = small_star(sim, 6)
        install_pfc(sim, topo.net.ports,
                    xoff_bytes=80_000, xon_bytes=40_000)
        victim_sink = topo.hosts[0]
        innocent_sink = topo.hosts[1]
        blasters = [RateFlow(h, victim_sink, None, initial_rate_bps=9e9)
                    for h in topo.hosts[2:5]]
        innocent = RateFlow(topo.hosts[5], innocent_sink, None,
                            initial_rate_bps=5e9)
        sim.run(until=20 * MS)
        for f in blasters + [innocent]:
            f.stop()
        # The innocent flow shares no congested link, yet the switch-wide
        # pauses throttle it well below its sending rate.
        innocent_rate = innocent.bytes_delivered * 8 / 0.02
        assert innocent_rate < 4e9


class TestDcqcn:
    def _run(self, n, ms=40, pfc=True):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=n)
        install_dcqcn_marking(topo.net.ports, sim=sim)
        if pfc:
            install_pfc(sim, topo.net.ports)
        flows = [DcqcnFlow(s, r, None)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=ms * MS)
        for f in flows:
            f.stop()
        return sim, topo, flows

    def test_rate_backs_off_under_congestion(self):
        sim, topo, flows = self._run(4)
        for flow in flows:
            assert flow.cnps_received > 0
            assert flow.rate_bps < 10 * GBPS

    def test_reasonable_sharing(self):
        sim, topo, flows = self._run(2, ms=60)
        rates = [f.bytes_delivered * 8 / 0.06 for f in flows]
        assert sum(rates) > 6e9  # decent utilization
        assert min(rates) > 0.2 * max(rates)

    def test_cnp_throttled(self):
        sim, topo, flows = self._run(4, ms=20)
        for flow in flows:
            # At most one CNP per cnp_interval of elapsed time.
            assert flow.cnps_received <= 20 * MS / flow.cnp_interval_ps + 2

    def test_alpha_tracks_congestion(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        flow = DcqcnFlow(topo.senders[0], topo.receivers[0], None)
        flow.alpha = 0.5
        flow._on_cnp()
        assert flow.alpha > 0.5
        flow.stop()

    def test_recovery_returns_to_line_rate_when_alone(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        install_dcqcn_marking(topo.net.ports, sim=sim)
        flow = DcqcnFlow(topo.senders[0], topo.receivers[0], None)
        sim.run(until=60 * MS)
        flow.stop()
        # A single sender should be at/near line rate.
        assert flow.rate_bps > 8e9

    def test_sized_transfer_completes(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=2)
        install_dcqcn_marking(topo.net.ports, sim=sim)
        install_pfc(sim, topo.net.ports)
        flows = [DcqcnFlow(s, r, 2_000_000)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=SEC)
        assert all(f.completed for f in flows)


class TestTimely:
    def test_increase_when_rtt_low(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        flow = TimelyFlow(topo.senders[0], topo.receivers[0], None)
        flow._prev_rtt_ps = 30 * US
        before = flow.rate_bps
        flow._update_rate(30 * US)  # below t_low
        assert flow.rate_bps > before
        flow.stop()

    def test_hard_brake_above_t_high(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        flow = TimelyFlow(topo.senders[0], topo.receivers[0], None)
        flow._prev_rtt_ps = 400 * US
        flow.rate_bps = 5e9
        flow._update_rate(1000 * US)
        assert flow.rate_bps < 5e9
        flow.stop()

    def test_gradient_decrease(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        flow = TimelyFlow(topo.senders[0], topo.receivers[0], None,
                          t_low_ps=10 * US)
        flow.rate_bps = 5e9
        flow._prev_rtt_ps = 60 * US
        for rtt in (80 * US, 100 * US, 120 * US):  # rising RTT
            flow._update_rate(rtt)
        assert flow.rate_bps < 5e9
        flow.stop()

    def test_two_flows_share_without_loss_on_pfc(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=2)
        install_pfc(sim, topo.net.ports)
        flows = [TimelyFlow(s, r, None)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=60 * MS)
        for f in flows:
            f.stop()
        rates = [f.bytes_delivered * 8 / 0.06 for f in flows]
        assert sum(rates) > 5e9
        assert min(rates) > 0.15 * max(rates)

    def test_sized_transfer_completes(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        flow = TimelyFlow(topo.senders[0], topo.receivers[0], 2_000_000)
        sim.run(until=SEC)
        assert flow.completed

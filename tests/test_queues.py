"""Tests for queueing primitives: token bucket, data/credit queues, phantom."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import credit_packet, data_packet
from repro.net.queues import CreditQueue, DataQueue, PhantomQueue, TokenBucket
from repro.sim.units import GBPS, SEC, US


def data(n=1500, ecn=False, seq=0):
    return data_packet(1, 2, None, n, seq=seq, ecn_capable=ecn)


def credit(seq=0, wire=84):
    return credit_packet(2, 1, None, seq, wire)


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(GBPS, burst_bytes=100)
        assert bucket.try_consume(100, now_ps=0)
        assert not bucket.try_consume(1, now_ps=0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(8 * GBPS, burst_bytes=1000)  # 1 byte per ns
        bucket.try_consume(1000, 0)
        assert not bucket.try_consume(500, 0)
        assert bucket.try_consume(500, 500_000)  # 500 ns later

    def test_burst_caps_accumulation(self):
        bucket = TokenBucket(8 * GBPS, burst_bytes=100)
        bucket.try_consume(100, 0)
        # After a long idle, only `burst` is available.
        assert bucket.try_consume(100, SEC)
        assert not bucket.try_consume(1, SEC)

    def test_time_until_exact(self):
        bucket = TokenBucket(8 * GBPS, burst_bytes=100, start_full=False)
        wait = bucket.time_until(100, 0)
        assert wait == 100_000  # 100 bytes at 1 byte/ns
        assert bucket.try_consume(100, wait)

    def test_time_until_zero_when_available(self):
        bucket = TokenBucket(GBPS, burst_bytes=50)
        assert bucket.time_until(50, 0) == 0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 10)

    def test_empty_bucket_created_mid_sim_accrues_nothing_retroactively(self):
        # Regression: an empty bucket born at t=1ms used to backfill tokens
        # for the whole of [0, 1ms) on its first refill, because its clock
        # implicitly started at zero.
        born = 1_000_000_000  # 1 ms, plenty to fill a 100-byte burst
        bucket = TokenBucket(8 * GBPS, burst_bytes=100, start_full=False,
                             now_ps=born)
        assert not bucket.try_consume(1, born)
        # From birth it fills at the configured rate, not instantaneously.
        assert not bucket.try_consume(100, born + 99_000)
        assert bucket.try_consume(100, born + 100_000)

    @given(
        rate_bps=st.integers(min_value=1, max_value=400 * GBPS),
        burst_bytes=st.integers(min_value=1, max_value=100_000),
        nbytes=st.integers(min_value=1, max_value=100_000),
        spent=st.integers(min_value=0, max_value=100_000),
        now_ps=st.integers(min_value=0, max_value=SEC),
    )
    def test_time_until_is_exact_and_minimal(self, rate_bps, burst_bytes,
                                             nbytes, spent, now_ps):
        """``try_consume(n, now + time_until(n, now))`` always succeeds, and
        one picosecond earlier always fails — no wake churn, no idle gap."""
        bucket = TokenBucket(rate_bps, burst_bytes)
        bucket.try_consume(min(spent, burst_bytes), 0)
        wait = bucket.time_until(nbytes, now_ps)
        if nbytes > burst_bytes:
            return  # can never accumulate that much; wait is a lower bound
        if wait > 0:
            probe = TokenBucket(rate_bps, burst_bytes)
            probe.try_consume(min(spent, burst_bytes), 0)
            assert not probe.try_consume(nbytes, now_ps + wait - 1)
        assert bucket.try_consume(nbytes, now_ps + wait)


class TestDataQueue:
    def test_fifo_order(self):
        q = DataQueue(10_000)
        first, second = data(seq=1), data(seq=2)
        q.enqueue(first, 0)
        q.enqueue(second, 0)
        assert q.dequeue(0) is first
        assert q.dequeue(0) is second
        assert q.dequeue(0) is None

    def test_drop_tail_on_overflow(self):
        q = DataQueue(3000)
        assert q.enqueue(data(1500), 0)
        assert not q.enqueue(data(1500), 0)  # 1538+1538 > 3000
        assert q.stats.dropped == 1

    def test_byte_accounting(self):
        q = DataQueue(10_000)
        q.enqueue(data(1500), 0)
        assert q.bytes == 1538
        q.dequeue(0)
        assert q.bytes == 0

    def test_ecn_marks_above_threshold(self):
        q = DataQueue(100_000, ecn_threshold_bytes=3000)
        a, b, c = data(1500, ecn=True), data(1500, ecn=True), data(1500, ecn=True)
        q.enqueue(a, 0)
        q.enqueue(b, 0)  # 3076 > 3000 -> marked
        q.enqueue(c, 0)
        assert not a.ecn_marked
        assert b.ecn_marked and c.ecn_marked

    def test_ecn_ignores_non_capable(self):
        q = DataQueue(100_000, ecn_threshold_bytes=0)
        pkt = data(1500, ecn=False)
        q.enqueue(pkt, 0)
        assert not pkt.ecn_marked

    def test_max_bytes_stat(self):
        q = DataQueue(10_000)
        q.enqueue(data(1500), 0)
        q.enqueue(data(1500), 0)
        q.dequeue(0)
        assert q.stats.max_bytes == 2 * 1538

    def test_time_weighted_average(self):
        q = DataQueue(10_000)
        q.enqueue(data(1500), 0)      # 1538 B for [0, 100)
        q.dequeue(100)                # 0 B for [100, 200)
        assert q.stats.average_bytes(200) == pytest.approx(1538 / 2)

    def test_average_uses_birth_window_not_t0(self):
        # Regression: a queue created mid-run used to average over [0, now],
        # diluting its occupancy by the interval before it existed.
        q = DataQueue(10_000, birth_ps=1_000)
        q.enqueue(data(1500), 1_000)  # 1538 B for its whole life [1000, 1200)
        assert q.stats.average_bytes(1_200) == pytest.approx(1538)
        assert q.stats.average_bytes(1_000) == 0.0  # zero-width window


class TestCreditQueue:
    def test_capacity_in_packets(self):
        q = CreditQueue(2)
        assert q.enqueue(credit(0), 0)
        assert q.enqueue(credit(1), 0)
        assert not q.enqueue(credit(2), 0)
        assert q.stats.dropped == 1

    def test_head_peek(self):
        q = CreditQueue(4)
        first = credit(0)
        q.enqueue(first, 0)
        q.enqueue(credit(1), 0)
        assert q.head() is first
        assert q.dequeue(0) is first

    def test_minimum_capacity(self):
        with pytest.raises(ValueError):
            CreditQueue(0)

    def test_byte_accounting_with_random_sizes(self):
        q = CreditQueue(4)
        q.enqueue(credit(0, 84), 0)
        q.enqueue(credit(1, 92), 0)
        assert q.bytes == 176
        q.dequeue(0)
        assert q.bytes == 92


class TestPhantomQueue:
    def test_marks_when_virtual_backlog_exceeds_threshold(self):
        pq = PhantomQueue(10 * GBPS, gamma=0.95, mark_threshold_bytes=3000)
        pkts = [data(1500, ecn=True) for _ in range(3)]
        for pkt in pkts:
            pq.on_arrival(pkt, 0)  # no drain at t=0
        assert not pkts[0].ecn_marked
        assert pkts[1].ecn_marked and pkts[2].ecn_marked

    def test_drains_at_gamma_rate(self):
        pq = PhantomQueue(10 * GBPS, gamma=0.95, mark_threshold_bytes=3000)
        pq.on_arrival(data(1500, ecn=True), 0)
        pq.on_arrival(data(1500, ecn=True), 0)
        # After 10 us, 0.95*10G*10us/8 ~ 11.9 KB drained: back to zero.
        late = data(1500, ecn=True)
        pq.on_arrival(late, 10 * US)
        assert not late.ecn_marked

    def test_vbytes_never_negative(self):
        pq = PhantomQueue(10 * GBPS)
        pq.on_arrival(data(100, ecn=True), 0)
        pq.on_arrival(data(100, ecn=True), SEC)
        assert pq.vbytes >= 0

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            PhantomQueue(GBPS, gamma=0.0)
        with pytest.raises(ValueError):
            PhantomQueue(GBPS, gamma=1.5)


@given(st.lists(st.sampled_from([84, 88, 92]), min_size=1, max_size=30))
def test_credit_queue_never_exceeds_capacity(sizes):
    q = CreditQueue(8)
    for i, size in enumerate(sizes):
        q.enqueue(credit(i, size), i)
    assert len(q) <= 8
    assert q.stats.enqueued + q.stats.dropped == len(sizes)


@given(st.lists(st.integers(min_value=1, max_value=1500), min_size=1, max_size=50))
def test_data_queue_bytes_match_contents(payloads):
    q = DataQueue(20_000)
    expected = 0
    for i, p in enumerate(payloads):
        pkt = data(p, seq=i)
        if q.enqueue(pkt, 0):
            expected += pkt.wire_bytes
    assert q.bytes == expected
    drained = 0
    while q.dequeue(0) is not None:
        drained += 1
    assert q.bytes == 0
    assert drained == q.stats.enqueued

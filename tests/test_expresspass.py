"""End-to-end tests for the ExpressPass protocol."""

import pytest

from repro.core import (
    ExpressPassFlow,
    ExpressPassParams,
    ReceiverState,
    SenderState,
    max_credit_rate_cps,
)
from repro.metrics import jain_index
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US

from tests.conftest import small_dumbbell, small_star

PARAMS = ExpressPassParams(rtt_hint_ps=40 * US)


class TestMaxCreditRate:
    def test_10g(self):
        # One credit per 1622B slot.
        assert max_credit_rate_cps(10 * GBPS) == pytest.approx(770_653, rel=1e-3)

    def test_scales_linearly(self):
        assert max_credit_rate_cps(40 * GBPS) == pytest.approx(
            4 * max_credit_rate_cps(10 * GBPS))


class TestLifecycle:
    def test_transfer_completes(self, sim):
        topo = small_dumbbell(sim)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 1_000_000,
                               params=PARAMS)
        sim.run(until=SEC)
        assert flow.completed
        assert flow.bytes_delivered == 1_000_000

    def test_state_machines_settle(self, sim):
        topo = small_dumbbell(sim)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 100_000,
                               params=PARAMS)
        sim.run(until=SEC)
        assert flow.sender_state == SenderState.CSTOP_SENT
        assert flow.receiver_state == ReceiverState.STOPPED

    def test_no_events_leak_after_completion(self, sim):
        topo = small_dumbbell(sim)
        ExpressPassFlow(topo.senders[0], topo.receivers[0], 100_000,
                        params=PARAMS)
        sim.run(until=SEC)
        assert sim.pending() == 0

    def test_single_packet_flow(self, sim):
        topo = small_dumbbell(sim)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 1,
                               params=PARAMS)
        sim.run(until=SEC)
        assert flow.completed
        assert flow.credits_used == 1

    def test_single_packet_flow_wastes_about_a_bdp_of_credits(self):
        # Paper Fig 8b: at alpha=1 a 1-packet flow wastes roughly the credits
        # sent during one RTT + stop timeout (~80 at RTT 100 us, 10 Gbit/s).
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        params = ExpressPassParams(rtt_hint_ps=40 * US,
                                   initial_rate_fraction=1.0, w_init=0.5)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 1,
                               params=params)
        sim.run(until=SEC)
        # RTT ~26us + 20us stop timeout at max credit rate ~ 35 credits.
        assert 10 < flow.credits_wasted < 80
        assert flow.credit_waste_ratio > 0.9

    def test_lower_alpha_wastes_fewer_credits(self):
        wastes = []
        for alpha in (1.0, 1 / 16):
            sim = Simulator(seed=1)
            topo = small_dumbbell(sim)
            params = ExpressPassParams(rtt_hint_ps=40 * US).with_alpha(alpha)
            flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 1,
                                   params=params)
            sim.run(until=SEC)
            wastes.append(flow.credits_wasted)
        assert wastes[1] < wastes[0]

    def test_persistent_flow_runs_until_stopped(self, sim):
        topo = small_dumbbell(sim)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], None,
                               params=PARAMS)
        sim.run(until=10 * MS)
        assert flow.bytes_delivered > 0
        flow.stop()
        delivered = flow.bytes_delivered
        sim.run(until=11 * MS)
        assert flow.bytes_delivered - delivered < 50 * 1500


class TestZeroLoss:
    def test_no_data_loss_under_incast(self):
        sim = Simulator(seed=2)
        topo = small_star(sim, 9)
        sink = topo.hosts[0]
        flows = [ExpressPassFlow(h, sink, 500_000, params=PARAMS)
                 for h in topo.hosts[1:]]
        sim.run(until=SEC)
        assert all(f.completed for f in flows)
        assert topo.net.total_data_drops() == 0

    def test_bounded_queue_under_incast(self):
        sim = Simulator(seed=2)
        topo = small_star(sim, 17)
        sink = topo.hosts[0]
        flows = [ExpressPassFlow(h, sink, None, params=PARAMS)
                 for h in topo.hosts[1:]]
        sim.run(until=20 * MS)
        for f in flows:
            f.stop()
        # Bounded by a handful of MTUs — not proportional to fan-in.
        assert topo.net.max_data_queue_bytes() < 16 * 1538

    def test_recovers_from_forced_data_loss(self):
        # Pathologically tiny data buffers CAN drop ExpressPass data; the
        # go-back-N resync must still complete the flow (§3.1).
        sim = Simulator(seed=3)
        topo = small_dumbbell(sim, n_pairs=4, data_capacity_bytes=2 * 1538)
        flows = [ExpressPassFlow(s, r, 200_000, params=PARAMS)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=SEC)
        assert all(f.completed for f in flows)
        assert all(f.bytes_delivered >= 200_000 for f in flows)


class TestFairnessAndUtilization:
    def test_two_flows_split_evenly(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=2)
        flows = [ExpressPassFlow(s, r, None, params=PARAMS)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=20 * MS)
        base = [f.bytes_delivered for f in flows]
        sim.run(until=40 * MS)
        rates = [f.bytes_delivered - b for f, b in zip(flows, base)]
        for f in flows:
            f.stop()
        assert jain_index(rates) > 0.95

    def test_utilization_near_credit_ceiling(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=8)
        flows = [ExpressPassFlow(s, r, None, params=PARAMS)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=20 * MS)
        base = sum(f.bytes_delivered for f in flows)
        sim.run(until=40 * MS)
        goodput = (sum(f.bytes_delivered for f in flows) - base) * 8 / 0.02
        for f in flows:
            f.stop()
        ceiling = 10 * GBPS * (1538 / 1626) * (1500 / 1538)
        assert goodput > 0.93 * ceiling

    def test_credit_drops_are_the_control_signal(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=4)
        flows = [ExpressPassFlow(s, r, None, params=PARAMS)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=20 * MS)
        for f in flows:
            f.stop()
        assert topo.net.total_credit_drops() > 0
        assert topo.net.total_data_drops() == 0


class TestNaiveMode:
    def test_naive_flow_sends_at_max_rate(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        params = ExpressPassParams(naive=True, rtt_hint_ps=40 * US)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], None,
                               params=params)
        sim.run(until=5 * MS)
        flow.stop()
        assert flow.feedback.cur_rate == flow.max_rate_cps

    def test_naive_single_flow_saturates(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        params = ExpressPassParams(naive=True, rtt_hint_ps=40 * US)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], None,
                               params=params)
        sim.run(until=10 * MS)
        flow.stop()
        goodput = flow.bytes_delivered * 8 / 0.01
        ceiling = 10 * GBPS * (1538 / 1626) * (1500 / 1538)
        assert goodput > 0.9 * ceiling


class TestCreditAccounting:
    def test_echo_accounting_consistent(self, sim):
        topo = small_dumbbell(sim)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 500_000,
                               params=PARAMS)
        sim.run(until=SEC)
        assert flow.credits_used + flow.credits_wasted == flow.credits_received
        assert flow.credits_received <= flow.credits_sent

    def test_rtt_estimate_reasonable(self, sim):
        topo = small_dumbbell(sim)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 500_000,
                               params=PARAMS)
        sim.run(until=SEC)
        # Dumbbell base RTT ~25 us; allow queueing slack.
        assert 15 * US < flow._srtt_ps < 120 * US

"""Property-based stress tests of system-wide invariants.

These sample random (small) scenarios and check the claims the paper makes
unconditionally: credit-scheduled data never overflows sized buffers, every
sized flow completes exactly, determinism per seed, and the credit meter is
never exceeded on any link — on a single switch and on multi-switch
topologies (dumbbell, fat tree) with background load, with the
:mod:`repro.audit` runtime verifier attached as a second, independent
checker.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.audit import NetworkAuditor
from repro.core import ExpressPassFlow, ExpressPassParams
from repro.net.packet import CREDIT_RATE_FRACTION_DEN, CREDIT_RATE_FRACTION_NUM
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US
from repro.topology import LinkSpec, dumbbell, fat_tree, single_switch

pytestmark = pytest.mark.slow  # hypothesis suites dominate tier-1 runtime

PARAMS = ExpressPassParams(rtt_hint_ps=40 * US)

scenario = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=10_000),
    "n_hosts": st.integers(min_value=3, max_value=8),
    "n_flows": st.integers(min_value=1, max_value=10),
    "size_kb": st.integers(min_value=1, max_value=120),
    "alpha_inv": st.sampled_from([1, 2, 16]),
})


def build(params_dict):
    sim = Simulator(seed=params_dict["seed"])
    topo = single_switch(sim, params_dict["n_hosts"],
                         link=LinkSpec(rate_bps=10 * GBPS, prop_delay_ps=2 * US))
    rng = sim.rng("scenario")
    alpha = 1 / params_dict["alpha_inv"]
    params = ExpressPassParams(rtt_hint_ps=40 * US).with_alpha(alpha)
    flows = []
    for _ in range(params_dict["n_flows"]):
        src, dst = rng.sample(topo.hosts, 2)
        start = rng.randint(0, 2 * MS)
        flows.append(ExpressPassFlow(src, dst, params_dict["size_kb"] * 1000,
                                     start_ps=start, params=params))
    return sim, topo, flows


@settings(deadline=None, max_examples=15,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario)
def test_all_flows_complete_exactly_with_zero_loss(params_dict):
    sim, topo, flows = build(params_dict)
    sim.run(until=2 * SEC)
    for flow in flows:
        assert flow.completed, (params_dict, flow)
        assert flow.bytes_delivered == params_dict["size_kb"] * 1000
    assert topo.net.total_data_drops() == 0
    assert sim.pending() == 0  # every timer cleaned up


@settings(deadline=None, max_examples=8,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario)
def test_same_scenario_is_bit_reproducible(params_dict):
    def run():
        sim, topo, flows = build(params_dict)
        sim.run(until=2 * SEC)
        return ([f.fct_ps for f in flows], sim.events_processed,
                topo.net.max_data_queue_bytes())

    assert run() == run()


@settings(deadline=None, max_examples=10,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario)
def test_credit_meter_never_exceeded_on_any_link(params_dict):
    """Long-run credit bytes on any port stay within the metered fraction."""
    sim, topo, flows = build(params_dict)
    sim.run(until=2 * SEC)
    for port in topo.net.ports:
        if port.stats.credit_pkts_sent < 50:
            continue  # too few credits for a rate statement
        elapsed = sim.now
        credit_rate = port.stats.credit_bytes_sent * 8 * 1e12 / elapsed
        allowed = port.rate_bps * CREDIT_RATE_FRACTION_NUM / CREDIT_RATE_FRACTION_DEN
        # Generous envelope: the meter bounds the long-run average; bursts
        # of 2 credits and the 84..92 B size spread add slack.
        assert credit_rate < allowed * 1.15


@settings(deadline=None, max_examples=10,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario)
def test_data_queue_bounded_by_calculus_style_envelope(params_dict):
    """Single-switch fabric: the data queue never exceeds a small envelope
    (credit queue depth + fan-in jitter), far below proportional-to-flows."""
    sim, topo, flows = build(params_dict)
    sim.run(until=2 * SEC)
    # 8 credits' worth of data per port plus slack — never O(flows) MTUs.
    assert topo.net.max_data_queue_bytes() <= 16 * 1538


# -- multi-switch topologies with background load ---------------------------

multi_scenario = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=5_000),
    "topo": st.sampled_from(["dumbbell", "fat_tree"]),
    "n_flows": st.integers(min_value=1, max_value=5),
    "size_kb": st.integers(min_value=2, max_value=60),
    "background": st.booleans(),
})


def build_multi(params_dict, audited=False):
    """Random flows over a dumbbell or fat tree, optionally with steady
    background transfers competing for the fabric."""
    sim = Simulator(seed=params_dict["seed"])
    if params_dict["topo"] == "dumbbell":
        topo = dumbbell(sim, n_pairs=4)
        hosts = topo.senders + topo.receivers
        rtt_hint = 40 * US
    else:
        topo = fat_tree(sim, k=4)
        hosts = topo.hosts
        rtt_hint = 60 * US
    # Attach before flow creation so flows self-register for the per-flow
    # conservation and completion checks.  Under an ambient REPRO_AUDIT=1
    # the topology builder already attached one; reuse it.
    auditor = None
    if audited:
        auditor = getattr(sim, "auditor", None) or NetworkAuditor(sim)
        auditor.attach_network(topo.net)
    params = ExpressPassParams(rtt_hint_ps=rtt_hint)
    # Scenario-shape randomness is independent of the simulator's streams so
    # the run itself stays bit-reproducible per (seed, shape).
    rng = random.Random(params_dict["seed"])
    flows = []
    for _ in range(params_dict["n_flows"]):
        src, dst = rng.sample(hosts, 2)
        flows.append(ExpressPassFlow(src, dst, params_dict["size_kb"] * 1000,
                                     start_ps=rng.randint(0, 2 * MS),
                                     params=params))
    if params_dict["background"]:
        for i in range(2):
            src, dst = rng.sample(hosts, 2)
            flows.append(ExpressPassFlow(src, dst, 20_000,
                                         start_ps=i * MS, params=params))
    return sim, topo, flows, auditor


@settings(deadline=None, max_examples=8,
          suppress_health_check=[HealthCheck.too_slow])
@given(multi_scenario)
def test_multi_switch_flows_complete_with_zero_loss_and_clean_audit(params_dict):
    sim, topo, flows, auditor = build_multi(params_dict, audited=True)
    sim.run(until=3 * SEC)
    for flow in flows:
        assert flow.completed, (params_dict, flow)
        assert flow.bytes_delivered == flow.size_bytes
    assert topo.net.total_data_drops() == 0
    assert sim.pending() == 0
    report = auditor.finalize()
    assert report.ok, (params_dict, report.format())


@settings(deadline=None, max_examples=5,
          suppress_health_check=[HealthCheck.too_slow])
@given(multi_scenario)
def test_multi_switch_scenarios_bit_reproducible(params_dict):
    def run():
        sim, topo, flows, _ = build_multi(params_dict)
        sim.run(until=3 * SEC)
        return ([f.fct_ps for f in flows], sim.events_processed,
                topo.net.max_data_queue_bytes(),
                topo.net.total_credit_drops())

    assert run() == run()


@settings(deadline=None, max_examples=5,
          suppress_health_check=[HealthCheck.too_slow])
@given(multi_scenario)
def test_multi_switch_data_queues_stay_small(params_dict):
    """Bounded queues hold across hops, not just at a single ToR."""
    sim, topo, flows, _ = build_multi(params_dict)
    sim.run(until=3 * SEC)
    assert topo.net.max_data_queue_bytes() <= 16 * 1538

"""Tests for the Fig 7 sender/receiver state machines."""

import pytest

from repro.core.states import (
    ReceiverState,
    SenderState,
    check_receiver_transition,
    check_sender_transition,
)


class TestSenderTransitions:
    def test_happy_path(self):
        path = [SenderState.IDLE, SenderState.CREQ_SENT,
                SenderState.CREDIT_RECEIVING, SenderState.CSTOP_SENT,
                SenderState.CLOSED]
        for old, new in zip(path, path[1:]):
            check_sender_transition(old, new)

    def test_request_retransmit_loop(self):
        check_sender_transition(SenderState.CREQ_SENT, SenderState.CREQ_SENT)

    def test_new_data_reopens(self):
        check_sender_transition(SenderState.CSTOP_SENT,
                                SenderState.CREDIT_RECEIVING)

    def test_stop_retransmit_loop(self):
        check_sender_transition(SenderState.CSTOP_SENT, SenderState.CSTOP_SENT)

    @pytest.mark.parametrize("old,new", [
        (SenderState.IDLE, SenderState.CREDIT_RECEIVING),
        (SenderState.IDLE, SenderState.CLOSED),
        (SenderState.CREDIT_RECEIVING, SenderState.IDLE),
        (SenderState.CLOSED, SenderState.CREQ_SENT),
    ])
    def test_illegal_transitions_raise(self, old, new):
        with pytest.raises(RuntimeError):
            check_sender_transition(old, new)


class TestReceiverTransitions:
    def test_happy_path(self):
        check_receiver_transition(ReceiverState.IDLE,
                                  ReceiverState.CREDIT_SENDING)
        check_receiver_transition(ReceiverState.CREDIT_SENDING,
                                  ReceiverState.STOPPED)

    def test_direct_stop(self):
        check_receiver_transition(ReceiverState.IDLE, ReceiverState.STOPPED)

    @pytest.mark.parametrize("old,new", [
        (ReceiverState.STOPPED, ReceiverState.CREDIT_SENDING),
        (ReceiverState.CREDIT_SENDING, ReceiverState.IDLE),
        (ReceiverState.STOPPED, ReceiverState.IDLE),
    ])
    def test_illegal_transitions_raise(self, old, new):
        with pytest.raises(RuntimeError):
            check_receiver_transition(old, new)

"""Tests for the terminal visualization helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.viz import bar_chart, cdf_table, hbar, sparkline, timeline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_uses_floor(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_monotone_shape(self):
        line = sparkline([0, 1, 2, 3], lo=0, hi=3)
        assert len(line) == 4
        assert line[0] == " " and line[-1] == "█"

    def test_ascii_mode(self):
        line = sparkline([0, 10], ascii_only=True)
        assert line == " @"

    def test_clamps_out_of_range(self):
        line = sparkline([-5, 100], lo=0, hi=10)
        assert line[0] == " " and line[-1] == "█"

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=50))
    def test_length_matches_input(self, xs):
        assert len(sparkline(xs)) == len(xs)


class TestBars:
    def test_hbar_full_and_empty(self):
        assert hbar(10, 10, width=4) == "####"
        assert hbar(0, 10, width=4) == "    "

    def test_hbar_clamps(self):
        assert hbar(20, 10, width=4) == "####"

    def test_hbar_rejects_bad_full(self):
        with pytest.raises(ValueError):
            hbar(1, 0)

    def test_bar_chart_alignment(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a  |")
        assert lines[1].startswith("bb |")

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])

    def test_bar_chart_empty(self):
        assert bar_chart([], []) == ""


class TestCdfTable:
    def test_contains_percentiles(self):
        text = cdf_table([1, 2, 3, 4, 5], percentiles=(50, 99))
        assert "50.0" in text and "99.0" in text
        assert "3" in text

    def test_unit_suffix(self):
        text = cdf_table([10, 20], percentiles=(50,), unit="us")
        assert text.splitlines()[1].endswith("us")

    def test_percentiles_monotone(self):
        text = cdf_table(list(range(1, 101)), percentiles=(10, 50, 90))
        values = [float(line.split()[1])
                  for line in text.splitlines()[1:]]
        assert values == sorted(values)


class TestTimeline:
    def test_shared_scale(self):
        out = timeline({"a": [0, 1], "b": [0, 10]})
        lines = out.splitlines()
        # 'a' peaks at 1 of a shared 10-scale: low block; 'b' hits full.
        assert lines[1].rstrip("|").endswith("█")
        assert "█" not in lines[0]

    def test_downsampling(self):
        out = timeline({"x": list(range(100))}, width=10)
        assert len(out.splitlines()[0]) == len("x |") + 10 + 1

    def test_empty(self):
        assert timeline({}) == ""

    def test_ascii_only(self):
        out = timeline({"a": [0, 5, 10]}, ascii_only=True)
        assert "█" not in out and out.rstrip("|").endswith("@")

    def test_explicit_hi_pins_scale(self):
        # with hi=20 a peak of 10 renders at half scale, not full
        out = timeline({"a": [0, 10]}, hi=20)
        assert "█" not in out

    def test_labels_aligned(self):
        out = timeline({"a": [1], "long": [1]})
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_empty_series_renders_blank_row(self):
        out = timeline({"a": [], "b": [1]})
        assert out.splitlines()[0] == "a ||"


class TestSparklineScale:
    def test_explicit_bounds_override_data(self):
        # same data, wider scale -> lower blocks
        narrow = sparkline([5], lo=0, hi=5)
        wide = sparkline([5], lo=0, hi=100)
        assert narrow == "█" and wide != "█"

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=50))
    def test_ascii_never_emits_blocks(self, xs):
        assert "█" not in sparkline(xs, ascii_only=True)

"""Spec-driven coverage: every bundled scenario validates and compiles.

Dropping a new spec file into ``scenarios/`` adds it to this suite with no
new test code — ``pytest_generate_tests`` parametrizes over the library.
Specs tagged ``smoke`` additionally get their cheapest cell executed.
"""

from __future__ import annotations

import pytest

pytest.importorskip("yaml")

from repro import scenarios  # noqa: E402

pytestmark = pytest.mark.scenario


def pytest_generate_tests(metafunc):
    if "spec_path" in metafunc.fixturenames:
        paths = list(scenarios.iter_library())
        metafunc.parametrize("spec_path", paths,
                             ids=[p.stem for p in paths])


def test_library_is_nonempty():
    stems = [p.stem for p in scenarios.iter_library()]
    assert "smoke_mini" in stems
    assert "fig15_flow_scalability" in stems
    assert "fig19_realistic_fct" in stems


def test_spec_lints_clean(spec_path):
    assert scenarios.lint(spec_path) == []


def test_spec_compiles_with_stable_fingerprints(spec_path, spec_compile):
    matrix = spec_compile(spec_path)
    scenario = scenarios.load(spec_path)
    assert len(matrix) == scenario.cell_count > 0
    fingerprints = [c.fingerprint for c in matrix.cells]
    assert len(set(fingerprints)) == len(fingerprints)
    again = spec_compile(spec_path)
    assert [c.fingerprint for c in again.cells] == fingerprints


def test_spec_compiles_under_both_backends(spec_path, spec_compile):
    """Every bundled spec compiles on the packet backend; specs whose
    workload/chaos the fluid model can express compile there too, with
    distinct cell fingerprints (the cache must never conflate backends)."""
    scenario = scenarios.load(spec_path)
    packet = spec_compile(spec_path, backend="packet")
    assert len(packet) == scenario.cell_count

    blockers = scenarios.fluid_blockers(scenario.workload, scenario.chaos)
    if blockers:
        with pytest.raises(scenarios.SpecError):
            spec_compile(spec_path, backend="fluid")
        pytest.skip("fluid backend unavailable: " + "; ".join(blockers))

    fluid = spec_compile(spec_path, backend="fluid")
    assert len(fluid) == scenario.cell_count
    packet_prints = {c.fingerprint for c in packet.cells}
    fluid_prints = {c.fingerprint for c in fluid.cells}
    assert not packet_prints & fluid_prints


def test_spec_round_trips(spec_path):
    scenario = scenarios.load(spec_path)
    text = scenarios.dumps(scenario, fmt="json")
    assert scenarios.loads(text, fmt="json",
                           base_dir=spec_path.parent) == scenario


def test_smoke_tagged_specs_execute(spec_path, spec_compile):
    scenario = scenarios.load(spec_path)
    if "smoke" not in scenario.tags:
        pytest.skip("only smoke-tagged specs execute in the test suite")
    matrix = spec_compile(spec_path, seeds=[1])
    cell = matrix.cells[0]
    value = cell.task.fn(**dict(cell.task.kwargs))
    assert value["seed"] == 1
    assert value["protocol"] == dict(cell.axes).get("transport.protocol",
                                                    value["protocol"])

"""Edge-case tests across modules: combined port attachments, harness
parameterization, and error paths."""

import pytest

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.experiments.runner import get_harness
from repro.net.fault import LossInjector
from repro.net.pfc import install_pfc
from repro.net.trace import PortTracer
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US
from repro.transport.dcqcn import install_dcqcn_marking
from repro.transport.hull import install_phantom_queues
from repro.transport.rcp import install_rcp

from tests.conftest import small_dumbbell

PARAMS = ExpressPassParams(rtt_hint_ps=40 * US)


class TestCombinedPortAttachments:
    def test_all_attachments_coexist(self):
        """Phantom + RCP + PFC + tracer + injector on one port: nothing
        interferes with basic forwarding."""
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        port = topo.bottleneck_fwd
        install_phantom_queues([port])
        install_rcp(sim, [port], 30 * US)
        install_pfc(sim, [port])
        tracer = PortTracer(port)
        injector = LossInjector(port, every_nth=50)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 200_000,
                               params=PARAMS)
        sim.run(until=SEC)
        assert flow.completed
        assert tracer.count("DATA") >= flow.total_segments
        assert injector.seen > 0

    def test_pfc_and_expresspass_coexist(self):
        """PFC on an ExpressPass fabric never triggers: queues stay tiny."""
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=4)
        pfc = install_pfc(sim, topo.net.ports, xoff_bytes=50_000, xon_bytes=25_000)
        flows = [ExpressPassFlow(s, r, None, params=PARAMS)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=20 * MS)
        for f in flows:
            f.stop()
        assert pfc.pauses_sent == 0  # credits never let the queue near XOFF


class TestHarnessParameters:
    def test_harness_flow_override_kwargs(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        harness = get_harness("expresspass", 10 * GBPS, 40 * US)
        custom = ExpressPassParams(rtt_hint_ps=40 * US, jitter=0.0,
                                   randomize_credit_size=False)
        flow = harness.flow(topo.senders[0], topo.receivers[0], 10_000,
                            params=custom)
        assert flow.params.jitter == 0.0
        flow.stop()

    def test_min_rto_propagates_to_window_flows(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        harness = get_harness("dctcp", 10 * GBPS, 40 * US, min_rto_ps=7 * MS)
        flow = harness.flow(topo.senders[0], topo.receivers[0], 10_000)
        assert flow._min_rto_ps == 7 * MS
        flow.stop()

    def test_hull_threshold_scales_with_rate(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, rate=40 * GBPS)
        harness = get_harness("hull", 40 * GBPS, 40 * US)
        harness.install(sim, topo.net)
        assert topo.bottleneck_fwd.phantom.mark_threshold_bytes == 12_000

    def test_dcqcn_marking_install(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        install_dcqcn_marking(topo.net.ports, kmin_bytes=1000,
                              kmax_bytes=2000, pmax=0.5, sim=sim)
        assert topo.bottleneck_fwd.data_queue._red_kmin == 1000


class TestErrorPaths:
    def test_switch_without_route_raises(self):
        from repro.net.packet import data_packet
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        left = topo.net.switches[0]
        pkt = data_packet(0, 9999, None, 100, seq=0)
        with pytest.raises(RuntimeError):
            left.receive(pkt, None)

    def test_flow_same_endpoints_rejected(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        with pytest.raises(ValueError):
            ExpressPassFlow(topo.senders[0], topo.senders[0], 100)

    def test_flow_zero_size_rejected(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        with pytest.raises(ValueError):
            ExpressPassFlow(topo.senders[0], topo.receivers[0], 0)

    def test_tracer_double_attach_chains(self):
        # Tracers compose: a second tracer on the same port chains the
        # first instead of rejecting or silently replacing it.
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        first = PortTracer(topo.bottleneck_fwd)
        second = PortTracer(topo.bottleneck_fwd)
        ExpressPassFlow(topo.senders[0], topo.receivers[0], 5_000)
        sim.run(until=1_000_000_000_000)
        assert first.records
        assert first.records == second.records


class TestEngineInterplay:
    def test_max_events_with_until(self):
        sim = Simulator(seed=0)
        for i in range(10):
            sim.schedule(i + 1, lambda: None)
        done = sim.run(until=5, max_events=3)
        assert done == 3
        assert sim.now <= 5

    def test_run_after_run_continues(self):
        sim = Simulator(seed=0)
        fired = []
        sim.schedule(10, fired.append, 1)
        sim.schedule(20, fired.append, 2)
        sim.run(until=15)
        sim.run(until=25)
        assert fired == [1, 2]

    def test_rng_stream_creation_order_irrelevant(self):
        a = Simulator(seed=3)
        _ = a.rng("x")
        va = a.rng("y").random()
        b = Simulator(seed=3)
        vb = b.rng("y").random()  # "y" created first here
        assert va == vb

"""Fault-injection tests: transports must survive silent packet loss."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.net.fault import LossInjector
from repro.net.packet import PacketKind
from repro.sim.engine import Simulator
from repro.sim.units import MS, SEC, US
from repro.transport.dctcp import DctcpFlow
from repro.transport.rcp import RcpFlow, install_rcp

from tests.conftest import small_dumbbell

PARAMS = ExpressPassParams(rtt_hint_ps=40 * US)


class TestInjectorMechanics:
    def test_every_nth_is_deterministic(self, sim):
        topo = small_dumbbell(sim)
        injector = LossInjector(topo.bottleneck_fwd, every_nth=3)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 100_000,
                               params=PARAMS)
        sim.run(until=SEC)
        assert injector.dropped == injector.seen // 3
        assert flow.completed  # resync recovered every loss

    def test_match_restricts_scope(self, sim):
        topo = small_dumbbell(sim)
        injector = LossInjector(
            topo.bottleneck_fwd, every_nth=1,
            match=lambda p: p.kind == PacketKind.CREDIT_STOP)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 30_000,
                               params=PARAMS)
        sim.run(until=200 * MS)
        flow.stop()
        # Only CREDIT_STOPs were eaten; the transfer itself completed.
        assert flow.completed
        assert injector.dropped >= 1
        assert injector.seen == injector.dropped

    def test_detach_restores_port(self, sim):
        topo = small_dumbbell(sim)
        injector = LossInjector(topo.bottleneck_fwd, every_nth=1)
        injector.detach()
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 50_000,
                               params=PARAMS)
        sim.run(until=SEC)
        assert flow.completed
        assert injector.dropped == 0

    def test_injectors_chain(self, sim):
        # Two injectors compose: the second only sees packets the first let
        # through, and detaching one leaves the other installed.
        topo = small_dumbbell(sim)
        first = LossInjector(topo.bottleneck_fwd, every_nth=4)
        second = LossInjector(topo.bottleneck_fwd, every_nth=5)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 100_000,
                               params=PARAMS)
        sim.run(until=SEC)
        assert flow.completed
        assert first.dropped == first.seen // 4
        # Chain order: packets dropped upstream never reach the second hook.
        assert second.seen == first.seen - first.dropped
        assert second.dropped == second.seen // 5

    def test_detach_removes_only_own_filter(self, sim):
        topo = small_dumbbell(sim)
        keep = LossInjector(topo.bottleneck_fwd, every_nth=3)
        goner = LossInjector(topo.bottleneck_fwd, every_nth=2)
        goner.detach()
        goner.detach()  # idempotent
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 50_000,
                               params=PARAMS)
        sim.run(until=SEC)
        assert flow.completed
        assert goner.dropped == 0
        assert keep.dropped == keep.seen // 3 > 0

    def test_validation(self, sim):
        topo = small_dumbbell(sim)
        with pytest.raises(ValueError):
            LossInjector(topo.bottleneck_fwd, probability=1.5)
        with pytest.raises(ValueError):
            LossInjector(topo.bottleneck_fwd, every_nth=0)


class TestTransportsSurviveLoss:
    def test_expresspass_survives_credit_loss(self, sim):
        # Eat 10% of credits on the reverse path: the feedback loop treats
        # it as congestion; transfers still complete exactly.
        topo = small_dumbbell(sim)
        LossInjector(topo.bottleneck_rev, probability=0.1,
                     match=lambda p: p.is_credit)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 500_000,
                               params=PARAMS)
        sim.run(until=SEC)
        assert flow.completed
        assert flow.bytes_delivered == 500_000

    def test_expresspass_survives_data_loss(self, sim):
        topo = small_dumbbell(sim)
        LossInjector(topo.bottleneck_fwd, probability=0.05,
                     match=lambda p: p.kind == PacketKind.DATA)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 500_000,
                               params=PARAMS)
        sim.run(until=2 * SEC)
        assert flow.completed
        assert flow.retransmissions > 0

    def test_dctcp_survives_ack_loss(self, sim):
        topo = small_dumbbell(sim)
        LossInjector(topo.bottleneck_rev, probability=0.2,
                     match=lambda p: p.kind == PacketKind.ACK)
        flow = DctcpFlow(topo.senders[0], topo.receivers[0], 300_000)
        sim.run(until=2 * SEC)
        assert flow.completed

    def test_rcp_survives_mixed_loss(self, sim):
        topo = small_dumbbell(sim)
        install_rcp(sim, topo.net.ports, 30 * US)
        LossInjector(topo.bottleneck_fwd, probability=0.05)
        flow = RcpFlow(topo.senders[0], topo.receivers[0], 300_000)
        sim.run(until=2 * SEC)
        assert flow.completed


@settings(deadline=None, max_examples=8,
          suppress_health_check=[HealthCheck.too_slow])
@given(p_loss=st.floats(min_value=0.0, max_value=0.25),
       seed=st.integers(0, 1000))
def test_expresspass_exactly_once_delivery_under_random_loss(p_loss, seed):
    """Property: whatever the (bounded) loss rate, a sized ExpressPass flow
    delivers every byte exactly once."""
    sim = Simulator(seed=seed)
    topo = small_dumbbell(sim)
    LossInjector(topo.bottleneck_fwd, probability=p_loss)
    flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 120_000,
                           params=PARAMS)
    sim.run(until=3 * SEC)
    assert flow.completed
    assert flow.bytes_delivered == 120_000

"""Tests for the discrete-event scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator


class TestScheduling:
    def test_runs_in_time_order(self, sim):
        order = []
        sim.schedule(30, order.append, "c")
        sim.schedule(10, order.append, "a")
        sim.schedule(20, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self, sim):
        order = []
        for tag in "abc":
            sim.schedule(5, order.append, tag)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(123, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [123]

    def test_nested_scheduling(self, sim):
        seen = []

        def outer():
            sim.schedule(5, lambda: seen.append(sim.now))

        sim.schedule(10, outer)
        sim.run()
        assert seen == [15]

    def test_cannot_schedule_in_past(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(10, fired.append, 1)
        event.cancel()
        sim.run()
        assert fired == []

    def test_double_cancel_is_safe(self, sim):
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.run() == 0

    def test_cancel_from_another_event(self, sim):
        fired = []
        later = sim.schedule(20, fired.append, "later")
        sim.schedule(10, later.cancel)
        sim.run()
        assert fired == []


class TestRunControl:
    def test_until_is_inclusive(self, sim):
        fired = []
        sim.schedule(100, fired.append, 1)
        sim.schedule(101, fired.append, 2)
        sim.run(until=100)
        assert fired == [1]
        assert sim.now == 100

    def test_until_advances_clock_when_idle(self, sim):
        sim.run(until=500)
        assert sim.now == 500

    def test_max_events(self, sim):
        for i in range(10):
            sim.schedule(i + 1, lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.run() == 7

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_peek_time_skips_cancelled(self, sim):
        first = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        first.cancel()
        assert sim.peek_time() == 20

    def test_pending_counts_live_events(self, sim):
        events = [sim.schedule(i + 1, lambda: None) for i in range(4)]
        events[0].cancel()
        assert sim.pending() == 3

    def test_cancel_after_fire_does_not_skew_pending(self, sim):
        fired = sim.schedule(10, lambda: None)
        live = sim.schedule(1000, lambda: None)
        sim.run(until=10)
        fired.cancel()  # late cancel of an already-fired event: a no-op
        assert sim.pending() == 1
        live.cancel()
        assert sim.pending() == 0


class TestRngStreams:
    def test_streams_are_independent(self):
        sim = Simulator(seed=7)
        a1 = [sim.rng("a").random() for _ in range(5)]
        sim2 = Simulator(seed=7)
        _ = [sim2.rng("b").random() for _ in range(100)]  # consume another stream
        a2 = [sim2.rng("a").random() for _ in range(5)]
        assert a1 == a2

    def test_same_name_same_stream(self, sim):
        assert sim.rng("x") is sim.rng("x")

    def test_different_seeds_differ(self):
        x = Simulator(seed=1).rng("s").random()
        y = Simulator(seed=2).rng("s").random()
        assert x != y

    def test_crc32_seed_collision_raises(self, sim):
        # "plumless" and "buckeroo" are a known CRC32 collision pair, so
        # their derived stream seeds coincide for every master seed.  The
        # streams would silently share one generator; creation must fail.
        sim.rng("plumless")
        with pytest.raises(RuntimeError, match="collides"):
            sim.rng("buckeroo")
        # The established stream is unharmed and stays reusable.
        assert sim.rng("plumless") is sim.rng("plumless")


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=50))
def test_events_always_fire_in_nondecreasing_time(delays):
    sim = Simulator(seed=0)
    fired = []
    for d in delays:
        sim.schedule(d, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)

"""Tests for packet construction and wire-size accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import (
    CREDIT_RATE_FRACTION_DEN,
    CREDIT_RATE_FRACTION_NUM,
    CREDIT_WIRE_MAX,
    CREDIT_WIRE_MIN,
    DATA_WIRE_MAX,
    ETHERNET_OVERHEAD,
    MIN_WIRE,
    MTU_PAYLOAD,
    PacketKind,
    credit_packet,
    data_packet,
)


class TestWireConstants:
    def test_mtu_payload(self):
        assert MTU_PAYLOAD == 1500

    def test_min_frame(self):
        assert MIN_WIRE == 84

    def test_credit_fraction_is_about_five_percent(self):
        fraction = CREDIT_RATE_FRACTION_NUM / CREDIT_RATE_FRACTION_DEN
        assert 0.05 < fraction < 0.056

    def test_data_fills_the_rest(self):
        data_share = DATA_WIRE_MAX / CREDIT_RATE_FRACTION_DEN
        assert 0.94 < data_share < 0.95


class TestDataPacket:
    def test_full_mtu(self):
        pkt = data_packet(1, 2, None, MTU_PAYLOAD, seq=0)
        assert pkt.wire_bytes == DATA_WIRE_MAX
        assert pkt.kind == PacketKind.DATA

    def test_small_payload_floored_at_min_frame(self):
        pkt = data_packet(1, 2, None, 1, seq=0)
        assert pkt.wire_bytes == MIN_WIRE

    def test_mid_payload_adds_overhead(self):
        pkt = data_packet(1, 2, None, 500, seq=3)
        assert pkt.wire_bytes == 500 + ETHERNET_OVERHEAD

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            data_packet(1, 2, None, MTU_PAYLOAD + 1, seq=0)

    def test_header_fields(self):
        pkt = data_packet(5, 9, None, 100, seq=7, credit_seq=42, ecn_capable=True)
        assert (pkt.src, pkt.dst, pkt.seq, pkt.credit_seq) == (5, 9, 7, 42)
        assert pkt.ecn_capable and not pkt.ecn_marked

    def test_uids_unique(self):
        a = data_packet(1, 2, None, 10, seq=0)
        b = data_packet(1, 2, None, 10, seq=1)
        assert a.uid != b.uid


class TestCreditPacket:
    def test_default_is_min_frame(self):
        pkt = credit_packet(2, 1, None, credit_seq=0)
        assert pkt.wire_bytes == CREDIT_WIRE_MIN
        assert pkt.is_credit

    def test_randomized_size_bounds_enforced(self):
        credit_packet(2, 1, None, 0, wire_bytes=CREDIT_WIRE_MAX)
        with pytest.raises(ValueError):
            credit_packet(2, 1, None, 0, wire_bytes=CREDIT_WIRE_MAX + 1)
        with pytest.raises(ValueError):
            credit_packet(2, 1, None, 0, wire_bytes=CREDIT_WIRE_MIN - 1)

    def test_only_credit_kind_is_credit(self):
        data = data_packet(1, 2, None, 10, seq=0)
        assert not data.is_credit


class TestPathTracing:
    def test_trace_disabled_by_default(self):
        pkt = data_packet(1, 2, None, 10, seq=0)
        pkt.trace_hop(7)
        assert pkt.hops is None

    def test_trace_records_when_enabled(self):
        pkt = data_packet(1, 2, None, 10, seq=0)
        pkt.hops = []
        pkt.trace_hop(7)
        pkt.trace_hop(9)
        assert pkt.hops == [7, 9]


@given(st.integers(min_value=1, max_value=MTU_PAYLOAD))
def test_wire_size_always_within_ethernet_bounds(payload):
    pkt = data_packet(1, 2, None, payload, seq=0)
    assert MIN_WIRE <= pkt.wire_bytes <= DATA_WIRE_MAX
    assert pkt.payload_bytes == payload

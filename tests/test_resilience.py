"""Crash-safe execution (``repro.resilience``, DESIGN.md §15).

The invariant every test here circles back to: **recovery never changes
results**.  A campaign that loses a worker to SIGKILL, its parent to
Ctrl-C, a cache blob to a torn write, or a shard to a hang must come back
— via retry, failover, or ``repro resume`` — with byte-identical output
and no orphan processes left behind.

Sweep task functions live at module scope so the process pool can pickle
them, like everywhere else in the suite.  Self-chaos directives are armed
per-test through ``REPRO_SELFCHAOS`` (+ a tmpdir ``REPRO_SELFCHAOS_DIR``
for the once-only markers) and the signal-drain flag is reset around every
test so the module leaves no global state behind.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time
from types import SimpleNamespace

import pytest

from repro import ExpressPassFlow, ExpressPassParams, runtime
from repro.net.trace import PortTracer
from repro.resilience import (
    EXIT_INTERRUPTED,
    JOURNAL_SCHEMA,
    RunJournal,
    load_journal,
    selfchaos,
)
from repro.resilience import journal as run_journal
from repro.resilience import signals as shutdown
from repro.runtime import ResultCache, TaskSpec, Telemetry, run_tasks
from repro.runtime.telemetry import read_events
from repro.sim.parallel import run_sharded
from repro.sim.units import SEC, US
from repro.topology.simple import dumbbell

EP = dict(params=ExpressPassParams(rtt_hint_ps=40 * US))

REPO = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _clean_resilience_state():
    """No test leaks the drain flag, an active journal, or chaos env."""
    shutdown.reset()
    run_journal.deactivate()
    yield
    shutdown.reset()
    run_journal.deactivate()


@pytest.fixture
def chaos(monkeypatch, tmp_path):
    """Arm ``REPRO_SELFCHAOS`` with a private once-only marker dir."""
    def _arm(directives: str):
        monkeypatch.setenv(selfchaos.ENV_VAR, directives)
        monkeypatch.setenv(selfchaos.ENV_DIR, str(tmp_path / "chaos-markers"))
    return _arm


def _assert_no_orphans():
    deadline = time.monotonic() + 10
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


# -- sweep task functions (module scope: pool workers pickle by name) --------

def square(x, seed=1):
    return {"x": x, "sq": x * x, "seed": seed}


def request_shutdown_then_return(x):
    """A task that behaves like a SIGINT arriving mid-sweep."""
    shutdown.request("SIGINT")
    return {"x": x}


def sleep_forever(tag=0):
    time.sleep(600)
    return {"tag": tag}


def quick(tag=0):
    return {"tag": tag}


def _specs(fn, values, key="x"):
    return [TaskSpec(fn, {key: v}, label=f"{fn.__name__}[{key}={v}]")
            for v in values]


# -- shard builders (module scope: shard workers run them) -------------------

def build_pair(sim):
    topo = dumbbell(sim, n_pairs=2)
    tracers = {"L->R": PortTracer(topo.bottleneck_fwd)}
    ExpressPassFlow(topo.senders[0], topo.receivers[0],
                    size_bytes=30_000, **EP)
    ExpressPassFlow(topo.senders[1], topo.receivers[1],
                    size_bytes=20_000, start_ps=500 * US, **EP)
    return SimpleNamespace(net=topo.net, topo=topo, tracers=tracers)


def build_broken(sim):
    raise ValueError("deterministically broken builder")


def collect_traces(ctx):
    return {name: list(t.records) for name, t in ctx.built.tracers.items()}


# ---------------------------------------------------------------------------
# Journal: round-trip, folding, torn tails
# ---------------------------------------------------------------------------

class TestJournal:
    def test_round_trip_and_folding(self, tmp_path):
        path = tmp_path / "run.journal.jsonl"
        jr = RunJournal(path)
        jr.meta(argv=["run", "fig15", "--journal", str(path)],
                command="run", name="fig15", total=3)
        jr.task(0, "queued", "t0", key="k0")
        jr.task(1, "queued", "t1", key="k1")
        jr.task(2, "queued", "t2", key="k2")
        jr.task(0, "running", "t0", attempt=1)
        jr.task(0, "done", "t0", key="k0", cached=False)
        jr.task(1, "failed", "t1", error="boom", attempts=3)
        jr.note("sweep", name="fig15", total=3)
        jr.close()

        state = load_journal(path)
        assert state.meta["schema"] == JOURNAL_SCHEMA
        assert state.argv[-2:] == ["--journal", str(path)]
        assert state.generation == 0
        assert state.total == 3
        assert state.by_state("done") == [0]
        assert state.by_state("failed") == [1]
        assert state.unfinished() == [2]
        assert state.tasks[(0, 0)]["key"] == "k0"
        assert state.notes and state.notes[0]["record"] == "sweep"
        assert state.torn_lines == 0

    def test_torn_final_line_warns_and_folds_the_rest(self, tmp_path):
        path = tmp_path / "run.journal.jsonl"
        jr = RunJournal(path)
        jr.meta(argv=["run", "x"], command="run", name="x", total=2)
        jr.task(0, "done", "t0")
        jr.close()
        with path.open("a") as fh:
            fh.write('{"record": "task", "index": 1, "sta')  # SIGKILL here
        with pytest.warns(UserWarning, match="torn journal line"):
            state = load_journal(path)
        assert state.torn_lines == 1
        assert state.by_state("done") == [0]
        assert (0, 1) not in state.tasks

    def test_multi_sweep_campaign_folds_per_sweep(self, tmp_path):
        # An experiment that calls run_tasks twice writes two sweeps into
        # one journal; their 0..n-1 indices must not collide in the fold.
        path = tmp_path / "run.journal.jsonl"
        jr = RunJournal(path)
        jr.meta(argv=["run", "x"], command="run", name="x", total=2)
        jr.note("sweep", name="warmup", total=2)
        jr.task(0, "done", "w0")
        jr.task(1, "done", "w1")
        jr.note("sweep", name="main", total=2)
        jr.task(0, "done", "m0")
        jr.task(1, "failed", "m1", error="boom")
        jr.close()
        state = load_journal(path)
        assert sorted(state.tasks) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        summary = state.summary()
        assert summary["done"] == 3 and summary["failed"] == 1
        assert state.unfinished() == []

    def test_resume_generation_overwrites_prior_sweeps(self, tmp_path):
        # Each meta record (a resume) replays the argv from the top, so
        # its sweep ordinals restart at zero and fold *onto* the earlier
        # generation's records instead of stacking beside them.
        path = tmp_path / "run.journal.jsonl"
        jr = RunJournal(path)
        jr.meta(argv=["run", "x"], command="run", name="x", total=2)
        jr.note("sweep", name="x", total=2)
        jr.task(0, "done", "t0")
        jr.task(1, "running", "t1")     # SIGKILL landed about here
        jr.meta(argv=["run", "x"], command="run", name="x", total=2,
                generation=1)
        jr.note("sweep", name="x", total=2)
        jr.task(0, "done", "t0", cached=True)
        jr.task(1, "done", "t1")
        jr.close()
        state = load_journal(path)
        assert state.generation == 1
        assert sorted(state.tasks) == [(0, 0), (0, 1)]
        assert state.tasks[(0, 1)]["state"] == "done"
        assert state.unfinished() == []

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_journal(tmp_path / "nope.jsonl")

    def test_writer_never_raises_on_bad_path(self):
        jr = RunJournal(pathlib.Path("/proc/nonexistent/journal.jsonl"))
        jr.task(0, "done", "t0")  # swallowed: journal is a safety net
        jr.close()


class TestSchedulerJournaling:
    def test_run_tasks_journals_states_and_cache_keys(self, tmp_path):
        jr = run_journal.activate(tmp_path / "j.jsonl")
        with runtime.using(cache_dir=tmp_path / "cache", cache_enabled=True,
                           parallel=0, progress=False):
            run_tasks(_specs(square, [2, 3]), name="sq")
            run_tasks(_specs(square, [2, 3]), name="sq")  # cache replay
        run_journal.deactivate()
        state = load_journal(jr.path)
        # Two run_tasks calls = two sweeps in one journal; their task
        # records fold under distinct sweep ordinals, not on top of each
        # other, so the counts reflect all four executions.
        assert state.by_state("done") == [0, 0, 1, 1]
        assert sorted(state.tasks) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        # First generation executed (cached=False), second replayed.
        done = [r for r in json.loads(
            "[" + ",".join(
                l for l in jr.path.read_text().splitlines() if l) + "]")
            if r.get("record") == "task" and r.get("state") == "done"]
        assert [d["cached"] for d in done] == [False, False, True, True]
        assert all(d["key"] for d in done)

    def test_serial_drain_marks_interrupted(self, tmp_path):
        jr = run_journal.activate(tmp_path / "j.jsonl")
        tel = Telemetry("drain", 3, progress=False)
        with runtime.using(cache_enabled=False, parallel=0, retries=0,
                           progress=False):
            results = run_tasks(_specs(request_shutdown_then_return,
                                       [1, 2, 3]),
                                name="drain", telemetry=tel)
        run_journal.deactivate()
        assert len(results) == 3
        assert results[0].ok                      # finished before the drain
        assert results[1].interrupted and results[2].interrupted
        assert results[1].error == "interrupted (SIGINT)"
        assert tel.counts["interrupted"] == 2
        state = load_journal(jr.path)
        assert state.by_state("interrupted") == [1, 2]
        assert state.unfinished() == [1, 2]       # exactly what resume redoes


# ---------------------------------------------------------------------------
# Self-chaos: killed workers, torn cache writes, ENOSPC
# ---------------------------------------------------------------------------

class TestSelfChaos:
    def test_directives_fire_once(self, chaos):
        chaos("task:kill=alpha,parent:kill=2")
        assert selfchaos.armed()
        assert not selfchaos.fire("task:kill", label="beta")
        assert selfchaos.fire("task:kill", label="task-alpha-1")
        assert not selfchaos.fire("task:kill", label="task-alpha-2")  # spent
        assert not selfchaos.fire("parent:kill", count=1)
        assert selfchaos.fire("parent:kill", count=2)
        assert not selfchaos.fire("parent:kill", count=3)

    def test_disarmed_is_free(self):
        assert not selfchaos.armed()
        assert not selfchaos.fire("task:kill", label="anything")

    def test_worker_sigkill_recovers_bit_identical(self, chaos, tmp_path):
        with runtime.using(cache_enabled=False, parallel=0, progress=False):
            baseline = run_tasks(_specs(square, [4, 5, 6]), name="kill")
        chaos("task:kill=x=5")
        tel = Telemetry("kill", 3, progress=False)
        with runtime.using(cache_enabled=False, parallel=2, retries=1,
                           progress=False):
            survived = run_tasks(_specs(square, [4, 5, 6]), name="kill",
                                 telemetry=tel)
        assert [r.value for r in survived] == [r.value for r in baseline]
        assert all(r.ok for r in survived)
        _assert_no_orphans()

    def test_cache_torn_write_is_pruned_as_miss(self, chaos, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        chaos("cache:torn")
        assert cache.put("k" * 64, {"big": list(range(500))})
        hit, value = cache.get("k" * 64)
        assert not hit and value is None
        assert cache.counters()["torn_pruned"] == 1
        assert not list((tmp_path / "cache").glob("*.pkl"))
        # Once-only: the next put is healthy.
        assert cache.put("k" * 64, {"big": list(range(500))})
        assert cache.get("k" * 64)[0]

    def test_cache_enospc_put_fails_cleanly(self, chaos, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        chaos("cache:enospc")
        assert not cache.put("e" * 64, {"v": 1})
        assert not list((tmp_path / "cache").glob("*"))  # no torn tmp files
        assert cache.put("e" * 64, {"v": 1})  # directive spent
        assert cache.get("e" * 64) == (True, {"v": 1})


# ---------------------------------------------------------------------------
# Cross-process eviction lock
# ---------------------------------------------------------------------------

class TestEvictionLock:
    def _full_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", max_entries=1)
        cache.put("a" * 64, {"v": 1})
        cache.put("b" * 64, {"v": 2})
        return cache

    def test_busy_lock_skips_scan(self, tmp_path):
        cache = self._full_cache(tmp_path)
        lock = cache._lock_path()
        lock.write_text("pid=12345\n")  # fresh: a live concurrent scanner
        assert cache.evict() == 0
        assert cache.counters()["eviction_lock_busy"] >= 1
        assert lock.exists()  # not ours to release

    def test_stale_lock_is_broken_and_scan_proceeds(self, tmp_path):
        cache = self._full_cache(tmp_path)
        lock = cache._lock_path()
        lock.write_text("pid=12345\n")
        stale = time.time() - (cache._LOCK_STALE_S + 60)
        os.utime(lock, (stale, stale))
        assert cache.evict() >= 1  # takeover: caps enforced again
        assert not lock.exists()
        assert len(list((tmp_path / "cache").glob("*.pkl"))) == 1

    def test_lock_released_after_normal_evict(self, tmp_path):
        cache = self._full_cache(tmp_path)
        cache.evict()
        assert not cache._lock_path().exists()

    def test_lost_takeover_race_skips_scan_and_leaves_lock(self, tmp_path,
                                                           monkeypatch):
        # Two processes can both judge the same orphan lock stale; the
        # takeover renames the lock aside before removing it, so the loser
        # (whose rename fails because the winner already moved the inode)
        # must back off without ever unlinking the path — which by then
        # may be the winner's *fresh* lock.
        cache = self._full_cache(tmp_path)
        lock = cache._lock_path()
        lock.write_text("pid=12345\n")
        stale = time.time() - (cache._LOCK_STALE_S + 60)
        os.utime(lock, (stale, stale))

        def lose_rename(src, dst, *args, **kwargs):
            raise FileNotFoundError(src)

        monkeypatch.setattr(os, "rename", lose_rename)
        assert cache.evict() == 0
        assert lock.exists()
        assert cache.counters()["eviction_lock_busy"] >= 1


# ---------------------------------------------------------------------------
# Pool recycle: abandoned timed-out workers are reclaimed
# ---------------------------------------------------------------------------

class TestPoolRecycle:
    def test_timeout_abandonment_recycles_and_queue_completes(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_RECYCLE_AFTER", "1")
        tel = Telemetry("recycle", 4, progress=False)
        specs = (_specs(sleep_forever, [0, 1], key="tag")
                 + _specs(quick, [2, 3], key="tag"))
        with runtime.using(cache_enabled=False, parallel=2, retries=0,
                           task_timeout_s=0.5, progress=False):
            results = run_tasks(specs, name="recycle", telemetry=tel)
        assert tel.counts["recycles"] >= 1
        assert results[0].error and "timeout" in results[0].error
        assert results[1].error and "timeout" in results[1].error
        # The queued tasks never started (both workers were hung), so the
        # watchdog must not charge them the sleepers' timeout: both finish
        # on the fresh pool after the recycle — including the one the
        # executor had prefetched into its call queue, whose future reads
        # RUNNING and refuses cancellation.
        assert results[2].value == {"tag": 2}
        assert results[3].value == {"tag": 3}
        _assert_no_orphans()

    def test_drain_deadline_kills_abandoned_pool(self, monkeypatch):
        # A drain whose grace expires abandons still-running tasks; those
        # count toward the abandoned total so the epilogue SIGKILLs the
        # pool — otherwise the interpreter's atexit join would wait out
        # the sleepers and the grace deadline would bound nothing.
        monkeypatch.setattr(shutdown, "DRAIN_GRACE_S", 0.2)
        tel = Telemetry("drain", 2, progress=False)
        specs = _specs(sleep_forever, [0, 1], key="tag")

        def request_once_workers_are_up():
            # Fire the drain only after both pool workers exist (plus a
            # beat for them to pick their tasks up), so the sleepers are
            # genuinely *running* — a cancel-while-queued drain would
            # never exercise the deadline path.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline \
                    and len(multiprocessing.active_children()) < 2:
                time.sleep(0.05)
            time.sleep(0.5)
            shutdown.request("SIGINT")

        trigger = threading.Thread(target=request_once_workers_are_up,
                                   daemon=True)
        trigger.start()
        with runtime.using(cache_enabled=False, parallel=2, retries=0,
                           progress=False):
            t0 = time.monotonic()
            results = run_tasks(specs, name="drain", telemetry=tel)
            wall = time.monotonic() - t0
        trigger.join(timeout=35)
        assert all(r.interrupted for r in results)
        assert tel.counts["recycles"] >= 1      # pool was hard-killed
        assert wall < 30                        # nobody waited out a sleeper
        _assert_no_orphans()


# ---------------------------------------------------------------------------
# Started-marker backpressure: sweeps larger than the pipe buffer
# ---------------------------------------------------------------------------

_BACKPRESSURE_SCRIPT = """\
from repro import runtime
from repro.runtime import TaskSpec, run_tasks

def tag(i, seed=1):
    return i

if __name__ == "__main__":
    n = 4000
    specs = [TaskSpec(tag, {"i": i}, label=f"t{i}") for i in range(n)]
    with runtime.using(cache_enabled=False, parallel=2, progress=False):
        results = run_tasks(specs, name="pipe")
    assert len(results) == n
    assert all(r.ok for r in results), [r.error for r in results if not r.ok]
    print("OK", n)
"""


@pytest.mark.slow
class TestStartedMarkerBackpressure:
    def test_untimed_sweep_past_pipe_buffer_completes(self, tmp_path):
        # 4000 start markers ≈ 100KiB of pickled tokens, well past the
        # ~64KiB pipe buffer.  The parent must drain the marker queue even
        # with task_timeout_s unset (the default) — when it only drained
        # under the timeout watchdog, a worker's put() eventually blocked
        # holding the queue lock and the whole sweep wedged.  Run in a
        # subprocess so a regression is a timeout, not a hung suite.
        script = tmp_path / "sweep.py"
        script.write_text(_BACKPRESSURE_SCRIPT)
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        for var in ("REPRO_SELFCHAOS", "REPRO_SELFCHAOS_DIR",
                    "REPRO_JOURNAL", "REPRO_TRACE"):
            env.pop(var, None)
        proc = subprocess.run([sys.executable, str(script)], timeout=300,
                              capture_output=True, text=True, env=env,
                              cwd=str(REPO))
        assert proc.returncode == 0, proc.stderr
        assert "OK 4000" in proc.stdout


# ---------------------------------------------------------------------------
# Shard failover: SIGKILL, hang, deterministic error, respawn budget
# ---------------------------------------------------------------------------

UNTIL = SEC // 2


class TestShardFailover:
    @pytest.fixture(scope="class")
    def serial_traces(self):
        run = run_sharded(build_pair, shards=1, until=UNTIL, seed=7,
                          collect=collect_traces)
        return run.collected

    def test_shard_sigkill_fails_over_bit_identical(self, chaos,
                                                    serial_traces):
        chaos("shard:kill=2")
        run = run_sharded(build_pair, shards=2, until=UNTIL, seed=7,
                          collect=collect_traces)
        assert len(run.failovers) == 1
        fo = run.failovers[0]
        assert fo["shard"] in (0, 1)
        assert "exited" in fo["reason"]
        assert fo["replayed_windows"] >= 1
        merged = [c["L->R"] for c in run.collected if c["L->R"]]
        assert merged == [serial_traces[0]["L->R"]]
        _assert_no_orphans()

    def test_hung_shard_hits_deadline_and_fails_over(self, chaos,
                                                     monkeypatch,
                                                     serial_traces):
        monkeypatch.setenv("REPRO_SHARD_HEARTBEAT", "0.1")
        chaos("shard:hang=2")
        run = run_sharded(build_pair, shards=2, until=UNTIL, seed=7,
                          collect=collect_traces, deadline_s=2.0)
        assert len(run.failovers) == 1
        assert "heartbeat" in run.failovers[0]["reason"]
        merged = [c["L->R"] for c in run.collected if c["L->R"]]
        assert merged == [serial_traces[0]["L->R"]]
        _assert_no_orphans()

    def test_deterministic_error_is_not_respawned(self):
        with pytest.raises(RuntimeError, match="broken builder"):
            run_sharded(build_broken, shards=2, until=UNTIL, seed=7)
        _assert_no_orphans()

    def test_respawn_budget_exhaustion_raises(self, chaos):
        chaos("shard:kill=1")
        with pytest.raises(RuntimeError, match="respawn budget"):
            run_sharded(build_pair, shards=2, until=UNTIL, seed=7,
                        max_respawns=0)
        _assert_no_orphans()


# ---------------------------------------------------------------------------
# graceful_shutdown: handler installation respects the host
# ---------------------------------------------------------------------------

class TestGracefulShutdownHandlers:
    @pytest.fixture()
    def restore_handlers(self):
        sigs = (signal.SIGINT, signal.SIGTERM)
        prior = {s: signal.getsignal(s) for s in sigs}
        yield
        for s, h in prior.items():
            if h is not None:
                signal.signal(s, h)

    def test_installs_and_restores_over_default_handlers(
            self, restore_handlers):
        signal.signal(signal.SIGINT, signal.default_int_handler)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        with shutdown.graceful_shutdown():
            assert signal.getsignal(signal.SIGINT) \
                is not signal.default_int_handler
            assert signal.getsignal(signal.SIGTERM) is not signal.SIG_DFL
        assert signal.getsignal(signal.SIGINT) is signal.default_int_handler
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL

    def test_noop_when_host_installed_custom_handlers(self, restore_handlers):
        def host_handler(signum, frame):  # pragma: no cover - never fired
            pass

        signal.signal(signal.SIGINT, host_handler)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        with shutdown.graceful_shutdown():
            # The host routed SIGINT deliberately: both handlers are left
            # exactly as found (the documented no-op).
            assert signal.getsignal(signal.SIGINT) is host_handler
            assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL


# ---------------------------------------------------------------------------
# Torn-final-line tolerance: telemetry reader and trace validator
# ---------------------------------------------------------------------------

class TestTornTails:
    def test_telemetry_reader_skips_torn_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tel = Telemetry("sweep", 1, jsonl_path=path, progress=False)
        tel.task_queued(0, "t0")
        tel.task_done(0, "t0", wall_s=0.1)
        with path.open("a") as fh:
            fh.write('{"t": 1.0, "event": "task_do')
        with pytest.warns(UserWarning, match="torn telemetry line"):
            events, torn = read_events(path)
        assert torn == 1
        assert [e["event"] for e in events] == ["task_queued", "task_done"]

    def _trace_file(self, path):
        from repro.obs import trace as obs_trace
        tracer = obs_trace.Tracer()
        tracer.span("runtime", "demo", track="task/0", t0=0.0, t1=1.0)
        obs_trace.write_jsonl(path, tracer)
        return obs_trace

    def test_trace_validate_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs_trace = self._trace_file(path)
        with path.open("a") as fh:
            fh.write('{"record": "span", "layer": "runt')
        with pytest.warns(UserWarning, match="torn"):
            info = obs_trace.validate_jsonl(path)
        assert info["torn"] == 1
        assert info["records"]["span"] == 1
        with pytest.warns(UserWarning, match="torn"):
            data = obs_trace.load_jsonl(path)
        assert data["torn"] == 1
        assert len(data["records"]) == 1

    def test_trace_validate_still_rejects_mid_file_garbage(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs_trace = self._trace_file(path)
        lines = path.read_text().splitlines()
        lines.insert(1, "not json at all")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="not JSON"):
            obs_trace.validate_jsonl(path)


# ---------------------------------------------------------------------------
# End-to-end: SIGKILL mid-campaign, `repro resume`, byte-identical report
# ---------------------------------------------------------------------------

TINY_SPEC = {
    "schema": "repro.scenarios/v1",
    "name": "resilience_tiny",
    "description": "2-cell micro-matrix for kill-resume tests",
    "topology": {"kind": "clos", "rate_bps": 10_000_000_000},
    "workload": {"kind": "poisson", "distribution": "web_search",
                 "load": 0.2, "n_flows": 12,
                 "size_cap_bytes": 200_000},
    "timing": {"drain_ps": 50_000_000_000},
    "seeds": [1],
    "sweep": {"transport.protocol": ["expresspass", "dctcp"]},
    "report": {"compare": "transport.protocol"},
}


def _repro(args, tmp_path, chaos_env=None, check=True, cache="cache"):
    # Each logical run gets its own cache subdir (``cache=``): a baseline
    # must not warm the crash run's cache, or every cell cache-hits and the
    # chaos directive under test never fires.
    env = dict(os.environ,
               PYTHONPATH=str(REPO / "src"),
               REPRO_CACHE_DIR=str(tmp_path / cache),
               REPRO_PROGRESS="0")
    env.pop("REPRO_SELFCHAOS", None)
    env.pop("REPRO_SELFCHAOS_DIR", None)
    if chaos_env:
        env["REPRO_SELFCHAOS"] = chaos_env
        env["REPRO_SELFCHAOS_DIR"] = str(tmp_path / "chaos-markers")
    proc = subprocess.run([sys.executable, "-m", "repro"] + args,
                          capture_output=True, text=True, env=env,
                          cwd=str(REPO), timeout=600)
    if check:
        assert proc.returncode == 0, proc.stderr
    return proc


@pytest.mark.slow
class TestKillResumeEndToEnd:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(TINY_SPEC))
        return str(path)

    def test_parent_sigkill_then_resume_is_byte_identical(self, tmp_path,
                                                          spec_path):
        baseline = tmp_path / "baseline.jsonl"
        resumed = tmp_path / "resumed.jsonl"
        journal = tmp_path / "run.journal.jsonl"
        _repro(["matrix", spec_path,
                "--journal", str(tmp_path / "b.journal.jsonl"),
                "--report-jsonl", str(baseline)], tmp_path, cache="cache-a")

        crash = _repro(["matrix", spec_path, "--journal", str(journal),
                        "--report-jsonl", str(resumed)], tmp_path,
                       chaos_env="parent:kill=1", check=False,
                       cache="cache-b")
        assert crash.returncode == -signal.SIGKILL
        assert not resumed.exists()
        state = load_journal(journal)
        assert state.by_state("done") and state.unfinished()

        _repro(["resume", str(journal)], tmp_path, cache="cache-b")
        assert baseline.read_bytes() == resumed.read_bytes()
        state = load_journal(journal)
        assert state.generation == 1
        assert not state.unfinished()

    def test_worker_sigkill_recovers_within_the_run(self, tmp_path,
                                                    spec_path):
        baseline = tmp_path / "baseline.jsonl"
        survived = tmp_path / "survived.jsonl"
        _repro(["matrix", spec_path, "--journal",
                str(tmp_path / "b.journal.jsonl"),
                "--report-jsonl", str(baseline)], tmp_path, cache="cache-a")
        _repro(["matrix", spec_path, "--parallel", "2",
                "--journal", str(tmp_path / "w.journal.jsonl"),
                "--report-jsonl", str(survived)], tmp_path,
               chaos_env="task:kill=dctcp", cache="cache-b")
        assert baseline.read_bytes() == survived.read_bytes()

    def test_sigint_drains_to_exit_75_and_resumes(self, tmp_path, spec_path):
        journal = tmp_path / "run.journal.jsonl"
        report = tmp_path / "report.jsonl"
        baseline = tmp_path / "baseline.jsonl"
        _repro(["matrix", spec_path,
                "--journal", str(tmp_path / "b.journal.jsonl"),
                "--report-jsonl", str(baseline)], tmp_path, cache="cache-a")

        # parent:int=1 is a deterministic Ctrl-C: the scheduler SIGINTs
        # itself after its first completed cell, so the drain path runs
        # every time instead of racing an external timer.
        proc = _repro(["matrix", spec_path, "--journal", str(journal),
                       "--report-jsonl", str(report)], tmp_path,
                      chaos_env="parent:int=1", check=False,
                      cache="cache-b")
        assert proc.returncode == EXIT_INTERRUPTED, proc.stderr
        assert "resume with" in proc.stderr
        assert not report.exists()
        state = load_journal(journal)
        assert state.by_state("interrupted")

        _repro(["resume", str(journal)], tmp_path, cache="cache-b")
        assert baseline.read_bytes() == report.read_bytes()

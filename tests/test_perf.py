"""repro.perf: the optimisations must be invisible except in speed.

Determinism is the substrate's core contract, so each hot-path feature —
heap compaction, the Event freelist, the port fast path, the profiler —
is run against the golden-trace scenarios with the feature on and off,
asserting bit-identical payloads and event counts.  Plus regression tests
for the structural properties the features provide (bounded heap growth,
event recycling, O(1) pending).
"""

import pytest

from repro import perf
from repro.perf import profile
from repro.sim import engine
from repro.sim.engine import Simulator
from tests.test_golden_traces import SCENARIOS, build_payload


def _events_processed(name: str) -> int:
    tracers = SCENARIOS[name]()
    sim = next(iter(tracers.values())).port.sim
    return sim.events_processed


@pytest.fixture
def defaults(monkeypatch):
    """Pin the perf knobs to their shipped defaults (env-independent)."""
    monkeypatch.setattr(perf, "COMPACT_MIN", 256)
    monkeypatch.setattr(perf, "COMPACT_RATIO", 1)
    monkeypatch.setattr(perf, "FREELIST_MAX", 1024)
    monkeypatch.setattr(perf, "FASTPATH_ENABLED", True)


# --- determinism: features on == features off --------------------------------

@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_disabling_all_optimisations_is_bit_identical(
        name, defaults, monkeypatch):
    fast = build_payload(name)
    fast_events = _events_processed(name)
    monkeypatch.setattr(perf, "COMPACT_MIN", 0)
    monkeypatch.setattr(perf, "FREELIST_MAX", 0)
    monkeypatch.setattr(perf, "FASTPATH_ENABLED", False)
    slow = build_payload(name)
    assert slow == fast
    assert _events_processed(name) == fast_events


@pytest.mark.parametrize("knob", [
    ("COMPACT_MIN", 0),     # no compaction
    ("COMPACT_MIN", 1),     # compact as aggressively as possible
    ("FREELIST_MAX", 0),    # no event recycling
    ("FASTPATH_ENABLED", False),
])
def test_each_knob_alone_is_bit_identical(knob, defaults, monkeypatch):
    name = "dumbbell_expresspass"
    reference = build_payload(name)
    monkeypatch.setattr(perf, *knob)
    assert build_payload(name) == reference


def test_profiler_does_not_perturb_simulation(defaults):
    name = "star_cross_expresspass"
    reference = build_payload(name)
    ref_events = _events_processed(name)
    with profile.profiled() as session:
        payload = build_payload(name)
    assert payload == reference
    report = session.report
    # Exact accounting: one fire() per processed event, across both the
    # payload build and the _events_processed rerun... only the first runs
    # inside the session, so compare against one build's count.
    assert report.events == ref_events
    assert report.simulators == 1
    assert sum(n for _, n, _ in report.top_callbacks(limit=10**6)) \
        == report.events


# --- heap growth under cancellation ------------------------------------------

def test_cancel_storm_keeps_heap_bounded(defaults):
    """10^5 schedule+cancel cycles must not grow the heap past the ratio."""
    sim = Simulator(seed=0)
    anchor = sim.schedule(10**9, lambda: None)  # one live event throughout
    for i in range(100_000):
        sim.schedule(1000 + i, lambda: None).cancel()
        # live=1, so the heap may hold at most COMPACT_MIN garbage entries
        # (plus the live anchor) before compaction fires.
        assert len(sim._heap) <= perf.COMPACT_MIN + 1
        assert sim.pending() == 1
    anchor.cancel()
    sim.run()
    assert sim.events_processed == 0
    assert sim.pending() == 0


def test_no_compaction_when_disabled(monkeypatch):
    monkeypatch.setattr(perf, "COMPACT_MIN", 0)
    sim = Simulator(seed=0)
    for i in range(5_000):
        sim.schedule(1000 + i, lambda: None).cancel()
    assert len(sim._heap) == 5_000  # garbage retained, reaped only on run
    assert sim.pending() == 0
    sim.run()
    assert sim.events_processed == 0
    assert len(sim._heap) == 0


def test_compaction_preserves_pop_order(defaults, monkeypatch):
    monkeypatch.setattr(perf, "COMPACT_MIN", 8)
    sim = Simulator(seed=0)
    fired = []
    for i in (5, 3, 9, 1, 7, 0, 8, 2, 6, 4):
        sim.schedule(i * 1000, fired.append, i)
    for _ in range(50):  # trigger repeated compactions around the live set
        doomed = [sim.schedule(10**6 + i, lambda: None) for i in range(10)]
        for event in doomed:
            event.cancel()
    sim.run(until=9_000)
    assert fired == sorted(fired)
    assert len(fired) == 10


# --- event freelist -----------------------------------------------------------

def test_unref_events_are_recycled(defaults):
    sim = Simulator(seed=0)
    for _ in range(100):
        sim.schedule_unref(100, lambda: None)
    sim.run()
    assert len(sim._freelist) == 100
    before = len(sim._freelist)
    sim.schedule_unref(100, lambda: None)
    assert len(sim._freelist) == before - 1  # popped from the pool
    sim.run()


def test_handle_events_are_never_recycled(defaults):
    sim = Simulator(seed=0)
    events = [sim.schedule(100, lambda: None) for _ in range(50)]
    sim.run()
    assert sim._freelist == []
    # A stale cancel on a fired handle must stay a no-op.
    for event in events:
        event.cancel()
    assert sim.pending() == 0


def test_freelist_respects_cap(defaults, monkeypatch):
    monkeypatch.setattr(perf, "FREELIST_MAX", 16)
    sim = Simulator(seed=0)
    for _ in range(100):
        sim.schedule_unref(100, lambda: None)
    sim.run()
    assert len(sim._freelist) == 16


# --- profiler internals -------------------------------------------------------

def test_profiler_counts_and_reaps():
    with profile.profiled(sample_every=4) as session:
        sim = Simulator(seed=0)
        for i in range(40):
            sim.schedule(i * 1000, lambda: None)
        for i in range(10):
            sim.schedule(10**6 + i, lambda: None).cancel()
        sim.run()
    report = session.report
    assert report.events == 40
    assert report.reaped == 10
    assert report.samples == 40 // 4
    assert report.as_dict()["events"] == 40
    assert "repro.perf.profile" in report.format()


def test_profiler_report_merges_task_summaries():
    with profile.profiled() as session:
        sim = Simulator(seed=0)
        sim.schedule(100, lambda: None)
        sim.run()
    inner = session.report.as_dict()
    merged = profile.ProfileReport()
    merged.add_summary(inner)
    merged.add_summary(inner)
    assert merged.events == 2 * session.report.events
    assert merged.simulators == 2


def test_sessions_nest_without_double_counting():
    with profile.profiled() as outer:
        sim_a = Simulator(seed=0)
        sim_a.schedule(100, lambda: None)
        with profile.profiled() as inner:
            sim_b = Simulator(seed=1)
            for _ in range(3):
                sim_b.schedule(100, lambda: None)
            sim_b.run()
        sim_a.run()
    assert inner.report.events == 3      # inner claimed sim_b...
    assert outer.report.events == 1      # ...so outer saw only sim_a
    assert engine.on_simulator_created is None  # hook fully unwound


def test_runtime_profile_knob_ships_summaries():
    from repro import runtime
    from repro.runtime.task import TaskSpec

    profile.reset_task_summaries()
    specs = [TaskSpec(_events_processed, {"name": "dumbbell_dctcp"})]
    with runtime.using(parallel=0, cache_enabled=False, profile=True,
                       progress=False):
        results = runtime.run_tasks(specs, name="profiled")
    assert results[0].ok
    summary = results[0].profile
    assert summary is not None and summary["events"] == results[0].value
    assert profile.task_summaries()[0][1] == summary
    profile.reset_task_summaries()

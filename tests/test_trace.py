"""Tests for ``repro.obs.trace``: cross-layer causal tracing.

Three concerns, in rough order of importance:

1. *Neutrality* — tracing must be pure observation: golden digests, cell
   rows, and sharded bit-identity are byte-identical with tracing on or
   off (the ``--trace`` flag must never become a heisen-switch).
2. *Determinism of the trace itself* — ids, export order, and the Chrome
   mapping are pure functions of the recorded set, so a fixed run yields
   a structurally fixed trace file.
3. *Fidelity* — spans land on the right layer/track with the right
   linkage (cells → task spans, worker buffers stitched under prefixes).

The module-level task functions live at module scope so the process pool
can pickle them, exactly as in ``test_runtime.py``.
"""

from __future__ import annotations

import json

import pytest

from repro import ExpressPassFlow, ExpressPassParams, runtime
from repro.audit.golden import trace_digest
from repro.net.trace import PortTracer
from repro.obs import trace
from repro.runtime import TaskSpec, run_tasks
from repro.runtime.config import using
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.topology.simple import dumbbell


@pytest.fixture(autouse=True)
def _clean_trace_state():
    """Each test starts and ends with no ambient tracer or env consumption."""
    trace.reset()
    yield
    trace.reset()


def square(x):
    return {"x": x, "sq": x * x}


def _golden_run():
    """A tiny deterministic scenario; returns per-port transmit digests."""
    sim = Simulator(seed=7)
    topo = dumbbell(sim, n_pairs=2)
    tracers = {
        "fwd": PortTracer(topo.bottleneck_fwd),
        "rev": PortTracer(topo.bottleneck_rev),
    }
    ep = ExpressPassParams(rtt_hint_ps=40 * US)
    ExpressPassFlow(topo.senders[0], topo.receivers[0],
                    size_bytes=30_000, params=ep)
    ExpressPassFlow(topo.senders[1], topo.receivers[1],
                    size_bytes=20_000, start_ps=500 * US, params=ep)
    sim.run(until=4 * MS)
    return {name: trace_digest(t.records) for name, t in tracers.items()}


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------

class TestTracer:
    def test_ids_are_deterministic_per_track(self):
        t = trace.Tracer()
        a = t.span("sim", "a", track="engine", t0=0.0, t1=1.0)
        b = t.span("sim", "b", track="engine", t0=1.0, t1=2.0)
        c = t.span("runtime", "c", track="engine", t0=0.0, t1=1.0)
        assert a == "sim/engine#0"
        assert b == "sim/engine#1"
        assert c == "runtime/engine#0"  # seq counters are per (layer, track)

    def test_bounded_buffer_drops(self):
        t = trace.Tracer(max_records=2)
        assert t.span("sim", "a", track="x", t0=0.0, t1=1.0) is not None
        assert t.span("sim", "b", track="x", t0=0.0, t1=1.0) is not None
        assert t.span("sim", "c", track="x", t0=0.0, t1=1.0) is None
        assert len(t.records) == 2
        assert t.dropped == 1

    def test_ingest_prefixes_and_shifts_wall_only(self):
        child = trace.Tracer()
        child.span("sim", "wall", track="engine", t0=1.0, t1=2.0)
        child.span("sim", "simtime", track="engine", clock="sim",
                   t0=100, t1=200)
        child.event("runtime", "tick", track="lane", t=5.0)
        parent = trace.Tracer()
        n = parent.ingest(child.records, prefix="t3.", shift_us=10.0,
                          dropped=2)
        assert n == 3 and parent.dropped == 2
        by_name = {r["name"]: r for r in parent.records}
        assert by_name["wall"]["track"] == "t3.engine"
        assert by_name["wall"]["t0"] == 11.0
        # Sim timestamps are absolute picoseconds: never shifted.
        assert by_name["simtime"]["t0"] == 100
        assert by_name["tick"]["t"] == 15.0
        # Ids are reassigned under the parent's counters.
        assert by_name["wall"]["id"] == "sim/t3.engine#0"

    def test_ingest_blob_rebases_epoch(self):
        parent = trace.Tracer()
        child = trace.Tracer()
        child.epoch = parent.epoch + 0.5  # child booted half a second later
        child.span("sim", "w", track="e", t0=0.0, t1=1.0)
        blob = {"records": child.records, "epoch": child.epoch, "dropped": 0}
        parent.ingest_blob(blob, prefix="shard1/")
        rec = parent.records[-1]
        assert rec["track"] == "shard1/e"
        assert rec["t0"] == pytest.approx(500_000.0)

    def test_sorted_records_is_canonical_order(self):
        t = trace.Tracer()
        t.span("sim", "z", track="b", t0=0.0, t1=1.0)
        t.span("cell", "y", track="a", t0=0.0, t1=1.0)
        t.span("sim", "x", track="a", t0=0.0, t1=1.0)
        keys = [(r["layer"], r["track"], r["seq"])
                for r in t.sorted_records()]
        assert keys == sorted(keys)


# ---------------------------------------------------------------------------
# JSONL export and validation
# ---------------------------------------------------------------------------

def _sample_tracer() -> trace.Tracer:
    t = trace.Tracer()
    t.span("runtime", "task", track="task/0", t0=0.0, t1=9.5,
           args={"index": 0})
    t.span("sim", "engine.run", track="t0.engine", clock="sim",
           t0=0, t1=4_000_000_000, args={"wall_us": 9.0})
    t.event("runtime", "deferred", track="task/0", t=3.0,
            args={"backoff_s": 0.5})
    t.span("shard", "window", track="shard0/lane", t0=0.0, t1=2.0,
           args={"shard": 0, "idle_us": 1.0, "events": 10,
                 "shipped": 3, "received": 4})
    return t


class TestJsonl:
    def test_round_trip_is_byte_identical(self, tmp_path):
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        trace.write_jsonl(p1, _sample_tracer())
        loaded = trace.load_jsonl(p1)
        trace.write_jsonl(p2, loaded["records"],
                          dropped=loaded["meta"]["dropped"])
        assert p1.read_bytes() == p2.read_bytes()

    def test_validator_accepts_written_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        n = trace.write_jsonl(path, _sample_tracer())
        report = trace.validate_jsonl(path)
        assert report["lines"] == n
        assert report["records"]["meta"] == 1
        assert report["records"]["span"] == 3
        assert report["records"]["event"] == 1

    def test_meta_counts_records_and_tracks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.write_jsonl(path, _sample_tracer())
        meta = trace.load_jsonl(path)["meta"]
        assert meta["schema"] == trace.SCHEMA
        assert meta["records"] == 4
        assert meta["tracks"] == 3  # task/0, t0.engine, shard0/lane

    @pytest.mark.parametrize("mutate,hint", [
        (lambda lines: lines[1:], "meta"),             # header gone
        (lambda lines: [lines[0]]
         + [lines[1].replace('"runtime"', '"bogus"')]
         + lines[2:], "layer"),
        (lambda lines: lines + [lines[-1]], "id"),     # duplicate id
        (lambda lines: [lines[0], lines[2], lines[1]]
         + lines[3:], "order"),
    ], ids=["missing-meta", "bad-layer", "duplicate-id", "out-of-order"])
    def test_validator_rejects(self, tmp_path, mutate, hint):
        path = tmp_path / "t.jsonl"
        trace.write_jsonl(path, _sample_tracer())
        lines = path.read_text().splitlines()
        path.write_text("\n".join(mutate(lines)) + "\n")
        with pytest.raises(ValueError):
            trace.validate_jsonl(path)

    def test_validator_rejects_float_sim_times(self, tmp_path):
        t = trace.Tracer()
        t.span("sim", "bad", track="e", clock="sim", t0=0.5, t1=1.5)
        path = tmp_path / "t.jsonl"
        trace.write_jsonl(path, t)
        with pytest.raises(ValueError, match="integer picoseconds"):
            trace.validate_jsonl(path)


# ---------------------------------------------------------------------------
# Chrome / Perfetto export
# ---------------------------------------------------------------------------

class TestChrome:
    def test_layers_become_named_processes(self):
        doc = trace.to_chrome(_sample_tracer().sorted_records())
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"repro:runtime", "repro:sim", "repro:shard"}
        threads = {e["args"]["name"] for e in doc["traceEvents"]
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"task/0", "t0.engine", "shard0/lane"} <= threads

    def test_sim_spans_convert_ps_to_us_and_keep_exact_args(self):
        doc = trace.to_chrome(_sample_tracer().sorted_records())
        sim_span = next(e for e in doc["traceEvents"]
                        if e["ph"] == "X" and e["name"] == "engine.run")
        assert sim_span["ts"] == 0.0
        assert sim_span["dur"] == pytest.approx(4000.0)  # 4 ms in us
        assert sim_span["args"]["t1_ps"] == 4_000_000_000

    def test_instants_and_loadable_output(self, tmp_path):
        path = tmp_path / "t.perfetto.json"
        n = trace.write_chrome(path, _sample_tracer())
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1 and instants[0]["name"] == "deferred"

    def test_export_is_deterministic(self, tmp_path):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        trace.write_chrome(p1, _sample_tracer())
        trace.write_chrome(p2, _sample_tracer())
        assert p1.read_bytes() == p2.read_bytes()


# ---------------------------------------------------------------------------
# Ambient activation and capture buffers
# ---------------------------------------------------------------------------

class TestAmbient:
    def test_off_by_default(self):
        assert trace.emit_target() is None

    def test_activate_deactivate(self):
        t = trace.activate()
        assert trace.emit_target() is t
        assert trace.deactivate() is t
        assert trace.emit_target() is None

    def test_collect_buffers_innermost_wins(self):
        with trace.tracing() as ambient:
            with trace.collect() as col:
                target = trace.emit_target()
                assert target is col.tracer and target is not ambient
                target.span("sim", "inner", track="e", t0=0.0, t1=1.0)
            assert trace.emit_target() is ambient
        assert col.blob is not None
        assert [r["name"] for r in col.blob["records"]] == ["inner"]
        assert not ambient.records  # the buffer captured, not the ambient

    def test_env_var_activates_lazily_once(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "t.jsonl"))
        trace.reset()
        t = trace.current()
        assert t is not None
        assert trace.emit_target() is t
        # Consumed: after an explicit deactivate the env does not silently
        # re-create a tracer (the file write already has one owner).
        trace.deactivate()
        assert trace.current() is None

    def test_tracing_context_restores_prior(self):
        outer = trace.activate()
        with trace.tracing() as inner:
            assert trace.emit_target() is inner
        assert trace.emit_target() is outer


# ---------------------------------------------------------------------------
# Runtime-layer recording through the real scheduler
# ---------------------------------------------------------------------------

class TestTaskRecording:
    def test_serial_run_records_task_and_worker_spans(self):
        with using(parallel=0, cache_enabled=False):
            with trace.tracing() as t:
                results = run_tasks([TaskSpec(square, {"x": 3},
                                              label="sq3")])
        assert results[0].ok
        spans = [r for r in t.records if r["record"] == "span"
                 and r["layer"] == "runtime"]
        task = next(s for s in spans if s["track"] == "task/0")
        assert task["name"] == "sq3"
        assert task["args"]["outcome"] == "done"
        assert any(s["track"].startswith("worker/") for s in spans)
        assert 0 in t.task_spans
        assert t.task_spans[0]["id"] == task["id"]

    def test_pool_run_stitches_worker_lanes(self):
        specs = [TaskSpec(square, {"x": i}, label=f"sq{i}")
                 for i in range(3)]
        with using(parallel=2, cache_enabled=False):
            with trace.tracing() as t:
                results = run_tasks(specs)
        assert all(r.ok for r in results)
        names = {r["name"] for r in t.records
                 if r["layer"] == "runtime" and r["record"] == "span"
                 and r["track"].startswith("task/")}
        assert {"sq0", "sq1", "sq2"} <= names
        lanes = {r["track"] for r in t.records
                 if r["layer"] == "runtime" and r["name"] == "run"}
        assert lanes and all(l.startswith("worker/") for l in lanes)
        assert set(t.task_spans) == {0, 1, 2}

    def test_cache_hit_outcome_and_annotations(self, tmp_path):
        spec = TaskSpec(square, {"x": 9}, label="annotated")
        with using(parallel=0, cache_dir=tmp_path):
            run_tasks([spec])  # warm, untraced
            with trace.tracing() as t:
                t.annotate("annotated", {"protocol": "expresspass"})
                results = run_tasks([spec])
        assert results[0].cached
        task = next(r for r in t.records if r["track"] == "task/0"
                    and r["record"] == "span")
        assert task["args"]["outcome"] == "cache-hit"
        assert task["args"]["protocol"] == "expresspass"


# ---------------------------------------------------------------------------
# Neutrality: tracing changes nothing it observes
# ---------------------------------------------------------------------------

class TestNeutrality:
    def test_golden_digests_identical_with_tracing(self):
        baseline = _golden_run()
        with trace.tracing() as t:
            traced = _golden_run()
        assert traced == baseline
        assert any(r["name"] == "engine.run" for r in t.records)

    def test_golden_digests_identical_under_env_activation(
            self, monkeypatch, tmp_path):
        baseline = _golden_run()
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "env.jsonl"))
        trace.reset()
        traced = _golden_run()
        assert trace.current() is not None  # the env actually engaged
        assert traced == baseline

    def test_sharded_row_bit_identical_with_tracing(self):
        from repro.scenarios.cells import run_persistent

        kw = dict(protocol="expresspass", n_flows=3, topology="dumbbell",
                  warmup_ps=2 * MS, measure_ps=2 * MS, bin_ps=500 * US,
                  seed=5, prop_delay_ps=3_333_333)
        serial = run_persistent(**kw)
        with using(shards=2):
            with trace.tracing() as t:
                sharded = run_persistent(**kw)
        # Exact dict equality, floats included — same pin as
        # test_sharded.py, now with the tracer in the loop.
        assert sharded == serial
        windows = [r for r in t.records if r["layer"] == "shard"
                   and r["name"] == "window"]
        assert {r["args"]["shard"] for r in windows} == {0, 1}
        assert any(r["name"] == "window.grant" for r in t.records)
        assert any(r["name"] == "merge" for r in t.records)
        summary = trace.summarize(t.records)
        assert set(summary["shards"]) == {0, 1}
        for s in summary["shards"].values():
            assert s["windows"] > 0
            assert 0.0 <= s["idle_frac"] <= 1.0

    def test_matrix_serial_vs_sharded_same_span_names(self):
        from repro.scenarios import Scenario, run_matrix

        spec = {
            "schema": "repro.scenarios/v1",
            "name": "trace-shards",
            "topology": {"kind": "dumbbell", "prop_delay_ps": 3_456_789},
            "workload": {"kind": "persistent", "n_flows": 2},
            "transport": {"protocol": "expresspass"},
            "timing": {"warmup_ps": 2 * MS, "measure_ps": 2 * MS},
        }
        scenario = Scenario.from_dict(spec)
        with using(cache_enabled=False):
            with trace.tracing() as t_serial:
                serial = run_matrix(scenario)
            with using(shards=2):
                with trace.tracing() as t_sharded:
                    sharded = run_matrix(scenario)
        assert [r.value for r in serial.results] == \
            [r.value for r in sharded.results]

        def names(tracer, layer):
            return {r["name"] for r in tracer.records
                    if r["layer"] == layer and r["record"] == "span"}

        # Same cells, same tasks — the execution strategy only changes
        # which *shard/sim* tracks appear underneath them.
        for layer in ("cell", "runtime"):
            assert names(t_serial, layer) == names(t_sharded, layer)
        cell = next(r for r in t_sharded.records if r["layer"] == "cell")
        assert cell["link"] in {r["id"] for r in t_sharded.records}
        assert cell["args"]["scenario"] == "trace-shards"
        assert cell["args"]["seed"] == 1


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------

class TestSummarize:
    def test_layer_sinks_and_shard_table(self):
        summary = trace.summarize(_sample_tracer().sorted_records())
        assert summary["layers"]["runtime"]["task"]["count"] == 1
        assert summary["layers"]["runtime"]["task"]["total_us"] == 9.5
        # Sim spans contribute their wall_us arg, not picoseconds.
        assert summary["layers"]["sim"]["engine.run"]["total_us"] == 9.0
        shard = summary["shards"][0]
        assert shard["windows"] == 1 and shard["events"] == 10
        assert shard["busy_us"] == 2.0 and shard["idle_us"] == 1.0
        assert shard["idle_frac"] == pytest.approx(1.0 / 3.0, abs=1e-4)

    def test_format_summary_renders(self):
        text = trace.format_summary(
            trace.summarize(_sample_tracer().sorted_records()))
        assert "top time sinks" in text
        assert "imbalance" in text
        assert "engine.run" in text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def test_validate_and_summarize_verbs(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.jsonl"
        trace.write_jsonl(path, _sample_tracer())
        assert main(["trace", "validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out
        assert main(["trace", "summarize", str(path)]) == 0
        assert "top time sinks" in capsys.readouterr().out

    def test_verbs_fail_cleanly_on_bad_input(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "nope.jsonl"
        assert main(["trace", "validate", str(missing)]) == 1
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", "validate", str(bad)]) == 1

"""Tests for ``repro.runtime``: determinism, caching, and fault tolerance.

The module-level functions below are the sweep tasks — they must live at
module scope (not inside a test) so the process pool can pickle them by
qualified name, exactly like the experiments' ``run_point`` functions.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro import runtime
from repro.experiments import fig15_flow_scalability
from repro.experiments.runner import run_sweep
from repro.runtime import (
    ResultCache,
    RuntimeConfig,
    SweepError,
    SweepPlan,
    TaskSpec,
    Telemetry,
    run_tasks,
    stable_repr,
    task_id,
)
from repro.sim.units import MS


def cube(x, seed=1):
    return {"x": x, "cube": x ** 3, "seed": seed}


def flaky_once(marker):
    """Fails on the first call, succeeds after (state = a marker file)."""
    path = pathlib.Path(marker)
    if not path.exists():
        path.write_text("attempted")
        raise RuntimeError("transient failure")
    return "recovered"


def always_fails():
    raise ValueError("permanently broken task")


def slow_ok(delay_s, tag=0):
    import time
    time.sleep(delay_s)
    return {"tag": tag}


def fails_after(delay_s):
    import time
    time.sleep(delay_s)
    raise ValueError("boom after sleeping")


FIG15_KWARGS = dict(protocols=("expresspass",), flow_counts=(2, 3),
                    warmup_ps=2 * MS, measure_ps=2 * MS)


class TestStableRepr:
    def test_dict_order_independent(self):
        assert stable_repr({"a": 1, "b": 2}) == stable_repr({"b": 2, "a": 1})

    def test_tuple_vs_list_distinct(self):
        assert stable_repr((1, 2)) != stable_repr([1, 2])

    def test_dataclass_fields(self):
        from repro.core import ExpressPassParams

        a = ExpressPassParams(w_init=0.25)
        b = ExpressPassParams(w_init=0.25)
        c = ExpressPassParams(w_init=0.125)
        assert stable_repr(a) == stable_repr(b)
        assert stable_repr(a) != stable_repr(c)
        assert "ExpressPassParams" in stable_repr(a)

    def test_callable_by_qualname(self):
        assert "cube" in stable_repr(cube)

    def test_task_id_includes_seed(self):
        assert task_id(cube, {"x": 1, "seed": 7}) != task_id(
            cube, {"x": 1, "seed": 8})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for(TaskSpec(cube, {"x": 2}))
        hit, _ = cache.get(key)
        assert not hit
        assert cache.put(key, {"rows": [1, 2]}, task="t", elapsed_s=0.5)
        hit, value = cache.get(key)
        assert hit and value == {"rows": [1, 2]}

    def test_key_depends_on_kwargs(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert (cache.key_for(TaskSpec(cube, {"x": 1}))
                != cache.key_for(TaskSpec(cube, {"x": 2})))
        assert (cache.key_for(TaskSpec(cube, {"x": 1}))
                == cache.key_for(TaskSpec(cube, {"x": 1})))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for(TaskSpec(cube, {"x": 3}))
        cache.put(key, "value")
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        hit, _ = cache.get(key)
        assert not hit
        assert not (tmp_path / f"{key}.pkl").exists()  # pruned

    def test_unpicklable_value_not_stored(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert not cache.put("k" * 64, lambda: None)

    # Torn or garbage entry bytes surface as very different exception types
    # from pickle.load / the entry["value"] lookup; every one of them must
    # count as a miss and prune the entry, never crash the sweep.
    TORN_BLOBS = [
        ("empty-file", b""),                         # EOFError
        ("truncated-frame", b"\x80\x05\x95"),        # UnpicklingError
        ("bad-int-literal", b"I123x\n."),            # ValueError
        ("bad-utf8-string",
         b"\x80\x04X\x04\x00\x00\x00\xff\xfe\xff\xfe."),  # UnicodeDecodeError
        ("non-dict-entry", __import__("pickle").dumps(5)),   # TypeError
        ("missing-value-key",
         __import__("pickle").dumps({"task": "t"})),  # KeyError
    ]

    @pytest.mark.parametrize("blob", [b for _n, b in TORN_BLOBS],
                             ids=[n for n, _b in TORN_BLOBS])
    def test_torn_entry_is_a_miss_not_a_crash(self, tmp_path, blob):
        cache = ResultCache(tmp_path)
        key = cache.key_for(TaskSpec(cube, {"x": 7}))
        assert cache.put(key, "value")
        (tmp_path / f"{key}.pkl").write_bytes(blob)
        hit, _ = cache.get(key)
        assert not hit
        assert not (tmp_path / f"{key}.pkl").exists()  # pruned

    def test_put_eviction_is_rate_limited(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        scans = []
        orig = ResultCache.evict
        cache.evict = lambda: scans.append(1) or orig(cache)
        for i in range(40):
            cache.put(cache.key_for(TaskSpec(cube, {"x": i})), i)
        # One scan on the first put of the instance's lifetime, then one
        # every _EVICT_EVERY puts — not one per put (quadratic over sweeps).
        assert len(scans) == 2
        # Between scans the caps may be overshot, but only boundedly.
        assert cache.stats()["entries"] <= 2 + ResultCache._EVICT_EVERY - 1
        assert ResultCache(tmp_path, max_entries=2).evict() >= 0

    def test_first_put_bounds_leftover_growth(self, tmp_path):
        # Entries left behind by earlier processes are pruned by a fresh
        # instance's very first put, not only after _EVICT_EVERY writes.
        import os
        old = ResultCache(tmp_path, max_entries=1000)
        for i in range(10):
            key = old.key_for(TaskSpec(cube, {"x": i}))
            old.put(key, i)
            os.utime(tmp_path / f"{key}.pkl", (1000 + i, 1000 + i))
        fresh = ResultCache(tmp_path, max_entries=3)
        fresh.put(fresh.key_for(TaskSpec(cube, {"x": 99})), 99)
        assert fresh.stats()["entries"] <= 3

    def test_entry_cap_evicts_lru(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=3)
        keys = [cache.key_for(TaskSpec(cube, {"x": i})) for i in range(5)]
        for i, key in enumerate(keys):
            cache.put(key, i)
            # Spread mtimes so LRU ordering is well-defined even on coarse
            # filesystem timestamps.
            entry = tmp_path / f"{key}.pkl"
            import os
            os.utime(entry, (1000 + i, 1000 + i))
        cache.evict()
        stats = cache.stats()
        assert stats["entries"] == 3
        assert not cache.get(keys[0])[0]  # oldest gone
        assert cache.get(keys[4])[0]      # newest kept

    def test_size_cap_evicts(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1)
        key = cache.key_for(TaskSpec(cube, {"x": 9}))
        cache.put(key, list(range(1000)))
        assert cache.stats()["entries"] == 0

    def test_torn_prune_counter_persists(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for(TaskSpec(cube, {"x": 11}))
        cache.put(key, "value")
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        assert not cache.get(key)[0]
        assert cache.counters()["torn_pruned"] == 1
        assert cache.stats()["torn_pruned"] == 1
        # Torn prunes flush immediately: a fresh instance (another process,
        # another day) still sees the count.
        assert ResultCache(tmp_path).counters()["torn_pruned"] == 1

    def test_eviction_scan_skip_counter(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=100)
        for i in range(5):
            cache.put(cache.key_for(TaskSpec(cube, {"x": i})), i)
        # First put of the instance scans; the next four ride the
        # amortization window and are counted as skipped.
        assert cache.counters()["eviction_scans_skipped"] == 4
        assert cache.stats()["eviction_scans_skipped"] == 4
        # The sidecar never masquerades as a cache entry.
        assert cache.stats()["entries"] == 5

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(4):
            cache.put(cache.key_for(TaskSpec(cube, {"x": i})), i)
        assert cache.stats()["entries"] == 4
        assert cache.clear() == 4
        assert cache.stats()["entries"] == 0


class TestConfig:
    def test_from_env(self):
        cfg = RuntimeConfig.from_env({"REPRO_PARALLEL": "4",
                                      "REPRO_NO_CACHE": "1",
                                      "REPRO_RETRIES": "0",
                                      "REPRO_TASK_TIMEOUT": "2.5"})
        assert cfg.parallel == 4
        assert not cfg.cache_enabled
        assert cfg.retries == 0
        assert cfg.task_timeout_s == 2.5

    def test_using_restores(self):
        before = runtime.get_config()
        with runtime.using(parallel=7):
            assert runtime.get_config().parallel == 7
        assert runtime.get_config().parallel == before.parallel


class TestScheduler:
    def test_results_in_grid_order(self, tmp_path):
        plan = SweepPlan.from_grid(cube, [{"x": i} for i in range(6)])
        with runtime.using(parallel=0, cache_dir=tmp_path):
            results = run_tasks(plan)
        assert [r.index for r in results] == list(range(6))
        assert [r.value["cube"] for r in results] == [i ** 3 for i in range(6)]

    def test_parallel_matches_serial(self, tmp_path):
        plan = SweepPlan.from_grid(cube, [{"x": i} for i in range(6)])
        with runtime.using(parallel=0, cache_dir=tmp_path / "serial"):
            serial = run_tasks(plan)
        with runtime.using(parallel=2, cache_dir=tmp_path / "par"):
            parallel = run_tasks(plan)
        assert [r.value for r in serial] == [r.value for r in parallel]
        assert not any(r.cached for r in parallel)

    def test_cached_rerun_hits_100_percent(self, tmp_path):
        plan = SweepPlan.from_grid(cube, [{"x": i} for i in range(4)])
        with runtime.using(parallel=0, cache_dir=tmp_path):
            first = run_tasks(plan)
            tel = Telemetry("rerun", len(plan), progress=False)
            second = run_tasks(plan, telemetry=tel)
        assert [r.value for r in first] == [r.value for r in second]
        assert all(r.cached for r in second)
        assert tel.hit_rate() == 1.0

    def test_failing_task_is_retried_then_recovers(self, tmp_path):
        marker = tmp_path / "marker"
        with runtime.using(parallel=0, cache_enabled=False, retries=2,
                           backoff_s=0.0):
            results = run_tasks([TaskSpec(flaky_once,
                                          {"marker": str(marker)})])
        assert results[0].ok
        assert results[0].value == "recovered"
        assert results[0].attempts == 2

    def test_permanent_failure_does_not_kill_sweep(self, tmp_path):
        tasks = [TaskSpec(always_fails, {}, label="bad"),
                 TaskSpec(cube, {"x": 5}, label="good")]
        for workers in (0, 2):
            with runtime.using(parallel=workers, cache_enabled=False,
                               retries=1, backoff_s=0.0):
                results = run_tasks(tasks)
            bad, good = results
            assert not bad.ok and "permanently broken" in bad.error
            assert bad.attempts == 2  # initial try + 1 retry
            assert good.ok and good.value["cube"] == 125

    def test_pool_backoff_does_not_stall_collection(self, tmp_path):
        # A retry backoff must never sleep on the dispatcher thread: while
        # the flaky task waits out its (long) backoff window, the other
        # tasks' completed futures are collected.  The telemetry stream
        # orders the proof: both ok tasks finish before the flaky task's
        # second attempt even starts.
        log = tmp_path / "events.jsonl"
        marker = tmp_path / "marker"
        tasks = [TaskSpec(flaky_once, {"marker": str(marker)}, label="flaky"),
                 TaskSpec(slow_ok, {"delay_s": 0.2, "tag": 0}, label="ok0"),
                 TaskSpec(slow_ok, {"delay_s": 0.2, "tag": 1}, label="ok1")]
        with runtime.using(parallel=3, cache_enabled=False, retries=1,
                           backoff_s=1.0, telemetry_path=log):
            results = run_tasks(tasks)
        assert results[0].ok and results[0].value == "recovered"
        assert results[0].attempts == 2
        assert results[1].ok and results[2].ok
        events = [json.loads(line) for line in log.read_text().splitlines()]
        ok_done = [i for i, e in enumerate(events)
                   if e["event"] == "task_done"
                   and e["label"].startswith("ok")]
        retry_start = [i for i, e in enumerate(events)
                       if e["event"] == "task_started"
                       and e["label"] == "flaky" and e["attempt"] == 2]
        assert len(ok_done) == 2 and len(retry_start) == 1
        assert max(ok_done) < retry_start[0]
        # The backoff window itself is observable: a task_deferred event
        # (with the wait and its due time) when the retry parks, and a
        # task_resubmitted event when it re-enters the pool.
        deferred = [e for e in events if e["event"] == "task_deferred"]
        resubmitted = [e for e in events if e["event"] == "task_resubmitted"]
        assert len(deferred) == 1 and deferred[0]["label"] == "flaky"
        assert deferred[0]["backoff_s"] == pytest.approx(1.0)
        assert deferred[0]["due_t"] > 0
        assert len(resubmitted) == 1 and resubmitted[0]["attempt"] == 2
        summary = events[-1]
        assert summary["event"] == "sweep_done"
        assert summary["deferred"] == 1 and summary["resubmitted"] == 1

    def test_serial_backoff_emits_deferral_events(self, tmp_path):
        # The serial path reports the same deferral lifecycle as the pool:
        # parked (task_deferred) then re-run (task_resubmitted).
        log = tmp_path / "events.jsonl"
        marker = tmp_path / "marker"
        with runtime.using(parallel=0, cache_enabled=False, retries=1,
                           backoff_s=0.01, telemetry_path=log):
            results = run_tasks([TaskSpec(flaky_once,
                                          {"marker": str(marker)},
                                          label="flaky")])
        assert results[0].ok and results[0].attempts == 2
        events = [json.loads(line) for line in log.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds.count("task_deferred") == 1
        assert kinds.count("task_resubmitted") == 1
        assert kinds.index("task_deferred") < kinds.index("task_resubmitted")

    def test_pool_failure_records_wall_time(self):
        with runtime.using(parallel=2, cache_enabled=False, retries=0):
            results = run_tasks([TaskSpec(fails_after, {"delay_s": 0.2},
                                          label="f")])
        assert not results[0].ok
        assert "boom after sleeping" in results[0].error
        # The pool path must record submission-to-failure wall time, not 0.
        assert results[0].wall_s >= 0.15

    def test_unpicklable_task_degrades_to_serial(self):
        with runtime.using(parallel=2, cache_enabled=False):
            results = run_tasks([TaskSpec(lambda: "inline", {}, "lambda")])
        assert results[0].ok
        assert results[0].value == "inline"

    def test_telemetry_jsonl(self, tmp_path):
        log = tmp_path / "events.jsonl"
        with runtime.using(parallel=0, cache_dir=tmp_path / "cache",
                           telemetry_path=log):
            run_tasks(SweepPlan.from_grid(cube, [{"x": 1}, {"x": 2}]))
        events = [json.loads(line) for line in log.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds.count("task_done") == 2
        assert kinds[-1] == "sweep_done"
        summary = events[-1]
        assert summary["done"] == 2 and summary["failed"] == 0


class TestRunSweep:
    def test_all_tasks_failing_raises(self):
        with runtime.using(parallel=0, cache_enabled=False, retries=0):
            with pytest.raises(SweepError) as info:
                run_sweep(always_fails, [{}, {}])
        assert len(info.value.failures) == 2

    def test_partial_failure_drops_row(self, tmp_path):
        marker = tmp_path / "m"
        with runtime.using(parallel=0, cache_enabled=False, retries=0):
            rows = run_sweep(flaky_once,
                             [{"marker": str(marker)},
                              {"marker": str(marker)}])
        assert rows == ["recovered"]  # first attempt failed, no retries

    def test_strict_raises_on_any_failure(self, tmp_path):
        marker = tmp_path / "m"
        with runtime.using(parallel=0, cache_enabled=False, retries=0):
            with pytest.raises(SweepError):
                run_sweep(flaky_once,
                          [{"marker": str(marker)},
                           {"marker": str(marker)}], strict=True)


class TestExperimentDeterminism:
    """The acceptance criterion: serial == parallel == cached, bit-identical."""

    def test_fig15_serial_parallel_cached_identical(self, tmp_path):
        with runtime.using(parallel=0, cache_dir=tmp_path / "serial"):
            serial = fig15_flow_scalability.run(**FIG15_KWARGS)
        with runtime.using(parallel=2, cache_dir=tmp_path / "par"):
            parallel = fig15_flow_scalability.run(**FIG15_KWARGS)
        assert serial.rows == parallel.rows
        # Bit-identical, not merely approximately equal: json renders every
        # float with its exact shortest repr, so equal strings means equal
        # bit patterns.  (pickle bytes can differ in memo framing even for
        # equal values, so they are not a valid identity probe.)
        assert (json.dumps(serial.rows, sort_keys=True)
                == json.dumps(parallel.rows, sort_keys=True))
        # Warm rerun out of the parallel run's cache.
        with runtime.using(parallel=0, cache_dir=tmp_path / "par"):
            cached = fig15_flow_scalability.run(**FIG15_KWARGS)
        assert cached.rows == serial.rows

    def test_summary_runs_through_runtime(self, tmp_path):
        from repro.experiments import summary

        with runtime.using(parallel=0, cache_dir=tmp_path):
            result = summary.run(seed=1)
        assert result.meta["all_ok"]
        # Second run: every simulation-backed check comes from the cache
        # and the verdicts are unchanged.
        with runtime.using(parallel=0, cache_dir=tmp_path):
            again = summary.run(seed=1)
        assert again.rows == result.rows

"""Tests for Algorithm 1 (CreditFeedbackControl) and its §4 properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CreditFeedbackControl, ExpressPassParams


def make(alpha=0.5, w_init=0.5, w_min=0.01, target_loss=0.1, naive=False,
         max_rate=1000.0):
    params = ExpressPassParams(initial_rate_fraction=alpha, w_init=w_init,
                               w_min=w_min, target_loss=target_loss, naive=naive)
    return CreditFeedbackControl(params, max_rate)


class TestAlgorithmSteps:
    def test_initial_rate(self):
        fb = make(alpha=0.25)
        assert fb.cur_rate == 250.0

    def test_naive_pins_max_rate(self):
        fb = make(naive=True)
        assert fb.cur_rate == 1000.0
        fb.update(0.9)
        assert fb.cur_rate == 1000.0

    def test_increase_moves_toward_ceiling(self):
        fb = make(alpha=0.1, w_init=0.5)
        fb.update(0.0)
        # (1-w)*100 + w*1100 = 600
        assert fb.cur_rate == pytest.approx(600.0)

    def test_decrease_matches_survived_rate(self):
        fb = make(alpha=1.0)
        fb.cur_rate = 1000.0
        fb.update(0.5)
        assert fb.cur_rate == pytest.approx(1000 * 0.5 * 1.1)

    def test_w_halves_on_decrease(self):
        fb = make(w_init=0.4)
        fb.update(0.9)
        assert fb.w == 0.2

    def test_w_floors_at_w_min(self):
        fb = make(w_init=0.02, w_min=0.01)
        fb.update(0.9)
        fb.update(0.9)
        fb.update(0.9)
        assert fb.w == 0.01

    def test_w_grows_only_after_consecutive_increases(self):
        fb = make(w_init=0.1)
        fb.update(0.0)  # first increase: w unchanged
        assert fb.w == pytest.approx(0.1)
        fb.update(0.0)  # second: w -> (0.1+0.5)/2
        assert fb.w == pytest.approx(0.3)

    def test_decrease_resets_increase_streak(self):
        fb = make(w_init=0.1)
        fb.update(0.0)
        fb.update(0.9)  # w -> 0.05
        fb.update(0.0)  # first increase after decrease: w unchanged
        assert fb.w == pytest.approx(0.05)

    def test_loss_at_target_counts_as_increase(self):
        fb = make()
        before = fb.cur_rate
        fb.update(0.1)  # == target_loss
        assert fb.cur_rate > before
        assert fb.increases == 1

    def test_rate_capped_at_ceiling(self):
        fb = make(alpha=1.0, w_init=0.5)
        for _ in range(20):
            fb.update(0.0)
        assert fb.cur_rate <= fb.ceiling + 1e-9

    def test_rate_floored_above_zero(self):
        fb = make()
        for _ in range(50):
            fb.update(1.0)
        assert fb.cur_rate > 0

    def test_invalid_loss_rejected(self):
        fb = make()
        with pytest.raises(ValueError):
            fb.update(-0.1)
        with pytest.raises(ValueError):
            fb.update(1.1)

    def test_invalid_max_rate_rejected(self):
        with pytest.raises(ValueError):
            CreditFeedbackControl(ExpressPassParams(), 0)


class TestParamsValidation:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            ExpressPassParams(initial_rate_fraction=0)
        with pytest.raises(ValueError):
            ExpressPassParams(initial_rate_fraction=1.5)

    def test_w_ordering(self):
        with pytest.raises(ValueError):
            ExpressPassParams(w_min=0.3, w_init=0.2)

    def test_target_loss_bounds(self):
        with pytest.raises(ValueError):
            ExpressPassParams(target_loss=1.0)

    def test_with_alpha_helper(self):
        p = ExpressPassParams().with_alpha(1 / 16)
        assert p.initial_rate_fraction == 1 / 16
        assert p.w_init == 0.5
        q = ExpressPassParams().with_alpha(1 / 16, 1 / 16)
        assert q.w_init == 1 / 16


def synchronized_model(n, params, periods, initial=None, capacity=1.0):
    """The §4 discrete model: shared exact loss each period."""
    fbs = [CreditFeedbackControl(params, 1.0) for _ in range(n)]
    if initial:
        for fb, r in zip(fbs, initial):
            fb.cur_rate = r
    for _ in range(periods):
        agg = sum(fb.cur_rate for fb in fbs)
        loss = max(0.0, 1 - capacity / agg) if agg else 0.0
        for fb in fbs:
            fb.update(loss)
    return [fb.cur_rate for fb in fbs]


class TestConvergence:
    """§4: rates converge to C/N regardless of initial conditions."""

    @pytest.mark.parametrize("n", [2, 4, 16])
    def test_converges_to_fair_share(self, n):
        params = ExpressPassParams()
        rates = synchronized_model(
            n, params, periods=400,
            initial=[(i + 1) * 0.9 / n for i in range(n)],
        )
        fair = 1.0 / n
        # Terminal rates sit within the paper's oscillation band:
        # between C/N and C/N * (1+target_loss) * (1+(N-1)*w_min)  (Eq. 5/6).
        upper = fair * 1.3 * (1 + (n - 1) * params.w_min)
        for rate in rates:
            assert fair * 0.75 <= rate <= upper

    def test_oscillation_bounded_by_d_star(self):
        n = 8
        params = ExpressPassParams()
        fbs = [CreditFeedbackControl(params, 1.0) for _ in range(n)]
        for fb, r in zip(fbs, [(i + 1) / n for i in range(n)]):
            fb.cur_rate = r
        history = []
        for _ in range(300):
            agg = sum(fb.cur_rate for fb in fbs)
            loss = max(0.0, 1 - 1.0 / agg)
            for fb in fbs:
                fb.update(loss)
            history.append([fb.cur_rate for fb in fbs])
        d_star = params.w_min * (1 + params.target_loss) * (1 - 1 / n)
        last_deltas = [
            abs(a - b)
            for prev, cur in zip(history[-20:], history[-19:])
            for a, b in zip(prev, cur)
        ]
        assert max(last_deltas) <= d_star * 1.5

    def test_w_converges_to_w_min(self):
        params = ExpressPassParams()
        fbs = [CreditFeedbackControl(params, 1.0) for _ in range(4)]
        for _ in range(300):
            agg = sum(fb.cur_rate for fb in fbs)
            loss = max(0.0, 1 - 1.0 / agg)
            for fb in fbs:
                fb.update(loss)
        assert all(fb.w == params.w_min for fb in fbs)


@settings(deadline=None, max_examples=40)
@given(
    losses=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                    max_size=100),
    alpha=st.floats(min_value=0.01, max_value=1.0),
)
def test_rate_always_within_bounds(losses, alpha):
    """Invariant: cur_rate stays in (0, ceiling] for any loss sequence."""
    fb = make(alpha=alpha)
    for loss in losses:
        rate = fb.update(loss)
        assert 0 < rate <= fb.ceiling + 1e-9
        assert fb.params.w_min <= fb.w <= fb.params.w_max

"""Fluid-vs-packet agreement: the fast backend is pinned to the slow one.

The fluid backend (:mod:`repro.sim.fluid`) trades per-packet fidelity for
speed; its license to exist is staying inside *declared* tolerances of the
packet engine on the steady-state metrics the scenario matrix reports.
This suite runs both backends on the same (protocol, topology) cells over
identical measurement windows and asserts agreement on utilization, Jain
fairness, peak queue, and convergence time.

Tolerance notes (all measured against the packet engine at seed 1):

- ``UTIL_TOL``: aggregate utilization is the fluid model's calibrated
  quantity and agrees to < 0.01 everywhere; 0.05 leaves seed headroom.
- ``FAIRNESS_TOL``: per-flow splits depend on packet-level event ordering
  the fluid model deliberately averages away.  The dumbbell band covers
  credit-race jitter; fat-tree is loosest because the packet fabric's
  per-flow ECMP hash outcomes vary where the fluid fabric models the
  *average* collision group (see ``_fluid_fabric``).
- ``QUEUE_TOL_KB``: the fluid standing queue is a per-protocol constant
  (ExpressPass bounded at a few MTU, DCTCP at its marking threshold), so
  the band is absolute, per protocol.
- ``CONV_TOL_MS``: both backends report first-sustained-throughput over
  500 us bins, so agreement is only meaningful to a bin or three.
"""

from __future__ import annotations

import pytest

from repro.scenarios.cells import run_persistent
from repro.sim.fluid import (
    PROTOCOL_DYNAMICS,
    fluid_fct_point,
    fluid_join_convergence,
    run_fluid,
)
from repro.sim.units import GBPS, MS

# -- declared agreement tolerances -------------------------------------------

UTIL_TOL = 0.05
FAIRNESS_TOL = {"dumbbell": 0.15, "parking_lot": 0.10, "fat_tree": 0.30}
QUEUE_TOL_KB = {"expresspass": 12.0, "dctcp": 25.0}
CONV_TOL_MS = 1.5

#: Short but post-convergence windows: every protocol under test reaches
#: steady state well inside 5 ms at 10 G.
WARMUP_PS = 5 * MS
MEASURE_PS = 5 * MS

AGREEMENT_CASES = [
    ("expresspass", "dumbbell", None),
    ("expresspass", "parking_lot", None),
    ("expresspass", "fat_tree", {"k": 4}),
    ("dctcp", "dumbbell", None),
]


@pytest.mark.parametrize(
    "protocol,topology,topo_params", AGREEMENT_CASES,
    ids=[f"{p}-{t}" for p, t, _ in AGREEMENT_CASES])
def test_fluid_agrees_with_packet(protocol, topology, topo_params):
    common = dict(protocol=protocol, n_flows=4, topology=topology,
                  topo_params=topo_params, warmup_ps=WARMUP_PS,
                  measure_ps=MEASURE_PS, seed=1)
    packet = run_persistent(**common)
    fluid = run_fluid(**common)

    assert fluid["backend"] == "fluid"
    assert abs(fluid["utilization"] - packet["utilization"]) <= UTIL_TOL, \
        f"utilization: fluid {fluid['utilization']:.4f} " \
        f"vs packet {packet['utilization']:.4f}"
    assert abs(fluid["fairness"] - packet["fairness"]) \
        <= FAIRNESS_TOL[topology], \
        f"fairness: fluid {fluid['fairness']:.4f} " \
        f"vs packet {packet['fairness']:.4f}"
    assert abs(fluid["max_queue_kb"] - packet["max_queue_kb"]) \
        <= QUEUE_TOL_KB[protocol], \
        f"queue: fluid {fluid['max_queue_kb']:.1f} " \
        f"vs packet {packet['max_queue_kb']:.1f} kB"
    assert packet["convergence_ms"] >= 0 and fluid["convergence_ms"] >= 0
    assert abs(fluid["convergence_ms"] - packet["convergence_ms"]) \
        <= CONV_TOL_MS


def test_fluid_row_shape_matches_packet():
    """Matrix plumbing reads both row kinds off one shape."""
    common = dict(protocol="expresspass", n_flows=2,
                  warmup_ps=WARMUP_PS, measure_ps=MEASURE_PS)
    packet = run_persistent(**common)
    fluid = run_fluid(**common)
    assert set(fluid) - set(packet) == {"backend"}
    assert fluid["data_drops"] == 0


def test_fluid_is_deterministic():
    kwargs = dict(protocol="expresspass", n_flows=4,
                  topology="parking_lot", warmup_ps=WARMUP_PS,
                  measure_ps=MEASURE_PS)
    assert run_fluid(**kwargs) == run_fluid(**kwargs)


def test_every_protocol_has_fluid_dynamics():
    """Any protocol the runner can sweep must run on the fluid backend."""
    from repro.experiments.runner import PROTOCOLS

    for protocol in PROTOCOLS:
        assert protocol in PROTOCOL_DYNAMICS
        row = run_fluid(protocol=protocol, n_flows=2,
                        warmup_ps=MS, measure_ps=MS)
        assert 0.0 < row["utilization"] <= 1.001


# -- trend modes (Figs 16 and 18) --------------------------------------------

def test_join_convergence_trends():
    """Fig 16's class structure: ExpressPass/RCP in a few RTTs, DCTCP far
    more; halving α increases the convergence time; and the RTT count is
    link-speed independent (the paper's headline claim)."""
    ep = fluid_join_convergence("expresspass", 10 * GBPS)
    ep_slow = fluid_join_convergence("expresspass", 10 * GBPS, alpha=1 / 16)
    dctcp = fluid_join_convergence("dctcp", 10 * GBPS)
    rcp = fluid_join_convergence("rcp", 10 * GBPS)
    assert ep["converged"] and dctcp["converged"] and rcp["converged"]
    assert ep["convergence_rtts"] < ep_slow["convergence_rtts"]
    assert ep_slow["convergence_rtts"] < dctcp["convergence_rtts"]
    assert rcp["convergence_rtts"] <= 5

    ep_100g = fluid_join_convergence("expresspass", 100 * GBPS)
    assert ep_100g["convergence_rtts"] == ep["convergence_rtts"]


def test_fct_point_tradeoff():
    """Fig 18's trade-off: short flows pay for small w_init (slower ramp),
    large flows gain from small α (less credit waste)."""
    aggressive = fluid_fct_point(1 / 2, 1 / 2, "cache_follower", 0.6, 300)
    sweet = fluid_fct_point(1 / 16, 1 / 16, "cache_follower", 0.6, 300)
    assert aggressive["p99_fct_S_ms"] < sweet["p99_fct_S_ms"]
    assert sweet["p99_fct_L_ms"] < aggressive["p99_fct_L_ms"]
    assert sweet["credit_waste"] < aggressive["credit_waste"]

    # S-flow FCT tracks w_init only: α shapes post-congestion waste.
    same_w = fluid_fct_point(1 / 16, 1 / 2, "cache_follower", 0.6, 300)
    assert same_w["p99_fct_S_ms"] == pytest.approx(
        aggressive["p99_fct_S_ms"], rel=1e-9)


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError, match="no fluid dynamics"):
        run_fluid(protocol="carrier-pigeon", n_flows=2)

"""Integration tests with the stochastic host delay model enabled.

The paper's queue bound (Table 1) is driven by ∆d_host; these tests check
that turning the SoftNIC-like jitter on keeps zero loss while visibly
widening the data-queue envelope.
"""

import pytest

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.net.host import HostDelayModel
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, dumbbell

PARAMS = ExpressPassParams(rtt_hint_ps=40 * US)


def run_with_delay(model, seed=1, n=8, ms=20):
    sim = Simulator(seed=seed)
    topo = dumbbell(sim, n_pairs=n,
                    bottleneck=LinkSpec(rate_bps=10 * GBPS, prop_delay_ps=4 * US),
                    host_delay=model)
    flows = [ExpressPassFlow(s, r, None, params=PARAMS)
             for s, r in zip(topo.senders, topo.receivers)]
    sim.run(until=ms * MS)
    delivered = sum(f.bytes_delivered for f in flows)
    for f in flows:
        f.stop()
    return topo, delivered


class TestHostDelayIntegration:
    def test_zero_loss_with_softnic_jitter(self):
        topo, delivered = run_with_delay(HostDelayModel())
        assert topo.net.total_data_drops() == 0
        assert delivered > 0

    def test_jitter_widens_queue_envelope(self):
        quiet, _ = run_with_delay(HostDelayModel.constant(0))
        noisy, _ = run_with_delay(HostDelayModel())
        assert (noisy.net.max_data_queue_bytes()
                >= quiet.net.max_data_queue_bytes())

    def test_queue_stays_within_calculus_style_bound(self):
        # Dumbbell analog of the Table-1 reasoning: the data queue should
        # stay within a few ∆d_host's worth of line-rate arrival.
        model = HostDelayModel()
        topo, _ = run_with_delay(model)
        bound = model.spread_ps * 10e9 / (8 * 1e12) * 4  # 4x spread, bytes
        assert topo.net.max_data_queue_bytes() < max(bound, 20 * 1538)

    def test_throughput_unaffected_by_jitter(self):
        _, quiet = run_with_delay(HostDelayModel.constant(0))
        _, noisy = run_with_delay(HostDelayModel())
        assert noisy > 0.9 * quiet

"""Tests for the RCP, HULL, and DX baselines."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US
from repro.transport.dctcp import dctcp_marking_threshold_bytes
from repro.transport.dx import DxFlow
from repro.transport.hull import HullFlow, install_phantom_queues
from repro.transport.rcp import RcpFlow, RcpLinkController, install_rcp

from tests.conftest import small_dumbbell


class TestRcpController:
    def test_rate_decreases_under_overload(self, sim):
        topo = small_dumbbell(sim)
        port = topo.bottleneck_fwd
        ctl = RcpLinkController(sim, port, avg_rtt_ps=30 * US)
        start = ctl.rate_bps
        # Simulate 2x overload for a few update periods.
        from repro.net.packet import data_packet
        for step in range(5):
            for i in range(60):
                ctl.on_arrival(data_packet(0, 1, None, 1500, seq=i), sim.now)
            sim.run(until=(step + 1) * 30 * US)
        assert ctl.rate_bps < start

    def test_rate_recovers_when_idle(self, sim):
        topo = small_dumbbell(sim)
        ctl = RcpLinkController(sim, topo.bottleneck_fwd, avg_rtt_ps=30 * US)
        ctl.rate_bps = ctl.min_rate_bps
        sim.run(until=3 * MS)
        assert ctl.rate_bps > ctl.min_rate_bps * 10

    def test_stamps_minimum_along_path(self, sim):
        topo = small_dumbbell(sim)
        ctl = RcpLinkController(sim, topo.bottleneck_fwd, avg_rtt_ps=30 * US)
        ctl.rate_bps = 3e9
        from repro.net.packet import data_packet
        pkt = data_packet(0, 1, None, 1500, seq=0)
        pkt.rcp_rate = 5e9
        ctl.on_arrival(pkt, 0)
        assert pkt.rcp_rate == 3e9
        pkt.rcp_rate = 1e9  # an earlier link was tighter
        ctl.on_arrival(pkt, 0)
        assert pkt.rcp_rate == 1e9

    def test_acks_not_counted_as_load(self, sim):
        topo = small_dumbbell(sim)
        ctl = RcpLinkController(sim, topo.bottleneck_fwd, avg_rtt_ps=30 * US)
        from repro.net.packet import Packet, PacketKind
        ack = Packet(PacketKind.ACK, 0, 1)
        ctl.on_arrival(ack, 0)
        assert ctl._arrived_bytes == 0


class TestRcpFlow:
    def test_two_flows_converge_to_half_rate(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=2)
        install_rcp(sim, topo.net.ports, avg_rtt_ps=30 * US)
        flows = [RcpFlow(s, r, None) for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=10 * MS)
        base = [f.bytes_delivered for f in flows]
        sim.run(until=20 * MS)
        rates = [(f.bytes_delivered - b) * 8 / 0.01 for f, b in zip(flows, base)]
        for f in flows:
            f.stop()
        for rate in rates:
            assert rate == pytest.approx(5e9, rel=0.3)

    def test_new_flow_starts_at_link_rate(self, sim):
        topo = small_dumbbell(sim)
        install_rcp(sim, topo.net.ports, avg_rtt_ps=30 * US)
        flow = RcpFlow(topo.senders[0], topo.receivers[0], None)
        assert flow.rate_bps == pytest.approx(10 * GBPS)
        flow.stop()


class TestHull:
    def test_phantom_caps_utilization_below_capacity(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=2)
        install_phantom_queues(topo.net.ports, gamma=0.95,
                               mark_threshold_bytes=3000)
        flows = [HullFlow(s, r, None) for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=20 * MS)
        base = sum(f.bytes_delivered for f in flows)
        sim.run(until=40 * MS)
        rate = (sum(f.bytes_delivered for f in flows) - base) * 8 / 0.02
        for f in flows:
            f.stop()
        assert rate < 0.99 * 10 * GBPS

    def test_real_queue_stays_small(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=4)
        install_phantom_queues(topo.net.ports, gamma=0.95,
                               mark_threshold_bytes=3000)
        flows = [HullFlow(s, r, None) for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=30 * MS)
        for f in flows:
            f.stop()
        # HULL's entire point: real queues an order below DCTCP's K (~100KB).
        assert topo.net.max_data_queue_bytes() < 60_000


class TestDx:
    def test_window_grows_when_delay_zero(self, sim):
        topo = small_dumbbell(sim)
        flow = DxFlow(topo.senders[0], topo.receivers[0], None)
        flow._base_rtt_ps = 25 * US
        before = flow.cwnd
        flow.cc_on_round(acks=5, marks=0, avg_rtt_ps=25 * US)
        assert flow.cwnd == before + 1
        flow.stop()

    def test_window_shrinks_with_queueing_delay(self, sim):
        topo = small_dumbbell(sim)
        flow = DxFlow(topo.senders[0], topo.receivers[0], None)
        flow._base_rtt_ps = 25 * US
        flow.cwnd = 40.0
        flow.cc_on_round(acks=5, marks=0, avg_rtt_ps=50 * US)  # 25us queueing
        assert flow.cwnd < 40.0
        flow.stop()

    def test_keeps_queue_very_low(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=4)
        flows = [DxFlow(s, r, None) for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=30 * MS)
        for f in flows:
            f.stop()
        assert topo.net.max_data_queue_bytes() < 60_000

    def test_transfer_completes(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        flow = DxFlow(topo.senders[0], topo.receivers[0], 1_000_000)
        sim.run(until=SEC)
        assert flow.completed

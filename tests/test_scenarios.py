"""repro.scenarios: schema validation, loader, compiler, and report."""

from __future__ import annotations

import copy
import json

import pytest

from repro import scenarios
from repro.scenarios import (
    Scenario,
    SpecError,
    build_report,
    compile_scenario,
    match_cell,
    validate_report_jsonl,
)


def base_spec(**over) -> dict:
    """A minimal valid persistent spec; keyword overrides splice in."""
    spec = {
        "schema": "repro.scenarios/v1",
        "name": "unit",
        "topology": {"kind": "dumbbell"},
        "workload": {"kind": "persistent", "n_flows": 2},
        "transport": {"protocol": "expresspass"},
        "timing": {"warmup_ps": 1_000_000, "measure_ps": 1_000_000},
    }
    spec.update(over)
    return spec


def poisson_spec(**over) -> dict:
    spec = {
        "schema": "repro.scenarios/v1",
        "name": "unit-poisson",
        "topology": {"kind": "clos"},
        "workload": {"kind": "poisson", "n_flows": 10, "load": 0.3},
        "transport": {"protocol": "dctcp"},
    }
    spec.update(over)
    return spec


class TestValidation:
    def test_minimal_spec_loads(self):
        s = Scenario.from_dict(base_spec())
        assert s.name == "unit"
        assert s.topology["kind"] == "dumbbell"
        assert s.seeds == (1,)
        assert s.cell_count == 1

    def test_defaults_filled(self):
        s = Scenario.from_dict(base_spec(timing=None))
        assert s.timing["warmup_ps"] == 50_000_000_000
        assert s.timing["bin_ps"] == 500_000_000
        assert s.transport["ep_profile"] == "default"

    def test_poisson_timing_keys_differ(self):
        s = Scenario.from_dict(poisson_spec())
        assert set(s.timing) == {"drain_ps"}

    # Every rejection path, one seeded error each.  The expected field is
    # what `scenarios validate` prints — the error-addressing contract.
    REJECTIONS = [
        ("not-a-mapping", lambda d: "nope", "<root>"),
        ("schema-missing", lambda d: {**d, "schema": None}, "schema"),
        ("schema-version", lambda d: {**d, "schema": "repro.scenarios/v2"},
         "schema"),
        ("name-missing", lambda d: {**d, "name": ""}, "name"),
        ("description-type", lambda d: {**d, "description": 7},
         "description"),
        ("tags-type", lambda d: {**d, "tags": "smoke"}, "tags"),
        ("unknown-top-key", lambda d: {**d, "wrokload": {}}, "<root>"),
        ("topology-kind", lambda d: {**d, "topology": {"kind": "torus"}},
         "topology.kind"),
        ("topology-rate", lambda d: {**d, "topology": {"kind": "dumbbell",
                                                       "rate_bps": -1}},
         "topology.rate_bps"),
        ("topology-params-unknown",
         lambda d: {**d, "topology": {"kind": "dumbbell",
                                      "params": {"k": 4}}},
         "topology.params"),
        ("fat-tree-odd-k",
         lambda d: {**d, "topology": {"kind": "fat_tree",
                                      "params": {"k": 3}}},
         "topology.params.k"),
        ("workload-kind",
         lambda d: {**d, "workload": {"kind": "bursty"}}, "workload.kind"),
        ("persistent-on-clos",
         lambda d: {**d, "topology": {"kind": "clos"}}, "workload.kind"),
        ("parking-lot-one-flow",
         lambda d: {**d, "topology": {"kind": "parking_lot"},
                    "workload": {"kind": "persistent", "n_flows": 1}},
         "workload.n_flows"),
        ("fat-tree-too-many-flows",
         lambda d: {**d, "topology": {"kind": "fat_tree", "params": {"k": 4}},
                    "workload": {"kind": "persistent", "n_flows": 9}},
         "workload.n_flows"),
        ("transport-unknown",
         lambda d: {**d, "transport": {"protocol": "quic"}},
         "transport.protocol"),
        ("ep-profile-unknown",
         lambda d: {**d, "transport": {"protocol": "expresspass",
                                       "ep_profile": "turbo"}},
         "transport.ep_profile"),
        ("timing-wrong-key",
         lambda d: {**d, "timing": {"drain_ps": 1}}, "timing"),
        ("timing-negative",
         lambda d: {**d, "timing": {"warmup_ps": 0}}, "timing.warmup_ps"),
        ("seeds-empty", lambda d: {**d, "seeds": []}, "seeds"),
        ("seeds-dup", lambda d: {**d, "seeds": [1, 1]}, "seeds"),
        ("seeds-type", lambda d: {**d, "seeds": ["one"]}, "seeds[0]"),
        ("sweep-seeds-axis",
         lambda d: {**d, "sweep": {"seeds": [1, 2]}}, "sweep.seeds"),
        ("sweep-unknown-axis",
         lambda d: {**d, "sweep": {"workload.burstiness": [1]}},
         "sweep.workload.burstiness"),
        ("sweep-empty-values",
         lambda d: {**d, "sweep": {"transport.protocol": []}},
         "sweep.transport.protocol"),
        ("sweep-bad-value",
         lambda d: {**d, "sweep": {"transport.protocol": ["quic"]}},
         "sweep.transport.protocol[0]"),
        ("report-compare",
         lambda d: {**d, "report": {"compare": "workload.burstiness"}},
         "report.compare"),
        ("report-objective-direction",
         lambda d: {**d, "report": {"objectives": {"fairness": "best"}}},
         "report.objectives.fairness"),
        ("chaos-no-mode", lambda d: {**d, "chaos": {}}, "chaos"),
        ("chaos-two-modes",
         lambda d: {**d, "chaos": {"scenario": "link-flap", "events": []}},
         "chaos"),
        ("chaos-events-empty",
         lambda d: {**d, "chaos": {"events": []}}, "chaos.events"),
        ("chaos-event-kind",
         lambda d: {**d, "chaos": {"events": [{"kind": "meteor", "t_ps": 1}]}},
         "chaos.events[0]"),
        ("chaos-plan-missing-file",
         lambda d: {**d, "chaos": {"plan": "does/not/exist.json"}},
         "chaos.plan"),
        ("chaos-scenario-unknown",
         lambda d: {**d,
                    "topology": {"kind": "fat_tree", "params": {"k": 4}},
                    "chaos": {"scenario": "earthquake"}},
         "chaos.scenario"),
        ("chaos-scenario-needs-fat-tree",
         lambda d: {**d, "chaos": {"scenario": "link-flap"}},
         "chaos.scenario"),
    ]

    @pytest.mark.parametrize("mutate",
                             [m for _n, m, _f in REJECTIONS],
                             ids=[n for n, _m, _f in REJECTIONS])
    def test_rejection_is_field_addressed(self, mutate):
        expected = {n: f for n, _m, f in self.REJECTIONS}
        name = next(n for n, m, _f in self.REJECTIONS if m is mutate)
        with pytest.raises(SpecError) as exc:
            Scenario.from_dict(mutate(base_spec()))
        fields = [fld for fld, _msg in exc.value.errors]
        assert expected[name] in fields, \
            f"{name}: expected field {expected[name]!r} in {fields}"

    def test_all_errors_collected_at_once(self):
        bad = base_spec(schema=None, name="",
                        transport={"protocol": "quic"})
        with pytest.raises(SpecError) as exc:
            Scenario.from_dict(bad)
        fields = {fld for fld, _ in exc.value.errors}
        assert {"schema", "name", "transport.protocol"} <= fields
        assert len(exc.value.render().splitlines()) == len(exc.value.errors)

    def test_load_poisson_workload_vocab(self):
        with pytest.raises(SpecError) as exc:
            Scenario.from_dict(poisson_spec(
                workload={"kind": "poisson", "distribution": "bitcoin"}))
        assert any(f == "workload.distribution" for f, _ in exc.value.errors)


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        s = Scenario.from_dict(base_spec(
            seeds=[3, 5], sweep={"transport.protocol": ["expresspass",
                                                        "dctcp"]}))
        assert Scenario.from_dict(s.to_dict()) == s

    def test_json_dump_load_identity(self):
        s = Scenario.from_dict(poisson_spec())
        text = scenarios.dumps(s, fmt="json")
        assert scenarios.loads(text, fmt="json") == s

    def test_yaml_dump_load_identity(self):
        pytest.importorskip("yaml")
        s = Scenario.from_dict(base_spec(tags=["a", "b"]))
        text = scenarios.dumps(s, fmt="yaml")
        assert scenarios.loads(text, fmt="yaml") == s

    def test_bundled_specs_round_trip(self):
        pytest.importorskip("yaml")
        for path in scenarios.iter_library():
            s = scenarios.load(path)
            text = scenarios.dumps(s, fmt="json")
            again = scenarios.loads(text, fmt="json", base_dir=path.parent)
            assert again == s, path.name


class TestLoader:
    def test_json_syntax_error_has_line(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{\n  "schema": ,\n}\n')
        with pytest.raises(SpecError) as exc:
            scenarios.load(p)
        assert exc.value.line == 2
        assert exc.value.errors[0][0] == "<syntax>"

    def test_yaml_syntax_error_has_line(self, tmp_path):
        pytest.importorskip("yaml")
        p = tmp_path / "bad.yaml"
        p.write_text("schema: repro.scenarios/v1\nname: [unclosed\n")
        with pytest.raises(SpecError) as exc:
            scenarios.load(p)
        assert exc.value.line is not None

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError) as exc:
            scenarios.load(tmp_path / "ghost.yaml")
        assert exc.value.errors[0][0] == "<file>"

    def test_resolve_spec_library_name(self):
        path = scenarios.resolve_spec("smoke_mini")
        assert path.name == "smoke_mini.yaml"

    def test_resolve_spec_unknown_lists_bundle(self):
        with pytest.raises(SpecError) as exc:
            scenarios.resolve_spec("fig99_imaginary")
        assert "smoke_mini" in exc.value.errors[0][1]

    def test_library_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIOS_DIR", str(tmp_path))
        assert scenarios.library_dir() == tmp_path
        assert list(scenarios.iter_library()) == []

    def test_lint_valid_and_invalid(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(base_spec()))
        assert scenarios.lint(good) == []
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(base_spec(transport={"protocol": "quic"})))
        problems = scenarios.lint(bad)
        assert problems and problems[0][0] == "transport.protocol"


class TestCompiler:
    def test_cell_order_protocol_outer_seed_inner(self):
        s = Scenario.from_dict(base_spec(
            seeds=[1, 2],
            sweep={"transport.protocol": ["expresspass", "dctcp"],
                   "workload.n_flows": [2, 3]}))
        m = compile_scenario(s)
        assert len(m) == 8 == s.cell_count
        coords = [(dict(c.axes)["transport.protocol"],
                   dict(c.axes)["workload.n_flows"], c.seed)
                  for c in m.cells]
        assert coords == [("expresspass", 2, 1), ("expresspass", 2, 2),
                          ("expresspass", 3, 1), ("expresspass", 3, 2),
                          ("dctcp", 2, 1), ("dctcp", 2, 2),
                          ("dctcp", 3, 1), ("dctcp", 3, 2)]

    def test_deterministic_fingerprints_and_cache_keys(self):
        from repro.runtime import ResultCache

        cache = ResultCache.__new__(ResultCache)  # key_for needs no state
        spec = base_spec(sweep={"transport.protocol": ["expresspass",
                                                       "dctcp"]})
        m1 = compile_scenario(Scenario.from_dict(copy.deepcopy(spec)))
        m2 = compile_scenario(Scenario.from_dict(copy.deepcopy(spec)))
        fp1 = [c.fingerprint for c in m1.cells]
        fp2 = [c.fingerprint for c in m2.cells]
        assert fp1 == fp2
        k1 = [cache.key_for(c.task) for c in m1.cells]
        k2 = [cache.key_for(c.task) for c in m2.cells]
        assert k1 == k2
        assert len(set(k1)) == len(k1)  # every cell distinct

    def test_seeds_override(self):
        s = Scenario.from_dict(base_spec(seeds=[1]))
        m = compile_scenario(s, seeds=[7, 9])
        assert [c.seed for c in m.cells] == [7, 9]
        assert all(c.task.kwargs["seed"] == c.seed for c in m.cells)

    def test_persistent_kwargs_shape(self):
        s = Scenario.from_dict(base_spec())
        (cell,) = compile_scenario(s).cells
        kw = cell.task.kwargs
        assert kw["topology"] == "dumbbell"
        assert kw["protocol"] == "expresspass"
        assert kw["n_flows"] == 2
        assert "chaos_plan" not in kw and "topo_params" not in kw

    def test_poisson_kwargs_shape(self):
        s = Scenario.from_dict(poisson_spec())
        (cell,) = compile_scenario(s).cells
        kw = cell.task.kwargs
        assert kw["distribution"] == "web_search"
        assert kw["load"] == 0.3
        assert kw["drain_ps"] == 10**12

    def test_named_chaos_plan_seeded_per_cell(self):
        s = Scenario.from_dict(base_spec(
            topology={"kind": "fat_tree", "params": {"k": 4}},
            workload={"kind": "persistent", "n_flows": 4},
            timing={"warmup_ps": 1_000_000_000,
                    "measure_ps": 12_000_000_000},
            chaos={"scenario": "link-flap", "fault_ps": 2_000_000_000,
                   "duration_ps": 1_000_000_000},
            seeds=[1, 2]))
        m = compile_scenario(s)
        plans = [c.task.kwargs["chaos_plan"] for c in m.cells]
        assert [p["seed"] for p in plans] == [1, 2]
        assert all(p["name"] == "link-flap" for p in plans)

    def test_plan_file_chaos_embeds_events(self, tmp_path):
        from repro.chaos import FaultPlan
        from repro.chaos.plan import LinkDown

        plan = FaultPlan(name="file-plan", seed=5,
                         events=(LinkDown(t_ps=10, a="s0", b="L"),))
        plan_path = tmp_path / "plan.json"
        plan.save(plan_path)
        spec = base_spec(chaos={"plan": "plan.json"})
        s = Scenario.from_dict(spec, base_dir=tmp_path)
        (cell,) = compile_scenario(s).cells
        lowered = cell.task.kwargs["chaos_plan"]
        assert lowered["seed"] == 5  # file seed kept without chaos.seed
        assert lowered["events"][0]["kind"] == "link_down"

    def test_chaos_window_checked_at_compile(self):
        s = Scenario.from_dict(base_spec(
            topology={"kind": "fat_tree", "params": {"k": 4}},
            workload={"kind": "persistent", "n_flows": 4},
            timing={"warmup_ps": 1_000_000_000,
                    "measure_ps": 2_000_000_000},
            chaos={"scenario": "link-flap", "fault_ps": 6_000_000_000,
                   "duration_ps": 4_000_000_000}))
        with pytest.raises(SpecError) as exc:
            compile_scenario(s)
        assert any("chaos.fault_ps" in f for f, _ in exc.value.errors)

    def test_cross_axis_conflict_caught_at_compile(self):
        # k=6 base makes n_flows=27 valid alone and k=4 valid alone, but
        # the (k=4, n=27) combination exceeds the fat tree's pair budget.
        s = Scenario.from_dict(base_spec(
            topology={"kind": "fat_tree", "params": {"k": 6}},
            workload={"kind": "persistent", "n_flows": 8},
            sweep={"topology.params.k": [4, 6],
                   "workload.n_flows": [8, 27]}))
        with pytest.raises(SpecError) as exc:
            compile_scenario(s)
        assert any("k=4" in f and "n_flows=27" in f
                   for f, _ in exc.value.errors)

    def test_filter_semantics(self):
        s = Scenario.from_dict(base_spec(
            seeds=[1, 2],
            sweep={"transport.protocol": ["expresspass", "dctcp"]}))
        m = compile_scenario(s)
        assert len(m.filtered("protocol=dctcp").cells) == 2
        assert len(m.filtered("protocol=dctcp seed=1").cells) == 1
        assert len(m.filtered("express").cells) == 2  # substring
        assert len(m.filtered("protocol=quic").cells) == 0
        cell = m.cells[0]
        assert match_cell(cell, "transport.protocol=expresspass")


class TestReport:
    ROWS = [
        {"cell": "u[protocol=a seed=1]", "protocol": "a", "seed": 1,
         "utilization": 0.9, "max_queue_kb": 5.0, "cached": False,
         "wall_s": 0.1},
        {"cell": "u[protocol=a seed=2]", "protocol": "a", "seed": 2,
         "utilization": 0.8, "max_queue_kb": 7.0, "cached": False,
         "wall_s": 0.1},
        {"cell": "u[protocol=b seed=1]", "protocol": "b", "seed": 1,
         "utilization": 0.95, "max_queue_kb": 300.0, "cached": False,
         "wall_s": 0.1},
        {"cell": "u[protocol=b seed=2]", "protocol": "b", "seed": 2,
         "error": "boom", "cached": False, "wall_s": 0.1},
    ]

    def test_grouping_ranking_and_failures(self):
        rep = build_report("u", list(self.ROWS),
                           objectives={"utilization": "max",
                                       "max_queue_kb": "min"})
        assert rep.meta["failed"] == 1
        a = next(g for g in rep.groups if g["protocol"] == "a")
        assert a["utilization"] == pytest.approx(0.85)
        assert a["cells"] == 2
        # a: rank 1 on queue (5+7 avg=6 < 300), rank 1 on util? b=0.95 > a.
        # scores: a = 1 (util) + 0 (queue) = 1; b = 0 + 1 = 1 — tie broken
        # by name, so 'a' first.
        assert rep.ranking[0][0] == "a"
        assert [g["rank"] for g in rep.groups] == [1, 2]

    def test_default_objectives_from_available_metrics(self):
        rep = build_report("u", list(self.ROWS))
        assert set(rep.objectives) == {"utilization", "max_queue_kb"}

    def test_jsonl_round_trip_and_validation(self, tmp_path):
        rep = build_report("u", list(self.ROWS),
                           objectives={"utilization": "max"})
        out = tmp_path / "report.jsonl"
        n = scenarios.write_report_jsonl(out, rep)
        stats = validate_report_jsonl(out)
        assert stats["lines"] == n
        assert stats["records"]["cell"] == 4
        assert stats["records"]["rank"] == 2
        again = scenarios.load_report_jsonl(out)
        assert again.rows == rep.rows
        assert again.ranking == [list(t) if isinstance(t, list) else t
                                 for t in rep.ranking] or \
            [tuple(t) for t in again.ranking] == rep.ranking

    def test_validate_rejects_missing_header(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"record": "cell", "cell": "x"}\n')
        with pytest.raises(ValueError, match="meta/schema header"):
            validate_report_jsonl(p)

    def test_validate_rejects_unknown_record(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text(json.dumps({"record": "meta",
                                 "schema": scenarios.REPORT_SCHEMA}) + "\n"
                     + '{"record": "blob"}\n')
        with pytest.raises(ValueError, match="unknown record"):
            validate_report_jsonl(p)

    def test_csv_writes_rows_with_handle(self, tmp_path):
        import io

        rep = build_report("u", list(self.ROWS))
        buf = io.StringIO()
        n = scenarios.write_report_csv(buf, rep)
        lines = buf.getvalue().strip().splitlines()
        assert n == 4 and len(lines) == 5
        assert lines[0].startswith("cell,protocol,seed")

"""Tests for ECMP routing, symmetric hashing, and path symmetry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import Packet, PacketKind
from repro.net.routing import asymmetric_flow_hash, symmetric_flow_hash
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, US
from repro.topology import LinkSpec, fat_tree, oversubscribed_clos
from repro.transport.ideal import compute_path_ports
from repro.core import ExpressPassFlow, ExpressPassParams


class TestSymmetricHash:
    def test_direction_independent(self):
        fwd = symmetric_flow_hash(1, 2, 100, 200)
        rev = symmetric_flow_hash(2, 1, 200, 100)
        assert fwd == rev

    def test_distinct_flows_differ(self):
        a = symmetric_flow_hash(1, 2, 100, 200)
        b = symmetric_flow_hash(1, 2, 101, 200)
        assert a != b

    def test_asymmetric_hash_depends_on_direction(self):
        fwd = asymmetric_flow_hash(1, 2, 100, 200)
        rev = asymmetric_flow_hash(2, 1, 200, 100)
        assert fwd != rev  # CRC collision here would be astonishing

    @given(st.integers(0, 10**6), st.integers(0, 10**6),
           st.integers(0, 65535), st.integers(0, 65535))
    def test_symmetry_property(self, src, dst, sport, dport):
        assert (symmetric_flow_hash(src, dst, sport, dport)
                == symmetric_flow_hash(dst, src, dport, sport))

    def test_stable_across_processes(self):
        # CRC32-based: must never change, or saved results become stale.
        assert symmetric_flow_hash(1, 2, 3, 4) == symmetric_flow_hash(1, 2, 3, 4)


class TestEcmpTables:
    def test_fat_tree_tor_has_equal_cost_uplinks(self):
        sim = Simulator(seed=0)
        ft = fat_tree(sim, k=4)
        tor = ft.tors[0]
        local_hosts = {p for p in tor.table if len(tor.table[p]) == 1}
        # Destinations outside the rack have k/2 = 2 uplink choices.
        remote = [d for d in tor.table if d not in local_hosts]
        assert remote
        for dst in remote:
            assert len(tor.table[dst]) == 2

    def test_next_hop_lists_sorted(self):
        sim = Simulator(seed=0)
        ft = fat_tree(sim, k=4)
        for sw in ft.net.switches:
            for hops in sw.table.values():
                assert hops == sorted(hops)

    def test_every_switch_routes_every_host(self):
        sim = Simulator(seed=0)
        ft = fat_tree(sim, k=4)
        for sw in ft.net.switches:
            for host in ft.hosts:
                assert host.id in sw.table


def _trace_paths(topo, src, dst):
    """Deliver one traced data packet and one traced credit; return hop lists."""
    sim = topo.net.sim
    flow = ExpressPassFlow(src, dst, None,
                           params=ExpressPassParams(rtt_hint_ps=50 * US))
    data_pkt = Packet(PacketKind.DATA, src.id, dst.id, flow=flow,
                      payload_bytes=100, seq=0)
    data_pkt.hops = []
    credit_pkt = Packet(PacketKind.CREDIT, dst.id, src.id, flow=flow,
                        credit_seq=0)
    credit_pkt.hops = []
    flow.stop()
    src.send(data_pkt)
    dst.send(credit_pkt)
    sim.run()
    # Drop the terminal host hop: data ends at dst, credit at src; only the
    # switch path must mirror.
    return data_pkt.hops[:-1], credit_pkt.hops[:-1]


class TestPathSymmetry:
    @pytest.mark.parametrize("k", [4, 8])
    def test_fat_tree_credit_path_mirrors_data_path(self, k):
        sim = Simulator(seed=3)
        ft = fat_tree(sim, k=k)
        # Pick inter-pod pairs: hosts 0 and the last one.
        src, dst = ft.hosts[0], ft.hosts[-1]
        data_hops, credit_hops = _trace_paths(ft, src, dst)
        assert data_hops == list(reversed(credit_hops))

    def test_clos_symmetry_many_pairs(self):
        sim = Simulator(seed=5)
        clos = oversubscribed_clos(sim)
        rng = sim.rng("pairs")
        hosts = clos.hosts
        for _ in range(10):
            a, b = rng.sample(range(len(hosts)), 2)
            data_hops, credit_hops = _trace_paths(clos, hosts[a], hosts[b])
            assert data_hops == list(reversed(credit_hops))

    def test_asymmetric_mode_can_split_paths(self):
        # With direction-dependent hashing, at least one inter-pod pair takes
        # mirrored-path-breaking routes (the ablation of §3.1).
        sim = Simulator(seed=7)
        ft = fat_tree(sim, k=4)
        broke = 0
        for i in range(8):
            src, dst = ft.hosts[i], ft.hosts[-1 - i]
            flow = ExpressPassFlow(src, dst, None, symmetric_routing=False,
                                   params=ExpressPassParams(rtt_hint_ps=50 * US))
            flow.stop()
            d = Packet(PacketKind.DATA, src.id, dst.id, flow=flow,
                       payload_bytes=100, seq=0)
            d.hops = []
            c = Packet(PacketKind.CREDIT, dst.id, src.id, flow=flow, credit_seq=0)
            c.hops = []
            src.send(d)
            dst.send(c)
            sim.run()
            if d.hops != list(reversed(c.hops)):
                broke += 1
        assert broke > 0


class TestComputePathPorts:
    def test_path_matches_traced_packet(self):
        sim = Simulator(seed=1)
        ft = fat_tree(sim, k=4)
        src, dst = ft.hosts[0], ft.hosts[-1]
        flow = ExpressPassFlow(src, dst, None,
                               params=ExpressPassParams(rtt_hint_ps=50 * US))
        flow.stop()
        ports = compute_path_ports(flow)
        pkt = Packet(PacketKind.DATA, src.id, dst.id, flow=flow,
                     payload_bytes=100, seq=0)
        pkt.hops = []
        src.send(pkt)
        sim.run()
        walked_nodes = [p.peer.id for p in ports]
        assert pkt.hops == walked_nodes

    def test_intra_rack_is_two_hops(self):
        sim = Simulator(seed=1)
        ft = fat_tree(sim, k=4)
        src, dst = ft.hosts[0], ft.hosts[1]  # same ToR
        flow = ExpressPassFlow(src, dst, None,
                               params=ExpressPassParams(rtt_hint_ps=50 * US))
        flow.stop()
        assert len(compute_path_ports(flow)) == 2  # NIC -> ToR -> host

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _parse_value, main


class TestParseValue:
    def test_int(self):
        assert _parse_value("42") == 42

    def test_float(self):
        assert _parse_value("0.5") == 0.5

    def test_tuple(self):
        assert _parse_value("4,16,64") == (4, 16, 64)

    def test_bool(self):
        assert _parse_value("true") is True
        assert _parse_value("False") is False

    def test_string(self):
        assert _parse_value("web_search") == "web_search"

    def test_mixed_tuple(self):
        assert _parse_value("expresspass,dctcp") == ("expresspass", "dctcp")


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table1" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "tor_down_kb" in out

    def test_run_with_override(self, capsys):
        assert main(["run", "fig12", "--set", "n_flows=4",
                     "--set", "periods=50"]) == 0
        out = capsys.readouterr().out
        assert "w_min" in out

    def test_run_json(self, capsys):
        assert main(["run", "fig12", "--set", "periods=50", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"]

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_bad_set_syntax_errors(self):
        with pytest.raises(SystemExit):
            main(["run", "table1", "--set", "oops"])

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _parse_value, main


class TestParseValue:
    def test_int(self):
        assert _parse_value("42") == 42

    def test_float(self):
        assert _parse_value("0.5") == 0.5

    def test_tuple(self):
        assert _parse_value("4,16,64") == (4, 16, 64)

    def test_bool(self):
        assert _parse_value("true") is True
        assert _parse_value("False") is False

    def test_string(self):
        assert _parse_value("web_search") == "web_search"

    def test_mixed_tuple(self):
        assert _parse_value("expresspass,dctcp") == ("expresspass", "dctcp")


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table1" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "tor_down_kb" in out

    def test_run_with_override(self, capsys):
        assert main(["run", "fig12", "--set", "n_flows=4",
                     "--set", "periods=50"]) == 0
        out = capsys.readouterr().out
        assert "w_min" in out

    def test_run_json(self, capsys):
        assert main(["run", "fig12", "--set", "periods=50", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"]

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_bad_set_syntax_errors(self):
        with pytest.raises(SystemExit):
            main(["run", "table1", "--set", "oops"])

    def test_seed_override_plumbed(self, capsys):
        assert main(["run", "fig14a", "--seed", "3",
                     "--set", "samples=2000"]) == 0
        seed3 = capsys.readouterr().out
        assert main(["run", "fig14a", "--seed", "4",
                     "--set", "samples=2000"]) == 0
        seed4 = capsys.readouterr().out
        assert seed3 != seed4  # the seed actually reached the experiment

    def test_seed_ignored_for_analytic_experiment(self, capsys):
        assert main(["run", "table1", "--seed", "5"]) == 0
        err = capsys.readouterr().err
        assert "ignoring --seed" in err

    # A deliberately tiny fig15 sweep: one protocol, two flow counts.
    FIG15_TINY = ["run", "fig15", "--set", "protocols=expresspass,",
                  "--set", "flow_counts=2,3", "--set", "warmup_ps=2000000000",
                  "--set", "measure_ps=2000000000"]

    def test_parallel_run_matches_serial_and_caches(self, capsys, tmp_path):
        from repro import runtime

        with runtime.using(cache_dir=tmp_path):
            assert main(self.FIG15_TINY + ["--json"]) == 0
            serial = capsys.readouterr().out
            assert main(self.FIG15_TINY + ["--json", "--parallel", "2"]) == 0
            parallel = capsys.readouterr().out
        assert serial == parallel          # bit-identical rows
        assert len(list(tmp_path.glob("*.pkl"))) == 2  # one entry per task

    def test_no_cache_flag(self, capsys, tmp_path):
        from repro import runtime

        with runtime.using(cache_dir=tmp_path):
            assert main(self.FIG15_TINY + ["--no-cache"]) == 0
        assert list(tmp_path.glob("*.pkl")) == []


class TestCacheCommand:
    def test_stats_and_clear(self, capsys, tmp_path):
        from repro import runtime
        from repro.runtime import ResultCache, TaskSpec

        with runtime.using(cache_dir=tmp_path):
            cache = ResultCache(tmp_path)
            cache.put(cache.key_for(TaskSpec(main, {})), {"rows": []})
            assert main(["cache", "stats"]) == 0
            out = capsys.readouterr().out
            assert "entries:    1" in out and str(tmp_path) in out
            assert main(["cache", "clear"]) == 0
            assert "removed 1 entries" in capsys.readouterr().out
            assert main(["cache", "stats"]) == 0
            assert "entries:    0" in capsys.readouterr().out


class TestScenarioCli:
    @staticmethod
    def _tiny_spec(tmp_path, **over):
        spec = {
            "schema": "repro.scenarios/v1",
            "name": "cli-tiny",
            "topology": {"kind": "dumbbell"},
            "workload": {"kind": "persistent", "n_flows": 2},
            "transport": {"protocol": "expresspass"},
            "timing": {"warmup_ps": 2_000_000_000,
                       "measure_ps": 2_000_000_000},
        }
        spec.update(over)
        path = tmp_path / "cli-tiny.json"
        path.write_text(json.dumps(spec))
        return path

    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "smoke_mini" in out and "cell(s)" in out

    def test_scenarios_validate_ok_and_bad(self, capsys, tmp_path):
        good = self._tiny_spec(tmp_path)
        assert main(["scenarios", "validate", str(good)]) == 0
        assert "OK" in capsys.readouterr().out
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "repro.scenarios/v1",
                                   "transport": {"protocol": "quic"}}))
        assert main(["scenarios", "validate", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "name" in err and "transport.protocol" in err

    def test_matrix_runs_and_writes_reports(self, capsys, tmp_path):
        from repro import scenarios

        spec = self._tiny_spec(tmp_path)
        jsonl = tmp_path / "report.jsonl"
        csv = tmp_path / "report.csv"
        assert main(["matrix", str(spec), "--report-jsonl", str(jsonl),
                     "--report-csv", str(csv), "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # stdout is pure JSON
        assert payload["scenario"] == "cli-tiny"
        assert payload["rows"][0]["utilization"] > 0
        stats = scenarios.validate_report_jsonl(jsonl)
        assert stats["records"]["cell"] == 1
        assert csv.read_text().count("\n") == 2  # header + one row

    def test_matrix_set_override_and_filter(self, capsys, tmp_path):
        spec = self._tiny_spec(
            tmp_path, sweep={"workload.n_flows": [2, 3]})
        assert main(["matrix", str(spec), "--filter", "n_flows=3",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 1
        assert payload["rows"][0]["flows"] == 3

    def test_matrix_bad_spec_exits_1(self, capsys, tmp_path):
        spec = self._tiny_spec(tmp_path)
        assert main(["matrix", str(spec), "--set",
                     "transport.protocol=quic"]) == 1
        assert "transport.protocol" in capsys.readouterr().err

    def test_matrix_unknown_spec_exits_1(self, capsys):
        assert main(["matrix", "fig99_imaginary"]) == 1
        assert "fig99_imaginary" in capsys.readouterr().err

"""Tests for packet tracing and network-wide conservation properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.net.trace import PortTracer
from repro.sim.engine import Simulator
from repro.sim.units import MS, SEC, US

from tests.conftest import small_dumbbell

PARAMS = ExpressPassParams(rtt_hint_ps=40 * US)


class TestPortTracer:
    def test_records_transmissions(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        tracer = PortTracer(topo.bottleneck_fwd)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 30_000,
                               params=PARAMS)
        sim.run(until=SEC)
        assert flow.completed
        assert tracer.count("DATA") == flow.total_segments
        assert tracer.count("CREDIT_REQUEST") == 1
        assert tracer.count("CREDIT_STOP") == 1
        # Credits travel the *other* direction on this port.
        assert tracer.count("CREDIT") == 0

    def test_reverse_port_sees_credits(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        tracer = PortTracer(topo.bottleneck_rev)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 30_000,
                               params=PARAMS)
        sim.run(until=SEC)
        assert tracer.count("CREDIT") >= flow.credits_received

    def test_predicate_filters(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        tracer = PortTracer(topo.bottleneck_fwd,
                            predicate=lambda p: p.kind == 0)  # DATA only
        ExpressPassFlow(topo.senders[0], topo.receivers[0], 30_000,
                        params=PARAMS)
        sim.run(until=SEC)
        assert tracer.count() == tracer.count("DATA")

    def test_keep_bounds_memory(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        tracer = PortTracer(topo.bottleneck_fwd, keep=5)
        ExpressPassFlow(topo.senders[0], topo.receivers[0], 100_000,
                        params=PARAMS)
        sim.run(until=SEC)
        assert len(tracer.records) == 5

    def test_detach_stops_recording(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        tracer = PortTracer(topo.bottleneck_fwd)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], None,
                               params=PARAMS)
        sim.run(until=1 * MS)
        tracer.detach()
        count = tracer.count()
        sim.run(until=2 * MS)
        flow.stop()
        assert tracer.count() == count

    def test_format_is_readable(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        tracer = PortTracer(topo.bottleneck_fwd)
        ExpressPassFlow(topo.senders[0], topo.receivers[0], 5_000,
                        params=PARAMS)
        sim.run(until=SEC)
        text = tracer.format(limit=2)
        assert "DATA" in text or "CREDIT_REQUEST" in text


class TestConservation:
    """Packets are never created or destroyed by the fabric itself."""

    @settings(deadline=None, max_examples=10)
    @given(n=st.integers(min_value=1, max_value=6),
           size_kb=st.integers(min_value=1, max_value=200))
    def test_delivered_bytes_equal_sent_payload(self, n, size_kb):
        sim = Simulator(seed=7)
        topo = small_dumbbell(sim, n_pairs=n)
        size = size_kb * 1000
        flows = [ExpressPassFlow(s, r, size, params=PARAMS)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=SEC)
        for flow in flows:
            assert flow.completed
            assert flow.bytes_delivered == size

    def test_data_packets_in_equals_out_plus_queued(self):
        sim = Simulator(seed=7)
        topo = small_dumbbell(sim, n_pairs=2)
        flows = [ExpressPassFlow(s, r, 500_000, params=PARAMS)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=SEC)
        for port in topo.net.ports:
            stats = port.data_queue.stats
            # Every enqueued packet was eventually transmitted (queues drain
            # by the end of the run).
            assert len(port.data_queue) == 0
            assert stats.enqueued >= 0

    def test_credit_conservation_per_flow(self):
        sim = Simulator(seed=7)
        topo = small_dumbbell(sim, n_pairs=3)
        flows = [ExpressPassFlow(s, r, 300_000, params=PARAMS)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=SEC)
        for flow in flows:
            # sent = received by sender + dropped in network + in flight (0).
            assert flow.credits_sent == (flow.credits_received
                                         + flow.credit_drops)

"""repro.sim.parallel: serial == sharded bit-identity and the merge plane.

The headline invariant: partitioning a topology across worker processes
changes *nothing* observable — the golden-trace fixtures recorded from
serial runs must verify byte-for-byte against sharded executions, under
both queue backends, and audit verdicts must match a serial run of the
same scenario.
"""

import pathlib
from types import SimpleNamespace

import pytest

from repro import ExpressPassFlow, ExpressPassParams, audit
from repro.audit.golden import diff_golden, golden_payload, load_golden
from repro.chaos.controller import ChaosController
from repro.chaos.plan import FaultPlan, LossBurst
from repro.net.pfc import install_pfc
from repro.net.trace import PortTracer
from repro.sim.engine import Simulator
from repro.sim.parallel import (
    ShardSimulator,
    cut_lookahead_ps,
    partition_nodes,
    run_sharded,
)
from repro.sim.units import MS, SEC, US
from repro.topology.fattree import fat_tree
from repro.topology.simple import dumbbell, single_switch

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
EP = dict(params=ExpressPassParams(rtt_hint_ps=40 * US))


# -- builders (module-level: they run inside worker processes) ---------------

def build_dumbbell_ep(sim):
    topo = dumbbell(sim, n_pairs=2)
    tracers = {
        "L->R": PortTracer(topo.bottleneck_fwd),
        "R->L": PortTracer(topo.bottleneck_rev),
    }
    flows = [
        ExpressPassFlow(topo.senders[0], topo.receivers[0],
                        size_bytes=30_000, **EP),
        ExpressPassFlow(topo.senders[1], topo.receivers[1],
                        size_bytes=20_000, start_ps=500 * US, **EP),
    ]
    return SimpleNamespace(net=topo.net, topo=topo, tracers=tracers,
                           flows=flows)


def build_star_ep(sim):
    star = single_switch(sim, n_hosts=4)
    tracers = {
        f"tor->h{i}": PortTracer(star.net.port_between(star.switch, host))
        for i, host in enumerate(star.hosts)
    }
    ExpressPassFlow(star.hosts[0], star.hosts[2], size_bytes=40_000, **EP)
    ExpressPassFlow(star.hosts[1], star.hosts[3], size_bytes=25_000,
                    start_ps=200 * US, **EP)
    ExpressPassFlow(star.hosts[3], star.hosts[0], size_bytes=10_000,
                    start_ps=400 * US, **EP)
    return SimpleNamespace(net=star.net, topo=star, tracers=tracers)


def build_fat_tree_ep(sim):
    topo = fat_tree(sim, k=4)
    hosts = {h.name: h for h in topo.hosts}
    # Inter-pod pairs: every path crosses ToR -> agg -> core shard cuts.
    flows = [
        ExpressPassFlow(hosts["h0_0_0"], hosts["h2_0_0"],
                        size_bytes=25_000, **EP),
        ExpressPassFlow(hosts["h1_1_0"], hosts["h3_1_0"],
                        size_bytes=15_000, start_ps=100 * US, **EP),
        ExpressPassFlow(hosts["h2_0_1"], hosts["h0_1_1"],
                        size_bytes=20_000, start_ps=250 * US, **EP),
    ]
    tracers = {
        f"nic:{f.src.name}": PortTracer(f.src.nic) for f in flows
    }
    return SimpleNamespace(net=topo.net, topo=topo, tracers=tracers,
                           flows=flows)


def build_dumbbell_ep_chaos(sim):
    built = build_dumbbell_ep(sim)
    # A credit-eating Gilbert-Elliott burst on the reverse bottleneck: no
    # routing change, so it shards cleanly, and the eaten credits exercise
    # the injected-drop budget in the merged credit-conservation check.
    plan = FaultPlan(name="burst", seed=11, events=(
        LossBurst(t_ps=600 * US, a="R", b="L", duration_ps=300 * US,
                  p_enter_bad=0.4, p_exit_bad=0.2, match="credit"),
    ))
    built.chaos = ChaosController(sim, built.net, plan)
    return built


def build_pfc_dumbbell(sim):
    topo = dumbbell(sim, n_pairs=1)
    install_pfc(sim, topo.net.ports)
    return SimpleNamespace(net=topo.net, topo=topo)


def collect_traces(ctx):
    return {name: list(t.records) for name, t in ctx.built.tracers.items()}


def collect_flow_bytes(ctx):
    return {fid: f.bytes_delivered for fid, f in ctx.flows.items()
            if ctx.owns(f.dst.id)}


def probe_flow_bytes(ctx, t):
    return {fid: f.bytes_delivered for fid, f in ctx.flows.items()
            if ctx.owns(f.dst.id)}


def _merge_traces(collected, port_names):
    """Per traced port, the records from the (single) shard that owns the
    transmitting node; replicas on other shards must have seen nothing."""
    merged = {}
    for name in port_names:
        lists = [c[name] for c in collected if c[name]]
        assert len(lists) <= 1, (
            f"port {name} transmitted in {len(lists)} shards")
        merged[name] = lists[0] if lists else []
    return merged


def _run_serial(builder, until, seed, sched="heap"):
    sim = Simulator(seed=seed, sched=sched)
    built = builder(sim)
    sim.run(until=until)
    return sim, built


# -- partitioner -------------------------------------------------------------

class TestPartition:
    def test_dumbbell_min_cut(self):
        sim = Simulator(seed=1)
        topo = dumbbell(sim, n_pairs=2)
        owner = partition_nodes(topo.net, 2)
        left = {topo.net.nodes[n].name for n, s in owner.items() if s == 0}
        right = {topo.net.nodes[n].name for n, s in owner.items() if s == 1}
        assert sorted([left, right], key=min) == \
            [{"L", "s0", "s1"}, {"R", "r0", "r1"}]
        assert cut_lookahead_ps(topo.net, owner) == \
            topo.bottleneck_fwd.prop_delay_ps

    def test_fat_tree_pods_plus_core(self):
        sim = Simulator(seed=1)
        topo = fat_tree(sim, k=4)
        owner = partition_nodes(topo.net, 5, topo=topo)
        core_shards = {owner[c.id] for c in topo.cores}
        assert core_shards == {4}
        # Each pod lands wholly in one of the four non-core shards.
        for tor in topo.tors:
            pod = tor.name.split("_")[0].removeprefix("tor")
            host_shards = {owner[h.id] for h in topo.hosts
                           if h.name.startswith(f"h{pod}_")}
            assert host_shards == {owner[tor.id]}
        assert {owner[t.id] for t in topo.tors} == {0, 1, 2, 3}

    def test_more_shards_than_nodes_collapses(self):
        sim = Simulator(seed=1)
        star = single_switch(sim, n_hosts=2)
        owner = partition_nodes(star.net, 64)
        assert set(owner) == set(star.net.nodes)
        assert max(owner.values()) < len(star.net.nodes)

    def test_deterministic(self):
        for _ in range(2):
            sims = [Simulator(seed=3), Simulator(seed=3)]
            owners = [partition_nodes(dumbbell(s, n_pairs=3).net, 2)
                      for s in sims]
            assert owners[0] == owners[1]


# -- bit-identity against the stored golden fixtures -------------------------

@pytest.mark.parametrize("sched", ["heap", "calendar"])
@pytest.mark.parametrize("name,builder,seed", [
    ("dumbbell_expresspass", build_dumbbell_ep, 7),
    ("star_cross_expresspass", build_star_ep, 21),
])
def test_sharded_matches_golden_fixture(name, builder, seed, sched):
    """A 2-shard run reproduces the serial golden digests byte-for-byte."""
    run = run_sharded(builder, shards=2, until=1 * SEC, seed=seed,
                      sched=sched, collect=collect_traces)
    assert run.n_effective == 2
    assert run.warnings == []
    serial = load_golden(GOLDEN_DIR / f"{name}.json")
    merged = _merge_traces(run.collected, serial["ports"])
    diffs = diff_golden(serial, golden_payload(name, merged))
    assert not diffs, "sharded trace drift:\n" + "\n".join(diffs)


@pytest.mark.parametrize("sched", ["heap", "calendar"])
def test_fat_tree_pod_sharding_bit_identical(sched):
    """k=4 fat tree, one shard per pod plus a core shard (5 workers)."""
    until = 20 * MS
    sim, built = _run_serial(build_fat_tree_ep, until, seed=33, sched=sched)
    serial = golden_payload("ft", {n: t.records
                                   for n, t in built.tracers.items()})
    run = run_sharded(build_fat_tree_ep, shards=5, until=until, seed=33,
                      sched=sched, collect=collect_traces)
    assert run.n_effective == 5
    merged = _merge_traces(run.collected, built.tracers)
    assert diff_golden(serial, golden_payload("ft", merged)) == []
    assert serial["total_packets"] > 0


def test_checkpoint_probe_matches_serial_midpoint_read():
    """probe(ctx, t) sees exactly the state sim.run(until=t) leaves."""
    until, mid = 1 * SEC, 700 * US
    sim = Simulator(seed=7)
    built = build_dumbbell_ep(sim)
    sim.run(until=mid)
    serial_mid = {f.fid: f.bytes_delivered for f in built.flows}
    sim.run(until=until)
    serial_final = {f.fid: f.bytes_delivered for f in built.flows}
    run = run_sharded(build_dumbbell_ep, shards=2, until=until, seed=7,
                      probe=probe_flow_bytes, checkpoints=(mid,),
                      collect=collect_flow_bytes)
    sharded_mid = {}
    for part in run.probes[mid]:
        sharded_mid.update(part)
    assert sharded_mid == serial_mid
    sharded_final = {}
    for part in run.collected:
        sharded_final.update(part)
    assert sharded_final == serial_final


# -- audit composition -------------------------------------------------------

@pytest.mark.parametrize("builder", [build_dumbbell_ep,
                                     build_dumbbell_ep_chaos])
def test_sharded_audit_verdict_matches_serial(builder):
    with audit.capture() as cap:
        sim = Simulator(seed=7)
        builder(sim)
        sim.run(until=1 * SEC)
    serial = cap.summary
    with audit.capture() as cap:
        run = run_sharded(builder, shards=2, until=1 * SEC, seed=7)
    sharded = cap.summary
    assert run.audit is not None
    assert sharded["ok"] == serial["ok"] is True
    assert sharded["violations"] == serial["violations"] == []
    # The merged summary rode record_summary into the ambient capture.
    assert sharded["runs"] == 1
    # The chaos variant must actually have eaten credits for this test to
    # exercise the injected-drop budget merge.
    if builder is build_dumbbell_ep_chaos:
        assert run.shards[0]["chaos"] is not None


def test_sharded_audit_catches_injected_violation():
    """The merged flow checks still fire: silently zero a shard's counter
    and the credit-conservation law must break centrally."""
    from repro.audit.auditor import check_flow_account
    from repro.audit.report import AuditReport
    from repro.sim.parallel import _merge_flow_account

    with audit.capture():
        run = run_sharded(build_dumbbell_ep, shards=2, until=1 * SEC, seed=7)
    accounts = [a for r in run.shards for a in r["flow_accounts"]
                if a["fid"] == 1]
    assert len(accounts) == 2
    merged = _merge_flow_account(accounts)
    assert merged["credits_sent"] > 0
    report = AuditReport()
    check_flow_account(report, merged, drained=True, now=1 * SEC)
    assert report.ok, report.format()  # intact totals conserve
    tampered = dict(merged, credits_received=merged["credits_received"] - 3)
    report = AuditReport()
    check_flow_account(report, tampered, drained=True, now=1 * SEC)
    assert [v.invariant for v in report.violations] == \
        ["credit-conservation"]


# -- guard rails -------------------------------------------------------------

def test_pfc_on_cut_refused():
    with pytest.raises(RuntimeError, match="PFC"):
        run_sharded(build_pfc_dumbbell, shards=2, until=1 * MS, seed=1)


def test_shard_simulator_is_a_simulator():
    """Local-only ShardSimulator runs degenerate to plain serial order."""
    fired = []
    for cls in (Simulator, ShardSimulator):
        sim = cls(seed=5)
        sim.schedule(10, fired.append, (cls.__name__, "a"))
        sim.schedule_at(10, fired.append, (cls.__name__, "b"))
        sim.schedule_unref(5, fired.append, (cls.__name__, "c"))
        sim.run()
    plain = [tag for name, tag in fired if name == "Simulator"]
    sharded = [tag for name, tag in fired if name == "ShardSimulator"]
    assert plain == sharded == ["c", "a", "b"]


# -- scenario cells through the sharded path ---------------------------------

class TestShardedCells:
    """run_persistent under ``shards>1`` returns the exact serial row."""

    KW = dict(protocol="expresspass", n_flows=3, topology="dumbbell",
              warmup_ps=2 * MS, measure_ps=2 * MS, bin_ps=500 * US, seed=5)

    def test_persistent_row_bit_identical(self):
        from repro.runtime.config import using
        from repro.scenarios.cells import run_persistent

        serial = run_persistent(**self.KW)
        with using(shards=2):
            sharded = run_persistent(**self.KW)
        # Exact dict equality, floats included: the sharded path merges
        # integers only and defers every float to the shared row builder.
        assert sharded == serial

    def test_fat_tree_row_bit_identical(self):
        from repro.runtime.config import using
        from repro.scenarios.cells import run_persistent

        kw = dict(self.KW, topology="fat_tree", topo_params={"k": 4},
                  n_flows=4)
        serial = run_persistent(**kw)
        with using(shards=4):
            sharded = run_persistent(**kw)
        assert sharded == serial

    def test_spec_shards_never_lowered_into_kwargs(self):
        """``timing.shards`` is execution policy: it must not perturb cell
        kwargs, and therefore cache fingerprints, in any way."""
        from repro.scenarios.compiler import compile_scenario
        from repro.scenarios.schema import Scenario

        def spec(timing):
            return Scenario.from_dict({
                "schema": "repro.scenarios/v1",
                "name": "purity",
                "topology": {"kind": "dumbbell"},
                "workload": {"kind": "persistent", "n_flows": 2},
                "transport": {"protocol": "expresspass"},
                "timing": dict({"warmup_ps": 1 * MS, "measure_ps": 1 * MS,
                                "bin_ps": 500 * US}, **timing),
                "seeds": [1, 2],
            })

        plain = compile_scenario(spec({}))
        sharded = compile_scenario(spec({"shards": 2}))
        for cell in sharded.cells:
            assert "shards" not in cell.task.kwargs
        assert [c.fingerprint for c in sharded.cells] == \
            [c.fingerprint for c in plain.cells]

"""Golden-trace regression suite: canonical scenarios vs stored digests.

Each scenario runs a small deterministic simulation with PortTracers on its
interesting ports and digests every transmit record
(:mod:`repro.audit.golden`).  The digests live in ``tests/golden/*.json``;
any drift in the engine, queues, ports, routing, or transports under these
scenarios' footprints fails here with a per-port diff.

Intentional behavior changes regenerate the fixtures::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_golden_traces.py -q

Determinism is asserted two ways: rerunning a scenario in-process yields an
identical payload, and running the scenarios through the
:mod:`repro.runtime` scheduler produces the same payloads serial, parallel,
and as reassembled by a 2-worker pool.
"""

import os
import pathlib

import pytest

from repro import ExpressPassFlow, ExpressPassParams, runtime
from repro.audit.golden import (
    diff_golden,
    golden_payload,
    load_golden,
    trace_digest,
    write_golden,
)
from repro.net.trace import PortTracer
from repro.runtime import run_tasks
from repro.runtime.task import TaskSpec
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, SEC, US
from repro.topology.network import LinkSpec
from repro.topology.simple import dumbbell, single_switch
from repro.transport import DctcpFlow, dctcp_marking_threshold_bytes

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
EP = dict(params=ExpressPassParams(rtt_hint_ps=40 * US))


def _scenario_dumbbell_expresspass():
    """Two staggered ExpressPass flows over a shared bottleneck."""
    sim = Simulator(seed=7)
    topo = dumbbell(sim, n_pairs=2)
    tracers = {
        "L->R": PortTracer(topo.bottleneck_fwd),
        "R->L": PortTracer(topo.bottleneck_rev),
    }
    ExpressPassFlow(topo.senders[0], topo.receivers[0],
                    size_bytes=30_000, **EP)
    ExpressPassFlow(topo.senders[1], topo.receivers[1],
                    size_bytes=20_000, start_ps=500 * US, **EP)
    sim.run(until=1 * SEC)
    return tracers


def _scenario_star_cross_expresspass():
    """Cross traffic on one ToR: three flows, four traced egress ports."""
    sim = Simulator(seed=21)
    star = single_switch(sim, n_hosts=4)
    tracers = {
        f"tor->h{i}": PortTracer(star.net.port_between(star.switch, host))
        for i, host in enumerate(star.hosts)
    }
    ExpressPassFlow(star.hosts[0], star.hosts[2], size_bytes=40_000, **EP)
    ExpressPassFlow(star.hosts[1], star.hosts[3], size_bytes=25_000,
                    start_ps=200 * US, **EP)
    ExpressPassFlow(star.hosts[3], star.hosts[0], size_bytes=10_000,
                    start_ps=400 * US, **EP)
    sim.run(until=1 * SEC)
    return tracers


def _scenario_dumbbell_dctcp():
    """Two DCTCP flows: exercises WindowFlow, ECN marking, ACK clocking."""
    sim = Simulator(seed=13)
    spec = LinkSpec(
        ecn_threshold_bytes=dctcp_marking_threshold_bytes(10 * GBPS))
    topo = dumbbell(sim, n_pairs=2, bottleneck=spec, edge=spec)
    tracers = {"L->R": PortTracer(topo.bottleneck_fwd)}
    DctcpFlow(topo.senders[0], topo.receivers[0], size_bytes=150_000)
    DctcpFlow(topo.senders[1], topo.receivers[1], size_bytes=100_000,
              start_ps=300 * US)
    sim.run(until=1 * SEC)
    return tracers


SCENARIOS = {
    "dumbbell_expresspass": _scenario_dumbbell_expresspass,
    "star_cross_expresspass": _scenario_star_cross_expresspass,
    "dumbbell_dctcp": _scenario_dumbbell_dctcp,
}


def build_payload(name: str) -> dict:
    """Module-level so the parallel determinism test can pickle it."""
    tracers = SCENARIOS[name]()
    return golden_payload(name, {port: t.records
                                 for port, t in tracers.items()})


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace(name):
    payload = build_payload(name)
    assert payload["total_packets"] > 0
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":
        write_golden(path, payload)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; run with REPRO_REGEN_GOLDEN=1")
    diffs = diff_golden(load_golden(path), payload)
    assert not diffs, "golden trace drift:\n" + "\n".join(diffs)


def test_rerun_is_bit_identical():
    assert build_payload("dumbbell_expresspass") == \
        build_payload("dumbbell_expresspass")


def test_identical_across_runtime_parallel_settings():
    """The traced scenarios digest identically serial, parallel, and warm."""
    specs = [TaskSpec(fn=build_payload, kwargs={"name": name}, label=name)
             for name in sorted(SCENARIOS)]
    payloads = {}
    for mode, workers in (("serial", 0), ("parallel", 2)):
        with runtime.using(parallel=workers, cache_enabled=False,
                           progress=False, retries=0):
            results = run_tasks(list(specs), name=f"golden-{mode}")
        assert all(r.ok for r in results), [r.error for r in results]
        payloads[mode] = [r.value for r in results]
    assert payloads["serial"] == payloads["parallel"]


def test_digest_is_order_sensitive():
    """The digest must notice reordering, not just content changes."""
    tracers = _scenario_dumbbell_expresspass()
    records = list(tracers["L->R"].records)
    assert trace_digest(records) != trace_digest(records[::-1])

"""Tests for repro.chaos: fault plans, injection, recovery, and budgeted audit.

Covers: Gilbert–Elliott loss statistics against closed form; fault-plan
serialization round-trips and bad-plan rejection; compound-event timeline
expansion; controller mechanics on a dumbbell (flap survival, meter/jitter
restore, injected-drop ledger, unknown-node skips); the audit plane staying
armed under an active plan (a genuine silent leak is still caught while
chaos-injected drops pass clean); determinism (same plan + seed ⇒
bit-identical packet traces, serial == parallel); the k=4 fat-tree
link-flap recovery acceptance bar; and the chaos CLI surface.
"""

import json
import random

import pytest

from repro import ExpressPassFlow, ExpressPassParams, runtime
from repro.audit import NetworkAuditor
from repro.chaos import (
    ChaosController,
    CreditMeterFault,
    FaultPlan,
    GilbertElliott,
    HostJitterFault,
    LinkDown,
    LinkFlap,
    LossBurst,
    SwitchBlackout,
    event_from_dict,
)
from repro.chaos.scenarios import RECOVERY_FRACTION, SCENARIOS, run_point
from repro.cli import main as cli_main
from repro.net.fault import LossInjector
from repro.sim.engine import Simulator
from repro.sim.units import MS, SEC, US
from repro.topology.simple import dumbbell

EP = dict(params=ExpressPassParams(rtt_hint_ps=40 * US))

#: Scaled-down scenario config so harness tests stay seconds, not minutes.
SMALL = dict(n_flows=4, horizon_ps=5 * MS, fault_ps=2 * MS,
             duration_ps=1 * MS, warmup_ps=1 * MS, bin_ps=500 * US)


@pytest.fixture(autouse=True)
def _no_ambient_chaos(monkeypatch):
    """These tests manage their own plans; an ambient REPRO_CHAOS (e.g. the
    CI chaos-smoke job) would auto-attach at Network.finalize and collide."""
    for var in ("REPRO_CHAOS", "REPRO_CHAOS_SEED", "REPRO_CHAOS_LOG"):
        monkeypatch.delenv(var, raising=False)
    monkeypatch.delenv("REPRO_AUDIT", raising=False)


# -- Gilbert–Elliott loss model --------------------------------------------

class TestGilbertElliott:
    def test_statistics_match_closed_form(self):
        model = GilbertElliott(random.Random(1234),
                               p_enter_bad=0.1, p_exit_bad=0.25)
        drops = sum(model.step() for _ in range(100_000))
        assert model.expected_loss_rate == pytest.approx(0.1 / 0.35)
        assert model.expected_burst_len == pytest.approx(4.0)
        assert model.observed_loss_rate == pytest.approx(
            model.expected_loss_rate, rel=0.10)
        assert model.observed_burst_len == pytest.approx(
            model.expected_burst_len, rel=0.10)
        assert drops == model.drops

    def test_partial_loss_probabilities(self):
        model = GilbertElliott(random.Random(7), p_enter_bad=0.2,
                               p_exit_bad=0.5, loss_good=0.01, loss_bad=0.5)
        for _ in range(100_000):
            model.step()
        assert model.observed_loss_rate == pytest.approx(
            model.expected_loss_rate, rel=0.15)

    def test_deterministic_given_rng(self):
        a = GilbertElliott(random.Random(3), 0.1, 0.3)
        b = GilbertElliott(random.Random(3), 0.1, 0.3)
        assert [a.step() for _ in range(5000)] == \
               [b.step() for _ in range(5000)]

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            GilbertElliott(rng, p_enter_bad=0.1, p_exit_bad=0.0)
        with pytest.raises(ValueError):
            GilbertElliott(rng, p_enter_bad=1.5, p_exit_bad=0.5)
        with pytest.raises(ValueError):
            GilbertElliott(rng, 0.1, 0.5, loss_bad=1.0001)


# -- fault plans ------------------------------------------------------------

def _full_plan() -> FaultPlan:
    return FaultPlan(name="everything", seed=42, events=(
        LinkDown(t_ps=1 * MS, a="L", b="R", direction="a->b"),
        LinkFlap(t_ps=2 * MS, a="L", b="R", down_ps=100 * US, flaps=2,
                 gap_ps=50 * US),
        SwitchBlackout(t_ps=3 * MS, node="L", duration_ps=200 * US),
        LossBurst(t_ps=4 * MS, a="R", b="L", duration_ps=500 * US,
                  p_enter_bad=0.2, p_exit_bad=0.5, match="credit"),
        CreditMeterFault(t_ps=5 * MS, a="s0", b="L", duration_ps=100 * US,
                         factor=3.0),
        HostJitterFault(t_ps=6 * MS, host="s0", duration_ps=100 * US,
                        factor=4.0),
    ))


class TestFaultPlan:
    def test_json_round_trip_exact(self):
        plan = _full_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan
        # The JSON is itself stable (a cache key / git-diffable artifact).
        assert json.loads(plan.to_json())["version"] == 1
        assert FaultPlan.from_json(plan.to_json()).to_json() == plan.to_json()

    def test_save_load(self, tmp_path):
        plan = _full_plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_with_seed(self):
        plan = _full_plan()
        reseeded = plan.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.events == plan.events

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            event_from_dict({"kind": "meteor_strike", "t_ps": 0})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            event_from_dict({"kind": "link_down", "t_ps": 0,
                             "a": "L", "b": "R", "severity": 11})

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            LinkDown(t_ps=-1, a="L", b="R")
        with pytest.raises(ValueError):
            LinkDown(t_ps=0, a="", b="R")
        with pytest.raises(ValueError):
            LinkFlap(t_ps=0, a="L", b="R", flaps=0)
        with pytest.raises(ValueError):
            LossBurst(t_ps=0, a="L", b="R", p_exit_bad=0.0)
        with pytest.raises(ValueError):
            LossBurst(t_ps=0, a="L", b="R", match="everything")
        with pytest.raises(ValueError):
            FaultPlan(reconverge_delay_ps=-1)

    def test_flap_timeline_expansion(self):
        plan = FaultPlan(events=(
            LinkFlap(t_ps=10, a="L", b="R", down_ps=5, flaps=2, gap_ps=3),))
        ops = [(t, op) for t, op, _, _ in plan.timeline()]
        assert ops == [(10, "link_down"), (15, "link_up"),
                       (18, "link_down"), (23, "link_up")]

    def test_timeline_sorted_and_stable(self):
        plan = FaultPlan(events=(
            SwitchBlackout(t_ps=100, node="L", duration_ps=50),
            LinkDown(t_ps=100, a="L", b="R"),
            LossBurst(t_ps=50, a="L", b="R", duration_ps=10),))
        tl = plan.timeline()
        assert [t for t, *_ in tl] == sorted(t for t, *_ in tl)
        # Equal times fire in plan order: blackout (idx 0) before link_down.
        at_100 = [(op, idx) for t, op, _, idx in tl if t == 100]
        assert at_100 == [("switch_down", 0), ("link_down", 1)]


# -- controller on a dumbbell ----------------------------------------------

class TestChaosController:
    def test_flow_survives_link_flap(self):
        """A mid-transfer flap on the only path: the flow must finish once
        the link returns, with every fault-window drop accounted."""
        sim = Simulator(seed=3)
        topo = dumbbell(sim, n_pairs=1)
        auditor = NetworkAuditor(sim)
        auditor.attach_network(topo.net)
        plan = FaultPlan(name="flap", seed=3, events=(
            LinkFlap(t_ps=500 * US, a="L", b="R", down_ps=500 * US),))
        controller = ChaosController(sim, topo.net, plan)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0],
                               size_bytes=2_000_000, **EP)
        sim.run(until=1 * SEC)
        assert flow.completed
        assert sim.pending() == 0
        assert controller.skipped == 0
        assert len(controller.applied) >= 2  # down, up (+ reconverges)
        report = auditor.finalize()
        assert report.ok, report.format()

    def test_loss_burst_budgeted_not_a_violation(self):
        """GE credit drops are charged to the chaos ledger and the audit
        conservation check passes with the budget applied."""
        sim = Simulator(seed=5)
        topo = dumbbell(sim, n_pairs=1)
        auditor = NetworkAuditor(sim)
        auditor.attach_network(topo.net)
        plan = FaultPlan(name="burst", seed=5, events=(
            LossBurst(t_ps=200 * US, a="R", b="L", duration_ps=2 * MS,
                      p_enter_bad=0.1, p_exit_bad=0.3, match="credit"),))
        controller = ChaosController(sim, topo.net, plan)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0],
                               size_bytes=1_000_000, **EP)
        sim.run(until=1 * SEC)
        assert flow.completed and sim.pending() == 0
        assert controller.total_injected_credit > 0
        assert controller.injected_credit_drops(flow.fid) == \
            controller.total_injected_credit
        report = auditor.finalize()
        assert report.ok, report.format()

    def test_real_leak_still_caught_under_active_plan(self):
        """The satellite self-test: with a chaos plan actively injecting
        budgeted credit drops, an *unbudgeted* silent leak elsewhere still
        breaks credit conservation."""
        sim = Simulator(seed=5)
        topo = dumbbell(sim, n_pairs=1)
        leak = LossInjector(topo.bottleneck_rev, every_nth=7,
                            match=lambda p: p.is_credit, notify_flows=False)
        auditor = NetworkAuditor(sim)
        auditor.attach_network(topo.net)
        plan = FaultPlan(name="burst", seed=5, events=(
            LossBurst(t_ps=200 * US, a="R", b="L", duration_ps=2 * MS,
                      p_enter_bad=0.1, p_exit_bad=0.3, match="credit"),))
        controller = ChaosController(sim, topo.net, plan)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0],
                               size_bytes=1_000_000, **EP)
        sim.run(until=1 * SEC)
        assert flow.completed and sim.pending() == 0
        assert leak.dropped > 0 and controller.total_injected_credit > 0
        report = auditor.finalize()
        hits = [v for v in report.violations
                if v.invariant == "credit-conservation"]
        assert hits, "silent leak went unnoticed under an active fault plan"
        assert "chaos-injected" in hits[0].message  # budget was applied

    def test_meter_fault_restores_exact_rate(self):
        sim = Simulator(seed=1)
        topo = dumbbell(sim, n_pairs=1)
        port = topo.bottleneck_fwd
        before = port.credit_bucket.rate_bps
        plan = FaultPlan(name="meter", seed=1, events=(
            CreditMeterFault(t_ps=100 * US, a="L", b="R",
                             duration_ps=300 * US, factor=2.0),))
        ChaosController(sim, topo.net, plan)
        sim.run(until=200 * US)
        assert port.credit_bucket.rate_bps == pytest.approx(2.0 * before)
        sim.run(until=1 * MS)
        assert port.credit_bucket.rate_bps == pytest.approx(before)

    def test_host_jitter_restores_delay_model(self):
        sim = Simulator(seed=1)
        topo = dumbbell(sim, n_pairs=1)
        host = topo.senders[0]
        before = host.delay_model
        plan = FaultPlan(name="jitter", seed=1, events=(
            HostJitterFault(t_ps=100 * US, host="s0",
                            duration_ps=300 * US, factor=8.0),))
        ChaosController(sim, topo.net, plan)
        sim.run(until=200 * US)
        assert host.delay_model is not before  # spiked per-host copy
        sim.run(until=1 * MS)
        assert host.delay_model is before

    def test_unknown_nodes_skipped_not_fatal(self):
        sim = Simulator(seed=1)
        topo = dumbbell(sim, n_pairs=1)
        plan = FaultPlan(name="ghost", seed=1, events=(
            LinkDown(t_ps=100 * US, a="agg9_9", b="core9"),
            SwitchBlackout(t_ps=200 * US, node="nowhere"),))
        controller = ChaosController(sim, topo.net, plan)
        sim.run(until=1 * MS)
        # link_down + (switch_down, switch_up): three skipped primitive ops.
        assert controller.skipped == 3
        assert all(msg.startswith("skip:") for _, msg in controller.applied)

    def test_second_controller_rejected(self):
        sim = Simulator(seed=1)
        topo = dumbbell(sim, n_pairs=1)
        plan = FaultPlan(name="one", seed=1)
        ChaosController(sim, topo.net, plan)
        with pytest.raises(RuntimeError):
            ChaosController(sim, topo.net, plan)


# -- ambient activation (REPRO_CHAOS) --------------------------------------

class TestAmbientActivation:
    def test_finalize_attaches_env_plan(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        FaultPlan(name="env", seed=4, events=(
            LinkDown(t_ps=1 * MS, a="L", b="R"),)).save(path)
        monkeypatch.setenv("REPRO_CHAOS", str(path))
        sim = Simulator(seed=1)
        topo = dumbbell(sim, n_pairs=1)  # finalize() runs inside
        assert sim.chaos is not None
        assert sim.chaos.plan.name == "env"
        sim.run(until=2 * MS)
        assert any("link down" in msg for _, msg in sim.chaos.applied)

    def test_seed_override(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        FaultPlan(name="env", seed=4).save(path)
        monkeypatch.setenv("REPRO_CHAOS", str(path))
        monkeypatch.setenv("REPRO_CHAOS_SEED", "99")
        sim = Simulator(seed=1)
        topo = dumbbell(sim, n_pairs=1)
        assert sim.chaos.plan.seed == 99

    def test_no_env_no_controller(self):
        sim = Simulator(seed=1)
        dumbbell(sim, n_pairs=1)
        assert sim.chaos is None


# -- determinism ------------------------------------------------------------

class TestDeterminism:
    def test_same_plan_same_seed_bit_identical(self):
        first = run_point("loss-burst", seed=7, digest=True, **SMALL)
        second = run_point("loss-burst", seed=7, digest=True, **SMALL)
        assert first["trace_digest"] == second["trace_digest"]
        assert first == second

    def test_serial_matches_parallel(self, tmp_path):
        from repro.experiments.runner import run_sweep
        points = [{"scenario": "link-flap", "seed": s} for s in (1, 2)]
        common = dict(SMALL, digest=True)
        with runtime.using(parallel=0, cache_enabled=False):
            serial = run_sweep(run_point, points, common=common)
        with runtime.using(parallel=2, cache_enabled=False):
            parallel = run_sweep(run_point, points, common=common)
        assert serial == parallel


# -- the acceptance bar: k=4 fat-tree link-flap recovery -------------------

class TestRecoveryAcceptance:
    def test_link_flap_recovers_goodput(self):
        row = run_point("link-flap", seed=1)
        assert row["violations"] == 0
        assert row["stalled"] == 0
        # The fault must actually bite before recovery means anything.
        assert row["low_gbps"] < RECOVERY_FRACTION * row["pre_gbps"]
        assert row["recovery_ms"] >= 0
        assert row["recovered_frac"] >= RECOVERY_FRACTION
        assert row["ok"]

    def test_watchdog_recovers_without_routing(self):
        """Reconvergence slower than the run: flows must re-hash themselves
        off the dead path (transport watchdog, not routing)."""
        # All 8 flows so the flapped link is on someone's path at this seed
        # (re-pinned when per-flow/per-host RNG streams changed trajectories).
        row = run_point("link-flap", seed=5, reconverge_delay_ps=100 * MS,
                        **dict(SMALL, n_flows=8))
        assert row["recoveries"] > 0 and row["rehashes"] > 0
        assert row["stalled"] == 0
        assert row["violations"] == 0

    def test_all_scenarios_importable_and_listed(self):
        assert set(SCENARIOS) == {"link-flap", "switch-blackout",
                                  "loss-burst", "credit-misconfig",
                                  "host-jitter"}
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            run_point("cosmic-rays", **SMALL)


# -- CLI surface ------------------------------------------------------------

class TestChaosCLI:
    def test_list(self, capsys):
        assert cli_main(["chaos", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_unknown_scenario_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["chaos", "cosmic-rays"])

    def test_emit_plan(self, tmp_path, capsys):
        path = tmp_path / "flap.json"
        assert cli_main(["chaos", "link-flap", "--seed", "3",
                         "--emit-plan", str(path)]) == 0
        plan = FaultPlan.load(path)
        assert plan.name == "link-flap" and plan.seed == 3
        assert any(ev.kind == "link_flap" for ev in plan.events)

"""Calendar-queue scheduler: differential oracle against the heap.

The calendar backend's contract is *bit-identity*: any scheduler that pops
the engine's ``(time, seq, event)`` entries in strict ``(time, seq)`` order
drains identically to the heap.  This suite enforces that three ways:

- property tests on :class:`CalendarQueue` itself (random push/pop/reload
  programs against a sorted-list reference, resize churn included);
- a hypothesis-driven differential oracle running randomized *dynamic*
  schedule/cancel programs — callbacks scheduling more work, deferred
  cancellation, compaction forced mid-run — on heap and calendar engines
  and comparing the full fired sequences;
- the golden-trace suite re-run under ``REPRO_SCHED=calendar``, asserting
  the stored packet digests are reproduced bit-for-bit.

Plus pinned regressions for the two subtle spots: FIFO tie-break among
same-timestamp events surviving a compaction rebuild, and a push landing
*behind* the cursor window right after a resize repositioned it.
"""

from __future__ import annotations

import heapq
import itertools

import pytest

from hypothesis import given, settings, strategies as st

from repro import perf
from repro.sim.calendar import CalendarQueue
from repro.sim.engine import Simulator

# -- CalendarQueue vs a heap reference ---------------------------------------

times = st.integers(min_value=0, max_value=10**7)


@given(st.lists(times, max_size=300))
@settings(max_examples=60, deadline=None, database=None)
def test_bulk_pushes_pop_in_key_order(ts):
    q = CalendarQueue()
    for seq, t in enumerate(ts):
        q.push((t, seq, None))
    assert len(q) == len(ts)
    out = [q.pop() for _ in range(len(ts))]
    assert out == sorted((t, seq, None) for seq, t in enumerate(ts))
    assert len(q) == 0
    with pytest.raises(IndexError):
        q.pop()


@given(st.lists(st.one_of(times, st.none()), max_size=400),
       st.integers(min_value=2, max_value=50))
@settings(max_examples=60, deadline=None, database=None)
def test_interleaved_program_matches_heap(ops, reload_every):
    """Random push/pop/reload interleavings drain exactly like a heap.

    ``None`` ops pop, integers push (clamped to >= the last popped time,
    the engine's no-scheduling-into-the-past invariant).  Every
    ``reload_every`` ops the calendar is reloaded from its surviving
    entries — the engine's compaction path — which must not disturb order.
    """
    q = CalendarQueue()
    ref: list = []
    seq = itertools.count()
    now = 0
    for i, op in enumerate(ops):
        if op is None:
            if not ref:
                continue
            expect = heapq.heappop(ref)
            got = q.pop()
            assert got == expect
            now = got[0]
        else:
            entry = (now + op, next(seq), None)
            q.push(entry)
            heapq.heappush(ref, entry)
        if i % reload_every == reload_every - 1:
            q.reload(list(q))
        assert len(q) == len(ref)
    while ref:
        assert q.pop() == heapq.heappop(ref)


def test_peek_agrees_with_pop():
    q = CalendarQueue()
    for seq, t in enumerate([900, 5, 5, 70_000, 12]):
        q.push((t, seq, None))
    while len(q):
        assert q.peek() == q.pop()
    with pytest.raises(IndexError):
        q.peek()


def test_resize_churn_preserves_order():
    """Grow across several doublings, then drain through the shrinks."""
    q = CalendarQueue()
    entries = [(t * 97, seq, None) for seq, t in enumerate(range(3000))]
    for e in entries:
        q.push(e)
    assert q.n_buckets > 8          # the churn actually happened
    assert [q.pop() for _ in entries] == entries


def test_push_behind_cursor_after_rebuild_pops_first():
    """Regression: a resize repositions the cursor at the then-minimum; a
    later push of an *earlier* timestamp must rewind it, not be scanned a
    year late."""
    q = CalendarQueue()
    for seq, t in enumerate(range(1000, 1000 + 200 * 137, 137)):
        q.push((t, seq, None))
    for _ in range(10):
        q.pop()                     # advance the cursor into later windows
    q.push((0, 10**6, None))        # earlier than everything pending
    assert q.pop() == (0, 10**6, None)


def test_slow_path_retunes_stale_width():
    """Regression: the year-scan pop branch must apply the same overfull-
    bucket retune as the fast path.

    Construction: 127 near-term events 1 ps apart make the stale width-1
    layout plausible, while 129 events exactly one calendar year (n*width =
    8 ps) apart all collide into one bucket.  Draining the near events is a
    full queue turnover (pops >= size), so the first cluster pop — a year
    scan, since each cluster event lies one year past the cursor window —
    sees an overfull bucket (>= _RETUNE_LEN entries) and must re-estimate
    the width from the cluster's real 8 ps gaps.  Without the slow-path
    retune the width stays 1 forever and every remaining pop scans the
    whole bucket array."""
    q = CalendarQueue(width=1, n_buckets=8)
    near = [(t, 0, None) for t in range(127)]
    year = 8 * 1  # n_buckets * width
    cluster = [(128 + k * year, 1, None) for k in range(129)]
    for e in near + cluster:
        q.push(e)
    assert q.bucket_width == 1
    expect = sorted(near + cluster)
    out = [q.pop() for _ in range(128)]      # 127 near + 1 cluster pop
    assert q.bucket_width > 1                # retuned on the year-scan pop
    out += [q.pop() for _ in range(len(expect) - len(out))]
    assert out == expect                     # order is untouched by retunes


def test_sparse_year_wrap_direct_search():
    """Entries many years apart exercise the direct-search fallback."""
    q = CalendarQueue(width=4, n_buckets=2)
    entries = [(t * 10**6, seq, None) for seq, t in enumerate(range(20))]
    for e in reversed(entries):
        q.push(e)
    got = [q.pop() for _ in entries]
    assert [g[0] for g in got] == sorted(g[0] for g in got)


# -- differential oracle: heap engine vs calendar engine ---------------------

@st.composite
def programs(draw):
    """A deterministic dynamic schedule/cancel program.

    ``init`` seeds the queue; ``spawn[k]`` dictates what the k-th fired
    callback does: how many children to schedule, at what base delay, via
    which scheduling API, and whether to cancel the oldest live handle.
    Small delay scales make same-timestamp ties common.
    """
    scale = draw(st.sampled_from([1, 3, 1000]))
    init = draw(st.lists(st.integers(0, 40), min_size=1, max_size=12))
    spawn = draw(st.lists(
        st.tuples(st.integers(0, 3),        # children per firing
                  st.integers(0, 50),       # child delay base
                  st.booleans()),           # cancel the oldest handle?
        max_size=120))
    return scale, init, spawn


def _run_program(sched, program, max_events=400):
    scale, init, spawn = program
    sim = Simulator(seed=0, sched=sched)
    fired = []
    handles = []
    counter = itertools.count()

    def fire(tag):
        fired.append((sim.now, tag))
        k = next(counter)
        if k < len(spawn):
            n_children, base, do_cancel = spawn[k]
            for j in range(n_children):
                delay = (base * (j + 1)) % (60 * scale)
                mode = (k + j) % 3
                if mode == 0:
                    handles.append(sim.schedule(delay, fire, f"{tag}.{j}"))
                elif mode == 1:
                    sim.schedule_unref(delay, fire, f"{tag}.u{j}")
                else:
                    handles.append(
                        sim.schedule_at(sim.now + delay, fire, f"{tag}.a{j}"))
            if do_cancel and handles:
                handles.pop(0).cancel()

    for i, d in enumerate(init):
        handles.append(sim.schedule(d * scale, fire, f"i{i}"))
    sim.run(max_events=max_events)
    return fired


@given(programs())
@settings(max_examples=40, deadline=None, database=None)
def test_dynamic_programs_fire_identically(program):
    assert _run_program("heap", program) == _run_program("calendar", program)


@given(programs())
@settings(max_examples=25, deadline=None, database=None)
def test_dynamic_programs_fire_identically_under_compaction(program):
    """Same oracle with compaction forced aggressively on both backends."""
    old = perf.COMPACT_MIN
    perf.COMPACT_MIN = 2
    try:
        assert _run_program("heap", program) == \
            _run_program("calendar", program)
    finally:
        perf.COMPACT_MIN = old


# -- FIFO tie-break across compaction (pinned regression) --------------------

@pytest.mark.parametrize("sched", ["heap", "calendar"])
def test_same_timestamp_fifo_survives_compaction(sched):
    """Events tied on the timestamp fire in schedule order even when a
    compaction rebuilds the queue while they are pending."""
    old = perf.COMPACT_MIN
    perf.COMPACT_MIN = 2
    try:
        sim = Simulator(seed=0, sched=sched)
        fired = []
        tied_at = 5_000_000
        for i in range(8):
            sim.schedule_at(tied_at, fired.append, i)
        # Cancelling more entries than remain live trips the compaction
        # threshold while the tied batch is still pending.
        decoys = [sim.schedule_at(tied_at + 1, fired.append, 100 + i)
                  for i in range(10)]
        for h in decoys:
            h.cancel()
        assert sim._cancelled < 10      # a compaction really reaped entries
        sim.run()
        assert fired == list(range(8))
    finally:
        perf.COMPACT_MIN = old


@pytest.mark.parametrize("sched", ["heap", "calendar"])
def test_engine_env_selection(sched, monkeypatch):
    monkeypatch.setenv("REPRO_SCHED", sched)
    sim = Simulator(seed=0)
    fired = []
    sim.schedule(10, fired.append, "a")
    sim.schedule(5, fired.append, "b")
    sim.run()
    assert fired == ["b", "a"]
    assert (sim._cal is not None) == (sched == "calendar")


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        Simulator(seed=0, sched="fibheap")


# -- golden traces, calendar backend -----------------------------------------

import importlib.util  # noqa: E402
import pathlib  # noqa: E402

# Sibling test modules are not importable as packages here; load the golden
# suite's scenario definitions straight from its file.
_golden_path = pathlib.Path(__file__).with_name("test_golden_traces.py")
_spec = importlib.util.spec_from_file_location("_golden_scenarios",
                                               _golden_path)
golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden)


@pytest.mark.parametrize("name", sorted(golden.SCENARIOS))
def test_golden_trace_bit_identical_under_calendar(name, monkeypatch):
    """The stored packet digests are reproduced exactly on the calendar
    backend — the end-to-end form of the equivalence argument."""
    from repro.audit.golden import diff_golden, load_golden

    path = golden.GOLDEN_DIR / f"{name}.json"
    if not path.exists():
        pytest.skip(f"golden fixture {path.name} not generated yet")
    monkeypatch.setenv("REPRO_SCHED", "calendar")
    payload = golden.build_payload(name)
    diffs = diff_golden(load_golden(path), payload)
    assert not diffs, \
        "calendar backend drifted from golden traces:\n" + "\n".join(diffs)

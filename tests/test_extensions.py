"""Tests for the §7 extensions: credit traffic classes and opportunistic
low-priority data."""

import pytest

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.metrics import jain_index
from repro.net.classes import ClassifiedCreditQueues, install_credit_classes
from repro.net.packet import credit_packet, data_packet
from repro.sim.engine import Simulator
from repro.sim.units import MS, SEC, US

from tests.conftest import small_dumbbell

PARAMS = ExpressPassParams(rtt_hint_ps=40 * US)


class _TaggedFlow:
    """Stand-in flow carrying only a credit class tag."""

    def __init__(self, credit_class):
        self.credit_class = credit_class

    def on_credit_dropped(self, pkt, port):
        pass


def credit(cls, seq=0):
    return credit_packet(2, 1, _TaggedFlow(cls), seq)


class TestClassifiedCreditQueues:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClassifiedCreditQueues({})
        with pytest.raises(ValueError):
            ClassifiedCreditQueues({0: 0})

    def test_unknown_class_maps_to_first(self):
        q = ClassifiedCreditQueues({0: 1, 1: 1})
        q.enqueue(credit(99), 0)
        assert len(q.queues[0]) == 1

    def test_strict_priority_order(self):
        q = ClassifiedCreditQueues({0: 1, 1: 1}, strict_priority=True)
        q.enqueue(credit(1, seq=10), 0)
        q.enqueue(credit(0, seq=20), 0)
        first = q.dequeue(0)
        assert first.credit_seq == 20  # class 0 jumps the line

    def test_wdrr_respects_weights(self):
        q = ClassifiedCreditQueues({0: 3, 1: 1}, capacity_pkts=40)
        for i in range(40):
            q.enqueue(credit(0, seq=i), 0)
            q.enqueue(credit(1, seq=100 + i), 0)
        served = {0: 0, 1: 0}
        for _ in range(16):
            pkt = q.dequeue(0)
            served[pkt.flow.credit_class] += 1
        # 3:1 weights -> roughly 12:4 out of 16.
        assert served[0] >= 2.0 * served[1]

    def test_aggregate_stats(self):
        q = ClassifiedCreditQueues({0: 1, 1: 1}, capacity_pkts=1)
        for i in range(3):
            q.enqueue(credit(0, seq=i), 0)
        assert q.stats.dropped == 2
        assert q.stats.enqueued == 1

    def test_byte_and_len_accounting(self):
        q = ClassifiedCreditQueues({0: 1, 1: 1})
        q.enqueue(credit(0), 0)
        q.enqueue(credit(1), 0)
        assert len(q) == 2
        assert q.bytes == 168

    def test_install_on_port_end_to_end(self):
        """Two flows with 3:1 credit weights share a bottleneck ~3:1."""
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=2)
        install_credit_classes(topo.bottleneck_rev, weights={0: 3, 1: 1})
        f0 = ExpressPassFlow(topo.senders[0], topo.receivers[0], None,
                             params=PARAMS)
        f1 = ExpressPassFlow(topo.senders[1], topo.receivers[1], None,
                             params=PARAMS)
        f0.credit_class = 0
        f1.credit_class = 1
        sim.run(until=30 * MS)
        base = (f0.bytes_delivered, f1.bytes_delivered)
        sim.run(until=60 * MS)
        r0 = f0.bytes_delivered - base[0]
        r1 = f1.bytes_delivered - base[1]
        f0.stop()
        f1.stop()
        assert r0 > 1.8 * r1  # weighted share, with feedback-loop slack

    def test_strict_priority_end_to_end(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=2)
        install_credit_classes(topo.bottleneck_rev, weights={0: 1, 1: 1},
                               strict_priority=True)
        hi = ExpressPassFlow(topo.senders[0], topo.receivers[0], None,
                             params=PARAMS)
        lo = ExpressPassFlow(topo.senders[1], topo.receivers[1], None,
                             params=PARAMS)
        hi.credit_class = 0
        lo.credit_class = 1
        sim.run(until=40 * MS)
        hi.stop()
        lo.stop()
        assert hi.bytes_delivered > 2 * lo.bytes_delivered


class TestOpportunisticData:
    def params(self, segments):
        return ExpressPassParams(rtt_hint_ps=40 * US,
                                 opportunistic_segments=segments)

    def test_small_flow_completes_one_rtt_faster(self):
        fcts = []
        for segments in (0, 8):
            sim = Simulator(seed=1)
            topo = small_dumbbell(sim)
            flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 9_000,
                                   params=self.params(segments))
            sim.run(until=SEC)
            assert flow.completed
            fcts.append(flow.fct_ps)
        assert fcts[1] < fcts[0] - 10 * US

    def test_burst_counted(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 30_000,
                               params=self.params(8))
        sim.run(until=SEC)
        assert flow.opportunistic_sent == 8
        assert flow.credits_used == flow.total_segments - 8

    def test_flow_smaller_than_burst(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 2_000,
                               params=self.params(8))
        sim.run(until=SEC)
        assert flow.completed
        assert flow.opportunistic_sent == flow.total_segments == 2
        assert sim.pending() == 0  # teardown still clean

    def test_low_priority_never_displaces_credited_data(self):
        """Credited traffic keeps its full share despite a low-prio blast."""
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=2)
        credited = ExpressPassFlow(topo.senders[0], topo.receivers[0], None,
                                   params=PARAMS)
        sim.run(until=20 * MS)  # let it reach steady state
        base = credited.bytes_delivered
        blaster = ExpressPassFlow(topo.senders[1], topo.receivers[1],
                                  3_000_000, params=self.params(2000))
        sim.run(until=40 * MS)
        credited_rate = (credited.bytes_delivered - base) * 8 / 0.02
        credited.stop()
        blaster.stop()
        # The credited flow still gets nearly the whole data capacity.
        assert credited_rate > 7.5e9

    def test_burst_loss_recovered(self):
        """Drop-prone low-prio bursts must not break reliability."""
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=4, data_capacity_bytes=4 * 1538)
        flows = [ExpressPassFlow(s, r, 120_000, params=self.params(64))
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=SEC)
        assert all(f.completed for f in flows)
        assert all(f.bytes_delivered >= 120_000 for f in flows)

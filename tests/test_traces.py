"""Tests for workload trace save/replay."""

import io
import random

import pytest
from hypothesis import given, strategies as st

from repro.workloads import WEB_SERVER, FlowSpec, poisson_specs
from repro.workloads.traces import dump_trace, load_trace


def roundtrip(specs):
    buf = io.StringIO()
    dump_trace(specs, buf)
    buf.seek(0)
    return load_trace(buf)


class TestRoundTrip:
    def test_empty(self):
        assert roundtrip([]) == []

    def test_preserves_everything(self):
        specs = [FlowSpec(0, 1, 1000, 0), FlowSpec(2, 3, 5, 99)]
        assert roundtrip(specs) == specs

    def test_generated_workload_roundtrips(self):
        rng = random.Random(3)
        specs = poisson_specs(rng, WEB_SERVER, 200, 10, 1e5)
        assert roundtrip(specs) == specs

    def test_file_paths(self, tmp_path):
        path = tmp_path / "trace.csv"
        specs = [FlowSpec(0, 1, 42, 7)]
        assert dump_trace(specs, path) == 1
        assert load_trace(path) == specs


class TestStrictness:
    def test_rejects_wrong_header(self):
        buf = io.StringIO("something else\nsrc,dst,size_bytes,start_ps\n")
        with pytest.raises(ValueError):
            load_trace(buf)

    def test_rejects_wrong_columns(self):
        buf = io.StringIO("# repro-flow-trace v1\na,b\n")
        with pytest.raises(ValueError):
            load_trace(buf)

    def test_rejects_malformed_line(self):
        buf = io.StringIO("# repro-flow-trace v1\nsrc,dst,size_bytes,start_ps\n1,2,3\n")
        with pytest.raises(ValueError):
            load_trace(buf)

    def test_rejects_self_flow(self):
        buf = io.StringIO("# repro-flow-trace v1\nsrc,dst,size_bytes,start_ps\n1,1,10,0\n")
        with pytest.raises(ValueError):
            load_trace(buf)

    def test_rejects_bad_size(self):
        buf = io.StringIO("# repro-flow-trace v1\nsrc,dst,size_bytes,start_ps\n1,2,0,0\n")
        with pytest.raises(ValueError):
            load_trace(buf)

    def test_skips_comments_and_blanks(self):
        buf = io.StringIO(
            "# repro-flow-trace v1\nsrc,dst,size_bytes,start_ps\n"
            "\n# a comment\n1,2,10,0\n")
        assert load_trace(buf) == [FlowSpec(1, 2, 10, 0)]


@given(st.lists(
    st.tuples(st.integers(0, 50), st.integers(51, 100),
              st.integers(1, 10**9), st.integers(0, 10**12)),
    max_size=50))
def test_roundtrip_property(raw):
    specs = [FlowSpec(*t) for t in raw]
    assert roundtrip(specs) == specs

"""Tests for the summary report and assorted under-covered corners."""

import pytest

from repro.core import ExpressPassParams
from repro.net.classes import ClassifiedCreditQueues
from repro.net.host import HostDelayModel
from repro.net.packet import credit_packet
from repro.net.queues import DataQueue, TokenBucket
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, US, fmt_time
from repro.workloads import WEB_SEARCH


class TestSummary:
    def test_all_checks_pass(self):
        from repro.experiments.summary import run
        result = run(seed=1)
        assert result.meta["all_ok"], result.rows
        assert len(result.rows) >= 6

    def test_cli_summary(self, capsys):
        from repro.cli import main
        assert main(["run", "summary"]) == 0
        out = capsys.readouterr().out
        assert "Jain fairness" in out


class TestTokenBucketEdge:
    def test_start_empty(self):
        bucket = TokenBucket(8 * GBPS, burst_bytes=100, start_full=False)
        assert not bucket.try_consume(1, 0)
        assert bucket.try_consume(50, 50_000)  # 50 ns at 1 byte/ns

    def test_refill_is_monotonic(self):
        bucket = TokenBucket(8 * GBPS, burst_bytes=1000)
        bucket.try_consume(1000, 0)
        bucket.refill(100)
        first = bucket.tokens
        bucket.refill(50)  # time going backwards is ignored
        assert bucket.tokens == first


class TestRedValidation:
    def test_bad_red_parameters(self):
        q = DataQueue(10_000)
        with pytest.raises(ValueError):
            q.set_red_marking(100, 100, 0.5, None)
        with pytest.raises(ValueError):
            q.set_red_marking(0, 100, 0.0, None)

    def test_red_marks_everything_above_kmax(self):
        sim = Simulator(seed=1)
        q = DataQueue(100_000)
        q.set_red_marking(0, 1, 1.0, sim.rng("red"))
        from repro.net.packet import data_packet
        pkt = data_packet(0, 1, None, 1500, seq=0, ecn_capable=True)
        q.enqueue(pkt, 0)
        assert pkt.ecn_marked


class TestClassifiedHeadConsistency:
    def test_head_matches_next_dequeue(self):
        q = ClassifiedCreditQueues({0: 2, 1: 1}, capacity_pkts=10)

        class T:
            def __init__(self, c):
                self.credit_class = c

        for i in range(6):
            q.enqueue(credit_packet(2, 1, T(i % 2), i), 0)
        for _ in range(6):
            head = q.head()
            got = q.dequeue(0)
            assert got is head


class TestHostDelayEdge:
    def test_rebind_changes_stream(self):
        model = HostDelayModel()
        a = Simulator(seed=1)
        model.bind(a.rng("host-delay"))
        sample_a = model.sample()
        b = Simulator(seed=2)
        model.bind(b.rng("host-delay"))
        sample_b = model.sample()
        assert sample_a != sample_b  # astronomically unlikely to collide


class TestFmtTimeBoundaries:
    @pytest.mark.parametrize("value,expect", [
        (1, "1 ps"),
        (1_000, "1 ns"),
        (1_000_000, "1 us"),
        (1_000_000_000, "1 ms"),
        (1_000_000_000_000, "1 s"),
    ])
    def test_unit_selection(self, value, expect):
        assert fmt_time(value) == expect


class TestDistributionIntrospection:
    def test_bucket_probabilities_sum(self):
        assert sum(WEB_SEARCH.bucket_probabilities()) == pytest.approx(1.0)

    def test_repr_mentions_mean(self):
        assert "KB" in repr(WEB_SEARCH)

    def test_mismatched_probabilities_rejected(self):
        from repro.workloads.distributions import (
            FlowSizeDistribution, _Bucket)
        with pytest.raises(ValueError):
            FlowSizeDistribution("bad", [_Bucket(0.5, 64, 1000, None)], 100)

"""Tests for TCP Reno and CUBIC congestion control."""

from repro.sim.engine import Simulator
from repro.sim.units import MS, SEC, US
from repro.transport.tcp import CubicFlow, RenoFlow

from tests.conftest import small_dumbbell


class TestReno:
    def test_slow_start_doubles(self, sim):
        topo = small_dumbbell(sim)
        flow = RenoFlow(topo.senders[0], topo.receivers[0], None)
        sim.run(until=200 * US)
        flow.stop()
        # Several RTTs of slow start from cwnd=2 at ~25 us RTT.
        assert flow.cwnd > 16

    def test_dupack_halves_window(self, sim):
        topo = small_dumbbell(sim)
        flow = RenoFlow(topo.senders[0], topo.receivers[0], None)
        flow.cwnd = 64.0
        flow.ssthresh = 1.0  # force congestion avoidance
        flow.cc_on_dupack_loss()
        assert flow.cwnd == 32.0

    def test_timeout_collapses_window(self, sim):
        topo = small_dumbbell(sim)
        flow = RenoFlow(topo.senders[0], topo.receivers[0], None)
        flow.cwnd = 64.0
        flow.cc_on_timeout()
        assert flow.cwnd == flow.min_cwnd
        assert flow.ssthresh == 32.0

    def test_congestion_avoidance_linear(self, sim):
        topo = small_dumbbell(sim)
        flow = RenoFlow(topo.senders[0], topo.receivers[0], None)
        flow.ssthresh = 1.0
        flow.cwnd = 10.0
        flow.cc_on_ack(1, False, None)
        assert flow.cwnd == 10.1

    def test_transfer_completes_despite_losses(self, sim):
        topo = small_dumbbell(sim, data_capacity_bytes=8 * 1538)
        flow = RenoFlow(topo.senders[0], topo.receivers[0], 500_000)
        sim.run(until=SEC)
        assert flow.completed


class TestCubic:
    def test_slow_start_until_first_loss(self, sim):
        topo = small_dumbbell(sim)
        flow = CubicFlow(topo.senders[0], topo.receivers[0], None)
        before = flow.cwnd
        flow.cc_on_ack(4, False, None)
        assert flow.cwnd == before + 4

    def test_loss_keeps_beta_fraction(self, sim):
        topo = small_dumbbell(sim)
        flow = CubicFlow(topo.senders[0], topo.receivers[0], None)
        flow.cwnd = 100.0
        flow.cc_on_dupack_loss()
        assert flow.cwnd == 70.0

    def test_cubic_growth_accelerates_far_from_wmax(self, sim):
        topo = small_dumbbell(sim)
        flow = CubicFlow(topo.senders[0], topo.receivers[0], None)
        flow.cwnd = 100.0
        flow.cc_on_dupack_loss()  # sets epoch, K
        # Immediately after the loss the target is below/at w_max; far in the
        # future the cubic term dominates.
        flow._epoch_start_ps = sim.now
        near = flow._cubic_window()
        flow._epoch_start_ps = sim.now - 5 * SEC
        far = flow._cubic_window()
        assert far > near

    def test_transfer_completes(self, sim):
        topo = small_dumbbell(sim, data_capacity_bytes=8 * 1538)
        flow = CubicFlow(topo.senders[0], topo.receivers[0], 500_000)
        sim.run(until=SEC)
        assert flow.completed

    def test_two_cubic_flows_share(self, sim):
        topo = small_dumbbell(sim, n_pairs=2)
        flows = [CubicFlow(s, r, None)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=20 * MS)
        rates = [f.bytes_delivered for f in flows]
        for f in flows:
            f.stop()
        assert min(rates) > 0
        assert sum(rates) * 8 / 0.02 > 5e9  # at least half the link used

"""Tests for fairness, FCT statistics, and time-series utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    FctStats,
    SIZE_BUCKETS,
    bucket_of,
    fct_stats_by_bucket,
    jain_index,
    percentile,
)
from repro.metrics.timeseries import (
    FlowThroughputSampler,
    QueueSampler,
    convergence_time_ps,
)
from repro.sim.engine import Simulator
from repro.sim.units import KB, MB, MS, SEC, US


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_total_skew(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_known_value(self):
        # J([1,2,3]) = 36 / (3*14)
        assert jain_index([1, 2, 3]) == pytest.approx(36 / 42)

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1, -1])

    @given(st.lists(st.floats(min_value=0.001, max_value=1e9), min_size=1,
                    max_size=50))
    def test_bounds(self, xs):
        j = jain_index(xs)
        assert 1 / len(xs) - 1e-9 <= j <= 1 + 1e-9

    @given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1,
                    max_size=20),
           st.floats(min_value=0.01, max_value=100))
    def test_scale_invariant(self, xs, k):
        assert jain_index(xs) == pytest.approx(jain_index([x * k for x in xs]))


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        assert percentile([5, 1, 9], 0) == 1
        assert percentile([5, 1, 9], 100) == 9

    def test_single_value(self):
        assert percentile([7], 99) == 7

    def test_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestBuckets:
    def test_bucket_edges(self):
        assert bucket_of(0) == "S"
        assert bucket_of(10 * KB - 1) == "S"
        assert bucket_of(10 * KB) == "M"
        assert bucket_of(100 * KB) == "L"
        assert bucket_of(1 * MB) == "XL"
        assert bucket_of(10**12) == "XL"

    def test_bucket_labels(self):
        assert [b[0] for b in SIZE_BUCKETS] == ["S", "M", "L", "XL"]

    def test_fct_stats_by_bucket(self):
        class F:
            def __init__(self, size, fct):
                self.size_bytes = size
                self.fct_ps = fct

        flows = [F(1000, 10 * US), F(2000, 20 * US), F(5 * MB, 1 * MS),
                 F(3000, None)]
        stats = fct_stats_by_bucket(flows)
        assert stats["S"].count == 2
        assert stats["XL"].count == 1
        assert "M" not in stats

    def test_fct_stats_values(self):
        stats = FctStats.from_fcts_ps([1 * MS, 2 * MS, 3 * MS])
        assert stats.mean_s == pytest.approx(0.002)
        assert stats.median_s == pytest.approx(0.002)
        assert stats.max_s == pytest.approx(0.003)

    def test_empty_fcts_rejected(self):
        with pytest.raises(ValueError):
            FctStats.from_fcts_ps([])


class TestConvergenceDetector:
    def test_detects_when_all_within_band(self):
        times = [0, 10, 20, 30, 40]
        a = [0, 50, 100, 100, 100]
        b = [200, 150, 100, 100, 100]
        t = convergence_time_ps(times, [a, b], 100, tolerance=0.1,
                                sustain_intervals=2)
        assert t == 20

    def test_requires_sustain(self):
        times = [0, 10, 20, 30]
        a = [100, 0, 100, 100]
        t = convergence_time_ps(times, [a], 100, tolerance=0.1,
                                sustain_intervals=3)
        assert t is None

    def test_respects_start(self):
        times = [0, 10, 20, 30, 40]
        a = [100] * 5
        t = convergence_time_ps(times, [a], 100, sustain_intervals=2,
                                start_ps=25)
        assert t == 30

    def test_none_when_never(self):
        t = convergence_time_ps([0, 10], [[0, 0]], 100)
        assert t is None


class TestSamplers:
    def test_queue_sampler_records(self):
        from tests.conftest import small_dumbbell
        from repro.core import ExpressPassFlow, ExpressPassParams

        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], None,
                               params=ExpressPassParams(rtt_hint_ps=40 * US))
        sampler = QueueSampler(sim, topo.bottleneck_fwd, interval_ps=100 * US)
        sim.run(until=5 * MS)
        flow.stop()
        sampler.stop()
        assert len(sampler.samples) == pytest.approx(50, abs=2)
        assert sampler.max_bytes() >= 0

    def test_throughput_sampler_tracks_goodput(self):
        from tests.conftest import small_dumbbell
        from repro.core import ExpressPassFlow, ExpressPassParams

        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], None,
                               params=ExpressPassParams(rtt_hint_ps=40 * US))
        sampler = FlowThroughputSampler(sim, [flow], interval_ps=1 * MS)
        sim.run(until=10 * MS)
        flow.stop()
        sampler.stop()
        series = sampler.series[flow]
        assert len(series) >= 9
        # Steady-state goodput near the credit-limited ceiling.
        assert max(series) > 8e9

    def test_sampler_track_late_flow(self):
        from tests.conftest import small_dumbbell
        from repro.core import ExpressPassFlow, ExpressPassParams

        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=2)
        f0 = ExpressPassFlow(topo.senders[0], topo.receivers[0], None,
                             params=ExpressPassParams(rtt_hint_ps=40 * US))
        sampler = FlowThroughputSampler(sim, [f0], interval_ps=1 * MS)
        sim.run(until=2 * MS)
        f1 = ExpressPassFlow(topo.senders[1], topo.receivers[1], None,
                             params=ExpressPassParams(rtt_hint_ps=40 * US))
        sampler.track(f1)
        sim.run(until=6 * MS)
        f0.stop()
        f1.stop()
        assert len(sampler.series[f1]) == len(sampler.series[f0])

"""Tests for repro.obs: the unified metrics / tracing / export plane.

Covers: metric primitives (log-bucketed histogram, counters, series merge
algebra); FlowSpan lifecycle ordering on a real ExpressPass run; final
counters agreeing exactly with port/flow state; metrics being observation-
only (metered flow outcomes identical to unmetered); the exporters
round-tripping counters/series/histograms exactly and their validators
rejecting malformed files; PortTracer JSONL round-trip; sampler stop
semantics (idempotent, final sample); the ambient capture / REPRO_METRICS
activation paths; the sweep scheduler shipping summaries on
``TaskResult.metrics``; the dashboard rendering; and the ``repro obs`` CLI.
"""

import json
import os

import pytest

from repro import runtime
from repro import obs as obs_mod
from repro.core import ExpressPassFlow, ExpressPassParams
from repro.metrics.timeseries import FlowThroughputSampler, QueueSampler
from repro.net.trace import PortTracer
from repro.obs import (
    Histogram,
    MetricsRegistry,
    capture,
    export,
    format_summary,
    merge_summaries,
)
from repro.runtime import run_tasks
from repro.runtime.task import TaskSpec
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from tests.conftest import small_dumbbell

EP = dict(params=ExpressPassParams(rtt_hint_ps=40 * US))


@pytest.fixture(autouse=True)
def _isolate_ambient_metrics(monkeypatch):
    """These tests manage their own registries; an ambient REPRO_METRICS=1
    (e.g. the obs-smoke CI job) would auto-attach at Network.finalize()
    and collide.  Activation-path tests set the variable back explicitly."""
    monkeypatch.delenv("REPRO_METRICS", raising=False)
    monkeypatch.delenv("REPRO_METRICS_INTERVAL_PS", raising=False)


def _run_dumbbell(seed=7, metered=False, sizes=(60_000, 25_000)):
    """One deterministic dumbbell run; returns (observables, summary)."""
    def build_and_run():
        sim = Simulator(seed=seed)
        topo = small_dumbbell(sim, n_pairs=len(sizes))
        flows = [ExpressPassFlow(topo.senders[i], topo.receivers[i], size,
                                 **EP)
                 for i, size in enumerate(sizes)]
        sim.run()
        return flows, topo

    if metered:
        with capture() as cap:
            flows, topo = build_and_run()
        summary = cap.summary
    else:
        flows, topo = build_and_run()
        summary = None
    observables = tuple((f.fid, f.finish_ps, f.bytes_delivered,
                         f.credits_sent, f.credits_wasted) for f in flows)
    return observables, summary


# -- metric primitives -------------------------------------------------------

class TestHistogram:
    def test_buckets_are_log2(self):
        h = Histogram("x")
        for v in (0, 1, 2, 3, 4, 1023, 1024):
            h.record(v)
        assert h.buckets[0] == 1          # exactly 0
        assert h.buckets[1] == 1          # 1
        assert h.buckets[2] == 2          # 2, 3
        assert h.buckets[10] == 1         # 1023
        assert h.buckets[11] == 1         # 1024
        assert h.count == 7 and h.vmin == 0 and h.vmax == 1024

    def test_exact_moments(self):
        h = Histogram("x")
        for v in (10, 20, 30):
            h.record(v)
        assert h.total == 60 and h.mean() == pytest.approx(20.0)

    def test_percentile_clamped_to_observed(self):
        h = Histogram("x")
        h.record(100)
        # bucket edge for 100 is 127, but the only sample is 100
        assert h.percentile(50) == 100
        assert h.percentile(99) == 100

    def test_percentile_spread(self):
        h = Histogram("x")
        for _ in range(99):
            h.record(10)
        h.record(10_000)
        assert h.percentile(50) <= 15
        assert h.percentile(100) == 10_000
        assert h.percentile(50) is not None

    def test_empty(self):
        h = Histogram("x")
        assert h.percentile(50) is None and h.mean() is None

    def test_dict_round_trip_and_merge(self):
        a, b = Histogram("x"), Histogram("x")
        for v in (1, 5, 9):
            a.record(v)
        for v in (2, 100):
            b.record(v)
        rt = Histogram.from_dict("x", a.as_dict())
        assert rt.as_dict() == a.as_dict()
        rt.merge_dict(b.as_dict())
        assert rt.count == 5 and rt.total == 117
        assert rt.vmin == 1 and rt.vmax == 100


class TestRegistryPrimitives:
    def test_create_on_demand_and_identity(self, sim):
        reg = MetricsRegistry.attach(sim)
        assert MetricsRegistry.attach(sim) is reg
        assert sim.metrics is reg
        c = reg.counter("a")
        c.inc()
        c.inc(4)
        assert reg.counter("a").value == 5
        reg.gauge("g").set(2.5)
        assert reg.gauge("g").value == 2.5
        s = reg.add_series("s")
        s.append(10, 1.0)
        assert reg.add_series("s") is s and len(s) == 1

    def test_snapshot_polls_sources_and_dedups(self, sim):
        reg = MetricsRegistry.attach(sim)
        reg.add_source("src", lambda: 42)
        reg.snapshot()
        reg.snapshot()  # same sim time: no duplicate point
        assert reg.series["src"].values == [42]
        assert reg.snapshots_taken == 2

    def test_snapshot_event_stops_at_quiescence(self, sim):
        reg = MetricsRegistry.attach(sim)
        reg.add_source("src", lambda: 0)
        sim.schedule(5 * MS, lambda: None)
        reg.start_snapshots(1 * MS)
        sim.run()  # must terminate despite the self-rescheduling snapshot
        assert sim.now >= 5 * MS
        assert len(reg.series["src"]) >= 5


class TestMergeSummaries:
    def test_counters_sum_and_histograms_merge(self):
        h = Histogram("flow.fct_ps")
        h.record(100)
        s1 = {"runs": 1, "counters": {"a": 2}, "histograms":
              {"flow.fct_ps": h.as_dict()}, "series": {}, "events": [],
              "spans": [], "flows": 1, "snapshots": 0, "gauges": {}}
        merged = merge_summaries([s1, s1, None])
        assert merged["runs"] == 2
        assert merged["counters"]["a"] == 4
        assert merged["histograms"]["flow.fct_ps"]["count"] == 2

    def test_series_collisions_uniquified(self):
        s = {"runs": 1, "counters": {}, "histograms": {}, "gauges": {},
             "series": {"q": {"times_ps": [1], "values": [2]}},
             "events": [], "spans": [], "flows": 0, "snapshots": 0}
        merged = merge_summaries([s, s])
        assert set(merged["series"]) == {"q", "q#2"}

    def test_format_summary_smoke(self):
        _, summary = _run_dumbbell(metered=True)
        text = format_summary(summary)
        assert "repro.obs" in text and "net.data.tx_pkts" in text


# -- flow spans on a real run ------------------------------------------------

class TestFlowSpans:
    def test_lifecycle_ordering(self):
        _, summary = _run_dumbbell(metered=True)
        assert summary["runs"] == 1 and summary["flows"] == 2
        for span in summary["spans"]:
            assert span["protocol"] == "ExpressPassFlow"
            assert (span["created_ps"] <= span["start_ps"]
                    <= span["first_credit_ps"] <= span["first_data_ps"]
                    <= span["finish_ps"])
            assert span["feedback_updates"] > 0
        kinds = [e[1] for e in summary["events"]]
        assert kinds.count("start") == 2
        assert kinds.count("first_credit") == 2
        assert kinds.count("complete") == 2
        times = [e[0] for e in summary["events"]]
        assert times == sorted(times)

    def test_final_counters_exact(self):
        with capture() as cap:
            sim = Simulator(seed=3)
            topo = small_dumbbell(sim)
            flows = [ExpressPassFlow(s, r, 40_000, **EP)
                     for s, r in zip(topo.senders, topo.receivers)]
            sim.run()
        c = cap.summary["counters"]
        assert c["ep.credits_sent"] == sum(f.credits_sent for f in flows)
        assert c["ep.credits_wasted"] == sum(f.credits_wasted for f in flows)
        assert c["net.data.tx_pkts"] == sum(
            p.stats.data_pkts_sent for p in topo.net.ports)
        assert c["net.credit.tx_pkts"] == sum(
            p.stats.credit_pkts_sent for p in topo.net.ports)
        assert c["flow.completed"] == 2
        # two competing flows: the shared credit bucket throttles
        assert c["net.credit.throttled"] > 0
        hist = cap.summary["histograms"]["flow.fct_ps"]
        assert hist["count"] == 2
        assert hist["sum"] == sum(f.fct_ps for f in flows)
        rtt = cap.summary["histograms"]["expresspass.credit_rtt_ps"]
        assert rtt["count"] > 0

    def test_fct_histogram_all_flows(self):
        _, summary = _run_dumbbell(metered=True)
        assert summary["histograms"]["flow.fct_ps"]["count"] == 2

    def test_stop_marks_span(self):
        with capture() as cap:
            sim = Simulator(seed=3)
            topo = small_dumbbell(sim)
            flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], None,
                                   **EP)
            sim.schedule(2 * MS, flow.stop)
            sim.run(until=3 * MS)
        span = cap.summary["spans"][0]
        assert span["stop_ps"] == 2 * MS
        assert span["finish_ps"] is None
        assert cap.summary["counters"]["flow.stopped"] == 1

    def test_unknown_span_event_rejected(self, sim):
        reg = MetricsRegistry.attach(sim)

        class _FakeFlow:
            fid = 1
            size_bytes = 0
            sim = None

        _FakeFlow.sim = sim
        span = reg.register_flow(_FakeFlow())
        with pytest.raises(ValueError):
            span.mark("no-such-event", 0)


class TestObservationOnly:
    def test_metered_run_same_flow_outcomes(self):
        plain, _ = _run_dumbbell(metered=False)
        metered, summary = _run_dumbbell(metered=True)
        assert plain == metered
        assert summary["counters"]["flow.completed"] == 2

    def test_attach_does_not_touch_port_flags(self, sim):
        topo = small_dumbbell(sim)
        flags_before = [p._flags for p in topo.net.ports]
        reg = MetricsRegistry.attach(sim)
        reg.attach_network(topo.net)
        assert [p._flags for p in topo.net.ports] == flags_before
        assert all(p.obs is reg for p in topo.net.ports)


# -- exporters ---------------------------------------------------------------

class TestExporters:
    @pytest.fixture()
    def summary(self):
        _, summary = _run_dumbbell(metered=True)
        return summary

    def test_jsonl_round_trip(self, tmp_path, summary):
        path = tmp_path / "run.jsonl"
        export.write_jsonl(path, summary)
        stats = export.validate_jsonl(path)
        assert stats["records"]["meta"] == 1
        loaded = export.load_jsonl(path)
        assert loaded["counters"] == summary["counters"]
        assert loaded["histograms"] == summary["histograms"]
        assert loaded["series"] == summary["series"]
        assert loaded["spans"] == summary["spans"]
        assert loaded["events"] == [list(e) for e in summary["events"]]

    def test_jsonl_validator_rejects_garbage(self, tmp_path, summary):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            export.validate_jsonl(path)
        path.write_text('{"record": "counter", "name": "a", "value": 1}\n')
        with pytest.raises(ValueError, match="meta"):
            export.validate_jsonl(path)
        export.write_jsonl(path, summary)
        lines = path.read_text().splitlines()
        lines.append(json.dumps(
            {"record": "counter", "name": "x", "value": -1}))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="int >= 0"):
            export.validate_jsonl(path)

    def test_csv_round_trip(self, tmp_path, summary):
        path = tmp_path / "run.csv"
        rows = export.write_csv(path, summary)
        assert rows == sum(len(s["times_ps"])
                           for s in summary["series"].values())
        assert export.validate_csv(path)["rows"] == rows
        assert export.load_csv(path) == summary["series"]

    def test_csv_validator_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="header"):
            export.validate_csv(path)

    def test_prometheus_round_trip(self, tmp_path, summary):
        path = tmp_path / "run.prom"
        export.write_prometheus(path, summary)
        parsed = export.parse_prometheus(path.read_text())
        for name, value in summary["counters"].items():
            assert parsed["repro_" + name.replace(".", "_")] == value
        fct = summary["histograms"]["flow.fct_ps"]
        assert parsed["repro_flow_fct_ps_count"] == fct["count"]
        assert parsed["repro_flow_fct_ps_sum"] == fct["sum"]
        assert parsed['repro_flow_fct_ps_bucket{le="+Inf"}'] == fct["count"]


class TestTraceExport:
    def _traced_run(self):
        sim = Simulator(seed=5)
        topo = small_dumbbell(sim)
        tracer = PortTracer(topo.bottleneck_fwd)
        ExpressPassFlow(topo.senders[0], topo.receivers[0], 30_000, **EP)
        sim.run()
        return tracer

    def test_port_tracer_jsonl_round_trip(self, tmp_path):
        tracer = self._traced_run()
        path = tmp_path / "trace.jsonl"
        n = tracer.to_jsonl(path)
        assert n == len(tracer.records) > 0
        assert PortTracer.from_jsonl(path) == tracer.records

    def test_dump_traces_round_trip(self, tmp_path):
        tracer = self._traced_run()
        path = tmp_path / "pcap.jsonl"
        n = export.dump_traces(path, [tracer])
        assert n == len(tracer.records)
        loaded = export.load_traces(path)
        assert loaded[tracer.port.name] == tracer.records

    def test_capture_trace_option(self):
        with capture(trace=True) as cap:
            sim = Simulator(seed=5)
            topo = small_dumbbell(sim)
            ExpressPassFlow(topo.senders[0], topo.receivers[0], 30_000, **EP)
            sim.run()
        tracers = [t for reg in cap.registries for t in reg.tracers]
        assert len(tracers) == len(topo.net.ports)
        assert sum(len(t.records) for t in tracers) > 0


# -- sampler lifecycle (satellite) -------------------------------------------

class TestSamplerLifecycle:
    def test_queue_sampler_stop_idempotent_with_final_sample(self, sim):
        topo = small_dumbbell(sim)
        sampler = QueueSampler(sim, topo.bottleneck_fwd, interval_ps=1 * MS)
        sim.run(until=2_500_000)  # 2.5 us: mid-interval
        n = len(sampler.samples)
        sampler.stop()
        # final partial-interval sample captured exactly once
        assert len(sampler.samples) == n + 1
        assert sampler.samples[-1][0] == sim.now
        sampler.stop()
        assert len(sampler.samples) == n + 1

    def test_throughput_sampler_final_partial_interval(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], None, **EP)
        sampler = FlowThroughputSampler(sim, [flow], interval_ps=1 * MS)
        sim.run(until=2_500_000)  # 2.5 us: stop mid-first-interval
        flow.stop()
        assert len(sampler.times_ps) == 0
        sampler.stop()
        assert len(sampler.times_ps) == 1  # the partial interval
        sampler.stop()
        assert len(sampler.times_ps) == 1

    def test_registry_sampler_mirrors_identical_values(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        reg = MetricsRegistry.attach(sim)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], None, **EP)
        tput = reg.sample_throughput([flow], 1 * MS)
        qs = reg.sample_queue(topo.bottleneck_fwd, 1 * MS)
        sim.run(until=5 * MS)
        flow.stop()
        reg.finalize()
        mirror = reg.series[f"throughput.f{flow.fid}_bps"]
        assert mirror.values == tput.series[flow]
        assert mirror.times_ps == tput.times_ps
        qname = f"queue.{topo.bottleneck_fwd.name}.bytes"
        assert reg.series[qname].values == [b for _, b in qs.samples]

    def test_track_late_flow_backfills_mirror(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim, n_pairs=2)
        reg = MetricsRegistry.attach(sim)
        f0 = ExpressPassFlow(topo.senders[0], topo.receivers[0], None, **EP)
        sampler = reg.sample_throughput([f0], 1 * MS)
        sim.run(until=2 * MS)
        f1 = ExpressPassFlow(topo.senders[1], topo.receivers[1], None, **EP)
        sampler.track(f1)
        sim.run(until=4 * MS)
        f0.stop()
        f1.stop()
        m0 = reg.series[f"throughput.f{f0.fid}_bps"]
        m1 = reg.series[f"throughput.f{f1.fid}_bps"]
        assert len(m0) == len(m1)
        assert m1.values[:2] == [0.0, 0.0]  # backfilled pre-track intervals

    def test_sample_rates_reads_expresspass_rate(self):
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        reg = MetricsRegistry.attach(sim)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], None, **EP)
        reg.sample_rates([flow], 1 * MS)
        sim.run(until=3 * MS)
        flow.stop()
        series = reg.series[f"rate.f{flow.fid}_bps"]
        assert len(series) >= 2
        assert max(series.values) > 0


# -- activation paths --------------------------------------------------------

class TestActivation:
    def test_disabled_by_default(self, sim):
        topo = small_dumbbell(sim)
        assert sim.metrics is None
        assert all(p.obs is None for p in topo.net.ports)

    def test_env_var_attaches(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        sim = Simulator(seed=1)
        topo = small_dumbbell(sim)
        assert sim.metrics is not None
        assert all(p.obs is sim.metrics for p in topo.net.ports)

    def test_env_interval_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        monkeypatch.setenv("REPRO_METRICS_INTERVAL_PS", str(2 * MS))
        sim = Simulator(seed=1)
        small_dumbbell(sim)
        assert sim.metrics.snapshot_interval_ps == 2 * MS

    def test_capture_attaches_and_snapshots(self):
        with capture() as cap:
            sim = Simulator(seed=1)
            topo = small_dumbbell(sim)
            flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], None,
                                   **EP)
            sim.schedule(5 * MS, flow.stop)
            sim.run(until=5 * MS)
        summary = cap.summary
        assert summary["snapshots"] >= 5  # 1 ms cadence over 5 ms
        series = summary["series"]["tx.data.bytes.total"]
        assert series["values"][-1] > 0
        assert series["values"] == sorted(series["values"])  # monotone bytes

    def test_nested_capture_not_double_counted(self):
        with capture() as outer:
            with capture() as inner:
                _run_dumbbell(metered=False)  # registry claimed by inner
        assert inner.summary["runs"] == 1
        assert outer.summary["runs"] == 0


# -- scheduler integration ---------------------------------------------------

def _sweep_point(seed: int) -> tuple:
    observables, _ = _run_dumbbell(seed=seed)
    return observables


class TestSchedulerIntegration:
    def test_task_results_carry_metrics(self):
        specs = [TaskSpec(fn=_sweep_point, kwargs={"seed": s},
                          label=f"seed{s}") for s in (5, 6)]
        obs_mod.reset_session()
        with runtime.using(cache_enabled=False, progress=False, retries=0,
                           metrics=True, parallel=0):
            results = run_tasks(list(specs), name="obs-sweep")
        assert all(r.ok for r in results)
        for r in results:
            assert r.metrics is not None
            assert r.metrics["counters"]["flow.completed"] == 2
        session = obs_mod.session_summary()
        assert session["runs"] == 2
        assert session["counters"]["flow.completed"] == 4

    def test_metrics_off_plain_sweep(self):
        # metrics=False explicitly: the suite may run under REPRO_METRICS=1
        # (the obs-smoke CI job), which the session config would inherit.
        specs = [TaskSpec(fn=_sweep_point, kwargs={"seed": 5}, label="s")]
        with runtime.using(cache_enabled=False, progress=False, retries=0,
                           parallel=0, metrics=False):
            results = run_tasks(list(specs), name="plain-sweep")
        assert results[0].ok and results[0].metrics is None

    def test_parallel_workers_ship_summaries(self):
        specs = [TaskSpec(fn=_sweep_point, kwargs={"seed": s},
                          label=f"seed{s}") for s in (5, 6)]
        obs_mod.reset_session()
        with runtime.using(cache_enabled=False, progress=False, retries=0,
                           metrics=True, parallel=2):
            results = run_tasks(list(specs), name="obs-par")
        assert all(r.ok for r in results)
        assert all(r.metrics is not None for r in results)
        # parallel results identical to what the serial path measures
        serial, _ = _run_dumbbell(seed=5)
        assert results[0].value == serial


# -- dashboard ---------------------------------------------------------------

class TestDashboard:
    def _render_run(self, size=None, **dash_kwargs):
        import io
        import itertools
        from repro.obs.dashboard import Dashboard

        out = io.StringIO()
        clock = itertools.count()
        with capture():
            sim = Simulator(seed=1)
            topo = small_dumbbell(sim)
            dash = Dashboard(sim.metrics, out, min_interval_s=0,
                             clock=lambda: next(clock), **dash_kwargs)
            flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], size,
                                   **EP)
            if size is None:
                sim.schedule(5 * MS, flow.stop)
                sim.run(until=5 * MS)
            else:
                sim.run()
        return dash, out.getvalue()

    def test_renders_panels(self):
        dash, text = self._render_run()
        assert dash.renders > 0
        assert "repro.obs" in text
        assert "tx rate (Gbps)" in text
        assert "queue.data.bytes.max" in text
        assert "credit_throttled=" in text

    def test_fct_panel_after_completion(self):
        dash, _ = self._render_run(size=120_000)
        text = dash.render()  # final state: flow completed
        assert "FCT n=1" in text

    def test_ascii_only(self):
        dash, text = self._render_run(ascii_only=True)
        assert "█" not in text

    def test_wall_clock_throttling(self):
        import io
        from repro.obs.dashboard import Dashboard

        out = io.StringIO()
        with capture():
            sim = Simulator(seed=1)
            topo = small_dumbbell(sim)
            # frozen clock: only the first snapshot may render
            dash = Dashboard(sim.metrics, out, min_interval_s=10.0,
                             clock=lambda: 0.0)
            flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], None,
                                   **EP)
            sim.schedule(5 * MS, flow.stop)
            sim.run(until=5 * MS)
        assert dash.renders == 1

    def test_close_restores_hook(self, sim):
        from repro.obs.dashboard import Dashboard
        import io

        reg = MetricsRegistry.attach(sim)
        prev = lambda r: None
        reg.on_snapshot = prev
        dash = Dashboard(reg, io.StringIO())
        assert reg.on_snapshot != prev
        dash.close()
        assert reg.on_snapshot is prev


# -- CLI ---------------------------------------------------------------------

class TestCli:
    def test_obs_subcommand_exports(self, tmp_path, capsys):
        from repro.cli import main

        jsonl = tmp_path / "m.jsonl"
        csv = tmp_path / "m.csv"
        prom = tmp_path / "m.prom"
        pcap = tmp_path / "m.pcap"
        rc = main(["obs", "fig13",
                   "--set", "n_flows=2", "--set", "stagger_ps=2000000000",
                   "--set", "sample_ps=1000000000",
                   "--jsonl", str(jsonl), "--csv", str(csv),
                   "--prom", str(prom), "--pcap", str(pcap)])
        assert rc == 0
        assert export.validate_jsonl(jsonl)["records"]["counter"] > 0
        assert export.validate_csv(csv)["series"] > 0
        parsed = export.parse_prometheus(prom.read_text())
        loaded = export.load_jsonl(jsonl)
        for name, value in loaded["counters"].items():
            assert parsed["repro_" + name.replace(".", "_")] == value
        assert len(export.load_traces(pcap)) > 0
        err = capsys.readouterr().err
        assert "repro.obs" in err

    def test_run_metrics_flag(self, capsys):
        from repro.cli import main

        rc = main(["run", "fig13", "--metrics",
                   "--set", "n_flows=2", "--set", "stagger_ps=2000000000",
                   "--set", "sample_ps=1000000000"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "repro.obs" in err and "flow(s)" in err

"""Tests for DCTCP: marking, alpha estimation, window scaling."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US
from repro.transport.dctcp import (
    DctcpFlow,
    dctcp_gain,
    dctcp_marking_threshold_bytes,
)

from tests.conftest import small_dumbbell


class TestParameters:
    def test_k_at_10g_is_65_packets(self):
        assert dctcp_marking_threshold_bytes(10 * GBPS) == 65 * 1538

    def test_k_at_100g_is_650_packets(self):
        assert dctcp_marking_threshold_bytes(100 * GBPS) == 650 * 1538

    def test_gain_matches_paper_anchors(self):
        assert dctcp_gain(10 * GBPS) == pytest.approx(0.0625)
        assert dctcp_gain(100 * GBPS) == pytest.approx(0.01976, rel=0.05)


class TestAlphaEstimator:
    def test_alpha_decays_without_marks(self, sim):
        topo = small_dumbbell(sim)
        flow = DctcpFlow(topo.senders[0], topo.receivers[0], None)
        flow.alpha = 1.0
        for _ in range(10):
            flow.cc_on_round(acks=10, marks=0, avg_rtt_ps=None)
        assert flow.alpha == pytest.approx((1 - flow.g) ** 10)

    def test_alpha_rises_with_marks(self, sim):
        topo = small_dumbbell(sim)
        flow = DctcpFlow(topo.senders[0], topo.receivers[0], None)
        flow.alpha = 0.0
        flow.cc_on_round(acks=10, marks=10, avg_rtt_ps=None)
        assert flow.alpha == pytest.approx(flow.g)

    def test_window_cut_scales_with_alpha(self, sim):
        topo = small_dumbbell(sim)
        flow = DctcpFlow(topo.senders[0], topo.receivers[0], None)
        flow.alpha = 0.5
        flow.cwnd = 40.0
        flow.cc_on_ack(1, ecn_echo=True, rtt_sample_ps=None)
        assert flow.cwnd == pytest.approx(40.0 * 0.75)

    def test_cut_at_most_once_per_round(self, sim):
        topo = small_dumbbell(sim)
        flow = DctcpFlow(topo.senders[0], topo.receivers[0], None)
        flow.alpha = 1.0
        flow.cwnd = 40.0
        flow.cc_on_ack(1, True, None)
        after_first = flow.cwnd
        flow.cc_on_ack(1, True, None)
        assert flow.cwnd == after_first
        flow.cc_on_round(10, 2, None)  # round boundary re-arms the cut
        flow.cc_on_ack(1, True, None)
        assert flow.cwnd < after_first

    def test_min_cwnd_floor_is_two(self, sim):
        topo = small_dumbbell(sim)
        flow = DctcpFlow(topo.senders[0], topo.receivers[0], None)
        flow.alpha = 1.0
        flow.cwnd = 2.0
        flow.cc_on_ack(1, True, None)
        assert flow.cwnd == 2.0


class TestEndToEnd:
    def test_steady_queue_near_marking_threshold(self):
        sim = Simulator(seed=1)
        k = dctcp_marking_threshold_bytes(10 * GBPS)
        topo = small_dumbbell(sim, n_pairs=2, ecn_threshold_bytes=k)
        flows = [DctcpFlow(s, r, None)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=50 * MS)
        for f in flows:
            f.stop()
        max_queue = topo.net.max_data_queue_bytes()
        # Queue hovers around K (some overshoot in slow start) and the link
        # is fully used.
        assert k * 0.5 < max_queue
        delivered = sum(f.bytes_delivered for f in flows)
        assert delivered * 8 / 0.05 > 8e9

    def test_transfer_completes_with_marking(self):
        sim = Simulator(seed=1)
        k = dctcp_marking_threshold_bytes(10 * GBPS)
        topo = small_dumbbell(sim, ecn_threshold_bytes=k)
        flow = DctcpFlow(topo.senders[0], topo.receivers[0], 2_000_000)
        sim.run(until=SEC)
        assert flow.completed
        assert flow.bytes_delivered == 2_000_000

"""Cross-module integration tests: fabrics, mixed protocols, determinism."""

import pytest

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.experiments.runner import PROTOCOLS, get_harness
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US
from repro.topology import LinkSpec, fat_tree, oversubscribed_clos

EP = ExpressPassParams(rtt_hint_ps=60 * US)


class TestFatTreeTransfers:
    def test_interpod_expresspass_transfer(self):
        sim = Simulator(seed=1)
        ft = fat_tree(sim, k=4)
        flow = ExpressPassFlow(ft.hosts[0], ft.hosts[-1], 2_000_000, params=EP)
        sim.run(until=SEC)
        assert flow.completed
        assert ft.net.total_data_drops() == 0

    def test_permutation_traffic_all_complete(self):
        sim = Simulator(seed=1)
        ft = fat_tree(sim, k=4)
        n = len(ft.hosts)
        flows = [ExpressPassFlow(ft.hosts[i], ft.hosts[(i + 1) % n],
                                 500_000, params=EP) for i in range(n)]
        sim.run(until=SEC)
        assert all(f.completed for f in flows)
        assert ft.net.total_data_drops() == 0

    def test_mixed_speed_fat_tree(self):
        sim = Simulator(seed=1)
        ft = fat_tree(sim, k=4,
                      edge=LinkSpec(rate_bps=10 * GBPS, prop_delay_ps=1 * US),
                      core=LinkSpec(rate_bps=40 * GBPS, prop_delay_ps=5 * US))
        flow = ExpressPassFlow(ft.hosts[0], ft.hosts[-1], 1_000_000, params=EP)
        sim.run(until=SEC)
        assert flow.completed


@pytest.mark.parametrize("protocol", [p for p in PROTOCOLS
                                      if p != "expresspass-naive"])
def test_every_protocol_completes_on_clos(protocol):
    """One mid-size transfer per protocol across the oversubscribed Clos."""
    sim = Simulator(seed=1)
    harness = get_harness(protocol, 10 * GBPS, 60 * US, EP)
    spec = harness.adapt_link(LinkSpec(rate_bps=10 * GBPS, prop_delay_ps=2 * US))
    clos = oversubscribed_clos(sim, edge=spec, core=spec)
    harness.install(sim, clos.net)
    flow = harness.flow(clos.hosts[0], clos.hosts[-1], 1_000_000)
    sim.run(until=SEC)
    assert flow.completed, protocol
    assert flow.bytes_delivered == 1_000_000


class TestDeterminism:
    def _run_once(self, seed):
        sim = Simulator(seed=seed)
        ft = fat_tree(sim, k=4)
        flows = [ExpressPassFlow(ft.hosts[i], ft.hosts[-1 - i], 300_000,
                                 params=EP) for i in range(4)]
        sim.run(until=SEC)
        return [f.fct_ps for f in flows], sim.events_processed

    def test_same_seed_same_results(self):
        assert self._run_once(5) == self._run_once(5)

    def test_different_seed_differs(self):
        fcts_a, _ = self._run_once(5)
        fcts_b, _ = self._run_once(6)
        assert fcts_a != fcts_b


class TestProtocolCoexistence:
    def test_expresspass_with_uncredited_background_traffic(self):
        """§7 'presence of other traffic': reactive flows share the fabric."""
        from repro.transport.tcp import RenoFlow

        sim = Simulator(seed=2)
        from tests.conftest import small_dumbbell
        topo = small_dumbbell(sim, n_pairs=2)
        ep = ExpressPassFlow(topo.senders[0], topo.receivers[0], 2_000_000,
                             params=EP)
        bg = RenoFlow(topo.senders[1], topo.receivers[1], 2_000_000)
        sim.run(until=SEC)
        assert ep.completed and bg.completed

"""Tests for hosts and the host delay model."""

import pytest

from repro.net.host import Host, HostDelayModel
from repro.sim.engine import Simulator
from repro.sim.units import US


class TestHostDelayModel:
    def test_constant_model(self):
        model = HostDelayModel.constant(5 * US)
        assert model.sample() == 5 * US
        assert model.spread_ps == 5 * US

    def test_default_matches_paper_median(self):
        sim = Simulator(seed=11)
        model = HostDelayModel()
        model.bind(sim.rng("host-delay"))
        samples = sorted(model.sample() for _ in range(20_000))
        median = samples[len(samples) // 2]
        assert 0.30 * US < median < 0.46 * US

    def test_tail_clipped_at_max(self):
        sim = Simulator(seed=11)
        model = HostDelayModel()
        model.bind(sim.rng("host-delay"))
        assert max(model.sample() for _ in range(50_000)) <= model.max_delay_ps

    def test_without_rng_returns_median(self):
        model = HostDelayModel()
        assert model.sample() == model.median_ps

    def test_validation(self):
        with pytest.raises(ValueError):
            HostDelayModel(median_ps=0)
        with pytest.raises(ValueError):
            HostDelayModel(median_ps=100, p9999_ps=100)


class TestHost:
    def test_nic_requires_single_port(self):
        sim = Simulator(seed=0)
        host = Host(sim, 0)
        with pytest.raises(RuntimeError):
            _ = host.nic

    def test_misrouted_packet_raises(self):
        from repro.net.packet import data_packet
        from repro.topology import single_switch

        sim = Simulator(seed=0)
        topo = single_switch(sim, 2)
        pkt = data_packet(topo.hosts[0].id, 999, None, 10, seq=0)
        with pytest.raises(RuntimeError):
            topo.hosts[1].receive(pkt, None)

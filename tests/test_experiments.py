"""Smoke tests for the experiment harness (scaled-down configurations)."""

import pytest

from repro.core import ExpressPassParams
from repro.experiments import format_table, get_harness
from repro.experiments.runner import ExperimentResult
from repro.sim.units import GBPS, MS, US


class TestRunner:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            get_harness("quic", 10 * GBPS)

    def test_dctcp_harness_sets_ecn(self):
        from repro.topology import LinkSpec
        harness = get_harness("dctcp", 10 * GBPS)
        spec = harness.adapt_link(LinkSpec())
        assert spec.ecn_threshold_bytes == 65 * 1538

    def test_expresspass_harness_leaves_link_alone(self):
        from repro.topology import LinkSpec
        harness = get_harness("expresspass", 10 * GBPS)
        spec = harness.adapt_link(LinkSpec())
        assert spec.ecn_threshold_bytes is None

    def test_format_table_renders(self):
        result = ExperimentResult("demo", ["a", "b"],
                                  [{"a": 1, "b": 2.5}, {"a": 3, "b": None}])
        text = format_table(result)
        assert "demo" in text and "2.5" in text

    def test_result_column_access(self):
        result = ExperimentResult("demo", ["a"], [{"a": 1}, {"a": 2}])
        assert result.column("a") == [1, 2]


class TestFig12Model:
    def test_rates_converge_and_d_matches(self):
        from repro.experiments.fig12_steady_state import run, simulate_model
        result = run(n_flows=4, periods=150, w_mins=(0.01,))
        row = result.rows[0]
        assert row["final_rate_spread"] < 0.01
        assert row["final_amplitude"] == pytest.approx(
            row["predicted_D_star"], rel=0.2)
        assert row["final_w"] == 0.01

    def test_model_trajectories_shape(self):
        from repro.experiments.fig12_steady_state import simulate_model
        out = simulate_model(3, 50)
        assert len(out["rates"]) == 50
        assert len(out["rates"][0]) == 3


class TestTable1:
    def test_rows_cover_all_configs(self):
        from repro.experiments.table1_buffer_bounds import run
        result = run()
        assert len(result.rows) == 4
        assert all(row["tor_down_kb"] > row["tor_up_kb"]
                   for row in result.rows)

    def test_fig5_rows(self):
        from repro.experiments.table1_buffer_bounds import run_fig5
        result = run_fig5()
        assert len(result.rows) == 6
        soft = [r for r in result.rows if r["setting"].startswith("(a)")]
        hw = [r for r in result.rows if r["setting"].startswith("(b)")]
        for s, h in zip(soft, hw):
            assert h["total_mb"] < s["total_mb"]


class TestFig14:
    def test_host_delay_quantiles(self):
        from repro.experiments.fig14_host_jitter import run_host_delay
        result = run_host_delay(samples=20_000)
        by_pct = {row["percentile"]: row["delay_us"] for row in result.rows}
        assert by_pct[50] == pytest.approx(0.38, rel=0.15)
        assert by_pct[99.99] == pytest.approx(6.2, rel=0.25)

    def test_inter_credit_gap_median_near_slot(self):
        from repro.experiments.fig14_host_jitter import run_inter_credit_gap
        result = run_inter_credit_gap(duration_ps=2 * MS)
        by_pct = {row["percentile"]: row["gap_us"] for row in result.rows}
        assert by_pct[50] == pytest.approx(result.meta["ideal_gap_us"], rel=0.1)


class TestSimulationExperimentsSmoke:
    """Tiny configurations: check plumbing, not statistics."""

    def test_fig01_point(self):
        from repro.experiments.fig01_queue_buildup import run_point
        row = run_point("expresspass", fan_in=8, n_hosts=5,
                        duration_ps=3 * MS)
        assert row["queue_pkts_max"] >= 0
        assert row["data_drops"] == 0

    def test_fig09_point(self):
        from repro.experiments.fig09_credit_queue import run_point
        row = run_point(4, 8, warmup_ps=3 * MS, measure_ps=5 * MS)
        assert 0 <= row["under_utilization"] < 0.5

    def test_fig15_point(self):
        from repro.experiments.fig15_flow_scalability import run_point
        row = run_point("expresspass", 4, warmup_ps=5 * MS, measure_ps=5 * MS)
        # 5 ms is a short measurement window; the full bench uses 50 ms.
        assert row["fairness"] > 0.8
        assert row["utilization"] > 0.8

    def test_fig13_timeseries(self):
        from repro.experiments.fig13_convergence_behavior import run
        result = run("expresspass", n_flows=2, stagger_ps=2 * MS,
                     sample_ps=1 * MS)
        assert len(result.rows) > 3
        assert "queue_kb" in result.columns[-1]

    def test_fig17_small_shuffle(self):
        from repro.experiments.fig17_shuffle import run_point
        row = run_point("expresspass", n_hosts=4, tasks_per_host=1,
                        flow_bytes=50_000)
        assert row["completed"] == row["flows"] == 12

    def test_realistic_smoke(self):
        from repro.experiments.realistic import run_realistic
        result = run_realistic("expresspass", "web_server", 0.4, n_flows=60,
                               ep_params=ExpressPassParams(rtt_hint_ps=60 * US))
        assert result.completed == 60
        assert result.data_drops == 0

    def test_realistic_rejects_unknown_workload(self):
        from repro.experiments.realistic import run_realistic
        with pytest.raises(ValueError):
            run_realistic("expresspass", "bogus")


class TestRdmaComparison:
    def test_smoke(self):
        from repro.experiments.rdma_comparison import run_point
        row = run_point("expresspass", fan_in=4, response_kb=16)
        assert row["completed"] == 4
        assert row["data_drops"] == 0
        assert row["pfc_pauses"] == 0

    def test_dcqcn_point_uses_pfc(self):
        from repro.experiments.rdma_comparison import run_point
        row = run_point("dcqcn", fan_in=4, response_kb=64)
        assert row["completed"] == 4
        assert row["data_drops"] == 0


class TestAblations:
    def test_opportunistic_ablation_smoke(self):
        from repro.experiments.ablations import run_opportunistic_ablation
        result = run_opportunistic_ablation(burst_sizes=(0, 8), n_flows=40)
        assert len(result.rows) == 2
        assert all(r["completed"] == 40 for r in result.rows)


class TestClosedLoopIncast:
    def test_smoke(self):
        from repro.experiments.incast_closed_loop import run_point
        row = run_point("expresspass", fan_in=6, n_hosts=7, rounds=5)
        assert row["rounds_done"] == 5
        assert row["data_drops"] == 0
        assert row["downlink_queue_max_pkts"] < 4


class TestParkingLotAndMultiBottleneck:
    def test_parking_lot_point_smoke(self):
        from repro.experiments.fig10_parking_lot import run_point
        row = run_point(2, naive=False, warmup_ps=5 * MS, measure_ps=5 * MS)
        assert 0.5 < row["min_link_utilization"] <= 1.05
        assert row["mode"] == "feedback"

    def test_parking_lot_naive_underutilizes(self):
        from repro.experiments.fig10_parking_lot import run_point
        naive = run_point(3, naive=True, warmup_ps=5 * MS, measure_ps=8 * MS)
        fb = run_point(3, naive=False, warmup_ps=5 * MS, measure_ps=8 * MS)
        assert naive["min_link_utilization"] < fb["min_link_utilization"]

    def test_multibottleneck_point_smoke(self):
        from repro.experiments.fig11_multibottleneck import run_point
        row = run_point(2, naive=False, warmup_ps=5 * MS, measure_ps=8 * MS)
        assert row["flow0_gbps"] > 0
        assert row["maxmin_ideal_gbps"] == pytest.approx(
            10 * (1538 / 1626) * (1500 / 1538) / 3, rel=0.01)

"""Tests for topology builders."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.units import GBPS, US
from repro.topology import (
    LinkSpec,
    dumbbell,
    fat_tree,
    multi_bottleneck,
    oversubscribed_clos,
    parking_lot,
    single_switch,
)


class TestDumbbell:
    def test_structure(self):
        sim = Simulator(seed=0)
        topo = dumbbell(sim, n_pairs=3)
        assert len(topo.senders) == 3
        assert len(topo.receivers) == 3
        assert len(topo.net.switches) == 2
        assert topo.bottleneck_fwd.node.name == "L"
        assert topo.bottleneck_rev.node.name == "R"

    def test_edge_defaults_to_bottleneck_spec(self):
        sim = Simulator(seed=0)
        spec = LinkSpec(rate_bps=40 * GBPS)
        topo = dumbbell(sim, n_pairs=1, bottleneck=spec)
        assert topo.senders[0].nic.rate_bps == 40 * GBPS


class TestSingleSwitch:
    def test_structure(self):
        sim = Simulator(seed=0)
        topo = single_switch(sim, 5)
        assert len(topo.hosts) == 5
        assert len(topo.net.switches) == 1
        assert len(topo.net.ports) == 10  # 5 full-duplex links


class TestParkingLot:
    def test_chain_length(self):
        sim = Simulator(seed=0)
        topo = parking_lot(sim, 4)
        assert len(topo.bottleneck_ports) == 4
        assert len(topo.cross_srcs) == 4
        assert len(topo.net.switches) == 5

    def test_requires_at_least_one(self):
        with pytest.raises(ValueError):
            parking_lot(Simulator(seed=0), 0)


class TestMultiBottleneck:
    def test_structure(self):
        sim = Simulator(seed=0)
        topo = multi_bottleneck(sim, 3)
        assert len(topo.cross_srcs) == 3
        assert len(topo.flow0_dst_hosts) == 4  # flow0's dst + 3 cross dsts
        assert topo.link2_port.node.name == "swB"


class TestFatTree:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_element_counts(self, k):
        sim = Simulator(seed=0)
        ft = fat_tree(sim, k)
        half = k // 2
        assert len(ft.cores) == half * half
        assert len(ft.aggs) == k * half
        assert len(ft.tors) == k * half
        assert len(ft.hosts) == k * half * half

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(Simulator(seed=0), 3)

    def test_port_counts(self):
        sim = Simulator(seed=0)
        ft = fat_tree(sim, 4)
        tor = ft.tors[0]
        # k/2 hosts + k/2 aggs
        assert len(tor.ports) == 4
        core = ft.cores[0]
        assert len(core.ports) == 4  # one agg per pod

    def test_distinct_edge_core_speeds(self):
        sim = Simulator(seed=0)
        ft = fat_tree(sim, 4,
                      edge=LinkSpec(rate_bps=10 * GBPS),
                      core=LinkSpec(rate_bps=40 * GBPS))
        agg = ft.aggs[0]
        core_port = next(p for p in agg.ports.values()
                         if p.peer in ft.cores)
        tor_port = next(p for p in agg.ports.values()
                        if p.peer in ft.tors)
        assert core_port.rate_bps == 40 * GBPS
        assert tor_port.rate_bps == 10 * GBPS


class TestClos:
    def test_default_structure(self):
        sim = Simulator(seed=0)
        clos = oversubscribed_clos(sim)
        assert len(clos.cores) == 4
        assert len(clos.aggs) == 8
        assert len(clos.tors) == 8
        assert len(clos.hosts) == 48
        assert clos.oversubscription == pytest.approx(3.0)

    def test_tor_uplink_count(self):
        sim = Simulator(seed=0)
        clos = oversubscribed_clos(sim)
        assert len(clos.tor_uplink_ports) == 8 * 2  # each ToR x aggs per pod

    def test_core_grouping_validation(self):
        with pytest.raises(ValueError):
            oversubscribed_clos(Simulator(seed=0), n_core=3, n_agg_per_pod=2)


class TestNetworkAudits:
    def test_drop_and_queue_audits_start_clean(self):
        sim = Simulator(seed=0)
        topo = single_switch(sim, 3)
        assert topo.net.total_data_drops() == 0
        assert topo.net.total_credit_drops() == 0
        assert topo.net.max_data_queue_bytes() == 0

    def test_port_between(self):
        sim = Simulator(seed=0)
        topo = single_switch(sim, 2)
        port = topo.net.port_between(topo.switch, topo.hosts[0])
        assert port.node is topo.switch
        assert port.peer is topo.hosts[0]

"""Tests for repro.audit: runtime invariant verification.

Covers: clean runs audit clean; each deliberately seeded fault (broken
credit meter, misrouted credit path, silent credit loss, over-bound queue)
is caught with a pointed violation; auditing is strictly observation-only
(audited runs bit-identical to unaudited, serial and parallel); the capture
/ env-var activation plumbing; PortTracer hook chaining; and the runtime
scheduler carrying audit verdicts on task results.
"""

import os

import pytest

from repro import ExpressPassFlow, ExpressPassParams, runtime
from repro.audit import (
    NetworkAuditor,
    capture,
    format_summary,
    merge_summaries,
)
from repro import audit as audit_mod
from repro.net.fault import LossInjector
from repro.net.queues import TokenBucket
from repro.net.trace import PortTracer
from repro.runtime import run_tasks
from repro.runtime.task import TaskSpec
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US
from repro.topology.fattree import fat_tree
from repro.topology.network import LinkSpec
from repro.topology.simple import dumbbell
from repro.transport import RenoFlow

EP = dict(params=ExpressPassParams(rtt_hint_ps=40 * US))


@pytest.fixture(autouse=True)
def _isolate_ambient_audit(monkeypatch):
    """These tests manage their own auditors (often with custom bounds);
    an ambient REPRO_AUDIT=1 (e.g. the audited CI job) would auto-attach
    one at Network.finalize() first and collide.  Activation-path tests
    set the variable back explicitly."""
    monkeypatch.delenv("REPRO_AUDIT", raising=False)


def _run_dumbbell(seed=11, n_pairs=3, audited=False, size0=25_000):
    """One deterministic dumbbell scenario; returns (observables, auditor)."""
    sim = Simulator(seed=seed)
    topo = dumbbell(sim, n_pairs=n_pairs)
    auditor = None
    if audited:
        auditor = NetworkAuditor(sim)
        auditor.attach_network(topo.net)
    flows = [ExpressPassFlow(s, r, size_bytes=size0 + 5_000 * i, **EP)
             for i, (s, r) in enumerate(zip(topo.senders, topo.receivers))]
    sim.run(until=1 * SEC)
    observables = ([f.fct_ps for f in flows], sim.events_processed,
                   topo.net.max_data_queue_bytes(),
                   topo.net.total_credit_drops())
    return observables, auditor


# -- clean runs ------------------------------------------------------------

class TestCleanRuns:
    def test_dumbbell_expresspass_audits_clean(self):
        _, auditor = _run_dumbbell(audited=True)
        report = auditor.finalize()
        assert report.ok, report.format()
        assert report.violations == []
        # "0 violations" must mean checking actually happened.
        assert report.checks["events"] > 0
        assert report.checks["transmits"] > 0
        assert report.checks["credits_metered"] > 0
        assert report.checks["ports"] == 14  # 2 bottleneck + 12 edge ports
        assert report.checks["flows"] == 3

    def test_symmetric_fat_tree_audits_clean(self):
        sim = Simulator(seed=1)
        ft = fat_tree(sim, k=4)
        auditor = NetworkAuditor(sim)
        auditor.attach_network(ft.net)
        flow = ExpressPassFlow(ft.hosts[0], ft.hosts[4],
                               size_bytes=40_000,
                               params=ExpressPassParams(rtt_hint_ps=60 * US))
        sim.run(until=1 * SEC)
        assert flow.completed
        report = auditor.finalize()
        assert report.ok, report.format()

    def test_finalize_is_idempotent(self):
        _, auditor = _run_dumbbell(audited=True)
        first = auditor.finalize()
        assert auditor.finalize() is first
        assert first.ok


# -- seeded faults: each invariant catches its dedicated breakage ----------

class TestSeededFaults:
    def test_oversized_credit_burst_caught(self):
        """A port whose credit meter allows a 100-credit burst is flagged."""
        sim = Simulator(seed=2)
        topo = dumbbell(sim, n_pairs=4)
        port = topo.bottleneck_rev  # carries all credits toward the senders
        port.credit_bucket = TokenBucket(port.rate_bps, burst_bytes=100 * 84)
        auditor = NetworkAuditor(sim)
        auditor.attach_network(topo.net)
        flows = [ExpressPassFlow(s, r, size_bytes=None, **EP)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=30 * MS)
        for f in flows:
            f.stop()
        report = auditor.finalize()
        hits = [v for v in report.violations if v.invariant == "credit-rate"]
        assert hits, report.format()
        offense = hits[0]
        assert offense.subject == port.name          # names the port
        assert offense.time_ps > 0                   # first-offense time
        assert "rate reservation" in offense.message
        assert offense.trace                         # ring-buffer context
        assert offense.count > 1                     # systematic, deduped

    def test_misrouted_credit_path_caught(self):
        """Asymmetric ECMP hashing sends credits off the data path (§3.1)."""
        sim = Simulator(seed=1)
        ft = fat_tree(sim, k=4)
        auditor = NetworkAuditor(sim)
        auditor.attach_network(ft.net)
        flow = ExpressPassFlow(ft.hosts[0], ft.hosts[4],
                               size_bytes=40_000,
                               params=ExpressPassParams(rtt_hint_ps=60 * US),
                               symmetric_routing=False)
        sim.run(until=1 * SEC)
        assert flow.completed
        report = auditor.finalize()
        hits = [v for v in report.violations
                if v.invariant == "path-symmetry"]
        assert hits, report.format()
        assert "ExpressPassFlow" in hits[0].subject   # names the flow
        assert "reverse of the data path" in hits[0].message

    def test_silent_credit_loss_breaks_conservation(self):
        """net.fault silent drops violate credits_sent == received + drops."""
        sim = Simulator(seed=3)
        topo = dumbbell(sim, n_pairs=1)
        injector = LossInjector(topo.bottleneck_rev, every_nth=7,
                                match=lambda p: p.is_credit,
                                notify_flows=False)
        auditor = NetworkAuditor(sim)
        auditor.attach_network(topo.net)
        flow = ExpressPassFlow(topo.senders[0], topo.receivers[0],
                               size_bytes=40_000, **EP)
        sim.run(until=1 * SEC)
        assert flow.completed and sim.pending() == 0
        assert injector.dropped > 0
        report = auditor.finalize()
        hits = [v for v in report.violations
                if v.invariant == "credit-conservation"]
        assert hits, report.format()
        assert f"{injector.dropped} lost silently" in hits[0].message

    def test_buffer_bound_violation_names_port_and_time(self):
        """A reactive protocol pushed past a sharp bound trips the check."""
        sim = Simulator(seed=4)
        topo = dumbbell(sim, n_pairs=2)
        bound = 4 * 1538
        auditor = NetworkAuditor(sim, buffer_bound_bytes=bound)
        auditor.attach_network(topo.net)
        flows = [RenoFlow(s, r, size_bytes=400_000)
                 for s, r in zip(topo.senders, topo.receivers)]
        sim.run(until=50 * MS)
        report = auditor.finalize()
        hits = [v for v in report.violations if v.invariant == "buffer-bound"]
        assert hits, report.format()
        offense = hits[0]
        assert offense.subject == topo.bottleneck_fwd.name
        assert offense.time_ps > 0
        assert f"> {bound}B" in offense.message
        assert offense.trace
        del flows

    def test_clock_monotonicity_unit(self):
        auditor = NetworkAuditor(Simulator(seed=0))
        auditor.on_event(100)
        auditor.on_event(100)  # equal timestamps are legal
        auditor.on_event(99)   # backwards is not
        assert [v.invariant for v in auditor.report.violations] == [
            "clock-monotonicity"]
        assert "moved backwards" in auditor.report.violations[0].message

    def test_one_auditor_per_simulator(self):
        sim = Simulator(seed=0)
        NetworkAuditor(sim)
        with pytest.raises(RuntimeError, match="already has an auditor"):
            NetworkAuditor(sim)


# -- differential: audit is observation-only (satellite) -------------------

def _diff_point(seed: int) -> tuple:
    """Module-level sweep task (picklable) returning run observables."""
    observables, _ = _run_dumbbell(seed=seed, audited=False)
    return observables


class TestObservationOnly:
    def test_audited_run_bit_identical_sim_level(self):
        plain, _ = _run_dumbbell(audited=False)
        audited, auditor = _run_dumbbell(audited=True)
        assert plain == audited
        assert auditor.finalize().ok

    def test_audited_sweep_bit_identical_serial_and_parallel(self, tmp_path):
        specs = [TaskSpec(fn=_diff_point, kwargs={"seed": s},
                          label=f"seed{s}") for s in (5, 6)]
        values = {}
        for mode, overrides in {
            "plain": dict(parallel=0, audit=False),
            "audited-serial": dict(parallel=0, audit=True),
            "audited-parallel": dict(parallel=2, audit=True),
        }.items():
            audit_mod.reset_session()
            with runtime.using(cache_enabled=False, progress=False,
                               retries=0, **overrides):
                results = run_tasks(list(specs), name=f"diff-{mode}")
            assert all(r.ok for r in results)
            values[mode] = [r.value for r in results]
            if overrides["audit"]:
                for r in results:
                    assert r.audit is not None
                    assert r.audit["ok"], r.audit
                    assert r.audit["checks"]["events"] > 0
                session = audit_mod.session_summary()
                assert session["runs"] == len(specs)
                assert session["ok"]
            else:
                assert all(r.audit is None for r in results)
        assert values["plain"] == values["audited-serial"]
        assert values["plain"] == values["audited-parallel"]


# -- activation plumbing ---------------------------------------------------

class TestActivation:
    def test_capture_scope_attaches_via_network_finalize(self):
        with capture() as cap:
            sim = Simulator(seed=11)
            topo = dumbbell(sim, n_pairs=1)  # finalize() runs inside scope
            assert sim.auditor is not None
            flow = ExpressPassFlow(topo.senders[0], topo.receivers[0],
                                   size_bytes=20_000, **EP)
            sim.run(until=1 * SEC)
            assert flow.completed
        assert cap.summary["ok"]
        assert cap.summary["runs"] == 1
        assert cap.summary["checks"]["flows"] == 1

    def test_inactive_by_default(self):
        sim = Simulator(seed=11)
        dumbbell(sim, n_pairs=1)
        assert sim.auditor is None

    def test_env_var_activates_without_global_accumulation(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        before = len(audit_mod._captured)
        sim = Simulator(seed=11)
        dumbbell(sim, n_pairs=1)
        assert sim.auditor is not None
        # Outside any capture, nothing is retained globally: long audited
        # processes (REPRO_AUDIT=1 pytest) must not leak auditors.
        assert len(audit_mod._captured) == before

    def test_nested_captures_do_not_double_count(self):
        with capture() as outer:
            with capture() as inner:
                sim = Simulator(seed=11)
                dumbbell(sim, n_pairs=1)
                sim.run(until=1 * MS)
            assert inner.summary["runs"] == 1
        assert outer.summary["runs"] == 0

    def test_summary_merge_and_format(self):
        merged = merge_summaries([
            None,
            {"ok": True, "violations": [], "checks": {"events": 5},
             "runs": 1},
            {"ok": False, "runs": 1, "checks": {"events": 2},
             "violations": [{"invariant": "credit-rate", "subject": "p",
                             "time_ps": 9, "message": "m", "count": 3,
                             "trace": ["t"]}]},
        ])
        assert merged["runs"] == 2
        assert merged["checks"]["events"] == 7
        assert not merged["ok"]
        text = format_summary(merged)
        assert "2 audited run(s)" in text
        assert "credit-rate" in text and "(x3)" in text


# -- PortTracer composition (satellite) ------------------------------------

class TestTracerChaining:
    def _traced_run(self):
        sim = Simulator(seed=9)
        topo = dumbbell(sim, n_pairs=1)
        return sim, topo

    def test_two_tracers_on_one_port_both_record(self):
        sim, topo = self._traced_run()
        inner = PortTracer(topo.bottleneck_fwd)
        outer = PortTracer(topo.bottleneck_fwd)  # regression: used to raise
        ExpressPassFlow(topo.senders[0], topo.receivers[0],
                        size_bytes=20_000, **EP)
        sim.run(until=1 * SEC)
        assert inner.records
        assert inner.records == outer.records

    def test_tracer_chains_over_audit_probe(self):
        sim, topo = self._traced_run()
        auditor = NetworkAuditor(sim)
        auditor.attach_network(topo.net)
        tracer = PortTracer(topo.bottleneck_fwd)
        ExpressPassFlow(topo.senders[0], topo.receivers[0],
                        size_bytes=20_000, **EP)
        sim.run(until=1 * SEC)
        # Both the audit probe and the tracer saw every wire packet.
        assert tracer.count() > 0
        assert auditor.finalize().ok

    def test_detach_restores_wrapped_hook(self):
        sim, topo = self._traced_run()
        seen = []
        hook = seen.append
        topo.bottleneck_fwd.on_transmit = hook
        tracer = PortTracer(topo.bottleneck_fwd)
        ExpressPassFlow(topo.senders[0], topo.receivers[0],
                        size_bytes=20_000, **EP)
        sim.run(until=4 * MS)
        mid_records = len(tracer.records)
        assert mid_records > 0 and len(seen) == mid_records
        tracer.detach()
        assert topo.bottleneck_fwd.on_transmit is hook
        ExpressPassFlow(topo.senders[0], topo.receivers[0],
                        size_bytes=20_000, **EP)
        sim.run(until=1 * SEC)
        assert len(tracer.records) == mid_records  # stopped recording
        assert len(seen) > mid_records             # original hook kept going


# -- CLI integration -------------------------------------------------------

FIG15_TINY = ["--set", "protocols=expresspass,", "--set", "flow_counts=2,3",
              "--set", "warmup_ps=2000000000",
              "--set", "measure_ps=2000000000"]


class TestCliAudit:
    def test_cli_audit_clean_run_exits_zero(self, capsys):
        from repro.cli import main
        code = main(["run", "fig15", "--audit", "--no-cache", "--json"]
                    + FIG15_TINY)
        captured = capsys.readouterr()
        assert code == 0
        assert "audit:" in captured.err
        assert "0 violation(s)" in captured.err

    def test_cli_audit_output_matches_unaudited(self, capsys):
        from repro.cli import main
        assert main(["run", "fig15", "--no-cache", "--json"]
                    + FIG15_TINY) == 0
        plain = capsys.readouterr().out
        assert main(["run", "fig15", "--audit", "--no-cache", "--json"]
                    + FIG15_TINY) == 0
        audited = capsys.readouterr().out
        assert plain == audited

"""Unit tests for time/rate arithmetic."""

import pytest

from repro.sim.units import (
    GBPS,
    MS,
    NS,
    SEC,
    US,
    bits_to_ps,
    fmt_time,
    ps_to_seconds,
    seconds_to_ps,
    tx_time_ps,
)


class TestBitsToPs:
    def test_one_byte_at_100g_is_80ps(self):
        assert bits_to_ps(8, 100 * GBPS) == 80

    def test_mtu_at_10g(self):
        # 1538 B * 8 b / 10 Gbps = 1230.4 ns
        assert tx_time_ps(1538, 10 * GBPS) == 1_230_400

    def test_credit_at_10g(self):
        assert tx_time_ps(84, 10 * GBPS) == 67_200

    def test_rounds_up(self):
        # 1 bit at 3 bps = 1/3 s; must round up, never down.
        assert bits_to_ps(1, 3) == (SEC + 2) // 3

    def test_zero_bits(self):
        assert bits_to_ps(0, GBPS) == 0

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            bits_to_ps(8, 0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            tx_time_ps(100, -1)


class TestConversions:
    def test_ps_to_seconds(self):
        assert ps_to_seconds(SEC) == 1.0
        assert ps_to_seconds(500 * MS) == 0.5

    def test_seconds_roundtrip(self):
        assert seconds_to_ps(ps_to_seconds(123_456_789)) == 123_456_789

    def test_unit_ratios(self):
        assert SEC == 1000 * MS == 10**6 * US == 10**9 * NS


class TestFmtTime:
    def test_picoseconds(self):
        assert fmt_time(999) == "999 ps"

    def test_microseconds(self):
        assert fmt_time(25 * US) == "25 us"

    def test_seconds(self):
        assert fmt_time(2 * SEC) == "2 s"

    def test_milliseconds(self):
        assert fmt_time(3 * MS) == "3 ms"

"""Tests for the §4 closed-form analysis against the implemented feedback."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.calculus.analysis import (
    aggressiveness_at,
    convergence_periods,
    d_star,
    eq34_trajectory,
    steady_state_even,
    steady_state_odd,
)
from repro.core import CreditFeedbackControl, ExpressPassParams


class TestClosedForms:
    def test_steady_state_even_is_fair_share(self):
        assert steady_state_even(4) == pytest.approx(1.1 / 4)

    def test_steady_state_odd_exceeds_even(self):
        assert steady_state_odd(4) > steady_state_even(4)

    def test_d_star_grows_with_w_min(self):
        assert d_star(8, w_min=0.04) > d_star(8, w_min=0.01)

    def test_d_star_vanishes_for_single_flow(self):
        assert d_star(1) == 0.0

    def test_aggressiveness_halves_and_floors(self):
        assert aggressiveness_at(1, 0.5, 0.01) == 0.25
        assert aggressiveness_at(10, 0.5, 0.01) == 0.01

    def test_convergence_periods(self):
        # 0.5 -> 0.25 -> 0.125 ... -> ~0.0078 < 0.01 floor: 6 halvings.
        assert convergence_periods(0.5, 0.01) == 12
        assert convergence_periods(0.01, 0.01) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            steady_state_even(0)
        with pytest.raises(ValueError):
            convergence_periods(0.01, 0.5)
        with pytest.raises(ValueError):
            eq34_trajectory([], 0.5, 10)


class TestTrajectory:
    def test_rates_converge_to_eq5(self):
        rates = eq34_trajectory([0.1, 0.3, 0.5, 0.8], w0=0.5, periods=200)
        final_even = rates[-2] if len(rates) % 2 else rates[-1]
        fair = steady_state_even(4)
        for r in final_even:
            assert r == pytest.approx(fair, rel=0.05)

    def test_odd_step_bounded_by_eq6(self):
        rates = eq34_trajectory([0.2, 0.9], w0=0.5, periods=201)
        odd = rates[-2] if len(rates) % 2 == 1 else rates[-1]
        bound = steady_state_odd(2)
        # Find the actual odd step: t odd -> increase applied.
        last_odd = rates[199]  # t=199 is odd
        for r in last_odd:
            assert r <= bound * 1.05

    def test_matches_implemented_feedback_at_steady_state(self):
        """The implemented Algorithm 1 lands in the same band the closed
        forms predict."""
        n = 6
        params = ExpressPassParams()
        fbs = [CreditFeedbackControl(params, 1.0) for _ in range(n)]
        for fb, r in zip(fbs, [(i + 1) / n for i in range(n)]):
            fb.cur_rate = r
        for _ in range(300):
            agg = sum(fb.cur_rate for fb in fbs)
            loss = max(0.0, 1 - 1.0 / agg)
            for fb in fbs:
                fb.update(loss)
        fair = steady_state_even(n)
        upper = steady_state_odd(n) * 1.15
        for fb in fbs:
            assert fair * 0.8 <= fb.cur_rate <= upper

    @settings(deadline=None, max_examples=25)
    @given(
        n=st.integers(min_value=2, max_value=12),
        w0=st.floats(min_value=0.02, max_value=0.5),
    )
    def test_trajectory_always_converges(self, n, w0):
        initial = [(i + 1) / n for i in range(n)]
        rates = eq34_trajectory(initial, w0=w0, periods=300)
        even = rates[298]
        fair = steady_state_even(n)
        for r in even:
            assert r == pytest.approx(fair, rel=0.1)

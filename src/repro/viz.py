"""Terminal visualization helpers: sparklines, bars, and CDF tables.

The library is terminal-first (no plotting dependencies), so examples and
reports render time series as unicode/ASCII sparklines::

    >>> sparkline([0, 2, 4, 8, 4, 2, 0], lo=0, hi=8)
    ' ▂▄█▄▂ '

All functions are pure and deterministic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

#: Eight-level unicode blocks, plus a leading space for "empty".
_BLOCKS = " ▁▂▃▄▅▆▇█"
#: ASCII fallback ramp for dumb terminals.
_ASCII = " .:-=+*#%@"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None, ascii_only: bool = False) -> str:
    """Render ``values`` as one character per sample.

    ``lo``/``hi`` pin the scale (default: data min/max).  Values outside the
    range are clamped.  An empty input gives an empty string.
    """
    if not values:
        return ""
    ramp = _ASCII if ascii_only else _BLOCKS
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi <= lo:
        return ramp[0] * len(values)
    span = hi - lo
    chars = []
    for v in values:
        frac = (min(max(v, lo), hi) - lo) / span
        chars.append(ramp[round(frac * (len(ramp) - 1))])
    return "".join(chars)


def hbar(value: float, full: float, width: int = 40,
         fill: str = "#", empty: str = " ") -> str:
    """A horizontal bar of ``width`` cells filled to ``value / full``."""
    if full <= 0:
        raise ValueError("full must be positive")
    cells = round(min(max(value / full, 0.0), 1.0) * width)
    return fill * cells + empty * (width - cells)


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 40, unit: str = "") -> str:
    """Aligned labelled horizontal bars, scaled to the largest value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return ""
    peak = max(values) or 1.0
    label_w = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        lines.append(f"{label.ljust(label_w)} |{hbar(value, peak, width)}| "
                     f"{value:.4g}{unit}")
    return "\n".join(lines)


def cdf_table(samples: Sequence[float],
              percentiles: Sequence[float] = (10, 25, 50, 75, 90, 99, 99.9),
              unit: str = "") -> str:
    """A compact textual CDF (uses :func:`repro.metrics.percentile`)."""
    from repro.metrics import percentile

    lines = ["  pct   value"]
    for pct in percentiles:
        lines.append(f"{pct:6.1f}  {percentile(samples, pct):.5g}{unit}")
    return "\n".join(lines)


def timeline(series: dict, width: Optional[int] = None, lo: float = 0.0,
             hi: Optional[float] = None, ascii_only: bool = False) -> str:
    """Multiple labelled sparklines on a shared scale.

    ``series`` maps label -> list of samples; ``hi`` defaults to the global
    maximum so rows are comparable.
    """
    if not series:
        return ""
    peak = hi
    if peak is None:
        peak = max((max(v) for v in series.values() if v), default=1.0)
    label_w = max(len(str(k)) for k in series)
    lines = []
    for label, values in series.items():
        if width is not None and len(values) > width:
            stride = len(values) / width
            values = [values[int(i * stride)] for i in range(width)]
        lines.append(f"{str(label).ljust(label_w)} |"
                     f"{sparkline(values, lo=lo, hi=peak, ascii_only=ascii_only)}|")
    return "\n".join(lines)

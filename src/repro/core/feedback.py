"""Algorithm 1: credit feedback control at the receiver.

This is a *pure* controller — no simulator dependencies — so the unit tests,
the stability analysis of §4, and the Fig 12 steady-state experiment can all
drive it directly with synthetic loss observations.

State: the current credit sending rate ``cur_rate`` (credits/s, any unit —
only ratios against ``max_rate`` matter) and the aggressiveness factor ``w``.

Per update period (one RTT by default)::

    credit_loss = #credit_dropped / #credit_sent
    if credit_loss <= target_loss:            # increasing phase
        if previous phase was increasing:
            w = (w + w_max) / 2
        cur_rate = (1 - w) * cur_rate + w * max_rate * (1 + target_loss)
    else:                                     # decreasing phase
        cur_rate = cur_rate * (1 - credit_loss) * (1 + target_loss)
        w = max(w / 2, w_min)
"""

from __future__ import annotations

from repro.core.params import ExpressPassParams


class CreditFeedbackControl:
    """One flow's Algorithm-1 state."""

    __slots__ = ("params", "max_rate", "cur_rate", "w", "_prev_increasing",
                 "updates", "increases", "decreases", "resets")

    def __init__(self, params: ExpressPassParams, max_rate: float):
        if max_rate <= 0:
            raise ValueError("max_rate must be positive")
        self.params = params
        self.max_rate = max_rate
        if params.naive:
            self.cur_rate = max_rate
        else:
            self.cur_rate = params.initial_rate_fraction * max_rate
        self.w = params.w_init
        self._prev_increasing = False
        self.updates = 0
        self.increases = 0
        self.decreases = 0
        self.resets = 0

    def reset(self) -> None:
        """Restart the controller from its initial state (path recovery).

        Feedback accumulated on a dead path says nothing about the new one:
        the rate returns to α·max_rate and the aggressiveness factor to
        w_init, exactly as if the flow had just started.  Cumulative
        update/increase/decrease counters are preserved for reporting.
        """
        if self.params.naive:
            self.cur_rate = self.max_rate
        else:
            self.cur_rate = self.params.initial_rate_fraction * self.max_rate
        self.w = self.params.w_init
        self._prev_increasing = False
        self.resets += 1

    @property
    def ceiling(self) -> float:
        """C = max_rate * (1 + target_loss): the rate the increase aims at."""
        return self.max_rate * (1 + self.params.target_loss)

    def update(self, credit_loss: float) -> float:
        """Apply one feedback period with the observed loss; returns the new rate."""
        if credit_loss < 0 or credit_loss > 1:
            raise ValueError(f"credit_loss must be in [0, 1], got {credit_loss}")
        p = self.params
        self.updates += 1
        if p.naive:
            self.cur_rate = self.max_rate
            return self.cur_rate
        if credit_loss <= p.target_loss:
            if self._prev_increasing:
                self.w = (self.w + p.w_max) / 2
            self.cur_rate = (1 - self.w) * self.cur_rate + self.w * self.ceiling
            self._prev_increasing = True
            self.increases += 1
        else:
            self.cur_rate = self.cur_rate * (1 - credit_loss) * (1 + p.target_loss)
            self.w = max(self.w / 2, p.w_min)
            self._prev_increasing = False
            self.decreases += 1
        # The credit rate can never usefully exceed the link's credit ceiling,
        # and must stay positive so the pacer's inter-credit gap is finite.
        self.cur_rate = min(max(self.cur_rate, 1e-3 * self.max_rate), self.ceiling)
        return self.cur_rate

"""The ExpressPass flow: end-to-end credit-scheduled transfer.

Roles (§3, Fig 3/7):

* **Sender** opens with a ``CREDIT_REQUEST`` (piggybacked on SYN in the
  paper), transmits one data packet per received credit — echoing the
  credit's sequence number — and sends ``CREDIT_STOP`` once it has had no
  data to send for a small timeout.  Credits that arrive with nothing to
  send are *wasted* (counted; Fig 8b/20).
* **Receiver** paces credits at the feedback-controlled rate with random
  jitter (Fig 6a) and randomized 84–92 B credit sizes (switch-level jitter),
  measures credit loss from gaps in the echoed sequence numbers, and runs
  Algorithm 1 once per RTT.

Data loss cannot normally happen (that is the paper's point), but the
receiver still recovers from it: a gap in data sequence numbers triggers a
go-back-N resynchronization so correctness never *depends* on zero loss
(§3.1, "ExpressPass's correct operation does not depend on zero loss").
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.feedback import CreditFeedbackControl
from repro.core.params import ExpressPassParams
from repro.core.states import (
    ReceiverState,
    SenderState,
    check_receiver_transition,
    check_sender_transition,
)
from repro.net.host import Host
from repro.net.packet import (
    CREDIT_WIRE_MAX,
    CREDIT_WIRE_MIN,
    Packet,
    PacketKind,
    credit_packet,
    data_packet,
)
from repro.sim.units import SEC, US
from repro.transport.base import Flow


def max_credit_rate_cps(link_rate_bps: int) -> float:
    """Maximum credit rate (credits/s) for a link: one credit per 1622 B slot.

    At this rate each credit's triggered max-size data packet exactly fills
    the reverse link: 84 B credit + 1538 B data = 1622 B per slot.
    """
    return link_rate_bps / (8 * (CREDIT_WIRE_MIN + 1538))


class ExpressPassFlow(Flow):
    """One credit-scheduled transfer.  See module docstring."""

    def __init__(
        self,
        src: Host,
        dst: Host,
        size_bytes: Optional[int],
        start_ps: int = 0,
        *,
        params: Optional[ExpressPassParams] = None,
        symmetric_routing: bool = True,
    ):
        super().__init__(src, dst, size_bytes, start_ps, symmetric_routing)
        self.params = params or ExpressPassParams()
        # max_rate is the credit ceiling of the *sender-side* NIC link, the
        # link whose reverse direction the data must fit (§3.2 assumes all
        # hosts share one capacity).
        self.max_rate_cps = max_credit_rate_cps(src.nic.rate_bps)
        self.feedback = CreditFeedbackControl(self.params, self.max_rate_cps)

        # --- sender state ---
        self.sender_state = SenderState.IDLE
        if size_bytes is None:
            self.total_segments = None
        else:
            self.total_segments = -(-size_bytes // self.MSS)
        self._next_seq = 0
        self.credits_received = 0
        self.credits_used = 0
        self.credits_wasted = 0
        self.opportunistic_sent = 0
        self._stop_timer = None
        self._request_timer = None
        self._last_stop_ts = -(1 << 62)

        # --- receiver state ---
        self.receiver_state = ReceiverState.IDLE
        self.credits_sent = 0
        self._credit_seq = 0
        self._credit_sent_ts = {}
        self._expected_echo = 0
        self._rcv_expected_data = 0
        self._pacer_event = None
        self._update_event = None
        # Credit-loss accounting in "epochs": an epoch spans at least
        # ``loss_window`` consecutive credits (one update period's worth for
        # fast flows; longer in the sub-credit-per-RTT regime so a sample is
        # never a single-credit coin flip).  Each entry is
        # [start_seq, end_seq, dropped, closed_at_ps]; an epoch resolves once
        # every credit below end_seq has been echoed by data or counted as
        # dropped via an echo gap — the paper's exact #dropped/#sent.
        self._epochs = deque()
        self._epoch_start_seq = 0
        # Credits sent before the last rate *decrease* reflect the old rate;
        # reacting to them again would double-cut (classic control lag), so
        # resolutions below this sequence number are discarded.
        self._loss_cutoff_seq = 0
        self._srtt_ps: Optional[float] = None
        # Dead-path watchdog: consecutive feedback updates in which *every*
        # resolved credit was lost.  Congestion caps out near target_loss;
        # only a broken path (failed link, blackhole window outliving
        # reconvergence, misrouted ECMP bucket) sustains 100 % loss.
        self._dead_updates = 0
        self.path_recoveries = 0
        # Per-flow stream (credit-size and pacing jitter): keyed by flow id
        # so a flow's draws are independent of every other flow's activity —
        # required for serial == sharded bit-identity.
        self._rng = self.sim.rng_for("expresspass", self.fid)

    # ------------------------------------------------------------------ sender
    def begin(self) -> None:
        self._send_credit_request()
        if self.params.opportunistic_segments > 0:
            self._send_opportunistic_burst()

    def _send_opportunistic_burst(self) -> None:
        """§7 extension: push the first segments as low-priority data without
        waiting for credits (RC3-style).  Credited transmission then resumes
        from wherever the burst ended; any burst losses are repaired by the
        receiver's go-back-N resync."""
        budget = self.params.opportunistic_segments
        while budget > 0 and self._has_data():
            pkt = data_packet(
                self.src.id, self.dst.id, self,
                payload_bytes=self._segment_payload(self._next_seq),
                seq=self._next_seq,
            )
            pkt.low_priority = True
            self._next_seq += 1
            budget -= 1
            self.opportunistic_sent += 1
            self.src.send(pkt)
        if not self._has_data():
            self._arm_stop_timer()

    def _set_sender_state(self, new: SenderState) -> None:
        check_sender_transition(self.sender_state, new)
        self.sender_state = new

    def _send_credit_request(self) -> None:
        self._set_sender_state(SenderState.CREQ_SENT)
        pkt = Packet(PacketKind.CREDIT_REQUEST, self.src.id, self.dst.id, flow=self)
        self.src.send(pkt)
        if self._request_timer is not None:
            self._request_timer.cancel()
        self._request_timer = self.sim.schedule(
            4 * self.params.rtt_hint_ps, self._request_timeout
        )

    def _request_timeout(self) -> None:
        self._request_timer = None
        if self.sender_state == SenderState.CREQ_SENT:
            self._send_credit_request()

    def _at_sender(self, pkt: Packet) -> None:
        if pkt.kind == PacketKind.CREDIT:
            self.credits_received += 1
            if self.sender_state == SenderState.CREQ_SENT:
                if self.obs_span is not None:
                    self.obs_span.mark("first_credit", self.sim.now)
                self._set_sender_state(SenderState.CREDIT_RECEIVING)
                if self._request_timer is not None:
                    self._request_timer.cancel()
                    self._request_timer = None
            # Host credit-processing delay (∆d_host) before data goes out.
            delay = self.src.sample_delay()
            self.sim.schedule(delay, self._handle_credit, pkt.credit_seq)
        elif pkt.kind == PacketKind.CONTROL:
            # Receiver-driven resynchronization after (rare) data loss.
            if pkt.ack >= 0 and pkt.ack < self._next_seq:
                self.retransmissions += self._next_seq - pkt.ack
                self._next_seq = pkt.ack

    def _has_data(self) -> bool:
        return self.total_segments is None or self._next_seq < self.total_segments

    def _segment_payload(self, seq: int) -> int:
        if self.size_bytes is None or self.total_segments is None:
            return self.MSS
        if seq < self.total_segments - 1:
            return self.MSS
        return self.size_bytes - (self.total_segments - 1) * self.MSS

    def _handle_credit(self, credit_seq: int) -> None:
        if self.sender_state not in (SenderState.CREDIT_RECEIVING,
                                     SenderState.CSTOP_SENT):
            return
        if self._has_data():
            if self.sender_state == SenderState.CSTOP_SENT:
                # A resync rewound us after CREDIT_STOP: data again (Fig 7's
                # "new data" transition).
                self._set_sender_state(SenderState.CREDIT_RECEIVING)
            pkt = data_packet(
                self.src.id, self.dst.id, self,
                payload_bytes=self._segment_payload(self._next_seq),
                seq=self._next_seq,
                credit_seq=credit_seq,
            )
            self._next_seq += 1
            self.credits_used += 1
            self.src.send(pkt)
            if not self._has_data():
                self._arm_stop_timer()
        else:
            self.credits_wasted += 1
            if (self.sender_state == SenderState.CSTOP_SENT
                    and self.sim.now - self._last_stop_ts > 4 * self.params.rtt_hint_ps):
                # The CREDIT_STOP was probably lost; resend it.
                self._last_stop_ts = self.sim.now
                self._set_sender_state(SenderState.CSTOP_SENT)
                self.src.send(Packet(PacketKind.CREDIT_STOP, self.src.id,
                                     self.dst.id, flow=self))

    def _arm_stop_timer(self) -> None:
        if self._stop_timer is not None:
            self._stop_timer.cancel()
        self._stop_timer = self.sim.schedule(
            self.params.stop_timeout_ps, self._send_credit_stop
        )

    def _send_credit_stop(self) -> None:
        self._stop_timer = None
        if self.sender_state == SenderState.CREQ_SENT:
            # Opportunistic burst covered the whole flow before any credit
            # arrived; re-arm and wait for the first credit to stop cleanly.
            self._arm_stop_timer()
            return
        if not self._has_data() and self.sender_state == SenderState.CREDIT_RECEIVING:
            self._set_sender_state(SenderState.CSTOP_SENT)
            self._last_stop_ts = self.sim.now
            pkt = Packet(PacketKind.CREDIT_STOP, self.src.id, self.dst.id, flow=self)
            self.src.send(pkt)

    # ---------------------------------------------------------------- receiver
    def _set_receiver_state(self, new: ReceiverState) -> None:
        check_receiver_transition(self.receiver_state, new)
        self.receiver_state = new

    def _at_receiver(self, pkt: Packet) -> None:
        kind = pkt.kind
        if kind == PacketKind.DATA:
            self._receive_data(pkt)
        elif kind == PacketKind.CREDIT_REQUEST:
            if self.receiver_state == ReceiverState.IDLE:
                self._start_crediting()
        elif kind == PacketKind.CREDIT_STOP:
            if (self.total_segments is not None
                    and self._rcv_expected_data < self.total_segments):
                # Tail loss: the sender believes it is done but the last
                # segment(s) never arrived.  Keep crediting and ask for a
                # rewind instead of stopping.
                nack = Packet(PacketKind.CONTROL, self.dst.id, self.src.id,
                              flow=self, ack=self._rcv_expected_data)
                self.dst.send(nack)
            elif self.receiver_state == ReceiverState.CREDIT_SENDING:
                self._stop_crediting()

    def _start_crediting(self) -> None:
        self._set_receiver_state(ReceiverState.CREDIT_SENDING)
        self._epoch_opened_ps = self.sim.now
        self._pace_credit()
        self._update_event = self.sim.schedule(
            self._update_period_ps(), self._feedback_update
        )

    def _stop_crediting(self) -> None:
        self._set_receiver_state(ReceiverState.STOPPED)
        for event in (self._pacer_event, self._update_event):
            if event is not None:
                event.cancel()
        self._pacer_event = None
        self._update_event = None

    def _update_period_ps(self) -> int:
        if self._srtt_ps is not None:
            return max(int(self._srtt_ps), 10 * US)
        return self.params.rtt_hint_ps

    def _credit_gap_ps(self) -> int:
        gap = SEC / self.feedback.cur_rate
        j = self.params.jitter
        if j > 0:
            gap *= 1 + self._rng.uniform(-j / 2, j / 2)
        return max(int(gap), 1)

    def _pace_credit(self) -> None:
        """Send one credit and schedule the next."""
        self._pacer_event = None
        if self.receiver_state != ReceiverState.CREDIT_SENDING:
            return
        seq = self._credit_seq
        self._credit_seq += 1
        if self.params.randomize_credit_size:
            wire = self._rng.randint(CREDIT_WIRE_MIN, CREDIT_WIRE_MAX)
        else:
            wire = CREDIT_WIRE_MIN
        # Credits travel receiver -> sender: dst/src swap relative to data.
        pkt = credit_packet(self.dst.id, self.src.id, self, seq, wire)
        self._credit_sent_ts[seq] = self.sim.now
        self.credits_sent += 1
        self.dst.send(pkt)
        self._pacer_event = self.sim.schedule(self._credit_gap_ps(), self._pace_credit)

    def _attribute_drops(self, first_lost: int, next_echo: int) -> None:
        """Charge dropped credit seqs [first_lost, next_echo) to their epochs."""
        for epoch in self._epochs:
            start, end = epoch[0], epoch[1]
            if next_echo <= start:
                break
            lo = max(first_lost, start)
            hi = min(next_echo, end)
            if hi > lo:
                epoch[2] += hi - lo

    def _receive_data(self, pkt: Packet) -> None:
        # -- credit-loss accounting from the echoed credit sequence ------
        echo = pkt.credit_seq
        if echo >= self._expected_echo:
            if echo > self._expected_echo:
                self._attribute_drops(self._expected_echo, echo)
                for lost in range(self._expected_echo, echo):
                    self._credit_sent_ts.pop(lost, None)
            sent_ts = self._credit_sent_ts.pop(echo, None)
            if sent_ts is not None:
                sample = self.sim.now - sent_ts
                if self.obs_span is not None:
                    self.obs_span.credit_rtt(sample)
                if self._srtt_ps is None:
                    self._srtt_ps = float(sample)
                else:
                    self._srtt_ps = 0.875 * self._srtt_ps + 0.125 * sample
            self._expected_echo = echo + 1
        # -- in-order data delivery --------------------------------------
        if pkt.seq == self._rcv_expected_data:
            if self._rcv_expected_data == 0 and self.obs_span is not None:
                self.obs_span.mark("first_data", self.sim.now)
            self.bytes_delivered += pkt.payload_bytes
            self._rcv_expected_data += 1
            if (self.total_segments is not None
                    and self._rcv_expected_data >= self.total_segments):
                self._complete()
        elif pkt.seq > self._rcv_expected_data:
            # Data was lost (should not happen with sized buffers): ask the
            # sender to rewind.  Out-of-order arrivals are discarded.
            nack = Packet(PacketKind.CONTROL, self.dst.id, self.src.id,
                          flow=self, ack=self._rcv_expected_data)
            self.dst.send(nack)

    def _feedback_update(self) -> None:
        self._update_event = None
        if self.receiver_state != ReceiverState.CREDIT_SENDING:
            return
        period = self._update_period_ps()
        # Close the current epoch (one update period's worth of credits).
        pending = self._credit_seq - self._epoch_start_seq
        if pending > 0:
            self._epochs.append(
                [self._epoch_start_seq, self._credit_seq, 0, self.sim.now]
            )
            self._epoch_start_seq = self._credit_seq
        # Apply one Algorithm-1 update aggregating every *resolved* epoch.
        # Echoes arrive in credit order over a FIFO path, so an epoch still
        # unresolved several periods after it closed lost its remaining
        # credits (the all-dropped black-hole case must still terminate).
        sent = dropped = 0
        while self._epochs:
            start, end, drops, closed = self._epochs[0]
            if self._expected_echo >= end:
                if end > self._loss_cutoff_seq:
                    sent += end - start
                    dropped += drops
                self._epochs.popleft()
            elif self.sim.now - closed > 3 * period:
                if end > self._loss_cutoff_seq:
                    unresolved = end - max(self._expected_echo, start)
                    sent += end - start
                    dropped += drops + unresolved
                for lost in range(max(self._expected_echo, start), end):
                    self._credit_sent_ts.pop(lost, None)
                self._expected_echo = max(self._expected_echo, end)
                self._epochs.popleft()
            else:
                break
        if sent > 0:
            if dropped >= sent:
                self._dead_updates += 1
            else:
                self._dead_updates = 0
            threshold = self.params.recovery_dead_updates
            if threshold and self._dead_updates >= threshold:
                # Total loss, sustained: this is a dead path, and cutting
                # the rate again (Algorithm 1's only move) cannot fix it.
                # Re-hash onto another path and restart the controller.
                self._recover_path()
                self._update_event = self.sim.schedule(period, self._feedback_update)
                return
            # In the sub-credit-per-RTT regime a period's sample is a small
            # handful of credits and a raw #dropped/#sent is a coin flip
            # that can starve slow flows outright (a single dropped credit
            # reads as 100 % loss).  Shrink small samples toward the target
            # loss rate — the controller's neutral point — in proportion to
            # how far short of ``loss_window`` credits the sample is; full
            # windows use the exact ratio.
            window = self.params.loss_window
            pad = max(0, window - sent)
            loss = (dropped + self.params.target_loss * pad) / (sent + pad)
            self.feedback.update(loss)
            if self.obs_span is not None:
                self.obs_span.feedback_updates += 1
            if loss > self.params.target_loss:
                # React to one congestion event once: feedback generated by
                # pre-decrease credits must not trigger a second cut.
                self._loss_cutoff_seq = self._credit_seq
        elif not self._epochs and pending == 0:
            # Nothing in flight and nothing pending: Algorithm 1 reads an
            # idle period as zero loss, so a slow flow ramps up rather than
            # starving.
            self.feedback.update(0.0)
            if self.obs_span is not None:
                self.obs_span.feedback_updates += 1
        self._update_event = self.sim.schedule(period, self._feedback_update)

    def _recover_path(self) -> None:
        """Dead-path recovery: sustained 100 % credit loss despite rate cuts.

        Moves the flow to a different ECMP path (the shared symmetric hash
        moves credits and data together, so §3.1 symmetry holds across the
        switch), restarts Algorithm 1 from its initial rate, and discards
        every piece of feedback state tied to the old path — echoes of
        credits sent into the black hole must not feed the new controller.
        """
        self._dead_updates = 0
        self.path_recoveries += 1
        self.rehash_path()
        self.feedback.reset()
        self._epochs.clear()
        self._epoch_start_seq = self._credit_seq
        self._loss_cutoff_seq = self._credit_seq
        self._expected_echo = self._credit_seq
        self._credit_sent_ts.clear()
        if self.obs_span is not None:
            self.obs_span.mark("path_recovery", self.sim.now)
        metrics = getattr(self.sim, "metrics", None)
        if metrics is not None:
            metrics.counter("transport.path_recoveries").inc()
            metrics.log_event(self.sim.now, "path_recovery", self.fid)

    # ---------------------------------------------------------------- cleanup
    def stop(self) -> None:
        """Tear down all timers (experiment shutdown)."""
        super().stop()
        for event in (self._stop_timer, self._request_timer,
                      self._pacer_event, self._update_event):
            if event is not None:
                event.cancel()
        self._stop_timer = self._request_timer = None
        self._pacer_event = self._update_event = None
        if self.receiver_state == ReceiverState.CREDIT_SENDING:
            self._set_receiver_state(ReceiverState.STOPPED)

    # ---------------------------------------------------------------- metrics
    @property
    def credit_waste_ratio(self) -> float:
        """Wasted fraction of credits that reached the sender (Fig 20)."""
        total = self.credits_used + self.credits_wasted
        return self.credits_wasted / total if total else 0.0

    @property
    def current_rate_bps(self) -> float:
        """Current credit-authorized data wire rate."""
        return self.feedback.cur_rate * 1538 * 8

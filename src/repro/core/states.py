"""Sender/receiver state machines (paper Fig 7).

Transitions are enforced at runtime: an illegal transition raises, and the
unit tests walk every legal path.
"""

from __future__ import annotations

from enum import Enum, auto


class SenderState(Enum):
    IDLE = auto()
    CREQ_SENT = auto()          # CREDIT_REQUEST sent, waiting for first credit
    CREDIT_RECEIVING = auto()   # receiving credits, sending data
    CSTOP_SENT = auto()         # CREDIT_STOP sent
    CLOSED = auto()


class ReceiverState(Enum):
    IDLE = auto()
    CREDIT_SENDING = auto()     # pacing credits toward the sender
    STOPPED = auto()            # CREDIT_STOP received (or closed)


_SENDER_LEGAL = {
    (SenderState.IDLE, SenderState.CREQ_SENT),
    (SenderState.CREQ_SENT, SenderState.CREDIT_RECEIVING),
    (SenderState.CREQ_SENT, SenderState.CREQ_SENT),        # request retransmit
    (SenderState.CREDIT_RECEIVING, SenderState.CSTOP_SENT),
    (SenderState.CSTOP_SENT, SenderState.CSTOP_SENT),      # stop retransmit
    (SenderState.CSTOP_SENT, SenderState.CREDIT_RECEIVING),  # new data arrived
    (SenderState.CSTOP_SENT, SenderState.CLOSED),
}

_RECEIVER_LEGAL = {
    (ReceiverState.IDLE, ReceiverState.CREDIT_SENDING),
    (ReceiverState.CREDIT_SENDING, ReceiverState.STOPPED),
    (ReceiverState.IDLE, ReceiverState.STOPPED),
}


def check_sender_transition(old: SenderState, new: SenderState) -> None:
    if (old, new) not in _SENDER_LEGAL:
        raise RuntimeError(f"illegal sender transition {old.name} -> {new.name}")


def check_receiver_transition(old: ReceiverState, new: ReceiverState) -> None:
    if (old, new) not in _RECEIVER_LEGAL:
        raise RuntimeError(f"illegal receiver transition {old.name} -> {new.name}")

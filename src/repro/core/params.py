"""ExpressPass configuration (§3.2 "Credit Feedback Control", §3.3 knobs)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.units import US


@dataclass(frozen=True)
class ExpressPassParams:
    """All protocol parameters, with the paper's defaults.

    ``initial_rate_fraction`` is the paper's α: the first-period credit rate
    as a fraction of ``max_rate``.  The paper's microbenchmarks use
    α = w_init = 1/2; realistic workloads use 1/16 (§6.3, the "sweet spot").
    """

    initial_rate_fraction: float = 0.5          # α
    w_init: float = 0.5
    w_max: float = 0.5
    w_min: float = 0.01
    target_loss: float = 0.1
    # Credit pacing jitter as a fraction of the inter-credit gap (Fig 6a:
    # j >= 0.01-0.02 suffices to break drop synchronization).
    jitter: float = 0.02
    randomize_credit_size: bool = True          # 84..92 B credits (§3.1)
    naive: bool = False                         # no feedback: always max_rate
    # Feedback update period: defaults to the measured RTT (paper default).
    # ``rtt_hint_ps`` seeds the estimate before any measurement exists.
    rtt_hint_ps: int = 100 * US
    # Sender sends CREDIT_STOP after this long with nothing to send.
    stop_timeout_ps: int = 20 * US
    # §7 / RC3-style extension: number of segments a sender may transmit as
    # *low-priority* data immediately at flow start, without credits.
    # Switches serve them strictly below credited data, so they only use
    # bandwidth that would otherwise be idle; losses are recovered through
    # the normal go-back-N resync.  0 disables the extension (paper default).
    opportunistic_segments: int = 0
    # Credit-loss estimator window: the loss rate fed to Algorithm 1 is
    # measured over the most recent ``loss_window`` credits whose fate is
    # known.  In the sub-credit-per-RTT regime (§2) a per-period sample is a
    # coin flip; a credit-count window adapts its timescale to the flow's own
    # rate (short for fast flows, smoothing for slow ones).
    loss_window: int = 16
    # Path-failure recovery: after this many consecutive *dead* feedback
    # updates (every resolved credit in the period was lost — total
    # blackout, not mere congestion) the receiver re-hashes the flow onto a
    # different ECMP path and resets Algorithm 1 to its initial rate.
    # Congestion never looks like this (target_loss keeps drops partial), so
    # the watchdog is inert on healthy fabrics.  0 disables recovery.
    recovery_dead_updates: int = 3

    def __post_init__(self):
        if not 0 < self.initial_rate_fraction <= 1:
            raise ValueError("initial_rate_fraction must be in (0, 1]")
        if not 0 < self.w_min <= self.w_init <= self.w_max <= 0.5:
            raise ValueError("need 0 < w_min <= w_init <= w_max <= 0.5")
        if not 0 <= self.target_loss < 1:
            raise ValueError("target_loss must be in [0, 1)")
        if self.jitter < 0 or self.jitter > 1:
            raise ValueError("jitter fraction must be in [0, 1]")
        if self.recovery_dead_updates < 0:
            raise ValueError("recovery_dead_updates must be >= 0 (0 disables)")

    def with_alpha(self, alpha: float, w_init: float = None) -> "ExpressPassParams":
        """Convenience for the Fig 8/18 sweeps: vary α (and optionally w_init)."""
        return replace(
            self,
            initial_rate_fraction=alpha,
            w_init=self.w_init if w_init is None else w_init,
        )


#: §6.3: the sweet spot for realistic workloads.
REALISTIC_WORKLOAD_PARAMS = ExpressPassParams(
    initial_rate_fraction=1 / 16, w_init=1 / 16
)

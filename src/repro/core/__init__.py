"""ExpressPass: credit-scheduled, delay-bounded congestion control (§3).

Public surface:

* :class:`~repro.core.params.ExpressPassParams` — every §3.2/§3.3 knob
  (initial rate α, w_init, w_min, target loss, jitter, credit-size
  randomization, naive mode).
* :class:`~repro.core.feedback.CreditFeedbackControl` — Algorithm 1, as a
  pure object that unit tests and the Fig 12 analysis drive directly.
* :class:`~repro.core.flow.ExpressPassFlow` — the end-to-end protocol:
  credit-request handshake, receiver-side credit pacing with jitter,
  sender-side credit-triggered data, CREDIT_STOP teardown, credit-waste
  accounting.
"""

from repro.core.feedback import CreditFeedbackControl
from repro.core.flow import ExpressPassFlow, max_credit_rate_cps
from repro.core.params import ExpressPassParams
from repro.core.states import ReceiverState, SenderState

__all__ = [
    "ExpressPassParams",
    "CreditFeedbackControl",
    "ExpressPassFlow",
    "max_credit_rate_cps",
    "SenderState",
    "ReceiverState",
]

"""Flow-completion-time statistics, bucketed by flow size as in the paper.

Table 2 / Fig 19 use four buckets: S (0–10 KB), M (10–100 KB), L (100 KB–1 MB)
and XL (>1 MB).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.units import KB, MB

#: (label, inclusive lower bound, exclusive upper bound) in bytes.
SIZE_BUCKETS = (
    ("S", 0, 10 * KB),
    ("M", 10 * KB, 100 * KB),
    ("L", 100 * KB, 1 * MB),
    ("XL", 1 * MB, None),
)


def bucket_of(size_bytes: int) -> str:
    """Bucket label for a flow size."""
    for label, lo, hi in SIZE_BUCKETS:
        if size_bytes >= lo and (hi is None or size_bytes < hi):
            return label
    raise ValueError(f"unbucketable size {size_bytes}")


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (pct in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError("pct must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = pct / 100 * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


@dataclass
class FctStats:
    """Summary of a set of flow completion times (seconds)."""

    count: int
    mean_s: float
    median_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_fcts_ps(cls, fcts_ps: Sequence[int]) -> "FctStats":
        if not fcts_ps:
            raise ValueError("no completed flows to summarize")
        seconds = [t / 1e12 for t in fcts_ps]
        return cls(
            count=len(seconds),
            mean_s=sum(seconds) / len(seconds),
            median_s=percentile(seconds, 50),
            p99_s=percentile(seconds, 99),
            max_s=max(seconds),
        )


def fct_stats_by_bucket(flows: Iterable) -> Dict[str, FctStats]:
    """Per-size-bucket FCT summaries over *completed* flows.

    Buckets with no completed flows are omitted.
    """
    buckets: Dict[str, List[int]] = {}
    for flow in flows:
        if flow.fct_ps is None or flow.size_bytes is None:
            continue
        buckets.setdefault(bucket_of(flow.size_bytes), []).append(flow.fct_ps)
    return {label: FctStats.from_fcts_ps(v) for label, v in buckets.items()}

"""Jain's fairness index (Jain, Chiu, Hawe 1984)."""

from __future__ import annotations

from typing import Iterable


def jain_index(allocations: Iterable[float]) -> float:
    """J = (Σx)² / (n · Σx²); 1.0 is perfectly fair, 1/n maximally skewed.

    An empty input or all-zero allocations return 1.0 (nothing is unfairly
    shared when nothing is shared).
    """
    xs = list(allocations)
    if not xs:
        return 1.0
    if any(x < 0 for x in xs):
        raise ValueError("allocations must be non-negative")
    total = sum(xs)
    if total == 0:
        return 1.0
    squares = sum(x * x for x in xs)
    return total * total / (len(xs) * squares)

"""Measurement utilities: fairness, FCT statistics, time series, convergence."""

from repro.metrics.fairness import jain_index
from repro.metrics.fct import (
    FctStats,
    SIZE_BUCKETS,
    bucket_of,
    fct_stats_by_bucket,
    percentile,
)
from repro.metrics.timeseries import (
    FlowThroughputSampler,
    QueueSampler,
    convergence_time_ps,
)

__all__ = [
    "jain_index",
    "percentile",
    "FctStats",
    "SIZE_BUCKETS",
    "bucket_of",
    "fct_stats_by_bucket",
    "QueueSampler",
    "FlowThroughputSampler",
    "convergence_time_ps",
]

"""Periodic samplers for queues and per-flow throughput, plus convergence
detection used by the Fig 2/13/16 experiments."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.units import SEC


class QueueSampler:
    """Samples a port's data-queue occupancy every ``interval_ps``.

    ``samples`` is a list of (time_ps, bytes).  The queue's own stats object
    already tracks max and the exact time-weighted average; this sampler
    exists for time-series plots (Fig 13).
    """

    def __init__(self, sim: Simulator, port, interval_ps: int):
        self.sim = sim
        self.port = port
        self.interval_ps = interval_ps
        self.samples: List[tuple] = []
        self._event = sim.schedule(0, self._tick)

    def _tick(self) -> None:
        self.samples.append((self.sim.now, self.port.data_queue.bytes))
        self._event = self.sim.schedule(self.interval_ps, self._tick)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def max_bytes(self) -> int:
        return max((b for _, b in self.samples), default=0)


class FlowThroughputSampler:
    """Per-flow goodput time series from ``bytes_delivered`` deltas.

    ``series[flow]`` is a list of throughputs in bit/s, one per interval.
    """

    def __init__(self, sim: Simulator, flows: Sequence, interval_ps: int):
        self.sim = sim
        self.flows = list(flows)
        self.interval_ps = interval_ps
        self.series: Dict[object, List[float]] = {f: [] for f in self.flows}
        self.times_ps: List[int] = []
        self._last: Dict[object, int] = {f: f.bytes_delivered for f in self.flows}
        self._event = sim.schedule(interval_ps, self._tick)

    def track(self, flow) -> None:
        """Start tracking a flow that was created after the sampler."""
        self.flows.append(flow)
        self.series[flow] = [0.0] * len(self.times_ps)
        self._last[flow] = flow.bytes_delivered

    def _tick(self) -> None:
        self.times_ps.append(self.sim.now)
        for flow in self.flows:
            delta = flow.bytes_delivered - self._last[flow]
            self._last[flow] = flow.bytes_delivered
            self.series[flow].append(delta * 8 * SEC / self.interval_ps)
        self._event = self.sim.schedule(self.interval_ps, self._tick)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None


def convergence_time_ps(
    times_ps: Sequence[int],
    series: Sequence[Sequence[float]],
    fair_share_bps: float,
    tolerance: float = 0.2,
    sustain_intervals: int = 3,
    start_ps: int = 0,
) -> Optional[int]:
    """First time (after ``start_ps``) at which *every* flow stays within
    ``tolerance`` of ``fair_share_bps`` for ``sustain_intervals`` consecutive
    samples.  Returns the timestamp, or None if never converged.
    """
    if not series or not times_ps:
        return None
    n = len(times_ps)
    run = 0
    for i in range(n):
        if times_ps[i] < start_ps:
            continue
        ok = all(
            abs(s[i] - fair_share_bps) <= tolerance * fair_share_bps
            for s in series
            if i < len(s)
        )
        run = run + 1 if ok else 0
        if run >= sustain_intervals:
            return times_ps[i - sustain_intervals + 1]
    return None

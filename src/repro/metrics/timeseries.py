"""Periodic samplers for queues and per-flow throughput, plus convergence
detection used by the Fig 2/13/16 experiments.

Both samplers are :mod:`repro.obs`-aware: constructed through the registry's
factories (:meth:`MetricsRegistry.sample_queue` /
:meth:`~MetricsRegistry.sample_throughput`) they mirror every reading into a
named registry :class:`~repro.obs.registry.Series`, so the same values flow
to the exporters and dashboard that the experiment reads locally.  ``stop()``
is idempotent and captures one final sample at stop time so the last partial
interval is not silently dropped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.units import SEC


class QueueSampler:
    """Samples a port's data-queue occupancy every ``interval_ps``.

    ``samples`` is a list of (time_ps, bytes).  The queue's own stats object
    already tracks max and the exact time-weighted average; this sampler
    exists for time-series plots (Fig 13).  ``series``, when given, receives
    a mirror of every sample (the :mod:`repro.obs` migration path).
    """

    def __init__(self, sim: Simulator, port, interval_ps: int, series=None):
        self.sim = sim
        self.port = port
        self.interval_ps = interval_ps
        self.samples: List[tuple] = []
        self.series = series
        self._event = sim.schedule(0, self._tick)

    def _sample(self) -> None:
        now = self.sim.now
        occupancy = self.port.data_queue.bytes
        self.samples.append((now, occupancy))
        if self.series is not None:
            self.series.append(now, occupancy)

    def _tick(self) -> None:
        self._sample()
        self._event = self.sim.schedule(self.interval_ps, self._tick)

    def stop(self) -> None:
        """Idempotent; takes a final sample if time advanced past the last."""
        if self._event is None:
            return
        self._event.cancel()
        self._event = None
        if not self.samples or self.samples[-1][0] < self.sim.now:
            self._sample()

    def max_bytes(self) -> int:
        return max((b for _, b in self.samples), default=0)


class FlowThroughputSampler:
    """Per-flow goodput time series from ``bytes_delivered`` deltas.

    ``series[flow]`` is a list of throughputs in bit/s, one per interval.
    Constructed with a ``registry``, each flow's readings also mirror into a
    ``<name_prefix>.f<fid>_bps`` registry series.
    """

    def __init__(self, sim: Simulator, flows: Sequence, interval_ps: int,
                 registry=None, name_prefix: str = "throughput"):
        self.sim = sim
        self.flows = list(flows)
        self.interval_ps = interval_ps
        self.series: Dict[object, List[float]] = {f: [] for f in self.flows}
        self.times_ps: List[int] = []
        self._last: Dict[object, int] = {f: f.bytes_delivered for f in self.flows}
        self._registry = registry
        self._name_prefix = name_prefix
        self._mirrors: Dict[object, object] = {}
        if registry is not None:
            for f in self.flows:
                self._mirrors[f] = registry.add_series(
                    f"{name_prefix}.f{f.fid}_bps")
        self._last_tick_ps = sim.now
        self._event = sim.schedule(interval_ps, self._tick)

    def track(self, flow) -> None:
        """Start tracking a flow that was created after the sampler."""
        self.flows.append(flow)
        self.series[flow] = [0.0] * len(self.times_ps)
        self._last[flow] = flow.bytes_delivered
        if self._registry is not None:
            mirror = self._registry.add_series(
                f"{self._name_prefix}.f{flow.fid}_bps")
            for t in self.times_ps:
                mirror.append(t, 0.0)
            self._mirrors[flow] = mirror

    def _sample(self, elapsed_ps: int) -> None:
        now = self.sim.now
        self.times_ps.append(now)
        for flow in self.flows:
            delta = flow.bytes_delivered - self._last[flow]
            self._last[flow] = flow.bytes_delivered
            rate = delta * 8 * SEC / elapsed_ps
            self.series[flow].append(rate)
            mirror = self._mirrors.get(flow)
            if mirror is not None:
                mirror.append(now, rate)

    def _tick(self) -> None:
        self._sample(self.interval_ps)
        self._last_tick_ps = self.sim.now
        self._event = self.sim.schedule(self.interval_ps, self._tick)

    def stop(self) -> None:
        """Idempotent; closes the trailing partial interval with its true
        elapsed time so the final reading is a rate, not a truncation."""
        if self._event is None:
            return
        self._event.cancel()
        self._event = None
        elapsed = self.sim.now - self._last_tick_ps
        if elapsed > 0:
            self._sample(elapsed)


def convergence_time_ps(
    times_ps: Sequence[int],
    series: Sequence[Sequence[float]],
    fair_share_bps: float,
    tolerance: float = 0.2,
    sustain_intervals: int = 3,
    start_ps: int = 0,
) -> Optional[int]:
    """First time (after ``start_ps``) at which *every* flow stays within
    ``tolerance`` of ``fair_share_bps`` for ``sustain_intervals`` consecutive
    samples.  Returns the timestamp, or None if never converged.
    """
    if not series or not times_ps:
        return None
    n = len(times_ps)
    run = 0
    for i in range(n):
        if times_ps[i] < start_ps:
            continue
        ok = all(
            abs(s[i] - fair_share_bps) <= tolerance * fair_share_bps
            for s in series
            if i < len(s)
        )
        run = run + 1 if ok else 0
        if run >= sustain_intervals:
            return times_ps[i - sustain_intervals + 1]
    return None

"""Table 2 flow-size distributions.

The paper publishes, for each of four production workloads, the probability
mass of four size buckets plus the average flow size (and, in the text, the
largest-flow caps: 1 GB for Data Mining, 30 MB for Web Search).  The full
CDFs are not published, so we reconstruct each distribution as:

* log-uniform within every bucket except the top one, and
* a bounded Pareto within the top bucket whose shape ``alpha`` is *fitted*
  (bisection on the closed-form mean) so the overall mean matches the paper.

This preserves exactly the properties the evaluation depends on: the bucket
mix (which drives the S/M/L/XL FCT breakdown of Fig 19) and the mean size
(which sets the flow arrival rate for a target load, Fig 20's credit-waste
ordering, and Table 3's load points).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sim.units import KB, MB

MIN_FLOW_BYTES = 64


def _log_uniform_mean(lo: float, hi: float) -> float:
    if hi <= lo:
        return lo
    return (hi - lo) / math.log(hi / lo)


def _bounded_pareto_mean(alpha: float, lo: float, hi: float) -> float:
    if abs(alpha - 1.0) < 1e-9:
        return lo * hi / (hi - lo) * math.log(hi / lo)
    ratio = (lo / hi) ** alpha
    return (lo ** alpha / (1 - ratio)) * (alpha / (alpha - 1)) * (
        lo ** (1 - alpha) - hi ** (1 - alpha)
    )


def _sample_log_uniform(rng, lo: float, hi: float) -> int:
    return max(MIN_FLOW_BYTES, int(math.exp(rng.uniform(math.log(lo), math.log(hi)))))


def _sample_bounded_pareto(rng, alpha: float, lo: float, hi: float) -> int:
    u = rng.random()
    x = lo / (1 - u * (1 - (lo / hi) ** alpha)) ** (1 / alpha)
    return max(MIN_FLOW_BYTES, min(int(x), int(hi)))


@dataclass(frozen=True)
class _Bucket:
    prob: float
    lo: float
    hi: float
    alpha: Optional[float]  # None => log-uniform

    def mean(self) -> float:
        if self.alpha is None:
            return _log_uniform_mean(self.lo, self.hi)
        return _bounded_pareto_mean(self.alpha, self.lo, self.hi)

    def sample(self, rng) -> int:
        if self.alpha is None:
            return _sample_log_uniform(rng, self.lo, self.hi)
        return _sample_bounded_pareto(rng, self.alpha, self.lo, self.hi)


class FlowSizeDistribution:
    """A reconstructed empirical flow-size distribution.

    ``sample(rng)`` draws one flow size in bytes; ``mean_bytes`` is the
    analytic mean of the reconstruction (close to the paper's published
    average by construction).
    """

    def __init__(self, name: str, buckets: Sequence[_Bucket],
                 target_mean_bytes: float):
        self.name = name
        self.buckets: Tuple[_Bucket, ...] = tuple(buckets)
        total = sum(b.prob for b in self.buckets)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"{name}: bucket probabilities sum to {total}")
        self.target_mean_bytes = target_mean_bytes
        self._cum = []
        acc = 0.0
        for b in self.buckets:
            acc += b.prob
            self._cum.append(acc)
        self._cum[-1] = 1.0

    @property
    def mean_bytes(self) -> float:
        return sum(b.prob * b.mean() for b in self.buckets)

    def sample(self, rng) -> int:
        u = rng.random()
        for cum, bucket in zip(self._cum, self.buckets):
            if u <= cum:
                return bucket.sample(rng)
        return self.buckets[-1].sample(rng)  # pragma: no cover - float guard

    def bucket_probabilities(self) -> List[float]:
        return [b.prob for b in self.buckets]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlowSizeDistribution {self.name} mean={self.mean_bytes / 1e3:.1f}KB>"


def _fit_top_alpha(probs: Sequence[float], edges: Sequence[Tuple[float, float]],
                   target_mean: float) -> Optional[float]:
    """Bisection for the top bucket's Pareto alpha matching the target mean.

    Returns None (log-uniform top bucket) if even alpha→0 undershoots.
    """
    top = len(probs) - 1
    fixed_mean = sum(
        probs[i] * _log_uniform_mean(*edges[i]) for i in range(top)
    )
    need = (target_mean - fixed_mean) / probs[top]
    lo_edge, hi_edge = edges[top]
    if need >= _log_uniform_mean(lo_edge, hi_edge):
        return None  # log-uniform is already the heaviest shape we allow
    lo_a, hi_a = 1e-6, 50.0
    for _ in range(200):
        mid = (lo_a + hi_a) / 2
        if _bounded_pareto_mean(mid, lo_edge, hi_edge) > need:
            lo_a = mid  # mean too big -> increase alpha (monotone decreasing)
        else:
            hi_a = mid
    return (lo_a + hi_a) / 2


def _build(name: str, probs: Sequence[float],
           edges: Sequence[Tuple[float, float]],
           target_mean: float) -> FlowSizeDistribution:
    # Drop empty buckets (Web Server has no XL traffic).
    kept = [(p, e) for p, e in zip(probs, edges) if p > 0]
    probs = [p for p, _ in kept]
    scale = sum(probs)
    probs = [p / scale for p in probs]
    edges = [e for _, e in kept]
    alpha = _fit_top_alpha(probs, edges, target_mean)
    buckets = []
    for i, (p, (lo, hi)) in enumerate(zip(probs, edges)):
        is_top = i == len(probs) - 1
        buckets.append(_Bucket(p, lo, hi, alpha if is_top else None))
    return FlowSizeDistribution(name, buckets, target_mean)


_S = (float(MIN_FLOW_BYTES), 10.0 * KB)
_M = (10.0 * KB, 100.0 * KB)
_L = (100.0 * KB, 1.0 * MB)

#: Table 2, columns left to right.  XL upper caps from the paper's text.
DATA_MINING = _build(
    "data_mining", [0.78, 0.05, 0.08, 0.09],
    [_S, _M, _L, (1.0 * MB, 1000.0 * MB)], target_mean=7.41 * MB,
)
WEB_SEARCH = _build(
    # The published column sums to 90 %; normalized here.
    "web_search", [0.49, 0.03, 0.18, 0.20],
    [_S, _M, _L, (1.0 * MB, 30.0 * MB)], target_mean=1.6 * MB,
)
CACHE_FOLLOWER = _build(
    "cache_follower", [0.50, 0.03, 0.18, 0.29],
    [_S, _M, _L, (1.0 * MB, 30.0 * MB)], target_mean=701 * KB,
)
WEB_SERVER = _build(
    "web_server", [0.63, 0.18, 0.19, 0.0],
    [_S, _M, _L, (1.0 * MB, 30.0 * MB)], target_mean=64 * KB,
)

WORKLOADS = {
    d.name: d for d in (DATA_MINING, WEB_SEARCH, CACHE_FOLLOWER, WEB_SERVER)
}

"""Traffic-pattern generators.

Generators produce :class:`FlowSpec` lists (src index, dst index, size,
start time); the experiment harness binds them to hosts and a transport.
Keeping specs protocol-agnostic means every baseline sees the *identical*
arrival sequence for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.units import SEC
from repro.workloads.distributions import FlowSizeDistribution


@dataclass(frozen=True)
class FlowSpec:
    """One flow to create: host indices, size in bytes, start picosecond."""

    src: int
    dst: int
    size_bytes: int
    start_ps: int


def poisson_arrival_rate_fps(load: float, uplink_capacity_bps: float,
                             mean_flow_bytes: float,
                             cross_fraction: float = 1.0) -> float:
    """Flow arrival rate (flows/s) hitting ``load`` on the ToR uplinks.

    ``uplink_capacity_bps`` is the *total* ToR uplink capacity of the fabric
    and ``cross_fraction`` the fraction of random-pair traffic that actually
    crosses ToR uplinks (1 - (hosts_per_tor - 1)/(hosts - 1) for uniform
    peers).  The paper sets its target load at the ToR up-links the same way.
    """
    if not 0 < load:
        raise ValueError("load must be positive")
    return load * uplink_capacity_bps / (mean_flow_bytes * 8 * cross_fraction)


def poisson_specs(
    rng,
    dist: FlowSizeDistribution,
    n_flows: int,
    n_hosts: int,
    arrival_rate_fps: float,
    start_ps: int = 0,
) -> List[FlowSpec]:
    """Exponential inter-arrivals, uniform random src != dst pairs."""
    if n_hosts < 2:
        raise ValueError("need at least two hosts")
    specs = []
    t = float(start_ps)
    for _ in range(n_flows):
        t += rng.expovariate(arrival_rate_fps) * SEC
        src = rng.randrange(n_hosts)
        dst = rng.randrange(n_hosts - 1)
        if dst >= src:
            dst += 1
        specs.append(FlowSpec(src, dst, dist.sample(rng), int(t)))
    return specs


def incast_specs(
    n_senders: int,
    receiver: int,
    bytes_per_sender: int,
    start_ps: int = 0,
    jitter_ps: int = 0,
    rng=None,
    n_hosts: Optional[int] = None,
) -> List[FlowSpec]:
    """Synchronized fan-in: ``n_senders`` hosts each send to ``receiver``.

    When ``n_senders`` exceeds the available hosts, senders wrap around
    (the paper: "multiple workers can share the same host").  ``jitter_ps``
    adds a uniform start offset per sender when ``rng`` is given.
    """
    pool = n_hosts if n_hosts is not None else n_senders + 1
    specs = []
    for i in range(n_senders):
        src = i % (pool - 1)
        if src >= receiver:
            src += 1
        offset = rng.randint(0, jitter_ps) if (rng and jitter_ps) else 0
        specs.append(FlowSpec(src, receiver, bytes_per_sender, start_ps + offset))
    return specs


def shuffle_specs(
    n_hosts: int,
    tasks_per_host: int,
    bytes_per_flow: int,
    start_ps: int = 0,
    jitter_ps: int = 0,
    rng=None,
) -> List[FlowSpec]:
    """MapReduce shuffle (§6.2): all-to-all, tasks² flows per host pair.

    Every host runs ``tasks_per_host`` tasks and each task sends
    ``bytes_per_flow`` to every task on every *other* host, so each host
    sends and receives ``(n_hosts-1) * tasks_per_host**2`` flows.
    """
    specs = []
    for src in range(n_hosts):
        for dst in range(n_hosts):
            if src == dst:
                continue
            for _ in range(tasks_per_host * tasks_per_host):
                offset = rng.randint(0, jitter_ps) if (rng and jitter_ps) else 0
                specs.append(FlowSpec(src, dst, bytes_per_flow, start_ps + offset))
    return specs


def permutation_specs(n_hosts: int, size_bytes: Optional[int],
                      start_ps: int = 0) -> List[FlowSpec]:
    """Host i sends to host (i+1) mod n — a classic full-bisection pattern."""
    return [
        FlowSpec(i, (i + 1) % n_hosts, size_bytes, start_ps)
        for i in range(n_hosts)
    ]

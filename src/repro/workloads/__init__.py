"""Workload generation: Table 2 flow-size distributions and traffic patterns."""

from repro.workloads.distributions import (
    CACHE_FOLLOWER,
    DATA_MINING,
    WEB_SEARCH,
    WEB_SERVER,
    WORKLOADS,
    FlowSizeDistribution,
)
from repro.workloads.generators import (
    FlowSpec,
    incast_specs,
    permutation_specs,
    poisson_specs,
    shuffle_specs,
)
from repro.workloads.traces import dump_trace, load_trace

__all__ = [
    "FlowSizeDistribution",
    "DATA_MINING",
    "WEB_SEARCH",
    "CACHE_FOLLOWER",
    "WEB_SERVER",
    "WORKLOADS",
    "FlowSpec",
    "poisson_specs",
    "incast_specs",
    "shuffle_specs",
    "permutation_specs",
    "dump_trace",
    "load_trace",
]

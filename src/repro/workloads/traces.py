"""Workload traces: save and replay FlowSpec sequences as CSV.

A trace pins a workload exactly — across processes, protocol comparisons,
and code versions — where regenerating from a seed only pins it for one
code version.  Format: a header line, then one flow per line::

    # repro-flow-trace v1
    src,dst,size_bytes,start_ps
    3,7,45000,1200000

Writers/readers are strict: malformed lines raise rather than silently
skew an experiment.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, Union

from repro.workloads.generators import FlowSpec

_HEADER = "# repro-flow-trace v1"
_COLUMNS = "src,dst,size_bytes,start_ps"


def dump_trace(specs: Iterable[FlowSpec], target: Union[str, Path, io.TextIOBase]) -> int:
    """Write ``specs`` as a trace; returns the number of flows written."""
    own = isinstance(target, (str, Path))
    fh = open(target, "w") if own else target
    try:
        fh.write(_HEADER + "\n")
        fh.write(_COLUMNS + "\n")
        count = 0
        for spec in specs:
            fh.write(f"{spec.src},{spec.dst},{spec.size_bytes},{spec.start_ps}\n")
            count += 1
        return count
    finally:
        if own:
            fh.close()


def load_trace(source: Union[str, Path, io.TextIOBase]) -> List[FlowSpec]:
    """Read a trace written by :func:`dump_trace`."""
    own = isinstance(source, (str, Path))
    fh = open(source) if own else source
    try:
        header = fh.readline().rstrip("\n")
        if header != _HEADER:
            raise ValueError(f"not a flow trace (header {header!r})")
        columns = fh.readline().rstrip("\n")
        if columns != _COLUMNS:
            raise ValueError(f"unexpected columns {columns!r}")
        specs = []
        for lineno, line in enumerate(fh, start=3):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: expected 4 fields, got {line!r}")
            src, dst, size, start = (int(p) for p in parts)
            if src == dst:
                raise ValueError(f"line {lineno}: src == dst == {src}")
            if size <= 0 or start < 0:
                raise ValueError(f"line {lineno}: bad size/start in {line!r}")
            specs.append(FlowSpec(src, dst, size, start))
        return specs
    finally:
        if own:
            fh.close()

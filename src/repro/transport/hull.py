"""HULL (Alizadeh et al., NSDI 2012): phantom queues + paced DCTCP.

Each link runs a *phantom queue* draining at γ·C (γ = 0.95 by default); when
the virtual backlog exceeds the marking threshold, ECN-capable packets are
marked even though the real queue is nearly empty.  Senders are DCTCP with
hardware-style pacing, so utilization is capped slightly below capacity and
queueing delay stays close to zero — the "less is more" trade.
"""

from __future__ import annotations

from typing import Iterable

from repro.net.port import Port
from repro.net.queues import PhantomQueue
from repro.transport.dctcp import DctcpFlow


def install_phantom_queues(ports: Iterable[Port], gamma: float = 0.95,
                           mark_threshold_bytes: int = 3_000) -> None:
    """Attach a phantom queue to every port in ``ports``.

    The HULL paper uses a 1 KB threshold at 1 Gbit/s and suggests scaling
    with speed; 3 KB is our 10 G default (configurable per experiment).
    """
    for port in ports:
        port.phantom = PhantomQueue(port.rate_bps, gamma, mark_threshold_bytes)


class HullFlow(DctcpFlow):
    """A paced DCTCP sender — HULL's end-host half."""

    paced = True

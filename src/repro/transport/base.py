"""Flow lifecycle and the two reusable transfer engines.

:class:`Flow`
    Identity (4-tuple, symmetric hash), start/finish bookkeeping, delivery
    dispatch, and drop accounting.  Everything that moves packets derives
    from it, including ExpressPass in :mod:`repro.core`.

:class:`WindowFlow`
    Reliable, segment-based, window-controlled transfer with cumulative
    ACKs, out-of-order buffering (SACK-like single-hole recovery), fast
    retransmit on three duplicate ACKs, and an RTO.  Congestion control is
    supplied by subclasses through small hooks, so TCP Reno, CUBIC, DCTCP,
    HULL, and DX are each only a page of code.

:class:`RateFlow`
    Reliable, explicitly paced transfer for rate-assigned protocols (RCP,
    the ideal oracle).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.host import Host
from repro.net.packet import (
    MTU_PAYLOAD,
    Packet,
    PacketKind,
    data_packet,
)
from repro.net.routing import asymmetric_flow_hash, symmetric_flow_hash
from repro.sim.units import MS, SEC, US, tx_time_ps

class Flow:
    """Base class: one unidirectional transfer from ``src`` to ``dst``.

    ``size_bytes=None`` makes the flow persistent (long-running, never
    completes) — used by the convergence and fairness microbenchmarks.
    """

    MSS = MTU_PAYLOAD

    def __init__(
        self,
        src: Host,
        dst: Host,
        size_bytes: Optional[int],
        start_ps: int = 0,
        symmetric_routing: bool = True,
    ):
        if src is dst:
            raise ValueError("flow endpoints must differ")
        if size_bytes is not None and size_bytes <= 0:
            raise ValueError("flow size must be positive (or None for persistent)")
        self.sim = src.sim
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.start_ps = start_ps
        self.fid = self.sim.next_flow_id()
        self.sport = self.sim.next_port_number()
        self.dport = self.sim.next_port_number()
        self._symmetric = symmetric_routing
        self._sym_hash = symmetric_flow_hash(src.id, dst.id, self.sport, self.dport)
        self.finish_ps: Optional[int] = None
        self.bytes_delivered = 0  # first-copy payload bytes seen by the receiver
        self.data_drops = 0
        self.credit_drops = 0
        self.retransmissions = 0
        self._path_salt = 0
        self.path_rehashes = 0
        self.on_complete: List[Callable[["Flow"], None]] = []
        self._started = False
        self._start_evt = self.sim.schedule_at(max(start_ps, self.sim.now),
                                               self._start_event)
        auditor = getattr(self.sim, "auditor", None)
        if auditor is not None:
            auditor.register_flow(self)
        shard = getattr(self.sim, "shard", None)
        if shard is not None:
            shard.register_flow(self)
        #: :class:`repro.obs.FlowSpan` when metrics are on, else None — so
        #: instrumentation points cost one attribute check per event.
        self.obs_span = None
        metrics = getattr(self.sim, "metrics", None)
        if metrics is not None:
            metrics.register_flow(self)

    # -- identity -----------------------------------------------------------
    def path_hash(self, pkt: Packet) -> int:
        """ECMP hash for this packet.  Symmetric by default (§3.1)."""
        if self._symmetric:
            return self._sym_hash
        salt = 7919 * self._path_salt
        return asymmetric_flow_hash(pkt.src, pkt.dst,
                                    (self.sport if pkt.src == self.src.id else self.dport) + salt,
                                    (self.dport if pkt.src == self.src.id else self.sport) + salt)

    def rehash_path(self) -> None:
        """Re-roll the flow's ECMP hash to steer around a dead path.

        The salted hash is still *symmetric* — one shared value covers both
        directions, so credits and data move to the mirrored new path in the
        same instant (§3.1 holds across the move).  Deterministic: the salt
        is a per-flow counter, not randomness.
        """
        self._path_salt += 1
        salt = 7919 * self._path_salt  # prime stride decorrelates consecutive salts
        self._sym_hash = symmetric_flow_hash(
            self.src.id, self.dst.id, self.sport + salt, self.dport + salt)
        self.path_rehashes += 1
        metrics = getattr(self.sim, "metrics", None)
        if metrics is not None:
            metrics.counter("transport.path_rehashes").inc()
            metrics.log_event(self.sim.now, "path_rehash", self.fid)

    @property
    def completed(self) -> bool:
        return self.finish_ps is not None

    @property
    def fct_ps(self) -> Optional[int]:
        """Flow completion time: arrival to last payload byte delivered."""
        if self.finish_ps is None:
            return None
        return self.finish_ps - self.start_ps

    # -- lifecycle ----------------------------------------------------------
    def _start_event(self) -> None:
        self._started = True
        if self.obs_span is not None:
            self.obs_span.mark("start", self.sim.now)
        self.begin()

    def begin(self) -> None:
        """Protocol-specific start logic (override)."""
        raise NotImplementedError

    def stop(self) -> None:
        """Abort the flow: never start if pending, stop timers if running.

        Subclasses extend this to cancel their own timers.
        """
        self._start_evt.cancel()
        if self.obs_span is not None:
            self.obs_span.mark("stop", self.sim.now)

    def _complete(self) -> None:
        if self.finish_ps is None:
            self.finish_ps = self.sim.now
            if self.obs_span is not None:
                self.obs_span.finish(self)
            for callback in self.on_complete:
                callback(self)

    # -- delivery dispatch ----------------------------------------------------
    def deliver(self, host: Host, pkt: Packet) -> None:
        if host.id == self.dst.id:
            self._at_receiver(pkt)
        elif host.id == self.src.id:
            self._at_sender(pkt)
        else:  # pragma: no cover - routing bug guard
            raise RuntimeError(f"flow {self.fid} packet delivered to {host.name}")

    def _at_receiver(self, pkt: Packet) -> None:
        raise NotImplementedError

    def _at_sender(self, pkt: Packet) -> None:
        raise NotImplementedError

    # -- network callbacks -----------------------------------------------------
    def on_data_dropped(self, pkt: Packet, port) -> None:
        self.data_drops += 1

    def on_credit_dropped(self, pkt: Packet, port) -> None:
        self.credit_drops += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        size = "inf" if self.size_bytes is None else self.size_bytes
        return f"<{type(self).__name__} #{self.fid} {self.src.name}->{self.dst.name} {size}B>"


class WindowFlow(Flow):
    """Reliable window-based transfer.  Subclasses provide congestion control.

    Hook points (all optional overrides):

    * :meth:`cc_on_ack` — every new cumulative ACK (RTT sample attached).
    * :meth:`cc_on_round` — once per window of data (for per-RTT controllers).
    * :meth:`cc_on_dupack_loss` / :meth:`cc_on_timeout` — loss reactions.
    * :attr:`cwnd` — congestion window in segments (float, floored at
      ``min_cwnd`` when applied).
    """

    ecn_capable = False
    paced = False
    min_cwnd = 1.0
    init_cwnd = 2.0
    DUPACK_THRESHOLD = 3
    #: Consecutive RTOs (no ACK progress between them) before the flow
    #: assumes its ECMP path is dead and re-hashes onto another one.
    REHASH_AFTER_RTOS = 3
    #: Exponential-backoff ceiling for consecutive RTOs (RFC 6298 style).
    MAX_RTO_BACKOFF = 64
    #: Model the TCP 3-way handshake: data flows one RTT after the flow
    #: starts, matching ExpressPass's credit-request round trip so FCT
    #: comparisons are apples-to-apples.
    handshake = True

    def __init__(self, src, dst, size_bytes, start_ps=0, *,
                 min_rto_ps: int = 2 * MS, symmetric_routing: bool = True):
        super().__init__(src, dst, size_bytes, start_ps, symmetric_routing)
        if size_bytes is None:
            self.total_segments = None
        else:
            self.total_segments = -(-size_bytes // self.MSS)
        self.cwnd = self.init_cwnd
        # sender state
        self._next_seq = 0
        self._cum_acked = -1  # highest cumulatively ACKed segment
        self._dupacks = 0
        self._recover_seq = -1  # fast-recovery guard
        self._rto_event = None
        self._min_rto_ps = min_rto_ps
        self._rto_streak = 0    # consecutive RTOs without ACK progress
        self._rto_backoff = 1   # integer multiplier; 1 until an RTO fires
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._pacing_event = None
        # receiver state
        self._rcv_expected = 0
        self._rcv_ooo = set()
        # per-round bookkeeping for cc_on_round
        self._round_end_seq = 0
        self._round_acks = 0
        self._round_marks = 0
        self._round_rtt_sum = 0.0
        self._stopped = False

    # -- congestion-control hooks (defaults: fixed window) ---------------------
    def cc_on_ack(self, newly_acked: int, ecn_echo: bool,
                  rtt_sample_ps: Optional[int]) -> None:
        """Called for every ACK advancing the cumulative point."""

    def cc_on_round(self, acks: int, marks: int,
                    avg_rtt_ps: Optional[float]) -> None:
        """Called once per window's worth of ACKs (a "round" ~ one RTT)."""

    def cc_on_dupack_loss(self) -> None:
        """Loss inferred from duplicate ACKs (fast retransmit fired)."""

    def cc_on_timeout(self) -> None:
        """Retransmission timer fired."""

    # -- sender -------------------------------------------------------------
    def begin(self) -> None:
        if self.handshake:
            self.src.send(Packet(PacketKind.CONTROL, self.src.id, self.dst.id,
                                 flow=self, seq=-1))
        else:
            self._maybe_send()

    def stop(self) -> None:
        """Abort the flow (used when tearing an experiment down)."""
        super().stop()
        self._stopped = True
        if self._rto_event is not None:
            self._rto_event.cancel()
        if self._pacing_event is not None:
            self._pacing_event.cancel()

    def _inflight(self) -> int:
        return self._next_seq - (self._cum_acked + 1)

    def _window_allows(self) -> bool:
        if self.total_segments is not None and self._next_seq >= self.total_segments:
            return False
        return self._inflight() < max(self.min_cwnd, self.cwnd)

    def _segment_payload(self, seq: int) -> int:
        if self.size_bytes is None or self.total_segments is None:
            return self.MSS
        if seq < self.total_segments - 1:
            return self.MSS
        return self.size_bytes - (self.total_segments - 1) * self.MSS

    def _pacing_rate_bps(self) -> Optional[float]:
        """Pacing rate for ``paced`` subclasses: cwnd per smoothed RTT."""
        if self._srtt is None or self._srtt <= 0:
            return None
        return max(self.min_cwnd, self.cwnd) * self.MSS * 8 * SEC / self._srtt

    def _maybe_send(self) -> None:
        if self._stopped:
            return
        if not self.paced:
            while self._window_allows():
                self._emit_segment(self._next_seq, retransmit=False)
                self._next_seq += 1
            return
        # Paced mode: one segment now, next one when the pacer allows.
        if self._pacing_event is not None:
            return
        if not self._window_allows():
            return
        self._emit_segment(self._next_seq, retransmit=False)
        self._next_seq += 1
        rate = self._pacing_rate_bps()
        if rate:
            gap = int(self.MSS * 8 * SEC / rate)
            self._pacing_event = self.sim.schedule(max(gap, 1), self._pace_tick)

    def _pace_tick(self) -> None:
        self._pacing_event = None
        self._maybe_send()

    def _emit_segment(self, seq: int, retransmit: bool) -> None:
        pkt = data_packet(
            self.src.id, self.dst.id, self,
            payload_bytes=self._segment_payload(seq),
            seq=seq,
            ecn_capable=self.ecn_capable,
            sent_ts=-1 if retransmit else self.sim.now,
        )
        if retransmit:
            self.retransmissions += 1
        self.src.send(pkt)
        self._arm_rto()

    # -- RTO ------------------------------------------------------------------
    def _current_rto_ps(self) -> int:
        if self._srtt is None:
            base = self._min_rto_ps * 4
        else:
            base = max(self._min_rto_ps, int(self._srtt + 4 * self._rttvar))
        # Integer backoff multiplier: exactly 1 until an RTO has fired, so
        # loss-free runs are bit-identical to the pre-backoff engine.
        return base * self._rto_backoff

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        self._rto_event = self.sim.schedule(self._current_rto_ps(), self._on_rto)

    def _disarm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if self._stopped or self.completed:
            return
        if self._inflight() <= 0:
            return
        # Consecutive timeouts mean retransmissions are dying too: back the
        # timer off exponentially, and after REHASH_AFTER_RTOS in a row
        # assume the ECMP path itself is dead and move the flow off it.
        self._rto_streak += 1
        self._rto_backoff = min(self._rto_backoff * 2, self.MAX_RTO_BACKOFF)
        if self.REHASH_AFTER_RTOS and self._rto_streak % self.REHASH_AFTER_RTOS == 0:
            self.rehash_path()
        # Go-back-N: rewind to the cumulative point and let cc shrink cwnd.
        self.retransmissions += self._next_seq - (self._cum_acked + 1)
        self._next_seq = self._cum_acked + 1
        self._dupacks = 0
        self._recover_seq = -1
        self.cc_on_timeout()
        self._maybe_send()
        self._arm_rto()

    # -- receiver ---------------------------------------------------------------
    def _at_receiver(self, pkt: Packet) -> None:
        if pkt.kind == PacketKind.CONTROL and pkt.seq == -1:
            self.dst.send(Packet(PacketKind.CONTROL, self.dst.id, self.src.id,
                                 flow=self, seq=-2))
            return
        if pkt.kind != PacketKind.DATA:
            return
        if pkt.seq == self._rcv_expected:
            if self._rcv_expected == 0 and self.obs_span is not None:
                self.obs_span.mark("first_data", self.sim.now)
            self.bytes_delivered += pkt.payload_bytes
            self._rcv_expected += 1
            while self._rcv_expected in self._rcv_ooo:
                self._rcv_ooo.discard(self._rcv_expected)
                self.bytes_delivered += self._segment_payload(self._rcv_expected)
                self._rcv_expected += 1
        elif pkt.seq > self._rcv_expected and pkt.seq not in self._rcv_ooo:
            self._rcv_ooo.add(pkt.seq)
        ack = Packet(
            PacketKind.ACK, self.dst.id, self.src.id, flow=self,
            ack=self._rcv_expected - 1, sent_ts=pkt.sent_ts,
        )
        ack.ecn_echo = pkt.ecn_marked
        self.dst.send(ack)
        if (self.total_segments is not None
                and self._rcv_expected >= self.total_segments):
            self._complete()

    # -- ACK processing at the sender ---------------------------------------------
    def _at_sender(self, pkt: Packet) -> None:
        if self._stopped:
            return
        if pkt.kind == PacketKind.CONTROL and pkt.seq == -2:
            self._maybe_send()  # SYN-ACK: connection established
            return
        if pkt.kind != PacketKind.ACK:
            return
        rtt_sample = None
        if pkt.sent_ts >= 0:
            rtt_sample = self.sim.now - pkt.sent_ts
            self._update_rtt(rtt_sample)
        if pkt.ack > self._cum_acked:
            newly = pkt.ack - self._cum_acked
            self._cum_acked = pkt.ack
            self._dupacks = 0
            self._rto_streak = 0
            self._rto_backoff = 1
            if self._cum_acked >= self._recover_seq:
                self._recover_seq = -1
            self.cc_on_ack(newly, pkt.ecn_echo, rtt_sample)
            self._round_acks += newly
            if pkt.ecn_echo:
                self._round_marks += newly
            if rtt_sample is not None:
                self._round_rtt_sum += rtt_sample * newly
            if self._cum_acked + 1 >= self._round_end_seq:
                avg_rtt = (self._round_rtt_sum / self._round_acks
                           if self._round_acks and self._round_rtt_sum else None)
                self.cc_on_round(self._round_acks, self._round_marks, avg_rtt)
                self._round_acks = self._round_marks = 0
                self._round_rtt_sum = 0.0
                self._round_end_seq = self._next_seq
            if self._inflight() > 0:
                self._arm_rto()
            else:
                self._disarm_rto()
        else:
            self._dupacks += 1
            if pkt.ecn_echo:
                self.cc_on_ack(0, True, rtt_sample)
            if (self._dupacks == self.DUPACK_THRESHOLD
                    and self._cum_acked + 1 > self._recover_seq):
                self._recover_seq = self._next_seq - 1
                self.cc_on_dupack_loss()
                self._emit_segment(self._cum_acked + 1, retransmit=True)
        if self.total_segments is not None and self._cum_acked + 1 >= self.total_segments:
            self._disarm_rto()
            return
        self._maybe_send()

    def _update_rtt(self, sample_ps: int) -> None:
        if self._srtt is None:
            self._srtt = float(sample_ps)
            self._rttvar = sample_ps / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample_ps)
            self._srtt = 0.875 * self._srtt + 0.125 * sample_ps


class RateFlow(Flow):
    """Reliable transfer paced at an explicitly assigned rate.

    ``self.rate_bps`` is the payload sending rate (wire overhead is added on
    top when spacing packets, so the *wire* rate slightly exceeds it; RCP's
    controller accounts for wire bytes at the link, which closes the loop).
    Reliability is cumulative-ACK + RTO (rate protocols have no fast
    retransmit in the paper's ns-2 models either).
    """

    ecn_capable = False

    def __init__(self, src, dst, size_bytes, start_ps=0, *,
                 initial_rate_bps: float = 1e9,
                 min_rto_ps: int = 2 * MS,
                 symmetric_routing: bool = True):
        super().__init__(src, dst, size_bytes, start_ps, symmetric_routing)
        if size_bytes is None:
            self.total_segments = None
        else:
            self.total_segments = -(-size_bytes // self.MSS)
        self.rate_bps = float(initial_rate_bps)
        self._next_seq = 0
        self._cum_acked = -1
        self._dupacks = 0
        self._recover_seq = -1
        self._min_rto_ps = min_rto_ps
        self._rto_event = None
        self._rto_streak = 0
        self._rto_backoff = 1
        self._send_event = None
        self._rcv_expected = 0
        self._rcv_ooo = set()
        self._stopped = False

    # Hook: subclasses update self.rate_bps from feedback.
    def cc_on_ack(self, pkt: Packet) -> None:
        """Process protocol feedback carried on the ACK."""

    handshake = True

    def begin(self) -> None:
        if self.handshake:
            self.src.send(Packet(PacketKind.CONTROL, self.src.id, self.dst.id,
                                 flow=self, seq=-1))
        else:
            self._schedule_send(0)

    def stop(self) -> None:
        super().stop()
        self._stopped = True
        for event in (self._rto_event, self._send_event):
            if event is not None:
                event.cancel()

    def _segment_payload(self, seq: int) -> int:
        if self.size_bytes is None or self.total_segments is None:
            return self.MSS
        if seq < self.total_segments - 1:
            return self.MSS
        return self.size_bytes - (self.total_segments - 1) * self.MSS

    def _schedule_send(self, delay_ps: int) -> None:
        if self._send_event is not None:
            self._send_event.cancel()
        self._send_event = self.sim.schedule(delay_ps, self._send_tick)

    def _send_tick(self) -> None:
        self._send_event = None
        if self._stopped or self.completed:
            return
        if self.total_segments is not None and self._next_seq >= self.total_segments:
            return  # all data out; wait for ACKs / RTO
        # Local backpressure: a real NIC stalls the sender rather than drop
        # its own backlog (essential under PFC pause).  Retry shortly.
        nic = self.src.nic
        if (nic.pfc_paused
                or nic.data_queue.bytes + 1538 > nic.data_queue.capacity_bytes):
            self._schedule_send(5 * US)
            return
        payload = self._segment_payload(self._next_seq)
        pkt = data_packet(self.src.id, self.dst.id, self, payload,
                          seq=self._next_seq, sent_ts=self.sim.now,
                          ecn_capable=self.ecn_capable)
        pkt.rcp_rate = None  # stamped down by RCP-enabled ports
        self.src.send(pkt)
        self._next_seq += 1
        # The RTO guards the oldest unacknowledged segment: arm only when no
        # timer is pending — re-arming per send would let a fast sender
        # starve its own loss recovery.
        if self._rto_event is None:
            self._arm_rto()
        if self.rate_bps > 0:
            gap = int((payload + 38) * 8 * SEC / self.rate_bps)
            self._schedule_send(max(gap, 1))

    def rate_changed(self) -> None:
        """Re-pace after an external rate update (oracle reassignment)."""
        if self._stopped or self.completed or self.rate_bps <= 0:
            return
        if self._send_event is not None:
            self._send_event.cancel()
            self._send_event = None
            gap = int((self.MSS + 38) * 8 * SEC / self.rate_bps)
            self._schedule_send(max(gap, 1))

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        self._rto_event = self.sim.schedule(
            self._min_rto_ps * 4 * self._rto_backoff, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_event = None
        if self._stopped or self.completed:
            return
        if self._next_seq > self._cum_acked + 1:
            # Same sustained-timeout handling as WindowFlow: back off and,
            # after three in a row, abandon the (presumed dead) ECMP path.
            self._rto_streak += 1
            self._rto_backoff = min(self._rto_backoff * 2,
                                    WindowFlow.MAX_RTO_BACKOFF)
            if self._rto_streak % WindowFlow.REHASH_AFTER_RTOS == 0:
                self.rehash_path()
            # Selective repair: the receiver buffers out-of-order segments,
            # so resending just the hole releases everything behind it.
            # (Go-back-N here would re-inject whole windows and collapse
            # goodput under synchronized drop storms.)
            hole = self._cum_acked + 1
            pkt = data_packet(self.src.id, self.dst.id, self,
                              self._segment_payload(hole), seq=hole,
                              sent_ts=-1, ecn_capable=self.ecn_capable)
            self.retransmissions += 1
            self._dupacks = 0
            self._recover_seq = self._next_seq - 1  # stay in recovery
            self.src.send(pkt)
            if self._send_event is None and (
                    self.total_segments is None
                    or self._next_seq < self.total_segments):
                self._schedule_send(0)
            self._arm_rto()

    def _at_receiver(self, pkt: Packet) -> None:
        if pkt.kind == PacketKind.CONTROL and pkt.seq == -1:
            reply = Packet(PacketKind.CONTROL, self.dst.id, self.src.id,
                           flow=self, seq=-2)
            reply.rcp_rate = pkt.rcp_rate  # echo the path's current RCP rate
            self.dst.send(reply)
            return
        if pkt.kind != PacketKind.DATA:
            return
        if pkt.seq == self._rcv_expected:
            if self._rcv_expected == 0 and self.obs_span is not None:
                self.obs_span.mark("first_data", self.sim.now)
            self.bytes_delivered += pkt.payload_bytes
            self._rcv_expected += 1
            while self._rcv_expected in self._rcv_ooo:
                self._rcv_ooo.discard(self._rcv_expected)
                self.bytes_delivered += self._segment_payload(self._rcv_expected)
                self._rcv_expected += 1
        elif pkt.seq > self._rcv_expected and pkt.seq not in self._rcv_ooo:
            self._rcv_ooo.add(pkt.seq)
        ack = Packet(PacketKind.ACK, self.dst.id, self.src.id, flow=self,
                     ack=self._rcv_expected - 1, sent_ts=pkt.sent_ts)
        ack.rcp_rate = pkt.rcp_rate  # echo the path's stamped rate
        self.dst.send(ack)
        if (self.total_segments is not None
                and self._rcv_expected >= self.total_segments):
            self._complete()

    def _at_sender(self, pkt: Packet) -> None:
        if self._stopped:
            return
        if pkt.kind == PacketKind.CONTROL and pkt.seq == -2:
            self.cc_on_ack(pkt)  # pick up the stamped rate, if any
            self._schedule_send(0)
            return
        if pkt.kind != PacketKind.ACK:
            return
        if pkt.ack > self._cum_acked:
            self._cum_acked = pkt.ack
            self._dupacks = 0
            self._rto_streak = 0
            self._rto_backoff = 1
            if self._recover_seq >= 0 and self._cum_acked < self._recover_seq:
                # NewReno partial ACK: the next hole is known immediately —
                # repair it now instead of waiting for dupacks or the RTO.
                hole = self._cum_acked + 1
                self.retransmissions += 1
                self.src.send(data_packet(
                    self.src.id, self.dst.id, self,
                    self._segment_payload(hole), seq=hole, sent_ts=-1,
                    ecn_capable=self.ecn_capable))
            elif self._cum_acked >= self._recover_seq:
                self._recover_seq = -1
            if self._next_seq > self._cum_acked + 1:
                self._arm_rto()  # restart for the next-oldest segment
            elif self._rto_event is not None:
                self._rto_event.cancel()
                self._rto_event = None
        elif pkt.ack == self._cum_acked and self._next_seq > self._cum_acked + 1:
            self._dupacks += 1
            if self._dupacks == 3 and self._cum_acked + 1 > self._recover_seq:
                # Retransmit the single missing segment without waiting for
                # the RTO; rate control is unchanged (it lives in the fabric).
                self._recover_seq = self._next_seq - 1
                hole = self._cum_acked + 1
                pkt_r = data_packet(self.src.id, self.dst.id, self,
                                    self._segment_payload(hole), seq=hole,
                                    sent_ts=-1)
                self.retransmissions += 1
                self.src.send(pkt_r)
                self._arm_rto()
        self.cc_on_ack(pkt)
        if self.total_segments is not None and self._cum_acked + 1 >= self.total_segments:
            if self._rto_event is not None:
                self._rto_event.cancel()

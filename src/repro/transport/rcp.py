"""RCP — Rate Control Protocol (Dukkipati, 2008).

Every link periodically computes a single fair rate ``R`` from aggregate
input traffic ``y`` and queue backlog ``q``::

    R <- R * [ 1 + (T / d) * ( alpha * (C - y) - beta * q / d ) / C ]

Data packets carry the minimum ``R`` along their path; receivers echo it on
ACKs; senders pace at the echoed rate.  New flows start at the link's
*current* rate — which is why RCP overflows shallow buffers under incast
(Fig 15) and ramps fastest in Fig 16/21.

Constants ``alpha = 0.4, beta = 1.0`` follow the RCP thesis defaults; ``d``
is the configured average RTT.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.net.packet import Packet, PacketKind
from repro.net.port import Port
from repro.sim.engine import Simulator
from repro.sim.units import SEC
from repro.transport.base import RateFlow


class RcpLinkController:
    """Per-port RCP rate computation and header stamping."""

    def __init__(self, sim: Simulator, port: Port, avg_rtt_ps: int,
                 alpha: float = 0.4, beta: float = 1.0,
                 min_rate_bps: float = 1e7):
        self.sim = sim
        self.port = port
        self.capacity_bps = float(port.rate_bps)
        self.avg_rtt_ps = avg_rtt_ps
        self.alpha = alpha
        self.beta = beta
        self.min_rate_bps = min_rate_bps
        self.rate_bps = self.capacity_bps  # new flows start at the current rate
        self._arrived_bytes = 0
        sim.schedule(avg_rtt_ps, self._update)

    def on_arrival(self, pkt: Packet, now_ps: int) -> None:
        """Called by the port for every non-credit packet it accepts.

        Data *and* control (SYN) packets are stamped with the link's rate,
        so a new flow starts at the path's current R — "RCP assigns the
        same rate for a new flow as existing flows".
        """
        if pkt.kind == PacketKind.DATA:
            self._arrived_bytes += pkt.wire_bytes
        elif pkt.kind != PacketKind.CONTROL:
            return
        if pkt.rcp_rate is None or self.rate_bps < pkt.rcp_rate:
            pkt.rcp_rate = self.rate_bps

    def _update(self) -> None:
        interval_s = self.avg_rtt_ps / SEC
        y_bps = self._arrived_bytes * 8 / interval_s
        self._arrived_bytes = 0
        q_bits = self.port.data_queue.bytes * 8
        # d is the average RTT of flows through this link *including* their
        # queueing delay here — standing backlog stretches the drain target
        # (classic RCP uses the moving average of measured RTTs).
        d_s = self.avg_rtt_ps / SEC + q_bits / self.capacity_bps
        delta = (interval_s / d_s) * (
            self.alpha * (self.capacity_bps - y_bps) - self.beta * q_bits / d_s
        ) / self.capacity_bps
        self.rate_bps *= 1 + delta
        self.rate_bps = min(max(self.rate_bps, self.min_rate_bps), self.capacity_bps)
        self.sim.schedule(self.avg_rtt_ps, self._update)


def install_rcp(sim: Simulator, ports: Iterable[Port], avg_rtt_ps: int,
                alpha: float = 0.4, beta: float = 1.0) -> list:
    """Attach an RCP controller to every port; returns the controllers."""
    controllers = []
    for port in ports:
        controller = RcpLinkController(sim, port, avg_rtt_ps, alpha, beta)
        port.rcp_controller = controller
        controllers.append(controller)
    return controllers


class RcpFlow(RateFlow):
    """An RCP sender: paces at the path's stamped rate, echoed via ACKs."""

    def __init__(self, src, dst, size_bytes, start_ps=0, *,
                 initial_rate_bps: Optional[float] = None, **kwargs):
        # Until the first feedback arrives, send at the NIC line rate: RCP
        # flows inherit the link's current rate within one RTT anyway, and
        # the paper's incast failure mode depends on this aggressive start.
        if initial_rate_bps is None:
            initial_rate_bps = float(src.nic.rate_bps)
        super().__init__(src, dst, size_bytes, start_ps,
                         initial_rate_bps=initial_rate_bps, **kwargs)

    def cc_on_ack(self, pkt: Packet) -> None:
        if pkt.rcp_rate is not None:
            self.rate_bps = pkt.rcp_rate

"""Loss-based TCP baselines: Reno and CUBIC (used in Fig 2)."""

from __future__ import annotations

from typing import Optional

from repro.sim.units import SEC
from repro.transport.base import WindowFlow


class RenoFlow(WindowFlow):
    """TCP New-Reno-style congestion control.

    Slow start doubles per RTT until ``ssthresh``; congestion avoidance adds
    one segment per RTT; duplicate-ACK loss halves the window; a timeout
    collapses it to one segment.
    """

    init_cwnd = 2.0

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.ssthresh = float("inf")

    def cc_on_ack(self, newly_acked, ecn_echo, rtt_sample_ps) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked  # slow start
        else:
            self.cwnd += newly_acked / self.cwnd  # congestion avoidance

    def cc_on_dupack_loss(self) -> None:
        self.ssthresh = max(self.cwnd / 2, self.min_cwnd)
        self.cwnd = self.ssthresh

    def cc_on_timeout(self) -> None:
        self.ssthresh = max(self.cwnd / 2, self.min_cwnd)
        self.cwnd = self.min_cwnd


class CubicFlow(WindowFlow):
    """TCP CUBIC: window grows as C·(t − K)³ + W_max since the last loss.

    Parameters follow the CUBIC paper: C = 0.4, β = 0.7 (multiplicative
    decrease keeps 70 % of the window).  During slow start it behaves like
    Reno until the first loss event.
    """

    init_cwnd = 2.0
    C = 0.4  # scaling constant (segments / s^3)
    BETA = 0.7

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.ssthresh = float("inf")
        self._w_max = 0.0
        self._epoch_start_ps: Optional[int] = None
        self._k_seconds = 0.0

    def _cubic_window(self) -> float:
        t = (self.sim.now - self._epoch_start_ps) / SEC
        return self.C * (t - self._k_seconds) ** 3 + self._w_max

    def cc_on_ack(self, newly_acked, ecn_echo, rtt_sample_ps) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked
            return
        if self._epoch_start_ps is None:
            self._epoch_start_ps = self.sim.now
            self._w_max = max(self._w_max, self.cwnd)
            self._k_seconds = ((self._w_max * (1 - self.BETA)) / self.C) ** (1 / 3)
        target = self._cubic_window()
        if target > self.cwnd:
            # Approach the cubic target within roughly one RTT.
            self.cwnd += (target - self.cwnd) / max(self.cwnd, 1.0) * newly_acked
        else:
            self.cwnd += newly_acked / (100.0 * self.cwnd)  # TCP-friendly probe

    def _on_loss(self) -> None:
        self._w_max = self.cwnd
        self.cwnd = max(self.cwnd * self.BETA, self.min_cwnd)
        self.ssthresh = self.cwnd
        self._epoch_start_ps = self.sim.now
        self._k_seconds = ((self._w_max * (1 - self.BETA)) / self.C) ** (1 / 3)

    def cc_on_dupack_loss(self) -> None:
        self._on_loss()

    def cc_on_timeout(self) -> None:
        self._on_loss()
        self.cwnd = self.min_cwnd

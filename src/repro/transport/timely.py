"""TIMELY (Mittal et al., SIGCOMM 2015) — RTT-gradient rate control.

The other deployed RDMA congestion control the paper positions against
(§8): no switch support at all; the NIC measures RTT with sub-microsecond
precision and adjusts a pacing rate from the *gradient* of the RTT:

* RTT < T_low  → additive increase (the queue is empty; grab bandwidth).
* RTT > T_high → multiplicative decrease ∝ (1 − T_high/RTT) (hard brake).
* otherwise    → gradient mode: a normalized smoothed RTT slope; negative
  slope → additive increase (with hyperactive increase after ``hai_n``
  consecutive ones), positive slope → rate *= (1 − β·gradient).

Like DCQCN it is usually deployed over PFC (:mod:`repro.net.pfc`); without
PFC the reliability machinery of :class:`~repro.transport.base.RateFlow`
recovers any losses.
"""

from __future__ import annotations

from repro.net.packet import Packet, PacketKind
from repro.sim.units import US
from repro.transport.base import RateFlow


class TimelyFlow(RateFlow):
    """A TIMELY rate-controlled sender."""

    def __init__(self, src, dst, size_bytes, start_ps=0, *,
                 t_low_ps: int = 50 * US,
                 t_high_ps: int = 500 * US,
                 additive_bps: float = 10e6,
                 beta: float = 0.8,
                 ewma_alpha: float = 0.3,
                 hai_n: int = 5,
                 min_rtt_hint_ps: int = 20 * US,
                 **kwargs):
        kwargs.setdefault("initial_rate_bps", float(src.nic.rate_bps) / 10)
        super().__init__(src, dst, size_bytes, start_ps, **kwargs)
        self.t_low_ps = t_low_ps
        self.t_high_ps = t_high_ps
        self.additive_bps = additive_bps
        self.beta = beta
        self.ewma_alpha = ewma_alpha
        self.hai_n = hai_n
        self.min_rtt_ps = min_rtt_hint_ps  # normalization for the gradient
        self._prev_rtt_ps = None
        self._rtt_diff_ps = 0.0
        self._consecutive_increases = 0
        self.decreases = 0
        self.increases = 0

    def cc_on_ack(self, pkt: Packet) -> None:
        if pkt.kind != PacketKind.ACK or pkt.sent_ts < 0:
            return
        rtt = self.sim.now - pkt.sent_ts
        if rtt < self.min_rtt_ps:
            self.min_rtt_ps = rtt
        self._update_rate(rtt)

    def _update_rate(self, rtt_ps: int) -> None:
        line_rate = float(self.src.nic.rate_bps)
        if self._prev_rtt_ps is None:
            self._prev_rtt_ps = rtt_ps
            return
        new_diff = rtt_ps - self._prev_rtt_ps
        self._prev_rtt_ps = rtt_ps
        self._rtt_diff_ps = ((1 - self.ewma_alpha) * self._rtt_diff_ps
                             + self.ewma_alpha * new_diff)
        gradient = self._rtt_diff_ps / self.min_rtt_ps

        if rtt_ps < self.t_low_ps:
            self._increase(line_rate, hyper=False)
        elif rtt_ps > self.t_high_ps:
            self.rate_bps = max(
                self.rate_bps * (1 - self.beta * (1 - self.t_high_ps / rtt_ps)),
                1e7)
            self._consecutive_increases = 0
            self.decreases += 1
            self.rate_changed()
        elif gradient <= 0:
            hyper = self._consecutive_increases >= self.hai_n
            self._increase(line_rate, hyper=hyper)
        else:
            self.rate_bps = max(
                self.rate_bps * (1 - self.beta * min(gradient, 1.0)), 1e7)
            self._consecutive_increases = 0
            self.decreases += 1
            self.rate_changed()

    def _increase(self, line_rate: float, hyper: bool) -> None:
        step = self.additive_bps * (self.hai_n if hyper else 1)
        self.rate_bps = min(self.rate_bps + step, line_rate)
        self._consecutive_increases += 1
        self.increases += 1

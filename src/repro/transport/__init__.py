"""Transport protocols: the paper's baselines plus shared flow machinery.

* :mod:`repro.transport.base` — flow lifecycle, reliable windowed transfer,
  paced rate-based transfer.
* :mod:`repro.transport.tcp` — TCP Reno and CUBIC (Fig 2).
* :mod:`repro.transport.dctcp` — DCTCP (ECN fraction feedback).
* :mod:`repro.transport.rcp` — RCP explicit per-link rates.
* :mod:`repro.transport.hull` — HULL (phantom queues + paced DCTCP).
* :mod:`repro.transport.dx` — DX (delay-based feedback).
* :mod:`repro.transport.ideal` — hypothetical oracle rate control (Fig 1a).

ExpressPass itself — the paper's contribution — lives in :mod:`repro.core`.
"""

from repro.transport.base import Flow, RateFlow, WindowFlow
from repro.transport.tcp import CubicFlow, RenoFlow
from repro.transport.dctcp import DctcpFlow, dctcp_marking_threshold_bytes
from repro.transport.rcp import RcpFlow, RcpLinkController, install_rcp
from repro.transport.hull import HullFlow, install_phantom_queues
from repro.transport.dx import DxFlow
from repro.transport.dcqcn import DcqcnFlow, install_dcqcn_marking
from repro.transport.timely import TimelyFlow
from repro.transport.ideal import IdealFlow, OracleRateController

__all__ = [
    "Flow",
    "WindowFlow",
    "RateFlow",
    "RenoFlow",
    "CubicFlow",
    "DctcpFlow",
    "dctcp_marking_threshold_bytes",
    "RcpFlow",
    "RcpLinkController",
    "install_rcp",
    "HullFlow",
    "install_phantom_queues",
    "DxFlow",
    "DcqcnFlow",
    "install_dcqcn_marking",
    "TimelyFlow",
    "IdealFlow",
    "OracleRateController",
]

"""DCQCN (Zhu et al., SIGCOMM 2015) — ECN-based rate control for RDMA.

The paper discusses DCQCN as the deployed RDMA congestion control it aims
to replace (§8).  Mechanics reproduced here:

* **Switch**: RED-style probabilistic ECN marking between K_min and K_max
  (``DataQueue.set_red_marking``), typically with PFC underneath for
  losslessness (:mod:`repro.net.pfc`).
* **Receiver (NP)**: on receiving a marked packet, returns a CNP
  (congestion notification packet) at most once per ``cnp_interval``.
* **Sender (RP)**: on CNP, saves the target rate and cuts the current rate
  by ``alpha/2``; ``alpha`` is an EWMA of congestion.  Without CNPs it
  recovers in stages: *fast recovery* (current rate halves its distance to
  the target a few times), then *additive increase* of the target, then
  *hyper increase* — per the published state machine, simplified to the
  byte-counter-free timer form.
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import Packet, PacketKind
from repro.net.port import Port
from repro.sim.units import MS, US
from repro.transport.base import RateFlow


def install_dcqcn_marking(ports, kmin_bytes: int = 5 * 1538,
                          kmax_bytes: int = 200 * 1538,
                          pmax: float = 0.01, sim=None) -> None:
    """Configure RED/ECN marking on every port (DCQCN's switch half)."""
    for port in ports:
        rng = (sim or port.sim).rng("dcqcn-red")
        port.data_queue.set_red_marking(kmin_bytes, kmax_bytes, pmax, rng)


class DcqcnFlow(RateFlow):
    """A DCQCN rate-controlled sender (RP) + CNP-generating receiver (NP)."""

    #: ECN-capable data so switches can mark it.
    CNP_WIRE_BYTES = 84

    def __init__(self, src, dst, size_bytes, start_ps=0, *,
                 g: float = 1 / 16,
                 rate_ai_bps: float = 40e6,
                 rate_hai_bps: float = 400e6,
                 cnp_interval_ps: int = 50 * US,
                 recovery_period_ps: int = 55 * US,
                 fast_recovery_stages: int = 5,
                 **kwargs):
        kwargs.setdefault("initial_rate_bps", float(src.nic.rate_bps))
        super().__init__(src, dst, size_bytes, start_ps, **kwargs)
        self.g = g
        self.alpha = 1.0
        self.rate_target_bps = self.rate_bps
        self.rate_ai_bps = rate_ai_bps
        self.rate_hai_bps = rate_hai_bps
        self.cnp_interval_ps = cnp_interval_ps
        self.recovery_period_ps = recovery_period_ps
        self.fast_recovery_stages = fast_recovery_stages
        self.cnps_received = 0
        self._stage = 0  # recovery stages completed since last CNP
        self._last_cnp_tx_ps = -(1 << 62)  # receiver-side CNP throttle
        self._alpha_timer = None
        self._recovery_timer = self.sim.schedule_at(
            max(start_ps, self.sim.now) + recovery_period_ps,
            self._recovery_tick)

    # ---------------------------------------------------------------- sender
    ecn_capable = True  # switches may mark our data

    def _on_cnp(self) -> None:
        self.cnps_received += 1
        self.alpha = (1 - self.g) * self.alpha + self.g
        self.rate_target_bps = self.rate_bps
        self.rate_bps = max(self.rate_bps * (1 - self.alpha / 2), 1e7)
        self._stage = 0
        self.rate_changed()
        self._arm_alpha_decay()

    def _arm_alpha_decay(self) -> None:
        if self._alpha_timer is not None:
            self._alpha_timer.cancel()
        self._alpha_timer = self.sim.schedule(self.recovery_period_ps,
                                              self._alpha_decay)

    def _alpha_decay(self) -> None:
        self._alpha_timer = None
        self.alpha *= (1 - self.g)
        if self.alpha > 1e-3 and not self._stopped:
            self._arm_alpha_decay()

    def _recovery_tick(self) -> None:
        self._recovery_timer = None
        if self._stopped or self.completed:
            return
        line_rate = float(self.src.nic.rate_bps)
        if self._stage < self.fast_recovery_stages:
            # Fast recovery: close half the gap to the target each period.
            self.rate_bps = (self.rate_bps + self.rate_target_bps) / 2
        elif self._stage < 2 * self.fast_recovery_stages:
            self.rate_target_bps = min(self.rate_target_bps + self.rate_ai_bps,
                                       line_rate)
            self.rate_bps = (self.rate_bps + self.rate_target_bps) / 2
        else:
            self.rate_target_bps = min(self.rate_target_bps + self.rate_hai_bps,
                                       line_rate)
            self.rate_bps = (self.rate_bps + self.rate_target_bps) / 2
        self._stage += 1
        self.rate_bps = min(self.rate_bps, line_rate)
        self.rate_changed()
        self._recovery_timer = self.sim.schedule(self.recovery_period_ps,
                                                 self._recovery_tick)

    def stop(self) -> None:
        super().stop()
        for event in (self._recovery_timer, self._alpha_timer):
            if event is not None:
                event.cancel()

    # -------------------------------------------------------------- receiver
    def _at_receiver(self, pkt: Packet) -> None:
        if (pkt.kind == PacketKind.DATA and pkt.ecn_marked
                and self.sim.now - self._last_cnp_tx_ps >= self.cnp_interval_ps):
            self._last_cnp_tx_ps = self.sim.now
            cnp = Packet(PacketKind.CONTROL, self.dst.id, self.src.id,
                         flow=self, credit_seq=-99,
                         wire_bytes=self.CNP_WIRE_BYTES)
            self.dst.send(cnp)
        super()._at_receiver(pkt)

    def _at_sender(self, pkt: Packet) -> None:
        if pkt.kind == PacketKind.CONTROL and pkt.credit_seq == -99:
            self._on_cnp()
            return
        super()._at_sender(pkt)

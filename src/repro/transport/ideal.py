"""The hypothetical *ideal* rate control of §2 (Fig 1a).

An omniscient oracle instantly assigns every flow its max-min fair share
(progressive water-filling over the flows' actual paths) whenever any flow
starts or finishes, and every sender paces perfectly at its assigned rate.
The point of the experiment: even this ideal still builds a queue that grows
with the number of flows, because independently paced flows collide at the
bottleneck — only credit scheduling bounds it.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.net.host import Host
from repro.net.packet import DATA_WIRE_MAX, Packet
from repro.net.port import Port
from repro.transport.base import Flow, RateFlow


def compute_path_ports(flow: Flow) -> List[Port]:
    """The egress ports a data packet of ``flow`` traverses, in order.

    Walks the same routing tables and ECMP hash the switches use, so the
    result is exactly the path the packets will take.
    """
    probe = Packet(kind=0, src=flow.src.id, dst=flow.dst.id, flow=flow)
    path: List[Port] = []
    node = flow.src
    hop_budget = 64
    while node.id != flow.dst.id:
        if hasattr(node, "table"):  # switch
            candidates = node.table[flow.dst.id]
            next_hop = (candidates[0] if len(candidates) == 1
                        else candidates[flow.path_hash(probe) % len(candidates)])
            port = node.ports[next_hop]
        else:  # host: single NIC
            port = node.nic
        path.append(port)
        node = port.peer
        hop_budget -= 1
        if hop_budget <= 0:  # pragma: no cover - routing bug guard
            raise RuntimeError("routing loop while tracing path")
    return path


def max_min_rates(flows_paths: Dict[Flow, List[Port]],
                  capacity_fraction: float = 1.0) -> Dict[Flow, float]:
    """Progressive-filling max-min allocation in bits/s.

    ``capacity_fraction`` discounts link capacity (e.g. 0.95 to leave ACK or
    credit headroom).
    """
    remaining: Dict[Port, float] = {}
    port_flows: Dict[Port, Set[Flow]] = {}
    for flow, path in flows_paths.items():
        for port in path:
            remaining.setdefault(port, port.rate_bps * capacity_fraction)
            port_flows.setdefault(port, set()).add(flow)
    rates: Dict[Flow, float] = {}
    unfrozen: Set[Flow] = set(flows_paths)
    while unfrozen:
        # The tightest port determines the next freezing level.
        best_port, best_share = None, float("inf")
        for port, members in port_flows.items():
            active = members & unfrozen
            if not active:
                continue
            share = remaining[port] / len(active)
            if share < best_share:
                best_share, best_port = share, port
        if best_port is None:
            for flow in unfrozen:  # flows with no constrained port
                rates[flow] = float("inf")
            break
        newly_frozen = port_flows[best_port] & unfrozen
        for flow in newly_frozen:
            rates[flow] = best_share
            unfrozen.discard(flow)
            for port in flows_paths[flow]:
                remaining[port] -= best_share
        del port_flows[best_port]
    return rates


class OracleRateController:
    """Tracks active :class:`IdealFlow` s and re-runs water-filling on churn."""

    def __init__(self, capacity_fraction: float = 0.98):
        # A small headroom keeps the bottleneck from being overdriven by
        # wire-size rounding; the paper's ideal sender is loss-free too.
        self.capacity_fraction = capacity_fraction
        self._flows: Dict[Flow, List[Port]] = {}

    def register(self, flow: "IdealFlow") -> None:
        self._flows[flow] = compute_path_ports(flow)
        self._reassign()

    def unregister(self, flow: "IdealFlow") -> None:
        self._flows.pop(flow, None)
        self._reassign()

    def _reassign(self) -> None:
        for flow, rate in max_min_rates(self._flows, self.capacity_fraction).items():
            flow.rate_bps = rate
            flow.rate_changed()


class IdealFlow(RateFlow):
    """A sender paced at the oracle's current assignment."""

    def __init__(self, src: Host, dst: Host, size_bytes, start_ps=0, *,
                 oracle: OracleRateController, **kwargs):
        super().__init__(src, dst, size_bytes, start_ps,
                         initial_rate_bps=1.0, **kwargs)
        self.oracle = oracle
        self.on_complete.append(lambda f: oracle.unregister(f))

    def begin(self) -> None:
        self.oracle.register(self)
        super().begin()

"""DCTCP (Alizadeh et al., SIGCOMM 2010).

Switch side: instantaneous-queue ECN marking at threshold K (configured via
``LinkSpec.ecn_threshold_bytes``; :func:`dctcp_marking_threshold_bytes` gives
the paper-recommended K for a link speed).  Sender side: the fraction of
marked packets per window feeds an EWMA ``alpha``; once per window the
congestion window shrinks by ``alpha / 2``.

The ExpressPass paper's footnote 4 uses K = 65 packets (10 G, g = 0.0625)
and K = 650 packets (100 G, g = 0.01976); we reproduce those defaults,
scaling linearly in link rate.
"""

from __future__ import annotations

from repro.net.packet import DATA_WIRE_MAX
from repro.sim.units import GBPS
from repro.transport.base import WindowFlow


def dctcp_marking_threshold_bytes(link_rate_bps: int) -> int:
    """Paper footnote 4: K = 65 packets at 10 Gbit/s, linear in rate."""
    packets = max(1, round(65 * link_rate_bps / (10 * GBPS)))
    return packets * DATA_WIRE_MAX


def dctcp_gain(link_rate_bps: int) -> float:
    """Paper footnote 4: g = 0.0625 at 10 G, 0.01976 at 100 G.

    g scales like 1/sqrt(K); we interpolate that way between the two
    published anchors.
    """
    return min(0.4, 0.0625 * (10 * GBPS / link_rate_bps) ** 0.5)


class DctcpFlow(WindowFlow):
    """DCTCP sender.  ``g`` defaults to the 10 G setting."""

    ecn_capable = True
    init_cwnd = 2.0
    min_cwnd = 2.0  # Linux DCTCP floors the window at 2 segments

    def __init__(self, *args, g: float = 0.0625, **kwargs):
        super().__init__(*args, **kwargs)
        self.g = g
        self.alpha = 1.0  # start conservative, as in the DCTCP paper
        self.ssthresh = float("inf")
        self._cut_this_round = False

    def cc_on_ack(self, newly_acked, ecn_echo, rtt_sample_ps) -> None:
        if newly_acked <= 0:
            return
        if ecn_echo and not self._cut_this_round:
            # React at most once per window of data (standard DCTCP).
            self.cwnd = max(self.cwnd * (1 - self.alpha / 2), self.min_cwnd)
            self.ssthresh = self.cwnd
            self._cut_this_round = True
        elif not ecn_echo:
            if self.cwnd < self.ssthresh:
                self.cwnd += newly_acked
            else:
                self.cwnd += newly_acked / self.cwnd

    def cc_on_round(self, acks, marks, avg_rtt_ps) -> None:
        if acks > 0:
            fraction = marks / acks
            self.alpha = (1 - self.g) * self.alpha + self.g * fraction
        self._cut_this_round = False

    def cc_on_dupack_loss(self) -> None:
        self.ssthresh = max(self.cwnd / 2, self.min_cwnd)
        self.cwnd = self.ssthresh

    def cc_on_timeout(self) -> None:
        self.ssthresh = max(self.cwnd / 2, self.min_cwnd)
        self.cwnd = self.min_cwnd

"""DX (Lee et al., USENIX ATC 2015): latency-based congestion feedback.

DX measures per-packet queueing delay with sub-microsecond accuracy and runs
a window controller that targets *zero* standing queue: when the average
queueing delay over a window is (near) zero, the window grows by one segment
per RTT; otherwise it decreases proportionally to the measured delay.

Substitution note (recorded in DESIGN.md): the original computes one-way
queueing delay from NIC hardware timestamps.  The simulator measures RTT
exactly, so queueing delay = RTT − base RTT (minimum RTT ever observed),
and the decrease uses DX's published form::

    new_cwnd = cwnd * (1 - Q / (Q + V)) + 1

with ``V`` an averaging headroom we set to the base RTT.  This preserves
DX's defining behaviour: near-empty queues and the least aggressive ramp of
all baselines (Fig 19/21, Table 3).
"""

from __future__ import annotations

from repro.sim.units import US
from repro.transport.base import WindowFlow


class DxFlow(WindowFlow):
    """Delay-based window control targeting zero queueing delay."""

    init_cwnd = 2.0

    def __init__(self, *args, delay_tolerance_ps: int = 2 * US, **kwargs):
        super().__init__(*args, **kwargs)
        self.delay_tolerance_ps = delay_tolerance_ps
        self._base_rtt_ps = None

    def cc_on_ack(self, newly_acked, ecn_echo, rtt_sample_ps) -> None:
        if rtt_sample_ps is not None:
            if self._base_rtt_ps is None or rtt_sample_ps < self._base_rtt_ps:
                self._base_rtt_ps = rtt_sample_ps

    def cc_on_round(self, acks, marks, avg_rtt_ps) -> None:
        if avg_rtt_ps is None or self._base_rtt_ps is None:
            return
        queueing = max(0.0, avg_rtt_ps - self._base_rtt_ps)
        if queueing <= self.delay_tolerance_ps:
            self.cwnd += 1
        else:
            headroom = float(self._base_rtt_ps)
            self.cwnd = max(
                self.cwnd * (1 - queueing / (queueing + headroom)) + 1,
                self.min_cwnd,
            )

    def cc_on_dupack_loss(self) -> None:
        self.cwnd = max(self.cwnd / 2, self.min_cwnd)

    def cc_on_timeout(self) -> None:
        self.cwnd = self.min_cwnd

"""repro.perf — hot-path performance layer for the event core and ports.

The substrate's speed budget is spent in three places: the event heap
(schedule/pop/cancel), the :class:`~repro.net.port.Port` transmitter cycle
(``_try_send``/``_transmit``/``_tx_done``), and per-packet bookkeeping.
This package centralises the tuning knobs for the optimisations that keep
those paths fast, plus an opt-in profiler (:mod:`repro.perf.profile`) that
shows where events go.

Every optimisation is **behaviour-preserving**: golden traces and
``events_processed`` are bit-identical with the features on or off
(``tests/test_perf.py`` asserts this).  The knobs exist so the determinism
tests can run both configurations and so a debugging session can rule the
fast paths out with one environment variable.

Knobs (module globals, seeded from the environment at import):

``COMPACT_MIN`` / ``COMPACT_RATIO``
    Lazy-deletion compaction: the scheduler rebuilds its heap in place once
    at least ``COMPACT_MIN`` cancelled entries have accumulated *and*
    cancelled entries outnumber live ones ``COMPACT_RATIO``-fold.  Bounds
    the heap at ~``(1 + COMPACT_RATIO) x live`` entries no matter how many
    timers are cancelled.  ``REPRO_NO_COMPACT=1`` disables.

``FREELIST_MAX``
    Events scheduled through :meth:`Simulator.schedule_unref` (fire-and-
    forget, no handle returned — transmit completions and wire deliveries)
    are recycled through a per-simulator freelist instead of being
    reallocated.  Only handle-less events are pooled, so a stale reference
    can never cancel a recycled event.  ``REPRO_NO_FREELIST=1`` disables.

``FASTPATH_ENABLED``
    Ports precompute a flags word over their optional attachments
    (``phantom``/``rcp_controller``/``pfc``/hooks/...) and take a branch-
    free transmit path while the word is zero.  ``REPRO_NO_FASTPATH=1``
    forces the fully-checked path for every port created afterwards.
"""

from __future__ import annotations

import os


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "") in ("1", "true")


#: Minimum cancelled-entry count before heap compaction is considered
#: (0 disables compaction entirely).
COMPACT_MIN: int = 0 if _env_flag("REPRO_NO_COMPACT") else 256
#: Compact when cancelled entries exceed live entries by this factor.
COMPACT_RATIO: int = 1
#: Cap on recycled Event objects per simulator (0 disables the freelist).
FREELIST_MAX: int = 0 if _env_flag("REPRO_NO_FREELIST") else 1024
#: Ports take the flags-word fast path when True (checked at Port creation).
FASTPATH_ENABLED: bool = not _env_flag("REPRO_NO_FASTPATH")

__all__ = [
    "COMPACT_MIN", "COMPACT_RATIO", "FREELIST_MAX", "FASTPATH_ENABLED",
]

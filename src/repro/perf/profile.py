"""Opt-in simulation profiler: where do the events go?

The profiler rides the run loop itself (``Simulator._run_profiled``): every
fired callback is **counted** by ``(module, qualname)``, and every Nth one is
additionally **wall-clock timed** (``sample_every``, default 32).  Counting
is exact; timing is sampled so the overhead stays low and — crucially — the
simulation is bit-identical with the profiler on or off, because the
profiler only observes.

Three ways in:

* ``python -m repro profile fig10`` (or ``run fig10 --profile``) prints the
  experiment's table as usual plus a profile report on stderr.
* ``REPRO_PROFILE=1`` / ``RuntimeConfig(profile=True)`` makes every sweep
  task profile its own simulations — in its worker process when parallel —
  and ship a plain-dict summary back on :class:`TaskResult.profile`.
* Programmatic::

      from repro.perf import profile
      with profile.profiled() as session:
          run_experiment()
      print(session.report.format())

Attachment is ambient: a session installs :data:`repro.sim.engine
.on_simulator_created` and hangs a fresh :class:`Profiler` on every
simulator built while it is active.  Sessions nest (a sweep task profiling
inside a profiled CLI run): the innermost session claims the simulator, so
no event is ever double-counted; the outer session folds the inner's
summary back in through :func:`record_task_summary`.
"""

from __future__ import annotations

import contextlib
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim import engine

#: Default sampling stride: one precise timing per this many fired events.
DEFAULT_SAMPLE_EVERY = 32

#: Callback identity used for aggregation.
Key = Tuple[str, str]  # (module, qualname)


def _subsystem(module: str) -> str:
    """Aggregation bucket for a callback's module.

    ``repro.net.port`` -> ``net``; ``repro.sim.engine`` -> ``sim``;
    anything outside the package keeps its top-level name.
    """
    parts = module.split(".")
    if parts[0] == "repro" and len(parts) > 1:
        return parts[1]
    return parts[0]


class Profiler:
    """Per-simulator event counters plus sampled callback timings.

    The run loop calls :meth:`fire` for every live event and
    :meth:`on_cancelled_reaped` for every cancelled entry it discards, so
    ``events + reaped`` accounts for every heap pop.
    """

    __slots__ = ("sample_every", "events", "reaped", "samples", "counts",
                 "_tick")

    def __init__(self, sample_every: int = DEFAULT_SAMPLE_EVERY):
        self.sample_every = max(1, int(sample_every))
        self.events = 0
        self.reaped = 0
        self.samples = 0
        #: key -> [fire count, sampled seconds, sample count]
        self.counts: Dict[Key, list] = {}
        self._tick = 0

    def fire(self, fn, args) -> None:
        """Invoke ``fn(*args)``, counting it and sometimes timing it."""
        key = (getattr(fn, "__module__", None) or "?",
               getattr(fn, "__qualname__", None) or repr(fn))
        cell = self.counts.get(key)
        if cell is None:
            cell = self.counts[key] = [0, 0.0, 0]
        cell[0] += 1
        self.events += 1
        self._tick += 1
        if self._tick >= self.sample_every:
            self._tick = 0
            t0 = perf_counter()
            fn(*args)
            cell[1] += perf_counter() - t0
            cell[2] += 1
            self.samples += 1
        else:
            fn(*args)

    def on_cancelled_reaped(self) -> None:
        """A cancelled heap entry was popped and discarded."""
        self.reaped += 1


class ProfileReport:
    """Aggregate over one or more profilers (or shipped task summaries)."""

    def __init__(self):
        self.events = 0
        self.reaped = 0
        self.samples = 0
        self.simulators = 0
        self.wall_s = 0.0
        self.counts: Dict[Key, list] = {}

    # -- accumulation ------------------------------------------------------
    def _merge_counts(self, counts: Dict[Key, list]) -> None:
        mine = self.counts
        for key, (n, secs, m) in counts.items():
            cell = mine.get(key)
            if cell is None:
                mine[key] = [n, secs, m]
            else:
                cell[0] += n
                cell[1] += secs
                cell[2] += m

    def add_profiler(self, prof: Profiler) -> None:
        self.events += prof.events
        self.reaped += prof.reaped
        self.samples += prof.samples
        self.simulators += 1
        self._merge_counts(prof.counts)

    def add_summary(self, summary: dict) -> None:
        """Fold in a plain-dict summary shipped from a (worker) task."""
        self.events += summary.get("events", 0)
        self.reaped += summary.get("reaped", 0)
        self.samples += summary.get("samples", 0)
        self.simulators += summary.get("simulators", 0)
        self._merge_counts({
            (mod, qual): [n, secs, m]
            for mod, qual, n, secs, m in summary.get("callbacks", ())
        })

    # -- views -------------------------------------------------------------
    def by_subsystem(self) -> Dict[str, int]:
        """Fired-event counts bucketed per subsystem, descending."""
        out: Dict[str, int] = {}
        for (module, _), (n, _, _) in self.counts.items():
            bucket = _subsystem(module)
            out[bucket] = out.get(bucket, 0) + n
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def top_callbacks(self, limit: int = 10) -> List[tuple]:
        """``(qualname, count, est_seconds)`` rows, by count, descending.

        ``est_seconds`` extrapolates the sampled timings to the full count
        (``None`` when a callback was never sampled).
        """
        rows = []
        for (_, qual), (n, secs, m) in self.counts.items():
            est = secs * (n / m) if m else None
            rows.append((qual, n, est))
        rows.sort(key=lambda r: -r[1])
        return rows[:limit]

    def as_dict(self) -> dict:
        """Picklable/JSON-able summary (the ``TaskResult.profile`` shape)."""
        return {
            "events": self.events,
            "reaped": self.reaped,
            "samples": self.samples,
            "simulators": self.simulators,
            "wall_s": self.wall_s,
            "callbacks": sorted(
                [mod, qual, n, secs, m]
                for (mod, qual), (n, secs, m) in self.counts.items()
            ),
        }

    def format(self, limit: int = 10) -> str:
        """Human-readable report (what the CLI prints to stderr)."""
        lines = []
        rate = f", {self.events / self.wall_s:,.0f} events/s" if self.wall_s else ""
        lines.append(
            f"repro.perf.profile: {self.events:,} events across "
            f"{self.simulators} simulator(s) in {self.wall_s:.3f} s{rate}")
        lines.append(
            f"  sampled {self.samples:,} callback timings,"
            f" reaped {self.reaped:,} cancelled entries")
        total = self.events or 1
        subsystems = self.by_subsystem()
        if subsystems:
            lines.append("  events by subsystem:")
            for name, n in subsystems.items():
                lines.append(f"    {name:<12s} {n:>12,}  {100 * n / total:5.1f}%")
        top = self.top_callbacks(limit)
        if top:
            lines.append(f"  top callbacks (by events fired):")
            for qual, n, est in top:
                t = f"~{est:.3f} s" if est is not None else "   (unsampled)"
                lines.append(
                    f"    {qual:<36s} {n:>12,}  {100 * n / total:5.1f}%  {t}")
        return "\n".join(lines)


class ProfileSession:
    """Ambiently profiles every simulator created while active."""

    def __init__(self, sample_every: int = DEFAULT_SAMPLE_EVERY):
        self.sample_every = sample_every
        self.profilers: List[Profiler] = []
        self.report: Optional[ProfileReport] = None
        self._prev_hook = None
        #: Pinned bound method: ``self._on_simulator`` is a fresh object on
        #: every attribute access, and :meth:`stop` compares by identity.
        self._hook = self._on_simulator
        self._t0: Optional[float] = None

    def _on_simulator(self, sim) -> None:
        # Chain the previous hook *first*: if an outer session (or a test
        # hook) is also active, the innermost session claims the simulator.
        prev = self._prev_hook
        if prev is not None:
            prev(sim)
        prof = Profiler(self.sample_every)
        sim.profiler = prof
        self.profilers.append(prof)

    def start(self) -> "ProfileSession":
        self._prev_hook = engine.on_simulator_created
        engine.on_simulator_created = self._hook
        self._t0 = perf_counter()
        return self

    def stop(self) -> ProfileReport:
        wall = perf_counter() - self._t0 if self._t0 is not None else 0.0
        if engine.on_simulator_created is self._hook:
            engine.on_simulator_created = self._prev_hook
        report = ProfileReport()
        for prof in self.profilers:
            report.add_profiler(prof)
        report.wall_s = wall
        self.report = report
        return report


# -- session-level aggregation of worker summaries ---------------------------
# Mirrors repro.audit's session banking: sweep tasks profile themselves in
# whatever process runs them; the scheduler ships the summary back and banks
# it here so the CLI can print one merged report.

_task_summaries: List[Tuple[str, dict]] = []


def record_task_summary(label: str, summary: dict) -> None:
    """Bank a task's profile summary on the session aggregate."""
    _task_summaries.append((label, summary))


def task_summaries() -> List[Tuple[str, dict]]:
    return list(_task_summaries)


def reset_task_summaries() -> None:
    _task_summaries.clear()


@contextlib.contextmanager
def profiled(sample_every: int = DEFAULT_SAMPLE_EVERY) -> Iterator[ProfileSession]:
    """Profile every simulation started inside the ``with`` block.

    ``session.report`` is populated when the block exits.
    """
    session = ProfileSession(sample_every).start()
    try:
        yield session
    finally:
        session.stop()

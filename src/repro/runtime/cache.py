"""Content-addressed on-disk result cache for experiment tasks.

Key = SHA-256 over ``(task identity, code fingerprint)`` where the task
identity is the function's qualified name plus a canonical rendering of its
kwargs (:func:`repro.runtime.task.task_id` — the seed is part of the kwargs),
and the code fingerprint hashes every ``.py`` source file of the ``repro``
package plus the task function's own module if it lives outside the package.
Any source edit therefore invalidates the whole cache — deliberately blunt:
correctness over cleverness, and a cold rerun of the CI-scale sweeps is
cheap compared to debugging a stale-cache artefact.

Entries are single pickle files ``<key>.pkl`` holding ``{"value", "task",
"elapsed_s"}``, written atomically (temp file + rename) so a crashed or
parallel writer can never leave a torn entry.  LRU state is the file mtime:
hits re-touch the file, and eviction (size or entry-count cap, whichever
trips first) removes oldest-touched entries.
"""

from __future__ import annotations

import contextlib
import functools
import hashlib
import json
import os
import pathlib
import pickle
import tempfile
import time
from typing import Any, Callable, Iterator, Optional, Tuple

from repro.resilience import selfchaos
from repro.runtime.task import TaskSpec

_SENTINEL = object()


@functools.lru_cache(maxsize=None)
def _package_fingerprint() -> str:
    """Hash of all repro package sources (computed once per process)."""
    import repro

    root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


@functools.lru_cache(maxsize=None)
def _module_fingerprint(module_file: str) -> str:
    digest = hashlib.sha256()
    try:
        digest.update(pathlib.Path(module_file).read_bytes())
    except OSError:
        digest.update(module_file.encode())
    return digest.hexdigest()


def code_fingerprint(fn: Optional[Callable] = None) -> str:
    """Fingerprint of the code a task's result depends on."""
    parts = [_package_fingerprint()]
    if fn is not None:
        import repro
        import sys

        module = sys.modules.get(getattr(fn, "__module__", ""), None)
        module_file = getattr(module, "__file__", None)
        if module_file:
            pkg_root = str(pathlib.Path(repro.__file__).parent)
            if not str(pathlib.Path(module_file)).startswith(pkg_root):
                parts.append(_module_fingerprint(module_file))
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


class ResultCache:
    """Directory of pickled task results with LRU-capped size."""

    #: :meth:`put` runs :meth:`evict` — an O(entries) directory stat scan —
    #: on the first put of the instance's lifetime (bounding growth left
    #: behind by earlier processes) and then once every this-many puts, so
    #: eviction amortizes to O(1) per put instead of going quadratic over a
    #: matrix sweep.  The caps can be overshot by at most ``_EVICT_EVERY - 1``
    #: entries between scans; an explicit :meth:`evict` is always exact.
    _EVICT_EVERY = 32

    #: Hygiene counters persisted (best-effort) in ``counters.json`` next to
    #: the entries, so ``repro cache stats`` sees events from past processes.
    _COUNTER_KEYS = ("torn_pruned", "eviction_scans_skipped",
                     "eviction_lock_busy")

    #: An eviction lock older than this is presumed orphaned (its holder
    #: crashed between O_EXCL and unlink) and taken over.
    _LOCK_STALE_S = 120.0

    def __init__(
        self,
        directory: pathlib.Path,
        max_bytes: int = 512 * 1024 * 1024,
        max_entries: int = 4096,
    ):
        self.directory = pathlib.Path(directory)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._puts_until_evict = 0
        self._unflushed = {k: 0 for k in self._COUNTER_KEYS}

    # -- keys ---------------------------------------------------------------

    def key_for(self, spec: TaskSpec) -> str:
        payload = spec.identity + "\n" + code_fingerprint(spec.fn)
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.pkl"

    # -- get / put ----------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``.  A corrupt entry counts as a miss and is removed."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
            value = entry["value"]
        except (OSError, pickle.UnpicklingError, EOFError, KeyError,
                AttributeError, ImportError, IndexError, ValueError,
                TypeError, UnicodeDecodeError):
            # Truncated or garbage bytes surface as almost any of the above
            # (ValueError/TypeError/UnicodeDecodeError come from torn opcode
            # arguments, not just UnpicklingError) — all of them mean the
            # entry is unusable, so prune it and report a miss.
            if path.exists():
                try:
                    path.unlink()
                except OSError:
                    pass
                self._bump("torn_pruned", flush=True)
            return False, None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return True, value

    def put(self, key: str, value: Any, task: str = "",
            elapsed_s: float = 0.0) -> bool:
        """Store a result; returns False if the value is unpicklable."""
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {"value": value, "task": task, "elapsed_s": elapsed_s}
        try:
            blob = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        if selfchaos.armed() and selfchaos.fire("cache:torn"):
            # Crash-mid-write simulation: a torn blob still lands on disk
            # (atomically, ironically) so get() must prune it as corrupt.
            blob = blob[:max(1, len(blob) // 3)]
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                if selfchaos.armed() and selfchaos.fire("cache:enospc"):
                    raise selfchaos.enospc()
                fh.write(blob)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self._puts_until_evict -= 1
        if self._puts_until_evict < 0:
            self.evict()
            self._puts_until_evict = self._EVICT_EVERY - 1
            self._flush_counters()
        else:
            self._bump("eviction_scans_skipped")
        return True

    # -- hygiene counters ---------------------------------------------------

    def _counters_path(self) -> pathlib.Path:
        return self.directory / "counters.json"

    def _load_counters(self) -> dict:
        """Persisted totals from the sidecar (zeros if absent/corrupt)."""
        try:
            data = json.loads(self._counters_path().read_text())
            return {k: int(data.get(k, 0)) for k in self._COUNTER_KEYS}
        except (OSError, ValueError, TypeError, AttributeError):
            return {k: 0 for k in self._COUNTER_KEYS}

    def _bump(self, name: str, flush: bool = False) -> None:
        self._unflushed[name] += 1
        if flush:
            self._flush_counters()

    def _flush_counters(self) -> None:
        """Fold in-memory deltas into the sidecar (atomic, best-effort).

        Flushed on torn-entry prunes (rare) and alongside each amortized
        eviction scan — never per put.  Concurrent writers can lose each
        other's deltas; the counters are best-effort diagnostics, not
        accounting.
        """
        if not any(self._unflushed.values()):
            return
        totals = self._load_counters()
        for key in self._COUNTER_KEYS:
            totals[key] += self._unflushed[key]
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "w") as fh:
                json.dump(totals, fh, sort_keys=True)
            os.replace(tmp, self._counters_path())
        except OSError:
            return
        self._unflushed = {k: 0 for k in self._COUNTER_KEYS}

    def counters(self) -> dict:
        """Persisted totals plus any deltas not yet flushed."""
        totals = self._load_counters()
        for key in self._COUNTER_KEYS:
            totals[key] += self._unflushed[key]
        return totals

    # -- cross-process eviction lock -----------------------------------------

    def _lock_path(self) -> pathlib.Path:
        return self.directory / "evict.lock"

    @contextlib.contextmanager
    def _eviction_lock(self) -> Iterator[bool]:
        """Best-effort cross-process mutex around destructive scans.

        Two simultaneous matrix runs sharing a cache directory must not
        race LRU eviction: run A's scan could delete the entry run B just
        wrote (B re-touched it *after* A statted).  An ``O_EXCL`` lockfile
        serialises the scans; a lock whose mtime is older than
        ``_LOCK_STALE_S`` is a crashed holder's orphan and is broken.
        Yields False (caller skips the scan) when the lock is genuinely
        held — eviction is amortized hygiene, deferring it is always safe.
        """
        path = self._lock_path()
        acquired = False
        for attempt in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                with os.fdopen(fd, "w") as fh:
                    fh.write(f"pid={os.getpid()}\n")
                acquired = True
                break
            except FileExistsError:
                try:
                    st = path.stat()
                except OSError:
                    continue  # holder just released: retry once
                if time.time() - st.st_mtime <= self._LOCK_STALE_S:
                    break
                # Stale takeover.  Two racers may both have observed the
                # orphan; a bare unlink here could remove the *fresh* lock
                # the other racer just created after its own takeover.  So:
                # re-stat to confirm the path is still the inode we judged
                # stale, rename it aside (only one renamer wins the inode),
                # and unlink the renamed orphan — never ``path`` itself.
                aside = path.with_name(f"{path.name}.stale.{os.getpid()}")
                try:
                    cur = path.stat()
                    if (cur.st_ino, cur.st_mtime) != (st.st_ino, st.st_mtime):
                        continue  # lock changed hands: retry the O_EXCL
                    os.rename(path, aside)
                except OSError:
                    continue  # another racer won the takeover: retry
                with contextlib.suppress(OSError):
                    aside.unlink()
            except OSError:
                break  # unwritable dir: proceed unlocked-skip
        try:
            yield acquired
        finally:
            if acquired:
                with contextlib.suppress(OSError):
                    path.unlink()

    # -- hygiene ------------------------------------------------------------

    def _entries(self):
        if not self.directory.is_dir():
            return []
        out = []
        for path in self.directory.glob("*.pkl"):
            try:
                st = path.stat()
            except OSError:
                continue
            out.append((path, st.st_mtime, st.st_size))
        return out

    def evict(self) -> int:
        """Drop least-recently-used entries past the size/count caps.

        Holds the cross-process eviction lock; when another run's scan is
        in progress the call is skipped (``eviction_lock_busy`` counter) —
        the concurrent scan is already enforcing the caps.
        """
        with self._eviction_lock() as acquired:
            if not acquired:
                self._bump("eviction_lock_busy")
                return 0
            entries = sorted(self._entries(), key=lambda e: e[1])  # oldest 1st
            total = sum(size for _, _, size in entries)
            removed = 0
            while entries and (len(entries) > self.max_entries
                               or total > self.max_bytes):
                path, _, size = entries.pop(0)
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                removed += 1
            return removed

    def stats(self) -> dict:
        entries = self._entries()
        return {
            "dir": str(self.directory),
            "entries": len(entries),
            "total_bytes": sum(size for _, _, size in entries),
            "max_bytes": self.max_bytes,
            "max_entries": self.max_entries,
            **self.counters(),
        }

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted.

        Unlike :meth:`evict`, clearing proceeds even when the eviction
        lock is busy — an explicit ``repro cache clear`` outranks a
        background scan, and deleting under a concurrent scanner is safe
        (it tolerates vanished paths).
        """
        removed = 0
        for path, _, _ in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

"""Task model: the unit a sweep decomposes into.

A :class:`TaskSpec` is ``(top-level function, kwargs)`` — exactly the shape
``ProcessPoolExecutor`` can ship to a worker (functions pickle by qualified
name, kwargs by value).  A :class:`SweepPlan` is an ordered list of specs;
order is the contract that makes parallel execution bit-identical to serial:
results are always reassembled by task index, never by completion time.

``stable_repr`` canonicalises kwargs for cache keys: dict ordering, dataclass
instances (e.g. ``ExpressPassParams``), tuples vs lists, and callables all
reduce to a deterministic string that survives across processes and runs
(unlike ``hash()``, which is salted per interpreter).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence


def stable_repr(value: Any) -> str:
    """Deterministic, cross-process representation of a kwargs value."""
    if isinstance(value, dict):
        items = ", ".join(
            f"{stable_repr(k)}: {stable_repr(v)}"
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        open_, close = ("[", "]") if isinstance(value, list) else ("(", ")")
        return open_ + ", ".join(stable_repr(v) for v in value) + close
    if isinstance(value, (set, frozenset)):
        return "{" + ", ".join(sorted(stable_repr(v) for v in value)) + "}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: getattr(value, f.name)
                  for f in dataclasses.fields(value)}
        return f"{type(value).__qualname__}({stable_repr(fields)})"
    if callable(value):
        mod = getattr(value, "__module__", "?")
        qual = getattr(value, "__qualname__", repr(value))
        return f"<fn {mod}.{qual}>"
    if isinstance(value, float):
        return repr(value)  # repr is shortest-exact in py3: round-trips
    return repr(value)


def task_id(fn: Callable, kwargs: Mapping[str, Any]) -> str:
    """Human-readable identity of a task (also the cache key's plaintext)."""
    mod = getattr(fn, "__module__", "?")
    qual = getattr(fn, "__qualname__", repr(fn))
    return f"{mod}.{qual}({stable_repr(dict(kwargs))})"


@dataclass(frozen=True)
class TaskSpec:
    """One picklable unit of work: ``fn(**kwargs)``.

    ``fn`` must be an importable module-level function (pickled by qualified
    name) and ``kwargs`` must contain only picklable values; both hold for
    every experiment ``run_point`` in this repo.  ``label`` is what progress
    and telemetry display — defaults to the function name.
    """

    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self):
        if not self.label:
            object.__setattr__(
                self, "label", getattr(self.fn, "__name__", "task"))

    @property
    def identity(self) -> str:
        return task_id(self.fn, self.kwargs)

    def call(self) -> Any:
        return self.fn(**self.kwargs)


@dataclass(frozen=True)
class SweepPlan:
    """An ordered set of tasks forming one experiment sweep."""

    name: str
    tasks: Sequence[TaskSpec] = ()

    @classmethod
    def from_grid(
        cls,
        fn: Callable[..., Any],
        points: Iterable[Mapping[str, Any]],
        common: Optional[Mapping[str, Any]] = None,
        name: Optional[str] = None,
        label: Optional[Callable[[Mapping[str, Any]], str]] = None,
    ) -> "SweepPlan":
        """Decompose a parameter grid into tasks.

        ``points`` are per-task kwargs (e.g. one dict per ``(protocol, N)``
        cell); ``common`` kwargs apply to every task, with per-point values
        winning on conflict.
        """
        base = dict(common or {})
        tasks: List[TaskSpec] = []
        for point in points:
            kwargs = {**base, **dict(point)}
            lbl = label(point) if label else ""
            tasks.append(TaskSpec(fn, kwargs, lbl))
        return cls(name or getattr(fn, "__name__", "sweep"), tuple(tasks))

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

"""Runtime configuration: how sweeps execute, cache, retry, and report.

A single :class:`RuntimeConfig` travels (implicitly, via :func:`get_config`)
from the entry point that knows the user's wishes — the CLI flags, benchmark
environment variables, or a test — down to :func:`repro.runtime.run_tasks`.
Experiments never take ``parallel=``/``cache=`` keyword arguments themselves;
they call ``run_sweep()`` and inherit whatever the active configuration says.
That keeps every ``run()`` signature about the *science* (flow counts, link
speeds, seeds) while execution policy stays in one place.

Environment variables (all optional) seed the defaults:

==========================  =====================================================
``REPRO_PARALLEL``          worker processes (0/1 = serial; default 0)
``REPRO_NO_CACHE``          "1" disables the result cache
``REPRO_CACHE_DIR``         cache directory (default ``~/.cache/repro-expresspass``)
``REPRO_RETRIES``           retry budget per task (default 2)
``REPRO_TASK_TIMEOUT``      per-task timeout in seconds (default: none)
``REPRO_TELEMETRY``         path for JSONL event log (default: off)
``REPRO_PROGRESS``          "1" forces the stderr ticker on, "0" forces it off
``REPRO_CACHE_MAX_BYTES``   cache size cap before LRU eviction (default 512 MiB)
``REPRO_CACHE_MAX_ENTRIES`` cache entry cap before LRU eviction (default 4096)
``REPRO_AUDIT``             "1" runs every sweep task under the runtime
                            verifier (:mod:`repro.audit`); task results then
                            carry per-run audit summaries
``REPRO_PROFILE``           "1" profiles every sweep task
                            (:mod:`repro.perf.profile`); task results then
                            carry per-run profile summaries
``REPRO_METRICS``           "1" meters every sweep task (:mod:`repro.obs`);
                            task results then carry per-run metrics summaries
``REPRO_SHARDS``            worker processes *within one simulation*
                            (:mod:`repro.sim.parallel`); 0/1 = serial
                            (default 0).  Execution policy, not science:
                            never part of task fingerprints or cache keys
``REPRO_TRACE``             path for a cross-layer trace
                            (:mod:`repro.obs.trace`): JSONL at the path
                            plus Perfetto-loadable ``<path>.perfetto.json``.
                            Observation-only — never part of fingerprints
==========================  =====================================================

The resilience plane (:mod:`repro.resilience`, DESIGN.md §15) reads its own
variables rather than travelling through :class:`RuntimeConfig` — they
describe crash-safety machinery, not sweep policy, and several must reach
code that runs before or without a config:

==========================  =====================================================
``REPRO_JOURNAL``           path for the crash-safe run journal
                            (``repro.resilience/v1`` JSONL); same effect as
                            ``--journal``, enables ``repro resume``
``REPRO_SELFCHAOS``         comma-separated fault directives aimed at the
                            execution substrate itself (``task:kill=SUBSTR``,
                            ``parent:kill=N``, ``parent:int=N``,
                            ``cache:torn``, ``cache:enospc``,
                            ``shard:kill=W``, ``shard:hang=W``); each fires
                            once per campaign
``REPRO_SELFCHAOS_DIR``     marker directory enforcing the once-only firing
                            across processes (default: a tempdir keyed by
                            the directive string)
``REPRO_SHARD_HEARTBEAT``   sharded-run worker heartbeat interval in seconds
                            (default 1.0)
``REPRO_SHARD_DEADLINE``    heartbeat silence after which a shard counts as
                            hung and is failed over (default 60)
``REPRO_RECYCLE_AFTER``     abandoned (timed-out but uncancellable) workers
                            tolerated before the pool is torn down and
                            rebuilt to reclaim capacity (default 2)
==========================  =====================================================
"""

from __future__ import annotations

import contextlib
import os
import pathlib
from dataclasses import dataclass, replace
from typing import Iterator, Optional

_UNSET = object()


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else XDG cache home, else ``~/.cache``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro-expresspass"


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution policy for one or more sweeps.  Immutable; use ``replace``."""

    #: Worker processes.  0 or 1 runs tasks serially in-process.
    parallel: int = 0
    cache_enabled: bool = True
    cache_dir: Optional[pathlib.Path] = None  # None -> default_cache_dir()
    #: Additional attempts after the first failure (so 2 -> up to 3 calls).
    retries: int = 2
    #: Sleep between attempts, doubled each retry (kept tiny: tasks are
    #: deterministic, so backoff only matters for resource exhaustion).
    backoff_s: float = 0.05
    #: Best-effort per-task wall-clock limit (seconds); None = unlimited.
    task_timeout_s: Optional[float] = None
    telemetry_path: Optional[pathlib.Path] = None
    #: True/False force the stderr ticker; None = only when stderr is a tty.
    progress: Optional[bool] = None
    max_cache_bytes: int = 512 * 1024 * 1024
    max_cache_entries: int = 4096
    #: Run every task under :mod:`repro.audit` (observation-only invariant
    #: checking); audit summaries ride on the TaskResults.
    audit: bool = False
    #: Profile every task's simulations (:mod:`repro.perf.profile`);
    #: profile summaries ride on the TaskResults.
    profile: bool = False
    #: Meter every task's simulations (:mod:`repro.obs` counters, series,
    #: flow spans); metrics summaries ride on the TaskResults.
    metrics: bool = False
    #: Shard each single simulation across this many worker processes
    #: (:mod:`repro.sim.parallel`); 0 or 1 runs serially.  Like ``parallel``
    #: this is execution policy — sharded runs are bit-identical to serial,
    #: so it never enters task fingerprints or cache keys.
    shards: int = 0
    #: Capture cross-layer spans (:mod:`repro.obs.trace`) for every task.
    #: Observation-only execution policy: the tracer touches no RNG, event
    #: heap, or fingerprint, so results are bit-identical either way.
    trace: bool = False

    @classmethod
    def from_env(cls, environ=None) -> "RuntimeConfig":
        env = os.environ if environ is None else environ

        def _int(name, default):
            try:
                return int(env.get(name, default))
            except (TypeError, ValueError):
                return default

        timeout = env.get("REPRO_TASK_TIMEOUT")
        progress = env.get("REPRO_PROGRESS")
        telemetry = env.get("REPRO_TELEMETRY")
        return cls(
            parallel=_int("REPRO_PARALLEL", 0),
            cache_enabled=env.get("REPRO_NO_CACHE", "") not in ("1", "true"),
            cache_dir=(pathlib.Path(env["REPRO_CACHE_DIR"])
                       if env.get("REPRO_CACHE_DIR") else None),
            retries=_int("REPRO_RETRIES", 2),
            task_timeout_s=float(timeout) if timeout else None,
            telemetry_path=pathlib.Path(telemetry) if telemetry else None,
            progress=(None if progress in (None, "")
                      else progress in ("1", "true")),
            max_cache_bytes=_int("REPRO_CACHE_MAX_BYTES", 512 * 1024 * 1024),
            max_cache_entries=_int("REPRO_CACHE_MAX_ENTRIES", 4096),
            audit=env.get("REPRO_AUDIT", "") in ("1", "true"),
            profile=env.get("REPRO_PROFILE", "") in ("1", "true"),
            metrics=env.get("REPRO_METRICS", "") in ("1", "true"),
            shards=_int("REPRO_SHARDS", 0),
            trace=bool(env.get("REPRO_TRACE")),
        )

    def resolved_cache_dir(self) -> pathlib.Path:
        return self.cache_dir or default_cache_dir()


_ACTIVE: Optional[RuntimeConfig] = None


def get_config() -> RuntimeConfig:
    """The active config: whatever :func:`configure` set, else the env."""
    return _ACTIVE if _ACTIVE is not None else RuntimeConfig.from_env()


def configure(**overrides) -> RuntimeConfig:
    """Set the process-wide active config.

    Starts from the current active config (or the environment) and applies
    only the given fields, so ``configure(parallel=4)`` keeps cache settings.
    """
    global _ACTIVE
    base = get_config()
    _ACTIVE = replace(base, **overrides)
    return _ACTIVE


def reset() -> None:
    """Drop any :func:`configure` overrides; fall back to the environment."""
    global _ACTIVE
    _ACTIVE = None


@contextlib.contextmanager
def using(**overrides) -> Iterator[RuntimeConfig]:
    """Temporarily override the active config (tests, nested sweeps)."""
    global _ACTIVE
    prior = _ACTIVE
    try:
        yield configure(**overrides)
    finally:
        _ACTIVE = prior

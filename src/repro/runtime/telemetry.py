"""Structured progress for sweeps: JSONL events + a live stderr ticker.

Every scheduler state change (queued, started, done, failed, retry, cache
hit) increments counters and, when a telemetry path is configured, appends
one JSON object per line — a format tail-able during a long sweep and
trivially loadable afterwards (``[json.loads(l) for l in open(p)]``).

The ticker rewrites a single stderr line (``\\r``) while tasks run and is
enabled only on a tty (or when forced), so pytest/CI logs stay clean.  The
one-line summary at the end — task counts, failures, cache hit rate, wall
time — prints whenever the ticker is enabled.

Telemetry is also the single funnel feeding the runtime layer of
``repro.obs.trace``: when a tracer is active, every state change forwards
to a :class:`~repro.obs.trace.TaskRecorder`, which turns it into task /
attempt / worker-lane spans.  With tracing off the forwarding is one
``is None`` check per event.
"""

from __future__ import annotations

import json
import pathlib
import sys
import threading
import time
import warnings
from typing import List, Optional, Tuple


class Telemetry:
    """Counters + JSONL sink + ticker for one ``run_tasks`` invocation."""

    def __init__(
        self,
        sweep: str = "sweep",
        total: int = 0,
        jsonl_path: Optional[pathlib.Path] = None,
        progress: Optional[bool] = None,
        stream=None,
    ):
        self.sweep = sweep
        self.total = total
        self.jsonl_path = pathlib.Path(jsonl_path) if jsonl_path else None
        self.stream = stream if stream is not None else sys.stderr
        if progress is None:
            progress = bool(getattr(self.stream, "isatty", lambda: False)())
        self.progress = progress
        self._lock = threading.Lock()
        self._start = time.monotonic()
        self._ticker_live = False
        self.counts = {
            "queued": 0, "running": 0, "done": 0, "failed": 0,
            "retries": 0, "deferred": 0, "resubmitted": 0,
            "cache_hits": 0, "cache_misses": 0,
            "interrupted": 0, "recycles": 0,
        }
        self.task_wall_s: dict = {}
        from repro.obs.trace import TaskRecorder  # dep-free module
        self.recorder = TaskRecorder.maybe(sweep)

    # -- event plumbing -----------------------------------------------------

    def emit(self, event: str, **fields) -> None:
        if self.jsonl_path is not None:
            record = {"t": round(time.time(), 6), "sweep": self.sweep,
                      "event": event, **fields}
            with self._lock:
                self.jsonl_path.parent.mkdir(parents=True, exist_ok=True)
                with self.jsonl_path.open("a") as fh:
                    fh.write(json.dumps(record, default=str) + "\n")

    def task_queued(self, index: int, label: str) -> None:
        with self._lock:
            self.counts["queued"] += 1
        self.emit("task_queued", index=index, label=label)
        if self.recorder is not None:
            self.recorder.queued(index, label)

    def task_started(self, index: int, label: str, attempt: int) -> None:
        with self._lock:
            self.counts["running"] += 1
        self.emit("task_started", index=index, label=label, attempt=attempt)
        if self.recorder is not None:
            self.recorder.started(index, label, attempt)
        self.tick()

    def task_done(self, index: int, label: str, wall_s: float,
                  cached: bool = False) -> None:
        with self._lock:
            self.counts["running"] = max(0, self.counts["running"] - 1)
            self.counts["done"] += 1
            self.task_wall_s[index] = wall_s
        self.emit("task_done", index=index, label=label,
                  wall_s=round(wall_s, 6), cached=cached)
        if self.recorder is not None:
            self.recorder.done(index, label, cached=cached)
        self.tick()

    def task_failed(self, index: int, label: str, error: str,
                    attempts: int) -> None:
        with self._lock:
            self.counts["running"] = max(0, self.counts["running"] - 1)
            self.counts["failed"] += 1
        self.emit("task_failed", index=index, label=label,
                  error=error, attempts=attempts)
        if self.recorder is not None:
            self.recorder.failed(index, label, error, attempts)
        self.tick()

    def task_retry(self, index: int, label: str, attempt: int,
                   error: str) -> None:
        with self._lock:
            self.counts["running"] = max(0, self.counts["running"] - 1)
            self.counts["retries"] += 1
        self.emit("task_retry", index=index, label=label,
                  attempt=attempt, error=error)
        if self.recorder is not None:
            self.recorder.retry(index, label, attempt, error)

    def task_deferred(self, index: int, label: str, backoff_s: float) -> None:
        """A retry parked for ``backoff_s`` before resubmission."""
        with self._lock:
            self.counts["deferred"] += 1
        self.emit("task_deferred", index=index, label=label,
                  backoff_s=round(backoff_s, 6),
                  due_t=round(time.time() + backoff_s, 6))
        if self.recorder is not None:
            self.recorder.deferred(index, label, backoff_s)

    def task_resubmitted(self, index: int, label: str, attempt: int) -> None:
        """A backoff-deferred task re-entering the pool/serial loop."""
        with self._lock:
            self.counts["resubmitted"] += 1
        self.emit("task_resubmitted", index=index, label=label,
                  attempt=attempt)
        if self.recorder is not None:
            self.recorder.resubmitted(index, label, attempt)

    def task_trace(self, index: int, blob: Optional[dict]) -> None:
        """Bank the executing process's trace report (no counter/JSONL)."""
        if self.recorder is not None and blob is not None:
            self.recorder.task_blob(index, blob)

    def task_interrupted(self, index: int, label: str,
                         signame: str = "SIGINT") -> None:
        """A task cut short by a graceful-shutdown drain (never ran, or
        its in-flight result was abandoned)."""
        with self._lock:
            self.counts["interrupted"] += 1
        self.emit("task_interrupted", index=index, label=label,
                  signal=signame)
        if self.recorder is not None:
            self.recorder.interrupted(index, label, signame)
        self.tick()

    def pool_recycled(self, killed: int, abandoned: int) -> None:
        """The worker pool was torn down to reclaim abandoned capacity."""
        with self._lock:
            self.counts["recycles"] += 1
        self.emit("pool_recycled", killed=killed, abandoned=abandoned)
        if self.progress:
            self._write(f"\n[repro.runtime] recycled worker pool "
                        f"({abandoned} abandoned, {killed} killed)\n")

    def cache_hit(self, index: int, label: str) -> None:
        with self._lock:
            self.counts["cache_hits"] += 1
            self.counts["done"] += 1
        self.emit("cache_hit", index=index, label=label)
        if self.recorder is not None:
            self.recorder.done(index, label, cached=True)
        self.tick()

    def cache_miss(self, index: int, label: str) -> None:
        with self._lock:
            self.counts["cache_misses"] += 1
        self.emit("cache_miss", index=index, label=label)

    def degraded(self, reason: str) -> None:
        self.emit("degraded_to_serial", reason=reason)
        if self.progress:
            self._write(f"\n[repro.runtime] degrading to serial: {reason}\n")

    # -- rendering ----------------------------------------------------------

    @property
    def wall_s(self) -> float:
        return time.monotonic() - self._start

    def hit_rate(self) -> Optional[float]:
        looked = self.counts["cache_hits"] + self.counts["cache_misses"]
        return self.counts["cache_hits"] / looked if looked else None

    def summary(self) -> dict:
        return {"sweep": self.sweep, "total": self.total,
                "wall_s": round(self.wall_s, 3),
                "cache_hit_rate": self.hit_rate(), **self.counts}

    def _write(self, text: str) -> None:
        try:
            self.stream.write(text)
            self.stream.flush()
        except (OSError, ValueError):  # closed stream: telemetry never raises
            pass

    def tick(self) -> None:
        if not self.progress:
            return
        c = self.counts
        line = (f"[{self.sweep}] {c['done']}/{self.total} done"
                f" ({c['cache_hits']} cached), {c['running']} running,"
                f" {c['failed']} failed, {self.wall_s:.1f}s")
        with self._lock:
            self._write("\r" + line.ljust(78))
            self._ticker_live = True

    def close(self) -> None:
        """Emit the final summary (always to JSONL, to stderr if ticking)."""
        summary = self.summary()
        self.emit("sweep_done", **{k: v for k, v in summary.items()
                                   if k != "sweep"})
        if self.progress:
            c = self.counts
            rate = self.hit_rate()
            rate_txt = f"{100 * rate:.0f}%" if rate is not None else "n/a"
            retry_txt = f"{c['retries']} retries"
            if c["deferred"]:
                retry_txt += (f" ({c['deferred']} deferred, "
                              f"{c['resubmitted']} resubmitted)")
            with self._lock:
                if self._ticker_live:
                    self._write("\r" + " " * 78 + "\r")
                self._write(
                    f"[{self.sweep}] {c['done']}/{self.total} tasks done, "
                    f"{c['failed']} failed, {retry_txt}, "
                    f"cache hit rate {rate_txt}, {self.wall_s:.1f}s\n")


def read_events(path: pathlib.Path) -> Tuple[List[dict], int]:
    """Load a telemetry JSONL file, tolerating a torn final line.

    A process killed mid-:meth:`Telemetry.emit` leaves a partial last
    line; crash-recovery tooling (``repro resume``, post-mortems) must
    still read everything before it.  Returns ``(events, torn_lines)``
    and warns once per skipped line — a torn line is information
    (*something* died here), not an error.
    """
    events: List[dict] = []
    torn = 0
    text = pathlib.Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            torn += 1
            warnings.warn(f"{path}:{lineno}: skipping torn telemetry line "
                          f"({line[:40]!r}...)", stacklevel=2)
            continue
        if isinstance(record, dict):
            events.append(record)
        else:
            torn += 1
    return events, torn

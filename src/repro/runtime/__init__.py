"""``repro.runtime`` — parallel, cached, fault-tolerant experiment execution.

Every paper figure/table is a sweep over a parameter grid (protocols × sweep
points × seeds).  This subsystem decomposes such sweeps into picklable
:class:`TaskSpec` units, executes them on a process pool (or serially) with
per-task retries and best-effort timeouts, memoises each task's result in a
content-addressed on-disk cache keyed by ``(function, kwargs incl. seed,
code fingerprint)``, and reports progress as JSONL telemetry plus a live
stderr ticker.

Policy (worker count, cache on/off, retry budget, telemetry path) comes from
the active :class:`RuntimeConfig` — set by CLI flags (``python -m repro run
fig15 --parallel 4``), environment variables (``REPRO_PARALLEL=4 pytest
benchmarks/``), or :func:`configure`/:func:`using` in code.  Experiments
stay policy-free: they call :func:`repro.experiments.runner.run_sweep`.

Determinism is the invariant everything else is built around: each task
seeds its own ``Simulator``, so serial, parallel, and cached executions of
the same sweep produce bit-identical rows (asserted in
``tests/test_runtime.py``).
"""

from repro.runtime.cache import ResultCache, code_fingerprint
from repro.runtime.config import (
    RuntimeConfig,
    configure,
    default_cache_dir,
    get_config,
    reset,
    using,
)
from repro.runtime.scheduler import SweepError, TaskResult, run_tasks
from repro.runtime.task import SweepPlan, TaskSpec, stable_repr, task_id
from repro.runtime.telemetry import Telemetry, read_events

__all__ = [
    "ResultCache",
    "RuntimeConfig",
    "SweepError",
    "SweepPlan",
    "TaskResult",
    "TaskSpec",
    "Telemetry",
    "code_fingerprint",
    "configure",
    "default_cache_dir",
    "get_config",
    "read_events",
    "reset",
    "run_tasks",
    "stable_repr",
    "task_id",
    "using",
]

"""Sweep executor: cache lookup, process pool, retries, serial fallback.

Execution contract (what makes parallel safe for a *reproduction*):

* **Determinism.**  Results are reassembled by task index, never completion
  order, and every task carries its own seed in its kwargs — so a sweep's
  rows are bit-identical whether it ran serially, on N workers, or from
  cache.  Tests assert this.
* **Fault tolerance.**  A task that raises is retried (``retries`` budget,
  exponential backoff) and, if it keeps failing, reported as a failed
  :class:`TaskResult` without killing the sweep.  A broken pool (worker
  killed, fork failure) or an unpicklable task degrades the remainder of the
  sweep to in-process serial execution instead of erroring out.
* **Timeouts are best-effort.**  ``task_timeout_s`` measures from submission
  (queue + run).  An expired task is cancelled if still queued; if it is
  already running its result is abandoned (the worker finishes in the
  background) and the attempt counts as a failure.

Workers are initialised with ``parallel=0`` so a task that itself calls
``run_sweep`` (e.g. the summary driver invoking another experiment) runs
serially inside its worker rather than forking a nested pool.
"""

from __future__ import annotations

import concurrent.futures as futures
import contextlib
import os
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.runtime.cache import ResultCache
from repro.runtime.config import RuntimeConfig, get_config
from repro.runtime.task import SweepPlan, TaskSpec
from repro.runtime.telemetry import Telemetry


@dataclass
class TaskResult:
    """Outcome of one task: a value or an error, never an exception flow."""

    index: int
    label: str
    value: Any = None
    error: Optional[str] = None
    attempts: int = 0
    cached: bool = False
    wall_s: float = 0.0
    #: Per-task audit summary dict when the run executed under
    #: ``RuntimeConfig.audit``; ``None`` for unaudited or cache-served tasks.
    audit: Optional[dict] = None
    #: Per-task profile summary dict when the run executed under
    #: ``RuntimeConfig.profile``; ``None`` for unprofiled or cached tasks.
    profile: Optional[dict] = None
    #: Per-task metrics summary dict when the run executed under
    #: ``RuntimeConfig.metrics``; ``None`` for unmetered or cached tasks.
    metrics: Optional[dict] = None
    #: Per-task trace report when a tracer was active: the executing
    #: process's pid, run window (absolute ``time.monotonic`` seconds), and
    #: its bounded record buffer, stitched into the parent tracer by the
    #: telemetry recorder.  ``None`` when tracing is off or cache-served.
    trace: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class SweepError(RuntimeError):
    """Raised by strict sweeps when tasks failed after all retries."""

    def __init__(self, failures: Sequence[TaskResult]):
        self.failures = list(failures)
        detail = "; ".join(f"task#{f.index} {f.label}: {f.error}"
                           for f in self.failures[:5])
        super().__init__(f"{len(self.failures)} sweep task(s) failed: {detail}")


def _call(spec: TaskSpec, audit_enabled: bool = False,
          profile_enabled: bool = False, metrics_enabled: bool = False,
          trace_enabled: bool = False) -> tuple:
    """Worker entry point (module-level so it pickles).

    Returns ``(value, audit_summary, profile_summary, metrics_summary,
    trace_report)``; each is ``None`` unless the task ran under the
    matching ``RuntimeConfig`` knob.  Capturing happens *here*, in
    whichever process executes the task, so parallel workers
    audit/profile/meter/trace their own simulations and ship plain-dict
    results back.
    """
    if not (audit_enabled or profile_enabled or metrics_enabled
            or trace_enabled):
        return spec.call(), None, None, None, None
    cap = session = ocap = tcol = None
    t0 = 0.0
    with contextlib.ExitStack() as stack:
        if audit_enabled:
            from repro import audit
            cap = stack.enter_context(audit.capture())
        if profile_enabled:
            from repro.perf import profile as perf_profile
            session = stack.enter_context(perf_profile.profiled())
        if metrics_enabled:
            from repro import obs
            ocap = stack.enter_context(obs.capture())
        if trace_enabled:
            from repro.obs import trace as obs_trace
            tcol = stack.enter_context(obs_trace.collect())
            t0 = time.monotonic()
        value = spec.call()
    trace_report = None
    if tcol is not None:
        trace_report = {"pid": os.getpid(), "t0": t0,
                        "t1": time.monotonic(), "trace": tcol.blob}
    return (value,
            cap.summary if cap is not None else None,
            session.report.as_dict() if session is not None else None,
            ocap.summary if ocap is not None else None,
            trace_report)


def _worker_init() -> None:
    """Force serial execution inside workers (no nested pools).

    Also drops ``REPRO_TRACE`` from the worker's environment: the worker
    traces into a per-task capture buffer shipped back on the result, and
    must never lazily activate its own ambient tracer (which would race
    the parent for the output file at exit).
    """
    from repro.runtime import config as _config

    os.environ.pop("REPRO_TRACE", None)
    _config.configure(parallel=0, progress=False)


def _bank_audit(label: str, summary: Optional[dict]) -> None:
    """Feed a task's audit verdict to the session aggregate (CLI report)."""
    if summary is not None:
        from repro import audit
        audit.record_task_summary(label, summary)


def _bank_profile(label: str, summary: Optional[dict]) -> None:
    """Feed a task's profile summary to the session aggregate (CLI report)."""
    if summary is not None:
        from repro.perf import profile as perf_profile
        perf_profile.record_task_summary(label, summary)


def _bank_metrics(label: str, summary: Optional[dict]) -> None:
    """Feed a task's metrics summary to the session aggregate (CLI report)."""
    if summary is not None:
        from repro import obs
        obs.record_task_summary(label, summary)


def _is_pickling_error(exc: BaseException) -> bool:
    if isinstance(exc, (pickle.PicklingError, pickle.UnpicklingError)):
        return True
    return isinstance(exc, (TypeError, AttributeError)) and "pickle" in str(exc).lower()


def run_tasks(
    tasks: Union[SweepPlan, Sequence[TaskSpec]],
    name: str = "",
    config: Optional[RuntimeConfig] = None,
    telemetry: Optional[Telemetry] = None,
) -> List[TaskResult]:
    """Execute tasks under the active config; results ordered by task index."""
    if isinstance(tasks, SweepPlan):
        specs = list(tasks.tasks)
        name = name or tasks.name
    else:
        specs = list(tasks)
        name = name or "sweep"
    config = config or get_config()
    tel = telemetry or Telemetry(name, len(specs),
                                 jsonl_path=config.telemetry_path,
                                 progress=config.progress)
    from repro.obs import trace as obs_trace
    trace_on = config.trace or obs_trace.emit_target() is not None

    cache = None
    if config.cache_enabled:
        cache = ResultCache(config.resolved_cache_dir(),
                            config.max_cache_bytes, config.max_cache_entries)

    results: List[Optional[TaskResult]] = [None] * len(specs)
    keys: Dict[int, str] = {}
    pending: List[int] = []
    for i, spec in enumerate(specs):
        tel.task_queued(i, spec.label)
        if cache is not None:
            keys[i] = cache.key_for(spec)
            hit, value = cache.get(keys[i])
            if hit:
                results[i] = TaskResult(i, spec.label, value=value,
                                        cached=True)
                tel.cache_hit(i, spec.label)
                continue
            tel.cache_miss(i, spec.label)
        pending.append(i)

    if pending and config.parallel >= 2:
        pending = _run_pool(specs, pending, results, config, tel, cache,
                            keys, trace_on)
    if pending:
        _run_serial(specs, pending, results, config, tel, cache, keys,
                    trace_on)

    tel.close()
    return [r for r in results if r is not None]


def _store(cache: Optional[ResultCache], keys: Dict[int, str], index: int,
           spec: TaskSpec, value: Any, wall_s: float) -> None:
    if cache is not None:
        cache.put(keys[index], value, task=spec.identity, elapsed_s=wall_s)


def _run_serial(specs, indices, results, config, tel, cache, keys,
                trace_on: bool = False) -> None:
    for i in indices:
        spec = specs[i]
        attempts = 0
        while True:
            attempts += 1
            tel.task_started(i, spec.label, attempts)
            start = time.monotonic()
            try:
                (value, audit_summary, profile_summary, metrics_summary,
                 trace_report) = _call(spec, config.audit, config.profile,
                                       config.metrics, trace_on)
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                if attempts <= config.retries:
                    tel.task_retry(i, spec.label, attempts, error)
                    backoff = config.backoff_s * (2 ** (attempts - 1))
                    tel.task_deferred(i, spec.label, backoff)
                    time.sleep(backoff)
                    tel.task_resubmitted(i, spec.label, attempts + 1)
                    continue
                results[i] = TaskResult(i, spec.label, error=error,
                                        attempts=attempts,
                                        wall_s=time.monotonic() - start)
                tel.task_failed(i, spec.label, error, attempts)
                break
            wall = time.monotonic() - start
            results[i] = TaskResult(i, spec.label, value=value,
                                    attempts=attempts, wall_s=wall,
                                    audit=audit_summary,
                                    profile=profile_summary,
                                    metrics=metrics_summary,
                                    trace=trace_report)
            _bank_audit(spec.label, audit_summary)
            _bank_profile(spec.label, profile_summary)
            _bank_metrics(spec.label, metrics_summary)
            tel.task_trace(i, trace_report)
            _store(cache, keys, i, spec, value, wall)
            tel.task_done(i, spec.label, wall)
            break


def _run_pool(specs, indices, results, config, tel, cache, keys,
              trace_on: bool = False) -> List[int]:
    """Run ``indices`` on a process pool; returns indices left for serial."""
    try:
        pool = futures.ProcessPoolExecutor(max_workers=config.parallel,
                                           initializer=_worker_init)
    except (OSError, ValueError) as exc:
        tel.degraded(f"cannot start process pool: {exc}")
        return indices

    attempts = {i: 0 for i in indices}
    inflight: Dict[futures.Future, tuple] = {}  # future -> (index, t_submit)
    #: index -> monotonic deadline for a backoff-deferred resubmission.
    #: Retries never sleep on the dispatcher thread — an inline sleep would
    #: stall collection of completed futures and inflate every other
    #: inflight task's submission-measured timeout — they park here and the
    #: wait loop resubmits them when their deadline passes.
    deferred: Dict[int, float] = {}
    leftovers: List[int] = []

    def submit(i: int) -> None:
        attempts[i] += 1
        tel.task_started(i, specs[i].label, attempts[i])
        fut = pool.submit(_call, specs[i], config.audit, config.profile,
                          config.metrics, trace_on)
        inflight[fut] = (i, time.monotonic())

    def record_failure(i: int, error: str, wall_s: float = 0.0,
                       retryable: bool = True) -> None:
        if retryable and attempts[i] <= config.retries:
            tel.task_retry(i, specs[i].label, attempts[i], error)
            backoff = config.backoff_s * (2 ** (attempts[i] - 1))
            deferred[i] = time.monotonic() + backoff
            tel.task_deferred(i, specs[i].label, backoff)
        else:
            results[i] = TaskResult(i, specs[i].label, error=error,
                                    attempts=attempts[i], wall_s=wall_s)
            tel.task_failed(i, specs[i].label, error, attempts[i])

    try:
        for i in indices:
            submit(i)
        while inflight or deferred:
            wait_s = 0.1
            if deferred:
                next_due = min(deferred.values()) - time.monotonic()
                wait_s = min(wait_s, max(0.0, next_due))
            if inflight:
                done, _ = futures.wait(set(inflight), timeout=wait_s,
                                       return_when=futures.FIRST_COMPLETED)
            else:
                done = set()
                time.sleep(wait_s)
            now = time.monotonic()
            for i in [j for j, due in deferred.items() if due <= now]:
                del deferred[i]
                tel.task_resubmitted(i, specs[i].label, attempts[i] + 1)
                submit(i)
            if config.task_timeout_s is not None:
                for fut, (i, t_submit) in list(inflight.items()):
                    if fut in done or now - t_submit <= config.task_timeout_s:
                        continue
                    fut.cancel()  # abandon result even if already running
                    inflight.pop(fut)
                    record_failure(
                        i, f"timeout after {config.task_timeout_s:g}s",
                        wall_s=now - t_submit)
            for fut in done:
                if fut not in inflight:
                    continue
                i, t_submit = inflight.pop(fut)
                try:
                    (value, audit_summary, profile_summary,
                     metrics_summary, trace_report) = fut.result()
                except BrokenProcessPool as exc:
                    tel.degraded(f"worker pool broke: {exc}")
                    leftovers = [j for j in attempts if results[j] is None]
                    inflight.clear()
                    deferred.clear()
                    break
                except futures.CancelledError:
                    continue  # handled by the timeout branch above
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    if _is_pickling_error(exc):
                        # The pool can never run this task; hand it to the
                        # serial path instead of burning retries.
                        tel.degraded(
                            f"task#{i} {specs[i].label} not picklable")
                        leftovers.append(i)
                    else:
                        record_failure(i, error, wall_s=now - t_submit)
                    continue
                wall = now - t_submit
                results[i] = TaskResult(i, specs[i].label, value=value,
                                        attempts=attempts[i], wall_s=wall,
                                        audit=audit_summary,
                                        profile=profile_summary,
                                        metrics=metrics_summary,
                                        trace=trace_report)
                _bank_audit(specs[i].label, audit_summary)
                _bank_profile(specs[i].label, profile_summary)
                _bank_metrics(specs[i].label, metrics_summary)
                tel.task_trace(i, trace_report)
                _store(cache, keys, i, specs[i], value, wall)
                tel.task_done(i, specs[i].label, wall)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return leftovers

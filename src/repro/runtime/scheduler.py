"""Sweep executor: cache lookup, process pool, retries, serial fallback.

Execution contract (what makes parallel safe for a *reproduction*):

* **Determinism.**  Results are reassembled by task index, never completion
  order, and every task carries its own seed in its kwargs — so a sweep's
  rows are bit-identical whether it ran serially, on N workers, or from
  cache.  Tests assert this.
* **Fault tolerance.**  A task that raises is retried (``retries`` budget,
  exponential backoff) and, if it keeps failing, reported as a failed
  :class:`TaskResult` without killing the sweep.  A broken pool (worker
  killed, fork failure) or an unpicklable task degrades the remainder of the
  sweep to in-process serial execution instead of erroring out.
* **Timeouts are best-effort.**  ``task_timeout_s`` measures from submission
  (queue + run).  An expired task is cancelled if still queued; if it is
  already running its result is abandoned (the worker finishes in the
  background) and the attempt counts as a failure.

Workers are initialised with ``parallel=0`` so a task that itself calls
``run_sweep`` (e.g. the summary driver invoking another experiment) runs
serially inside its worker rather than forking a nested pool.
"""

from __future__ import annotations

import concurrent.futures as futures
import contextlib
import multiprocessing
import os
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.resilience import journal as run_journal
from repro.resilience import selfchaos
from repro.resilience import signals as shutdown
from repro.runtime.cache import ResultCache
from repro.runtime.config import RuntimeConfig, get_config
from repro.runtime.task import SweepPlan, TaskSpec
from repro.runtime.telemetry import Telemetry

#: True inside pool worker processes (set by :func:`_worker_init`); gates
#: self-chaos injection points that must only ever kill a *worker*.
_IN_POOL_WORKER = False

#: Worker-side handle on the started-marker queue (set by
#: :func:`_worker_init`).  Workers drop a ``(index, attempt)`` token the
#: moment they begin a task so the parent's timeout watchdog can tell a
#: genuinely long-running task from one merely stuck in the executor's
#: queue behind hung workers — ``Future.cancel()`` cannot make that
#: distinction (the executor marks prefetched items RUNNING before any
#: worker touches them).
_STARTED_Q = None


#: How many times a queued-but-never-started task may be timeout-cancelled
#: and requeued with a fresh clock before the timeout is charged to it.
_QUEUE_LAPS = 3


def _recycle_after() -> int:
    """Abandoned-worker threshold that triggers a pool recycle."""
    try:
        return max(1, int(os.environ.get("REPRO_RECYCLE_AFTER", "2")))
    except ValueError:
        return 2


@dataclass
class TaskResult:
    """Outcome of one task: a value or an error, never an exception flow."""

    index: int
    label: str
    value: Any = None
    error: Optional[str] = None
    attempts: int = 0
    cached: bool = False
    wall_s: float = 0.0
    #: True when the task was cut short by a drain (SIGINT/SIGTERM) rather
    #: than failing on its own; ``error`` names the signal.  Interrupted
    #: tasks re-execute on resume.
    interrupted: bool = False
    #: Per-task audit summary dict when the run executed under
    #: ``RuntimeConfig.audit``; ``None`` for unaudited or cache-served tasks.
    audit: Optional[dict] = None
    #: Per-task profile summary dict when the run executed under
    #: ``RuntimeConfig.profile``; ``None`` for unprofiled or cached tasks.
    profile: Optional[dict] = None
    #: Per-task metrics summary dict when the run executed under
    #: ``RuntimeConfig.metrics``; ``None`` for unmetered or cached tasks.
    metrics: Optional[dict] = None
    #: Per-task trace report when a tracer was active: the executing
    #: process's pid, run window (absolute ``time.monotonic`` seconds), and
    #: its bounded record buffer, stitched into the parent tracer by the
    #: telemetry recorder.  ``None`` when tracing is off or cache-served.
    trace: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class SweepError(RuntimeError):
    """Raised by strict sweeps when tasks failed after all retries."""

    def __init__(self, failures: Sequence[TaskResult]):
        self.failures = list(failures)
        detail = "; ".join(f"task#{f.index} {f.label}: {f.error}"
                           for f in self.failures[:5])
        super().__init__(f"{len(self.failures)} sweep task(s) failed: {detail}")


def _call(spec: TaskSpec, audit_enabled: bool = False,
          profile_enabled: bool = False, metrics_enabled: bool = False,
          trace_enabled: bool = False, token=None) -> tuple:
    """Worker entry point (module-level so it pickles).

    Returns ``(value, audit_summary, profile_summary, metrics_summary,
    trace_report)``; each is ``None`` unless the task ran under the
    matching ``RuntimeConfig`` knob.  Capturing happens *here*, in
    whichever process executes the task, so parallel workers
    audit/profile/meter/trace their own simulations and ship plain-dict
    results back.
    """
    if _STARTED_Q is not None and token is not None:
        try:
            _STARTED_Q.put(token)
        except (OSError, ValueError):
            pass  # queue torn down mid-recycle: the marker is best-effort
    if _IN_POOL_WORKER and selfchaos.armed() \
            and selfchaos.fire("task:kill", label=spec.label):
        selfchaos.kill_self()
    if not (audit_enabled or profile_enabled or metrics_enabled
            or trace_enabled):
        return spec.call(), None, None, None, None
    cap = session = ocap = tcol = None
    t0 = 0.0
    with contextlib.ExitStack() as stack:
        if audit_enabled:
            from repro import audit
            cap = stack.enter_context(audit.capture())
        if profile_enabled:
            from repro.perf import profile as perf_profile
            session = stack.enter_context(perf_profile.profiled())
        if metrics_enabled:
            from repro import obs
            ocap = stack.enter_context(obs.capture())
        if trace_enabled:
            from repro.obs import trace as obs_trace
            tcol = stack.enter_context(obs_trace.collect())
            t0 = time.monotonic()
        value = spec.call()
    trace_report = None
    if tcol is not None:
        trace_report = {"pid": os.getpid(), "t0": t0,
                        "t1": time.monotonic(), "trace": tcol.blob}
    return (value,
            cap.summary if cap is not None else None,
            session.report.as_dict() if session is not None else None,
            ocap.summary if ocap is not None else None,
            trace_report)


def _worker_init(started_q=None) -> None:
    """Force serial execution inside workers (no nested pools).

    Also drops ``REPRO_TRACE`` and ``REPRO_JOURNAL`` from the worker's
    environment: the worker traces into a per-task capture buffer shipped
    back on the result, and journaling belongs to the coordinating parent
    — a worker that journaled its nested serial sweeps would interleave
    garbage into the campaign manifest.
    """
    global _IN_POOL_WORKER, _STARTED_Q
    from repro.runtime import config as _config

    _IN_POOL_WORKER = True
    _STARTED_Q = started_q
    os.environ.pop("REPRO_TRACE", None)
    os.environ.pop("REPRO_JOURNAL", None)
    _config.configure(parallel=0, progress=False)


def _bank_audit(label: str, summary: Optional[dict]) -> None:
    """Feed a task's audit verdict to the session aggregate (CLI report)."""
    if summary is not None:
        from repro import audit
        audit.record_task_summary(label, summary)


def _bank_profile(label: str, summary: Optional[dict]) -> None:
    """Feed a task's profile summary to the session aggregate (CLI report)."""
    if summary is not None:
        from repro.perf import profile as perf_profile
        perf_profile.record_task_summary(label, summary)


def _bank_metrics(label: str, summary: Optional[dict]) -> None:
    """Feed a task's metrics summary to the session aggregate (CLI report)."""
    if summary is not None:
        from repro import obs
        obs.record_task_summary(label, summary)


def _is_pickling_error(exc: BaseException) -> bool:
    if isinstance(exc, (pickle.PicklingError, pickle.UnpicklingError)):
        return True
    return isinstance(exc, (TypeError, AttributeError)) and "pickle" in str(exc).lower()


def run_tasks(
    tasks: Union[SweepPlan, Sequence[TaskSpec]],
    name: str = "",
    config: Optional[RuntimeConfig] = None,
    telemetry: Optional[Telemetry] = None,
) -> List[TaskResult]:
    """Execute tasks under the active config; results ordered by task index."""
    if isinstance(tasks, SweepPlan):
        specs = list(tasks.tasks)
        name = name or tasks.name
    else:
        specs = list(tasks)
        name = name or "sweep"
    config = config or get_config()
    tel = telemetry or Telemetry(name, len(specs),
                                 jsonl_path=config.telemetry_path,
                                 progress=config.progress)
    from repro.obs import trace as obs_trace
    trace_on = config.trace or obs_trace.emit_target() is not None

    cache = None
    if config.cache_enabled:
        cache = ResultCache(config.resolved_cache_dir(),
                            config.max_cache_bytes, config.max_cache_entries)

    jr = run_journal.current()
    if jr is not None:
        jr.note("sweep", name=name, total=len(specs))

    results: List[Optional[TaskResult]] = [None] * len(specs)
    keys: Dict[int, str] = {}
    pending: List[int] = []
    for i, spec in enumerate(specs):
        tel.task_queued(i, spec.label)
        if cache is not None:
            keys[i] = cache.key_for(spec)
            hit, value = cache.get(keys[i])
            if hit:
                results[i] = TaskResult(i, spec.label, value=value,
                                        cached=True)
                tel.cache_hit(i, spec.label)
                if jr is not None:
                    jr.task(i, "done", spec.label, key=keys[i], cached=True)
                continue
            tel.cache_miss(i, spec.label)
        if jr is not None:
            jr.task(i, "queued", spec.label, key=keys.get(i))
        pending.append(i)

    if pending and config.parallel >= 2 and not shutdown.shutdown_requested():
        pending = _run_pool(specs, pending, results, config, tel, cache,
                            keys, trace_on)
    if pending:
        _run_serial(specs, pending, results, config, tel, cache, keys,
                    trace_on)

    # A drain may leave tasks unexecuted (cancelled, deferred, or never
    # reached).  Every index still gets a real TaskResult so callers that
    # zip results against their own task lists stay aligned.
    signame = shutdown.shutdown_requested()
    if signame:
        for i, spec in enumerate(specs):
            if results[i] is None:
                _mark_interrupted(results, i, spec.label, signame, tel)

    tel.close()
    return [r for r in results if r is not None]


def _mark_interrupted(results, index: int, label: str, signame: str,
                      tel: Telemetry, attempts: int = 0) -> None:
    results[index] = TaskResult(index, label,
                                error=f"interrupted ({signame})",
                                interrupted=True, attempts=attempts)
    tel.task_interrupted(index, label, signame)
    jr = run_journal.current()
    if jr is not None:
        jr.task(index, "interrupted", label, signal=signame)


def _store(cache: Optional[ResultCache], keys: Dict[int, str], index: int,
           spec: TaskSpec, value: Any, wall_s: float) -> None:
    if cache is not None:
        cache.put(keys[index], value, task=spec.identity, elapsed_s=wall_s)


def _run_serial(specs, indices, results, config, tel, cache, keys,
                trace_on: bool = False) -> None:
    jr = run_journal.current()
    for i in indices:
        spec = specs[i]
        signame = shutdown.shutdown_requested()
        if signame:
            _mark_interrupted(results, i, spec.label, signame, tel)
            continue
        attempts = 0
        while True:
            attempts += 1
            tel.task_started(i, spec.label, attempts)
            if jr is not None:
                jr.task(i, "running", spec.label, attempt=attempts)
            start = time.monotonic()
            try:
                (value, audit_summary, profile_summary, metrics_summary,
                 trace_report) = _call(spec, config.audit, config.profile,
                                       config.metrics, trace_on)
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                if attempts <= config.retries \
                        and not shutdown.shutdown_requested():
                    tel.task_retry(i, spec.label, attempts, error)
                    backoff = config.backoff_s * (2 ** (attempts - 1))
                    tel.task_deferred(i, spec.label, backoff)
                    time.sleep(backoff)
                    tel.task_resubmitted(i, spec.label, attempts + 1)
                    continue
                results[i] = TaskResult(i, spec.label, error=error,
                                        attempts=attempts,
                                        wall_s=time.monotonic() - start)
                tel.task_failed(i, spec.label, error, attempts)
                if jr is not None:
                    jr.task(i, "failed", spec.label, error=error,
                            attempts=attempts)
                break
            wall = time.monotonic() - start
            results[i] = TaskResult(i, spec.label, value=value,
                                    attempts=attempts, wall_s=wall,
                                    audit=audit_summary,
                                    profile=profile_summary,
                                    metrics=metrics_summary,
                                    trace=trace_report)
            _bank_audit(spec.label, audit_summary)
            _bank_profile(spec.label, profile_summary)
            _bank_metrics(spec.label, metrics_summary)
            tel.task_trace(i, trace_report)
            _store(cache, keys, i, spec, value, wall)
            tel.task_done(i, spec.label, wall)
            if jr is not None:
                jr.task(i, "done", spec.label, key=keys.get(i),
                        wall_s=round(wall, 6), cached=False)
            if selfchaos.armed():
                if selfchaos.fire("parent:kill", count=tel.counts["done"]):
                    selfchaos.kill_self()
                if selfchaos.fire("parent:int", count=tel.counts["done"]):
                    selfchaos.interrupt_self()
            break


def _kill_pool(pool) -> int:
    """Tear a pool down *hard*: SIGKILL workers, reap them, return count.

    ``shutdown(wait=False)`` alone leaves abandoned (timed-out) workers
    burning CPU until their tasks finish — and blocks interpreter exit on
    the concurrent.futures atexit join.  ``_processes`` is a private but
    long-stable attribute (3.8–3.13); when absent we fall back to a plain
    shutdown.
    """
    procs = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    killed = 0
    for proc in procs:
        if proc.is_alive():
            proc.kill()
            killed += 1
    for proc in procs:
        proc.join(timeout=5)
    return killed


def _run_pool(specs, indices, results, config, tel, cache, keys,
              trace_on: bool = False) -> List[int]:
    """Run ``indices`` on a process pool; returns indices left for serial."""
    try:
        started_q = multiprocessing.SimpleQueue()
        pool = futures.ProcessPoolExecutor(max_workers=config.parallel,
                                           initializer=_worker_init,
                                           initargs=(started_q,))
    except (OSError, ValueError) as exc:
        tel.degraded(f"cannot start process pool: {exc}")
        return indices

    jr = run_journal.current()
    attempts = {i: 0 for i in indices}
    inflight: Dict[futures.Future, tuple] = {}  # future -> (index, t_submit)
    #: index -> monotonic deadline for a backoff-deferred resubmission.
    #: Retries never sleep on the dispatcher thread — an inline sleep would
    #: stall collection of completed futures and inflate every other
    #: inflight task's submission-measured timeout — they park here and the
    #: wait loop resubmits them when their deadline passes.
    deferred: Dict[int, float] = {}
    leftovers: List[int] = []
    #: Timed-out futures whose cancel() failed: their workers are still
    #: burning CPU on results nobody wants.  Past a threshold the pool is
    #: recycled (workers SIGKILLed, fresh pool, queued tasks resubmitted).
    abandoned = 0
    #: index -> times a queued-but-never-started future was timeout-cancelled
    #: and put back with a fresh clock.  A task stuck behind hung workers
    #: hasn't spent its own budget; bounded so a wedged pool that never
    #: recycles still terminates instead of lapping forever.
    queue_laps: Dict[int, int] = {}
    #: ``(index, attempt)`` tokens reported by workers the moment they
    #: begin executing a task.  ``Future.cancel()`` alone cannot tell a
    #: running task from one prefetched into the executor's call queue
    #: (both read RUNNING), so the watchdog consults this set before
    #: charging anyone a timeout.
    started: set = set()

    def drain_started() -> None:
        # Called every wait-loop iteration, timeout or no timeout: workers
        # put a marker per task unconditionally, and an undrained
        # SimpleQueue wedges every worker once the pipe buffer (~64KiB)
        # fills — a put() blocks holding the queue's write lock.
        while not started_q.empty():
            started.add(started_q.get())

    drain_deadline: Optional[float] = None

    def submit(i: int) -> None:
        attempts[i] += 1
        tel.task_started(i, specs[i].label, attempts[i])
        if jr is not None:
            jr.task(i, "running", specs[i].label, attempt=attempts[i])
        fut = pool.submit(_call, specs[i], config.audit, config.profile,
                          config.metrics, trace_on,
                          token=(i, attempts[i]))
        inflight[fut] = (i, time.monotonic())

    def record_failure(i: int, error: str, wall_s: float = 0.0,
                       retryable: bool = True) -> None:
        if retryable and attempts[i] <= config.retries \
                and not shutdown.shutdown_requested():
            tel.task_retry(i, specs[i].label, attempts[i], error)
            backoff = config.backoff_s * (2 ** (attempts[i] - 1))
            deferred[i] = time.monotonic() + backoff
            tel.task_deferred(i, specs[i].label, backoff)
        else:
            results[i] = TaskResult(i, specs[i].label, error=error,
                                    attempts=attempts[i], wall_s=wall_s)
            tel.task_failed(i, specs[i].label, error, attempts[i])
            if jr is not None:
                jr.task(i, "failed", specs[i].label, error=error,
                        attempts=attempts[i])

    try:
        for i in indices:
            submit(i)
        while inflight or deferred:
            signame = shutdown.shutdown_requested()
            if signame:
                # Drain: never start new work, cancel whatever is still
                # queued, give running tasks a grace window to bank their
                # results, then abandon the stragglers.
                for i in list(deferred):
                    del deferred[i]
                    _mark_interrupted(results, i, specs[i].label, signame,
                                      tel, attempts=attempts[i])
                for fut, (i, _t) in list(inflight.items()):
                    if fut.cancel():
                        inflight.pop(fut)
                        _mark_interrupted(results, i, specs[i].label,
                                          signame, tel,
                                          attempts=attempts[i])
                if drain_deadline is None:
                    drain_deadline = time.monotonic() + shutdown.DRAIN_GRACE_S
                elif inflight and time.monotonic() > drain_deadline:
                    for fut, (i, _t) in list(inflight.items()):
                        if not fut.cancel():
                            # Still running: its worker keeps grinding on a
                            # result nobody wants.  Counting it routes the
                            # finally block through _kill_pool, so the
                            # grace deadline actually bounds shutdown time
                            # instead of handing the wait to the
                            # interpreter's atexit join.
                            abandoned += 1
                        inflight.pop(fut)
                        _mark_interrupted(results, i, specs[i].label,
                                          signame, tel,
                                          attempts=attempts[i])
                if not inflight:
                    break
            wait_s = 0.1
            if deferred:
                next_due = min(deferred.values()) - time.monotonic()
                wait_s = min(wait_s, max(0.0, next_due))
            if inflight:
                done, _ = futures.wait(set(inflight), timeout=wait_s,
                                       return_when=futures.FIRST_COMPLETED)
            else:
                done = set()
                time.sleep(wait_s)
            now = time.monotonic()
            for i in [j for j, due in deferred.items() if due <= now]:
                del deferred[i]
                tel.task_resubmitted(i, specs[i].label, attempts[i] + 1)
                submit(i)
            drain_started()
            if config.task_timeout_s is not None:
                for fut, (i, t_submit) in list(inflight.items()):
                    if fut in done or now - t_submit <= config.task_timeout_s:
                        continue
                    if (i, attempts[i]) not in started \
                            and queue_laps.get(i, 0) < _QUEUE_LAPS:
                        # No worker ever began this task: it is stuck in
                        # the executor's queue behind hung workers.  That
                        # is the pool's fault, not the task's — don't
                        # charge it the timeout.  If the cancel lands,
                        # requeue it with a fresh clock; if it doesn't
                        # (prefetched into the call queue, which marks the
                        # future RUNNING), leave it for the recycle sweep
                        # to pull back.
                        queue_laps[i] = queue_laps.get(i, 0) + 1
                        if fut.cancel():
                            inflight.pop(fut)
                            nfut = pool.submit(_call, specs[i], config.audit,
                                               config.profile, config.metrics,
                                               trace_on,
                                               token=(i, attempts[i]))
                            inflight[nfut] = (i, time.monotonic())
                        else:
                            # Still parked in the call queue: restart its
                            # clock so each lap costs a full timeout, not
                            # one watchdog sweep.
                            inflight[fut] = (i, now)
                        continue
                    if not fut.cancel():  # already running: result abandoned
                        abandoned += 1
                    inflight.pop(fut)
                    record_failure(
                        i, f"timeout after {config.task_timeout_s:g}s",
                        wall_s=now - t_submit)
                if abandoned >= _recycle_after() \
                        and not any((i, attempts[i]) in started
                                    for i, _t in inflight.values()):
                    # Reclaim the capacity the abandoned workers are
                    # burning: nothing still inflight has actually started
                    # (whatever their futures claim, no worker reported
                    # them), so pull everything back, SIGKILL the pool,
                    # and resubmit on a fresh one.
                    requeue = []
                    for fut, (i, _t_submit) in list(inflight.items()):
                        fut.cancel()
                        inflight.pop(fut)
                        requeue.append(i)
                    killed = _kill_pool(pool)
                    tel.pool_recycled(killed=killed, abandoned=abandoned)
                    abandoned = 0
                    try:
                        # Fresh marker queue with the fresh pool: a worker
                        # SIGKILLed mid-put could leave the old queue's
                        # write lock held forever.
                        started_q = multiprocessing.SimpleQueue()
                        pool = futures.ProcessPoolExecutor(
                            max_workers=config.parallel,
                            initializer=_worker_init,
                            initargs=(started_q,))
                    except (OSError, ValueError) as exc:
                        tel.degraded(f"cannot restart process pool: {exc}")
                        leftovers = [j for j in attempts
                                     if results[j] is None]
                        inflight.clear()
                        deferred.clear()
                        break
                    for i in requeue:
                        # Same attempt, fresh submission clock: the task
                        # never ran on the dead pool, it just moves to the
                        # new queue, so its timeout budget starts over.
                        fut = pool.submit(_call, specs[i], config.audit,
                                          config.profile, config.metrics,
                                          trace_on,
                                          token=(i, attempts[i]))
                        inflight[fut] = (i, time.monotonic())
            for fut in done:
                if fut not in inflight:
                    continue
                i, t_submit = inflight.pop(fut)
                try:
                    (value, audit_summary, profile_summary,
                     metrics_summary, trace_report) = fut.result()
                except BrokenProcessPool as exc:
                    tel.degraded(f"worker pool broke: {exc}")
                    leftovers = [j for j in attempts if results[j] is None]
                    inflight.clear()
                    deferred.clear()
                    break
                except futures.CancelledError:
                    continue  # handled by the timeout branch above
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    if _is_pickling_error(exc):
                        # The pool can never run this task; hand it to the
                        # serial path instead of burning retries.
                        tel.degraded(
                            f"task#{i} {specs[i].label} not picklable")
                        leftovers.append(i)
                    else:
                        record_failure(i, error, wall_s=now - t_submit)
                    continue
                wall = now - t_submit
                results[i] = TaskResult(i, specs[i].label, value=value,
                                        attempts=attempts[i], wall_s=wall,
                                        audit=audit_summary,
                                        profile=profile_summary,
                                        metrics=metrics_summary,
                                        trace=trace_report)
                _bank_audit(specs[i].label, audit_summary)
                _bank_profile(specs[i].label, profile_summary)
                _bank_metrics(specs[i].label, metrics_summary)
                tel.task_trace(i, trace_report)
                _store(cache, keys, i, specs[i], value, wall)
                tel.task_done(i, specs[i].label, wall)
                if jr is not None:
                    jr.task(i, "done", specs[i].label, key=keys.get(i),
                            wall_s=round(wall, 6), cached=False)
                if selfchaos.armed():
                    if selfchaos.fire("parent:kill",
                                      count=tel.counts["done"]):
                        selfchaos.kill_self()
                    if selfchaos.fire("parent:int",
                                      count=tel.counts["done"]):
                        selfchaos.interrupt_self()
    finally:
        if abandoned:
            # Loop ended with workers still grinding on abandoned results;
            # without the kill, the interpreter's atexit join would block
            # on them.
            tel.pool_recycled(killed=_kill_pool(pool), abandoned=abandoned)
        else:
            pool.shutdown(wait=False, cancel_futures=True)
    return leftovers

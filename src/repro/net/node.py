"""Base class for network nodes (switches and hosts)."""

from __future__ import annotations

from typing import Dict, List

from repro.net.packet import Packet
from repro.sim.engine import Simulator


class Node:
    """A device with egress ports toward its neighbors.

    ``ports[neighbor_id]`` is the egress :class:`~repro.net.port.Port` toward
    that neighbor.  ``neighbors`` is kept sorted by node id so that ECMP
    next-hop lists have the deterministic ordering the paper requires for
    symmetric routing.
    """

    def __init__(self, sim: Simulator, node_id: int, name: str = ""):
        self.sim = sim
        self.id = node_id
        self.name = name or f"node{node_id}"
        self.ports: Dict[int, "Port"] = {}
        self.neighbors: List[int] = []

    def attach_port(self, port) -> None:
        self.ports[port.peer.id] = port
        self.neighbors.append(port.peer.id)
        self.neighbors.sort()

    def receive(self, pkt: Packet, from_port) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"

"""Packet tracing: capture per-port transmit events for debugging/analysis.

A :class:`PortTracer` wraps a port's ``_transmit`` and records
``(time_ps, kind, src, dst, seq, wire_bytes)`` tuples — a minimal pcap
analog that tests and notebooks can assert against or dump as text::

    tracer = PortTracer(port)
    ...
    tracer.records[:5]
    print(tracer.format())

Tracing costs one extra function call per packet on the traced port only;
untraced ports are unaffected.  Tracers *compose*: tracing a port that
already has a transmit hook (another tracer, an audit observer) chains the
existing hook rather than replacing it, and :meth:`PortTracer.detach`
restores it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Callable, List, Optional

from repro.net.packet import Packet, PacketKind
from repro.net.port import Port
from repro.sim.units import fmt_time


@dataclass(frozen=True)
class TraceRecord:
    time_ps: int
    kind: str
    src: int
    dst: int
    seq: int
    credit_seq: int
    wire_bytes: int

    def __str__(self) -> str:
        return (f"{fmt_time(self.time_ps):>12s}  {self.kind:<14s} "
                f"{self.src}->{self.dst} seq={self.seq} "
                f"cseq={self.credit_seq} {self.wire_bytes}B")


class PortTracer:
    """Records every packet a port puts on the wire."""

    def __init__(self, port: Port, keep: Optional[int] = None,
                 predicate: Optional[Callable[[Packet], bool]] = None):
        self.port = port
        self.keep = keep
        self.predicate = predicate
        self.records: List[TraceRecord] = []
        self._active = True
        # Chain rather than replace: any hook already on the port (another
        # tracer, an audit probe) still sees every packet.  The bound method
        # is pinned so detach() can compare identity.
        self._prev = port.on_transmit
        self._hook = self._record
        port.on_transmit = self._hook

    def _record(self, pkt: Packet) -> None:
        if self._prev is not None:
            self._prev(pkt)
        if not self._active:
            return
        if self.predicate is None or self.predicate(pkt):
            self.records.append(TraceRecord(
                time_ps=self.port.sim.now,
                kind=PacketKind(pkt.kind).name,
                src=pkt.src,
                dst=pkt.dst,
                seq=pkt.seq,
                credit_seq=pkt.credit_seq,
                wire_bytes=pkt.wire_bytes,
            ))
            if self.keep is not None and len(self.records) > self.keep:
                del self.records[0]

    def detach(self) -> None:
        """Stop recording and unchain, restoring any wrapped hook.

        If another hook was installed on top of this tracer after it
        attached, the chain cannot be unlinked in place; recording simply
        stops while the chain keeps forwarding.
        """
        self._active = False
        if self.port.on_transmit is self._hook:
            self.port.on_transmit = self._prev

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.records)
        return sum(1 for r in self.records if r.kind == kind)

    def format(self, limit: int = 50) -> str:
        lines = [str(r) for r in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... {len(self.records) - limit} more")
        return "\n".join(lines)

    def to_jsonl(self, path) -> int:
        """Dump every record as one JSON object per line; returns count.

        The output round-trips through :meth:`from_jsonl`, so traces can be
        saved from one run and diffed against another outside the golden
        test harness.
        """
        with open(path, "w") as fh:
            for r in self.records:
                fh.write(json.dumps(asdict(r)) + "\n")
        return len(self.records)

    @staticmethod
    def from_jsonl(path) -> List[TraceRecord]:
        """Reload a :meth:`to_jsonl` dump as a list of records."""
        records: List[TraceRecord] = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(TraceRecord(**json.loads(line)))
        return records

"""Full-duplex link construction."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.node import Node
from repro.net.port import Port
from repro.sim.engine import Simulator


def connect(
    sim: Simulator,
    a: Node,
    b: Node,
    rate_bps: int,
    prop_delay_ps: int,
    data_capacity_bytes: int,
    credit_capacity_pkts: int = 8,
    ecn_threshold_bytes: Optional[int] = None,
) -> Tuple[Port, Port]:
    """Create a full-duplex link between ``a`` and ``b``.

    Returns ``(port_a_to_b, port_b_to_a)``.  Both directions share rate,
    propagation delay, and buffer configuration — per-direction asymmetry is
    not needed by any experiment in the paper.
    """
    ab = Port(sim, a, b, rate_bps, prop_delay_ps, data_capacity_bytes,
              credit_capacity_pkts, ecn_threshold_bytes)
    ba = Port(sim, b, a, rate_bps, prop_delay_ps, data_capacity_bytes,
              credit_capacity_pkts, ecn_threshold_bytes)
    a.attach_port(ab)
    b.attach_port(ba)
    return ab, ba

"""Fault injection: controlled packet loss and corruption-like drops.

Testing reliability machinery needs *repeatable* misbehaviour.  A
:class:`LossInjector` attaches to a port and silently discards packets
according to a policy, before they reach the queues (as if the wire ate
them).  Policies compose:

* ``probability=p`` — Bernoulli loss from a seeded stream,
* ``every_nth=n`` — deterministic periodic loss,
* ``match=...`` — restrict to packets satisfying a predicate
  (e.g. only data, only one flow, only seq < 10).

Dropped packets are counted and optionally reported to their flow (by
default they are *silent* — modelling corruption, the hardest case for a
transport, since no drop signal exists).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.net.port import Port


class LossInjector:
    """Discards a controlled subset of packets entering a port."""

    def __init__(
        self,
        port: Port,
        probability: float = 0.0,
        every_nth: Optional[int] = None,
        match: Optional[Callable[[Packet], bool]] = None,
        notify_flows: bool = False,
        rng=None,
    ):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if every_nth is not None and every_nth < 1:
            raise ValueError("every_nth must be >= 1")
        if probability > 0 and rng is None:
            rng = port.sim.rng("fault-injector")
        self.port = port
        self.probability = probability
        self.every_nth = every_nth
        self.match = match
        self.notify_flows = notify_flows
        self.rng = rng
        self.seen = 0
        self.dropped = 0
        self._attached = True
        port.add_drop_filter(self._filter)

    def _filter(self, pkt: Packet) -> bool:
        """Port hook: True = discard the packet."""
        if self.match is not None and not self.match(pkt):
            return False
        self.seen += 1
        drop = False
        if self.every_nth is not None and self.seen % self.every_nth == 0:
            drop = True
        elif self.probability > 0 and self.rng.random() < self.probability:
            drop = True
        if drop:
            self.dropped += 1
            if self.notify_flows and pkt.flow is not None:
                if pkt.is_credit:
                    pkt.flow.on_credit_dropped(pkt, self.port)
                else:
                    pkt.flow.on_data_dropped(pkt, self.port)
        return drop

    def detach(self) -> None:
        """Remove this injector's filter only — other filters installed on
        the port (more injectors, chaos faults) stay in place.  Idempotent.
        """
        if self._attached:
            self._attached = False
            self.port.remove_drop_filter(self._filter)

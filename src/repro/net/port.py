"""Egress port: one direction of a full-duplex link.

A :class:`Port` belongs to a node and transmits toward a single peer.  It
owns the egress queues (data + credit), the credit token bucket, and the
transmitter state machine.  Scheduling policy (ExpressPass §3.1):

* credit packets are drained through a token bucket filled at
  84/1622 ≈ 5.18 % of link rate with a burst of 2 credit packets —
  "maximum bandwidth metering" in Broadcom terms;
* when the line goes idle, a credit is sent if the bucket allows it,
  otherwise the head data packet; if only credits wait but tokens are short,
  the transmitter sleeps exactly until the bucket refills.

Optional per-port attachments (`phantom`, `rcp_controller`) let HULL and RCP
reuse the same port without burdening the common path.
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import (
    CREDIT_RATE_FRACTION_DEN,
    CREDIT_RATE_FRACTION_NUM,
    CREDIT_WIRE_MAX,
    Packet,
)
from repro.net.queues import CreditQueue, DataQueue, PhantomQueue, TokenBucket
from repro.sim.engine import Simulator
from repro.sim.units import tx_time_ps


class PortStats:
    """Egress counters for utilization and loss reporting."""

    __slots__ = ("data_bytes_sent", "credit_bytes_sent", "data_pkts_sent",
                 "credit_pkts_sent", "busy_ps")

    def __init__(self):
        self.data_bytes_sent = 0
        self.credit_bytes_sent = 0
        self.data_pkts_sent = 0
        self.credit_pkts_sent = 0
        self.busy_ps = 0


class Port:
    """One egress direction of a link; see module docstring."""

    __slots__ = (
        "sim", "node", "peer", "rate_bps", "prop_delay_ps",
        "data_queue", "credit_queue", "credit_bucket",
        "lowprio_queue",
        "phantom", "rcp_controller", "on_transmit", "on_enqueue",
        "pfc", "pfc_paused", "up", "drop_filter",
        "stats", "_busy", "_wake_event",
    )

    def __init__(
        self,
        sim: Simulator,
        node,
        peer,
        rate_bps: int,
        prop_delay_ps: int,
        data_capacity_bytes: int,
        credit_capacity_pkts: int = 8,
        ecn_threshold_bytes: Optional[int] = None,
    ):
        self.sim = sim
        self.node = node
        self.peer = peer
        self.rate_bps = rate_bps
        self.prop_delay_ps = prop_delay_ps
        self.data_queue = DataQueue(data_capacity_bytes, ecn_threshold_bytes)
        self.credit_queue = CreditQueue(credit_capacity_pkts)
        credit_rate = rate_bps * CREDIT_RATE_FRACTION_NUM // CREDIT_RATE_FRACTION_DEN
        self.credit_bucket = TokenBucket(credit_rate, burst_bytes=2 * CREDIT_WIRE_MAX)
        # Low-priority queue for opportunistic (uncredited) data, created on
        # first use (§7 / RC3-style extension).  Strictly below normal data.
        self.lowprio_queue: Optional[DataQueue] = None
        self.phantom: Optional[PhantomQueue] = None
        self.rcp_controller = None
        #: Optional hook called with each packet as it hits the wire
        #: (used by :class:`repro.net.trace.PortTracer`).
        self.on_transmit = None
        #: Optional hook called as ``on_enqueue(pkt, accepted)`` after each
        #: enqueue decision (used by :class:`repro.audit.NetworkAuditor` to
        #: bound queue occupancy).  Installers must chain any prior hook.
        self.on_enqueue = None
        #: Priority flow control (802.1Qbb analog): ``pfc`` is the installed
        #: controller watching this port's data queue; ``pfc_paused`` is set
        #: by the *peer* to stop our data (credits/control keep flowing, as
        #: PFC pauses per traffic class).
        self.pfc = None
        self.pfc_paused = False
        #: Administrative/link state.  A down port drops everything handed to
        #: it (packets already in flight on the wire still arrive).
        self.up = True
        #: Optional fault-injection hook: called with each packet entering
        #: the port; returning True silently discards it
        #: (:class:`repro.net.fault.LossInjector`).
        self.drop_filter = None
        self.stats = PortStats()
        self._busy = False
        self._wake_event = None

    # -- naming ------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"{self.node.name}->{self.peer.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.name} {self.rate_bps / 1e9:g}Gbps>"

    # -- ingress side of the egress object ----------------------------------
    def send(self, pkt: Packet) -> bool:
        """Enqueue ``pkt`` for transmission; returns False if it was dropped."""
        if self.drop_filter is not None and self.drop_filter(pkt):
            return False
        if not self.up:
            if pkt.is_credit:
                if pkt.flow is not None:
                    pkt.flow.on_credit_dropped(pkt, self)
            elif pkt.flow is not None:
                pkt.flow.on_data_dropped(pkt, self)
            return False
        now = self.sim.now
        if pkt.is_credit:
            ok = self.credit_queue.enqueue(pkt, now)
            if not ok and pkt.flow is not None:
                pkt.flow.on_credit_dropped(pkt, self)
        elif pkt.low_priority:
            if self.lowprio_queue is None:
                self.lowprio_queue = DataQueue(self.data_queue.capacity_bytes)
            ok = self.lowprio_queue.enqueue(pkt, now)
            if not ok and pkt.flow is not None:
                pkt.flow.on_data_dropped(pkt, self)
        else:
            if self.phantom is not None:
                self.phantom.on_arrival(pkt, now)
            if self.rcp_controller is not None:
                self.rcp_controller.on_arrival(pkt, now)
            ok = self.data_queue.enqueue(pkt, now)
            if not ok and pkt.flow is not None:
                pkt.flow.on_data_dropped(pkt, self)
            if ok and self.pfc is not None:
                self.pfc.on_queue_change(self)
        if self.on_enqueue is not None:
            self.on_enqueue(pkt, ok)
        if ok:
            self._try_send()
        return ok

    # -- transmitter ---------------------------------------------------------
    def _try_send(self) -> None:
        if self._busy:
            return
        now = self.sim.now
        head = self.credit_queue.head()
        # Byte-based metering: a jittered 84..92 B credit consumes its actual
        # wire size, so successive credit drain slots vary by a few percent.
        # This is the switch-level jitter the paper creates by randomizing
        # credit sizes (§3.1) — it de-synchronizes which flow's credit wins
        # each free queue slot, making drops uniform across flows.
        if head is not None and self.credit_bucket.try_consume(head.wire_bytes, now):
            self._transmit(self.credit_queue.dequeue(now))
            return
        if not self.pfc_paused:
            pkt = self.data_queue.dequeue(now)
            if pkt is not None:
                if self.pfc is not None:
                    self.pfc.on_queue_change(self)
                self._transmit(pkt)
                return
        if self.lowprio_queue is not None and not self.pfc_paused:
            pkt = self.lowprio_queue.dequeue(now)
            if pkt is not None:
                self._transmit(pkt)
                return
        if head is not None:
            # Only credits wait; sleep until the bucket has refilled.
            wait = self.credit_bucket.time_until(head.wire_bytes, now)
            if self._wake_event is not None:
                self._wake_event.cancel()
            self._wake_event = self.sim.schedule(max(wait, 1), self._wake)

    def _wake(self) -> None:
        self._wake_event = None
        self._try_send()

    def _transmit(self, pkt: Packet) -> None:
        if self.on_transmit is not None:
            self.on_transmit(pkt)
        self._busy = True
        if self._wake_event is not None:
            self._wake_event.cancel()
            self._wake_event = None
        tx = tx_time_ps(pkt.wire_bytes, self.rate_bps)
        if pkt.is_credit:
            self.stats.credit_bytes_sent += pkt.wire_bytes
            self.stats.credit_pkts_sent += 1
        else:
            self.stats.data_bytes_sent += pkt.wire_bytes
            self.stats.data_pkts_sent += 1
        self.stats.busy_ps += tx
        self.sim.schedule(tx, self._tx_done)
        self.sim.schedule(tx + self.prop_delay_ps, self.peer.receive, pkt, self)

    def _tx_done(self) -> None:
        self._busy = False
        self._try_send()

    def set_pfc_paused(self, paused: bool) -> None:
        """Called by the peer's PFC controller (after wire delay)."""
        if self.pfc_paused and not paused:
            self.pfc_paused = False
            self._try_send()
        else:
            self.pfc_paused = paused

    # -- reporting -----------------------------------------------------------
    def utilization(self, interval_ps: int) -> float:
        """Fraction of ``interval_ps`` the line spent transmitting."""
        return self.stats.busy_ps / interval_ps if interval_ps > 0 else 0.0

    def data_throughput_bps(self, interval_ps: int) -> float:
        """Average delivered data rate (wire bytes) over ``interval_ps``."""
        if interval_ps <= 0:
            return 0.0
        return self.stats.data_bytes_sent * 8 * 1e12 / interval_ps

"""Egress port: one direction of a full-duplex link.

A :class:`Port` belongs to a node and transmits toward a single peer.  It
owns the egress queues (data + credit), the credit token bucket, and the
transmitter state machine.  Scheduling policy (ExpressPass §3.1):

* credit packets are drained through a token bucket filled at
  84/1622 ≈ 5.18 % of link rate with a burst of 2 credit packets —
  "maximum bandwidth metering" in Broadcom terms;
* when the line goes idle, a credit is sent if the bucket allows it,
  otherwise the head data packet; if only credits wait but tokens are short,
  the transmitter sleeps exactly until the bucket refills.

Optional per-port attachments (``phantom``, ``rcp_controller``, ``pfc``,
hooks, fault filters) let HULL, RCP, PFC, tracing, and fault injection reuse
the same port without burdening the common path: attachments are exposed as
properties that maintain a precomputed flags word, and while the word is
zero the transmitter takes a fast path that skips every attachment check
(:mod:`repro.perf`).  The fast and checked paths are behaviour-identical —
golden traces do not move when the fast path is disabled.
"""

from __future__ import annotations

from typing import Optional

from repro import perf
from repro.net.packet import (
    CREDIT_RATE_FRACTION_DEN,
    CREDIT_RATE_FRACTION_NUM,
    CREDIT_WIRE_MAX,
    Packet,
)
from repro.net.queues import CreditQueue, DataQueue, PhantomQueue, TokenBucket
from repro.sim.engine import Simulator
from repro.sim.units import tx_time_ps

# Flags-word bits: any nonzero bit routes send/_try_send to the fully
# checked slow path.  Kept private; tests introspect ``port._flags``.
_F_DOWN = 1 << 0
_F_DROP_FILTER = 1 << 1
_F_PHANTOM = 1 << 2
_F_RCP = 1 << 3
_F_PFC = 1 << 4
_F_PAUSED = 1 << 5
_F_ON_TRANSMIT = 1 << 6
_F_ON_ENQUEUE = 1 << 7
_F_LOWPRIO = 1 << 8
_F_NO_FASTPATH = 1 << 9


class PortStats:
    """Egress counters for utilization and loss reporting."""

    __slots__ = ("data_bytes_sent", "credit_bytes_sent", "data_pkts_sent",
                 "credit_pkts_sent", "busy_ps")

    def __init__(self):
        self.data_bytes_sent = 0
        self.credit_bytes_sent = 0
        self.data_pkts_sent = 0
        self.credit_pkts_sent = 0
        self.busy_ps = 0


class Port:
    """One egress direction of a link; see module docstring."""

    __slots__ = (
        "sim", "node", "peer", "rate_bps", "prop_delay_ps",
        "data_queue", "credit_queue", "credit_bucket",
        "_lowprio_queue",
        "_phantom", "_rcp_controller", "_on_transmit", "_on_enqueue",
        "_pfc", "_pfc_paused", "_up", "_drop_filter", "_drop_filters", "_obs",
        "stats", "_busy", "_wake_event", "_flags", "_tx_cache",
    )

    def __init__(
        self,
        sim: Simulator,
        node,
        peer,
        rate_bps: int,
        prop_delay_ps: int,
        data_capacity_bytes: int,
        credit_capacity_pkts: int = 8,
        ecn_threshold_bytes: Optional[int] = None,
    ):
        self.sim = sim
        self.node = node
        self.peer = peer
        self.rate_bps = rate_bps
        self.prop_delay_ps = prop_delay_ps
        # Queues and the credit meter observe time from the port's birth, so
        # ports added mid-simulation keep exact occupancy/rate accounting.
        born = sim.now
        self.data_queue = DataQueue(data_capacity_bytes, ecn_threshold_bytes,
                                    birth_ps=born)
        self.credit_queue = CreditQueue(credit_capacity_pkts, birth_ps=born)
        credit_rate = rate_bps * CREDIT_RATE_FRACTION_NUM // CREDIT_RATE_FRACTION_DEN
        self.credit_bucket = TokenBucket(credit_rate,
                                         burst_bytes=2 * CREDIT_WIRE_MAX,
                                         now_ps=born)
        # Low-priority queue for opportunistic (uncredited) data, created on
        # first use (§7 / RC3-style extension).  Strictly below normal data.
        self._lowprio_queue: Optional[DataQueue] = None
        self._phantom: Optional[PhantomQueue] = None
        self._rcp_controller = None
        self._on_transmit = None
        self._on_enqueue = None
        self._pfc = None
        self._pfc_paused = False
        self._up = True
        self._drop_filter = None
        self._drop_filters: list = []
        self._obs = None
        self.stats = PortStats()
        self._busy = False
        self._wake_event = None
        #: Per-size serialization-delay memo (the port's rate is fixed).
        self._tx_cache = {}
        self._flags = 0
        self._refresh_flags()

    # -- attachments ---------------------------------------------------------
    # Each optional attachment is a property over a slot so assignment (the
    # public idiom: ``port.phantom = PhantomQueue(...)``) keeps the flags
    # word in sync.  The hot path reads the underscore slots directly.

    def _refresh_flags(self) -> None:
        flags = 0 if perf.FASTPATH_ENABLED else _F_NO_FASTPATH
        if not self._up:
            flags |= _F_DOWN
        if self._drop_filter is not None:
            flags |= _F_DROP_FILTER
        if self._phantom is not None:
            flags |= _F_PHANTOM
        if self._rcp_controller is not None:
            flags |= _F_RCP
        if self._pfc is not None:
            flags |= _F_PFC
        if self._pfc_paused:
            flags |= _F_PAUSED
        if self._on_transmit is not None:
            flags |= _F_ON_TRANSMIT
        if self._on_enqueue is not None:
            flags |= _F_ON_ENQUEUE
        if self._lowprio_queue is not None:
            flags |= _F_LOWPRIO
        self._flags = flags

    @property
    def lowprio_queue(self) -> Optional[DataQueue]:
        return self._lowprio_queue

    @lowprio_queue.setter
    def lowprio_queue(self, value: Optional[DataQueue]) -> None:
        self._lowprio_queue = value
        self._refresh_flags()

    @property
    def phantom(self) -> Optional[PhantomQueue]:
        return self._phantom

    @phantom.setter
    def phantom(self, value: Optional[PhantomQueue]) -> None:
        self._phantom = value
        self._refresh_flags()

    @property
    def rcp_controller(self):
        return self._rcp_controller

    @rcp_controller.setter
    def rcp_controller(self, value) -> None:
        self._rcp_controller = value
        self._refresh_flags()

    @property
    def on_transmit(self):
        """Optional hook called with each packet as it hits the wire
        (used by :class:`repro.net.trace.PortTracer`)."""
        return self._on_transmit

    @on_transmit.setter
    def on_transmit(self, value) -> None:
        self._on_transmit = value
        self._refresh_flags()

    @property
    def on_enqueue(self):
        """Optional hook called as ``on_enqueue(pkt, accepted)`` after each
        enqueue decision (used by :class:`repro.audit.NetworkAuditor` to
        bound queue occupancy).  Installers must chain any prior hook."""
        return self._on_enqueue

    @on_enqueue.setter
    def on_enqueue(self, value) -> None:
        self._on_enqueue = value
        self._refresh_flags()

    @property
    def obs(self):
        """Optional :class:`repro.obs.MetricsRegistry` observing this port.

        Deliberately *not* part of the flags word: the registry reads port
        and queue statistics at snapshot time instead of hooking the
        per-packet path, so attaching it must not perturb ``_flags`` (and
        golden traces).  The only event-driven signal is the transmitter's
        rare credit-throttle sleep branch, which checks the slot directly.
        """
        return self._obs

    @obs.setter
    def obs(self, value) -> None:
        self._obs = value

    @property
    def pfc(self):
        """Priority flow control (802.1Qbb analog): the installed controller
        watching this port's data queue."""
        return self._pfc

    @pfc.setter
    def pfc(self, value) -> None:
        self._pfc = value
        self._refresh_flags()

    @property
    def pfc_paused(self) -> bool:
        """Set by the *peer* to stop our data (credits/control keep flowing,
        as PFC pauses per traffic class)."""
        return self._pfc_paused

    @pfc_paused.setter
    def pfc_paused(self, value: bool) -> None:
        self._pfc_paused = value
        self._refresh_flags()

    @property
    def up(self) -> bool:
        """Administrative/link state.  A down port drops everything handed
        to it (packets already in flight on the wire still arrive)."""
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        self._up = value
        self._refresh_flags()

    @property
    def drop_filter(self):
        """The fault-injection hook called with each packet entering the
        port; returning True silently discards it.

        Filters *chain*: install with :meth:`add_drop_filter` and remove
        with :meth:`remove_drop_filter` so multiple injectors
        (:class:`repro.net.fault.LossInjector`, chaos faults) compose — a
        packet is dropped by the first filter that claims it, and later
        filters never see packets an earlier one ate.  This property reads
        the composed entry point (a single filter is installed bare, so the
        common one-injector case costs no extra call); assigning it keeps
        the legacy replace-the-whole-chain semantics.
        """
        return self._drop_filter

    @drop_filter.setter
    def drop_filter(self, value) -> None:
        self._drop_filters = [] if value is None else [value]
        self._sync_drop_filter()

    def add_drop_filter(self, fn) -> None:
        """Append ``fn`` to the drop-filter chain (evaluated in install
        order; first True wins)."""
        self._drop_filters.append(fn)
        self._sync_drop_filter()

    def remove_drop_filter(self, fn) -> None:
        """Remove exactly ``fn`` from the chain, leaving other filters
        installed.  Raises ``ValueError`` if it is not installed."""
        self._drop_filters.remove(fn)
        self._sync_drop_filter()

    def _sync_drop_filter(self) -> None:
        filters = self._drop_filters
        if not filters:
            self._drop_filter = None
        elif len(filters) == 1:
            self._drop_filter = filters[0]
        else:
            self._drop_filter = self._run_drop_filters
        self._refresh_flags()

    def _run_drop_filters(self, pkt: Packet) -> bool:
        for fn in self._drop_filters:
            if fn(pkt):
                return True
        return False

    # -- naming ------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"{self.node.name}->{self.peer.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.name} {self.rate_bps / 1e9:g}Gbps>"

    # -- ingress side of the egress object ----------------------------------
    def send(self, pkt: Packet) -> bool:
        """Enqueue ``pkt`` for transmission; returns False if it was dropped."""
        if self._flags:
            return self._send_checked(pkt)
        # Fast path: port is up, unpaused, and has no attachments.
        now = self.sim.now
        if pkt.is_credit:
            ok = self.credit_queue.enqueue(pkt, now)
            if not ok and pkt.flow is not None:
                pkt.flow.on_credit_dropped(pkt, self)
        elif pkt.low_priority:
            # First low-priority packet creates the queue (and sets its
            # flag), so route through the checked path.
            return self._send_checked(pkt)
        else:
            ok = self.data_queue.enqueue(pkt, now)
            if not ok and pkt.flow is not None:
                pkt.flow.on_data_dropped(pkt, self)
        if ok:
            self._try_send()
        return ok

    def _send_checked(self, pkt: Packet) -> bool:
        """The fully-checked send path: attachments, PFC, faults, hooks."""
        if self._drop_filter is not None and self._drop_filter(pkt):
            return False
        if not self._up:
            if pkt.is_credit:
                if pkt.flow is not None:
                    pkt.flow.on_credit_dropped(pkt, self)
            elif pkt.flow is not None:
                pkt.flow.on_data_dropped(pkt, self)
            return False
        now = self.sim.now
        if pkt.is_credit:
            ok = self.credit_queue.enqueue(pkt, now)
            if not ok and pkt.flow is not None:
                pkt.flow.on_credit_dropped(pkt, self)
        elif pkt.low_priority:
            if self._lowprio_queue is None:
                self.lowprio_queue = DataQueue(self.data_queue.capacity_bytes,
                                               birth_ps=now)
            ok = self._lowprio_queue.enqueue(pkt, now)
            if not ok and pkt.flow is not None:
                pkt.flow.on_data_dropped(pkt, self)
        else:
            if self._phantom is not None:
                self._phantom.on_arrival(pkt, now)
            if self._rcp_controller is not None:
                self._rcp_controller.on_arrival(pkt, now)
            ok = self.data_queue.enqueue(pkt, now)
            if not ok and pkt.flow is not None:
                pkt.flow.on_data_dropped(pkt, self)
            if ok and self._pfc is not None:
                self._pfc.on_queue_change(self)
        if self._on_enqueue is not None:
            self._on_enqueue(pkt, ok)
        if ok:
            self._try_send()
        return ok

    # -- transmitter ---------------------------------------------------------
    def _try_send(self) -> None:
        if self._busy:
            return
        if self._flags:
            return self._try_send_checked()
        now = self.sim.now
        head = self.credit_queue.head()
        # Byte-based metering: a jittered 84..92 B credit consumes its actual
        # wire size, so successive credit drain slots vary by a few percent.
        # This is the switch-level jitter the paper creates by randomizing
        # credit sizes (§3.1) — it de-synchronizes which flow's credit wins
        # each free queue slot, making drops uniform across flows.
        if head is not None and self.credit_bucket.try_consume(head.wire_bytes, now):
            self._transmit(self.credit_queue.dequeue(now))
            return
        pkt = self.data_queue.dequeue(now)
        if pkt is not None:
            self._transmit(pkt)
            return
        if head is not None:
            # Only credits wait; sleep until the bucket has refilled.
            obs = self._obs
            if obs is not None:
                obs.credit_throttled += 1
            wait = self.credit_bucket.time_until(head.wire_bytes, now)
            if self._wake_event is not None:
                self._wake_event.cancel()
            self._wake_event = self.sim.schedule(max(wait, 1), self._wake)

    def _try_send_checked(self) -> None:
        """The fully-checked transmit scheduler: PFC and low-priority."""
        now = self.sim.now
        head = self.credit_queue.head()
        if head is not None and self.credit_bucket.try_consume(head.wire_bytes, now):
            self._transmit(self.credit_queue.dequeue(now))
            return
        if not self._pfc_paused:
            pkt = self.data_queue.dequeue(now)
            if pkt is not None:
                if self._pfc is not None:
                    self._pfc.on_queue_change(self)
                self._transmit(pkt)
                return
        if self._lowprio_queue is not None and not self._pfc_paused:
            pkt = self._lowprio_queue.dequeue(now)
            if pkt is not None:
                self._transmit(pkt)
                return
        if head is not None:
            obs = self._obs
            if obs is not None:
                obs.credit_throttled += 1
            wait = self.credit_bucket.time_until(head.wire_bytes, now)
            if self._wake_event is not None:
                self._wake_event.cancel()
            self._wake_event = self.sim.schedule(max(wait, 1), self._wake)

    def _wake(self) -> None:
        self._wake_event = None
        self._try_send()

    def _transmit(self, pkt: Packet) -> None:
        if self._on_transmit is not None:
            self._on_transmit(pkt)
        self._busy = True
        if self._wake_event is not None:
            self._wake_event.cancel()
            self._wake_event = None
        wire = pkt.wire_bytes
        tx = self._tx_cache.get(wire)
        if tx is None:
            tx = tx_time_ps(wire, self.rate_bps)
            self._tx_cache[wire] = tx
        stats = self.stats
        if pkt.is_credit:
            stats.credit_bytes_sent += wire
            stats.credit_pkts_sent += 1
        else:
            stats.data_bytes_sent += wire
            stats.data_pkts_sent += 1
        stats.busy_ps += tx
        # Fire-and-forget events: nothing ever cancels a transmit completion
        # or an in-flight wire delivery, so let the engine pool them.
        sim = self.sim
        sim.schedule_unref(tx, self._tx_done)
        sim.schedule_unref(tx + self.prop_delay_ps, self.peer.receive, pkt, self)

    def _tx_done(self) -> None:
        self._busy = False
        self._try_send()

    def set_pfc_paused(self, paused: bool) -> None:
        """Called by the peer's PFC controller (after wire delay)."""
        if self._pfc_paused and not paused:
            self.pfc_paused = False
            self._try_send()
        else:
            self.pfc_paused = paused

    # -- reporting -----------------------------------------------------------
    def utilization(self, interval_ps: int) -> float:
        """Fraction of ``interval_ps`` the line spent transmitting."""
        return self.stats.busy_ps / interval_ps if interval_ps > 0 else 0.0

    def data_throughput_bps(self, interval_ps: int) -> float:
        """Average delivered data rate (wire bytes) over ``interval_ps``."""
        if interval_ps <= 0:
            return 0.0
        return self.stats.data_bytes_sent * 8 * 1e12 / interval_ps

"""End hosts and the host credit-processing delay model."""

from __future__ import annotations

import math
from typing import Optional

from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.units import US


class HostDelayModel:
    """Stochastic model of host credit-processing latency (∆d_host).

    The paper's SoftNIC implementation measures a median of 0.38 µs and a
    99.99th percentile of 6.2 µs (Fig 14a).  We model that as a lognormal:
    ``median = exp(mu)`` and the p99.99 point pins sigma.  A hardware NIC is
    approximated by shrinking both parameters (the paper cites a 1.2 µs
    maximum spread for iWARP NICs).

    ``max_delay_ps`` clips the tail so the delay *spread* is bounded, which
    is what the network-calculus queue bound consumes.
    """

    def __init__(
        self,
        median_ps: int = int(0.38 * US),
        p9999_ps: int = int(6.2 * US),
        max_delay_ps: Optional[int] = None,
        rng=None,
    ):
        if median_ps <= 0 or p9999_ps <= median_ps:
            raise ValueError("need 0 < median < p99.99")
        self.median_ps = median_ps
        self.max_delay_ps = max_delay_ps if max_delay_ps is not None else int(1.05 * p9999_ps)
        self._mu = math.log(median_ps)
        z_9999 = 3.7190  # standard normal quantile at 0.9999
        self._sigma = math.log(p9999_ps / median_ps) / z_9999
        self._rng = rng
        self._scale = 1.0

    def bind(self, rng) -> None:
        self._rng = rng

    def set_scale(self, factor: float) -> None:
        """Multiply sampled delays (and the clip) by ``factor``.

        Models a host-side jitter spike — a CPU-starved SoftNIC whose
        credit-processing latency temporarily balloons (Fig 14a's tail,
        chaos ``host_jitter`` faults).  ``1.0`` restores nominal behaviour.
        The underlying RNG stream is consumed identically at every scale,
        so toggling a spike never desynchronises other streams.
        """
        if factor <= 0:
            raise ValueError("delay scale must be positive")
        self._scale = factor

    def sample(self, rng=None) -> int:
        """Draw one processing delay in picoseconds.

        ``rng`` overrides the bound stream for this draw — hosts pass their
        own per-host stream so one model instance can be shared across a
        whole network without coupling the hosts' randomness.  With neither
        a bound nor a passed stream the model is deterministic.
        """
        r = rng if rng is not None else self._rng
        if r is None:
            return int(self.median_ps * self._scale)
        value = int(r.lognormvariate(self._mu, self._sigma))
        value = min(max(value, 0), self.max_delay_ps)
        return int(value * self._scale)

    @property
    def spread_ps(self) -> int:
        """∆d_host: the worst-case minus best-case processing delay."""
        return int(self.max_delay_ps * self._scale)

    @classmethod
    def constant(cls, delay_ps: int) -> "HostDelayModel":
        """A deterministic model (zero spread) for unit tests."""
        model = cls.__new__(cls)
        model.median_ps = delay_ps
        model.max_delay_ps = delay_ps
        model._mu = 0.0
        model._sigma = 0.0
        model._rng = None
        model._scale = 1.0
        return model


class Host(Node):
    """An end host with a single NIC port.

    Packets terminate here: delivery is a direct method call on the owning
    flow.  Transports (ExpressPass, DCTCP, ...) attach per-flow objects; the
    host itself is protocol-agnostic.
    """

    def __init__(self, sim: Simulator, node_id: int, name: str = "",
                 delay_model: Optional[HostDelayModel] = None):
        super().__init__(sim, node_id, name or f"h{node_id}")
        self.delay_model = delay_model or HostDelayModel.constant(0)
        # Per-host delay stream: draws here depend only on (seed, node id),
        # never on how many *other* hosts sampled before us — the property
        # sharded execution needs for replica-identical trajectories.
        self._delay_rng = sim.rng_for("host-delay", node_id)

    def sample_delay(self) -> int:
        """One credit-processing delay from this host's own stream."""
        return self.delay_model.sample(self._delay_rng)

    @property
    def nic(self):
        """The single NIC egress port (hosts here are single-homed)."""
        if len(self.ports) != 1:
            raise RuntimeError(f"{self.name} has {len(self.ports)} ports, expected 1")
        return next(iter(self.ports.values()))

    def receive(self, pkt: Packet, from_port) -> None:
        pkt.trace_hop(self.id)
        if pkt.dst != self.id:
            raise RuntimeError(
                f"{self.name} received packet addressed to host {pkt.dst}"
            )
        if pkt.flow is not None:
            pkt.flow.deliver(self, pkt)
        # Flow-less packets (synthetic probes, background chatter) terminate
        # here silently.

    def send(self, pkt: Packet) -> bool:
        """Hand ``pkt`` to the NIC for transmission."""
        return self.nic.send(pkt)

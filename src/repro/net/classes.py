"""Multiple traffic classes for credits (§7 "Multiple traffic classes").

The paper observes that QoS for data can be enforced on the *credit* path:
prioritizing flow A's credits over flow B's — while metering their sum —
yields strict priority of A's data on the reverse path; weighted sharing of
the credit meter yields weighted data shares.

:class:`ClassifiedCreditQueues` replaces a port's single credit queue with
one carved queue per class, drained through the same token bucket using
either strict priority or weighted deficit round-robin.  Installation is a
one-call retrofit on an existing port::

    install_credit_classes(port, weights={0: 3, 1: 1})
    flow.credit_class = 1     # any ExpressPass flow can be tagged

Untagged credits map to class 0.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.packet import CREDIT_WIRE_MIN, Packet
from repro.net.port import Port
from repro.net.queues import CreditQueue


class ClassifiedCreditQueues:
    """Per-class carved credit queues with strict-priority or WDRR drain."""

    def __init__(self, weights: Dict[int, float], capacity_pkts: int = 8,
                 strict_priority: bool = False):
        if not weights:
            raise ValueError("need at least one credit class")
        if any(w <= 0 for w in weights.values()):
            raise ValueError("class weights must be positive")
        self.weights = dict(weights)
        self.strict_priority = strict_priority
        self.queues: Dict[int, CreditQueue] = {
            cls: CreditQueue(capacity_pkts) for cls in weights
        }
        # Deficit counters for WDRR, in bytes.
        self._deficit: Dict[int, float] = {cls: 0.0 for cls in weights}
        self._order = sorted(weights)  # low class id = high priority
        self._quantum = CREDIT_WIRE_MIN
        self._rr_idx = 0
        self._visit_topped = False

    def classify(self, pkt: Packet) -> int:
        cls = getattr(pkt.flow, "credit_class", 0)
        return cls if cls in self.queues else self._order[0]

    def enqueue(self, pkt: Packet, now_ps: int) -> bool:
        return self.queues[self.classify(pkt)].enqueue(pkt, now_ps)

    def __len__(self) -> int:
        return sum(len(q) for q in self.queues.values())

    @property
    def bytes(self) -> int:
        return sum(q.bytes for q in self.queues.values())

    def head(self) -> Optional[Packet]:
        """The credit the scheduler would send next, or None."""
        cls = self._select()
        return self.queues[cls].head() if cls is not None else None

    def dequeue(self, now_ps: int) -> Optional[Packet]:
        cls = self._select()
        if cls is None:
            return None
        if not self.strict_priority:
            # Charge the deficit; replenish all counters one quantum per
            # dequeue round so ratios follow the weights.
            pkt = self.queues[cls].dequeue(now_ps)
            self._deficit[cls] -= pkt.wire_bytes
            return pkt
        return self.queues[cls].dequeue(now_ps)

    def _select(self) -> Optional[int]:
        backlogged = [cls for cls in self._order if len(self.queues[cls])]
        if not backlogged:
            return None
        if self.strict_priority:
            return backlogged[0]
        # Deficit round-robin: each *visit* tops a class's deficit up by
        # quantum x weight exactly once; the class keeps the token while its
        # deficit covers its head credit, then the pointer advances.  Long-
        # run service therefore follows the weights.
        n = len(self._order)
        for _ in range(2 * n + 1):
            cls = self._order[self._rr_idx]
            queue = self.queues[cls]
            if not len(queue):
                self._deficit[cls] = 0.0  # empty queues do not bank credit
                self._advance()
                continue
            if self._deficit[cls] >= queue.head().wire_bytes:
                return cls
            if not self._visit_topped:
                self._visit_topped = True
                self._deficit[cls] += self._quantum * self.weights[cls]
                if self._deficit[cls] >= queue.head().wire_bytes:
                    return cls
            self._advance()
        return backlogged[0]  # pragma: no cover - tiny-weight fallback

    def _advance(self) -> None:
        self._rr_idx = (self._rr_idx + 1) % len(self._order)
        self._visit_topped = False

    def drop_stats(self) -> Dict[int, int]:
        return {cls: q.stats.dropped for cls, q in self.queues.items()}

    @property
    def stats(self) -> "_AggregateStats":
        """Aggregate view matching the single-queue stats interface."""
        return _AggregateStats(self.queues.values())


class _AggregateStats:
    """Sums enqueue/drop counters across the per-class queues."""

    def __init__(self, queues):
        self._queues = list(queues)

    @property
    def dropped(self) -> int:
        return sum(q.stats.dropped for q in self._queues)

    @property
    def enqueued(self) -> int:
        return sum(q.stats.enqueued for q in self._queues)


def install_credit_classes(port: Port, weights: Dict[int, float],
                           capacity_pkts: int = 8,
                           strict_priority: bool = False) -> ClassifiedCreditQueues:
    """Swap ``port``'s credit queue for classified queues; returns them.

    The port's transmitter only uses ``head``/``enqueue``/``dequeue``, so the
    classified implementation is a drop-in replacement.
    """
    classified = ClassifiedCreditQueues(weights, capacity_pkts, strict_priority)
    port.credit_queue = classified
    return classified

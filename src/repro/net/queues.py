"""Port-level queueing primitives.

* :class:`TokenBucket` — Broadcom-style maximum-bandwidth metering, used to
  rate-limit credit packets to ≈5 % of link capacity (burst = 2 credits).
* :class:`DataQueue` — drop-tail FIFO with optional ECN marking at a byte
  threshold (DCTCP) and time-weighted occupancy statistics.
* :class:`CreditQueue` — the tiny (default 8-credit) carved buffer for credit
  packets; overflowing credits are *dropped*, which is the congestion signal
  ExpressPass feeds back to receivers.
* :class:`PhantomQueue` — HULL's virtual queue draining at γ·C; marks ECN on
  the real packets while the real queue stays near-empty.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.net.packet import Packet
from repro.sim.units import SEC


#: Internal token scale: one byte of tokens == ``8 * SEC`` quanta.  At this
#: scale a refill over ``dt`` picoseconds adds exactly ``dt * rate_bps``
#: quanta, so all bucket arithmetic is integer-exact — no float rounding can
#: make :meth:`TokenBucket.time_until` come up a picosecond short.
_TOKEN_SCALE = 8 * SEC


class TokenBucket:
    """Token bucket metering in bytes, with integer-exact accounting.

    ``rate_bps`` is the fill rate; ``burst_bytes`` caps accumulation.  Tokens
    are tracked lazily: :meth:`refill` advances the bucket to the current
    simulation time.  Internally tokens are integers in units of
    ``1 / (8 * SEC)`` bytes, which makes refill, consume, and
    :meth:`time_until` exact: ``try_consume(n, now + time_until(n, now))``
    always succeeds, so a port sleeping on the bucket wakes exactly once.

    ``now_ps`` seeds the bucket's notion of "now".  A bucket created
    mid-simulation must pass the creating context's current time, otherwise
    a ``start_full=False`` bucket would retroactively accrue tokens for the
    whole of ``[0, now]`` on its first refill.
    """

    __slots__ = ("rate_bps", "burst_bytes", "_tokens_scaled", "_burst_scaled",
                 "_last_ps")

    def __init__(self, rate_bps: int, burst_bytes: float,
                 start_full: bool = True, now_ps: int = 0):
        if rate_bps <= 0:
            raise ValueError("token bucket rate must be positive")
        self.rate_bps = rate_bps
        self.burst_bytes = float(burst_bytes)
        self._burst_scaled = int(burst_bytes * _TOKEN_SCALE)
        self._tokens_scaled = self._burst_scaled if start_full else 0
        self._last_ps = now_ps

    @property
    def tokens(self) -> float:
        """Current token level in bytes (float view of the exact state)."""
        return self._tokens_scaled / _TOKEN_SCALE

    @tokens.setter
    def tokens(self, value: float) -> None:
        self._tokens_scaled = int(value * _TOKEN_SCALE)

    def refill(self, now_ps: int) -> None:
        """Advance the bucket to ``now_ps``."""
        if now_ps > self._last_ps:
            tokens = self._tokens_scaled + (now_ps - self._last_ps) * self.rate_bps
            burst = self._burst_scaled
            self._tokens_scaled = tokens if tokens < burst else burst
            self._last_ps = now_ps

    def try_consume(self, nbytes: int, now_ps: int) -> bool:
        """Consume ``nbytes`` of tokens if available; return success."""
        self.refill(now_ps)
        need = nbytes * _TOKEN_SCALE
        if self._tokens_scaled >= need:
            self._tokens_scaled -= need
            return True
        return False

    def time_until(self, nbytes: int, now_ps: int) -> int:
        """Picoseconds until ``nbytes`` of tokens will be available.

        Exact: consuming ``nbytes`` at ``now_ps + time_until(...)`` succeeds.
        """
        self.refill(now_ps)
        deficit = nbytes * _TOKEN_SCALE - self._tokens_scaled
        if deficit <= 0:
            return 0
        return -(-deficit // self.rate_bps)

    def set_rate(self, rate_bps: int, now_ps: int) -> None:
        """Change the fill rate mid-run (chaos meter misconfiguration).

        Tokens accrued at the old rate are settled up to ``now_ps`` first,
        so the change takes effect exactly at ``now_ps`` and the integer
        accounting stays exact on both sides of it.
        """
        if rate_bps <= 0:
            raise ValueError("token bucket rate must be positive")
        self.refill(now_ps)
        self._last_ps = max(self._last_ps, now_ps)
        self.rate_bps = rate_bps


class _QueueStats:
    """Shared occupancy bookkeeping: drops, max, and time-weighted average.

    ``birth_ps`` is the queue's creation time; the time-weighted average is
    taken over the queue's actual observation window ``[birth, now]``.  A
    queue created mid-run (e.g. a port's lazily-built low-priority queue)
    must pass its creation time, or its average would be diluted by the
    pre-birth interval it never observed.
    """

    __slots__ = ("enqueued", "dropped", "ecn_marked", "max_bytes", "max_pkts",
                 "_integral_byte_ps", "_last_change_ps", "_last_bytes",
                 "_birth_ps")

    def __init__(self, birth_ps: int = 0):
        self.enqueued = 0
        self.dropped = 0
        self.ecn_marked = 0
        self.max_bytes = 0
        self.max_pkts = 0
        self._integral_byte_ps = 0
        self._last_change_ps = birth_ps
        self._last_bytes = 0
        self._birth_ps = birth_ps

    def record(self, now_ps: int, cur_bytes: int, cur_pkts: int) -> None:
        self._integral_byte_ps += self._last_bytes * (now_ps - self._last_change_ps)
        self._last_change_ps = now_ps
        self._last_bytes = cur_bytes
        if cur_bytes > self.max_bytes:
            self.max_bytes = cur_bytes
        if cur_pkts > self.max_pkts:
            self.max_pkts = cur_pkts

    def average_bytes(self, now_ps: int) -> float:
        """Time-weighted average occupancy over the window [birth, now]."""
        window = now_ps - self._birth_ps
        if window <= 0:
            return 0.0
        total = self._integral_byte_ps + self._last_bytes * (now_ps - self._last_change_ps)
        return total / window


class DataQueue:
    """Drop-tail FIFO with optional ECN marking on enqueue.

    Two marking modes:

    * ``ecn_threshold_bytes`` — DCTCP's instantaneous step marking: an
      arriving ECN-capable packet is marked when the occupancy (including
      itself) exceeds the threshold.
    * :meth:`set_red_marking` — RED-style probabilistic marking between
      ``kmin`` and ``kmax`` (DCQCN's switch configuration); above ``kmax``
      every ECN-capable packet is marked.
    """

    __slots__ = ("capacity_bytes", "ecn_threshold_bytes",
                 "_red_kmin", "_red_kmax", "_red_pmax", "_red_rng",
                 "_q", "bytes", "stats")

    def __init__(self, capacity_bytes: int, ecn_threshold_bytes: Optional[int] = None,
                 birth_ps: int = 0):
        self.capacity_bytes = capacity_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self._red_kmin = None
        self._red_kmax = None
        self._red_pmax = 0.0
        self._red_rng = None
        self._q: deque = deque()
        self.bytes = 0
        self.stats = _QueueStats(birth_ps)

    def set_red_marking(self, kmin_bytes: int, kmax_bytes: int,
                        pmax: float, rng) -> None:
        """Enable RED/DCQCN-style probabilistic ECN marking."""
        if not 0 <= kmin_bytes < kmax_bytes:
            raise ValueError("need 0 <= kmin < kmax")
        if not 0 < pmax <= 1:
            raise ValueError("pmax must be in (0, 1]")
        self._red_kmin = kmin_bytes
        self._red_kmax = kmax_bytes
        self._red_pmax = pmax
        self._red_rng = rng

    def __len__(self) -> int:
        return len(self._q)

    def enqueue(self, pkt: Packet, now_ps: int) -> bool:
        """Append ``pkt``; returns False (and counts a drop) on overflow."""
        if self.bytes + pkt.wire_bytes > self.capacity_bytes:
            self.stats.dropped += 1
            return False
        self._q.append(pkt)
        self.bytes += pkt.wire_bytes
        self.stats.enqueued += 1
        if pkt.ecn_capable:
            if (self.ecn_threshold_bytes is not None
                    and self.bytes > self.ecn_threshold_bytes):
                pkt.ecn_marked = True
                self.stats.ecn_marked += 1
            elif self._red_kmin is not None and self.bytes > self._red_kmin:
                if self.bytes >= self._red_kmax:
                    pkt.ecn_marked = True
                    self.stats.ecn_marked += 1
                else:
                    frac = (self.bytes - self._red_kmin) / (
                        self._red_kmax - self._red_kmin)
                    if self._red_rng.random() < frac * self._red_pmax:
                        pkt.ecn_marked = True
                        self.stats.ecn_marked += 1
        self.stats.record(now_ps, self.bytes, len(self._q))
        return True

    def dequeue(self, now_ps: int) -> Optional[Packet]:
        if not self._q:
            return None
        pkt = self._q.popleft()
        self.bytes -= pkt.wire_bytes
        self.stats.record(now_ps, self.bytes, len(self._q))
        return pkt


class CreditQueue:
    """The carved credit buffer: a tiny drop-tail FIFO measured in packets.

    The paper assigns four to eight credit packets per port via buffer
    carving; dropping the excess *is the feedback signal*, so drops are
    counted per flow by the owning port.
    """

    __slots__ = ("capacity_pkts", "_q", "bytes", "stats")

    def __init__(self, capacity_pkts: int = 8, birth_ps: int = 0):
        if capacity_pkts < 1:
            raise ValueError("credit queue needs capacity of at least 1 packet")
        self.capacity_pkts = capacity_pkts
        self._q: deque = deque()
        self.bytes = 0
        self.stats = _QueueStats(birth_ps)

    def __len__(self) -> int:
        return len(self._q)

    def enqueue(self, pkt: Packet, now_ps: int) -> bool:
        if len(self._q) >= self.capacity_pkts:
            self.stats.dropped += 1
            return False
        self._q.append(pkt)
        self.bytes += pkt.wire_bytes
        self.stats.enqueued += 1
        self.stats.record(now_ps, self.bytes, len(self._q))
        return True

    def head(self) -> Optional[Packet]:
        return self._q[0] if self._q else None

    def dequeue(self, now_ps: int) -> Optional[Packet]:
        if not self._q:
            return None
        pkt = self._q.popleft()
        self.bytes -= pkt.wire_bytes
        self.stats.record(now_ps, self.bytes, len(self._q))
        return pkt


class PhantomQueue:
    """HULL's phantom (virtual) queue.

    A byte counter drains at ``gamma`` × link rate; each arriving data packet
    adds its wire size.  When the counter exceeds ``mark_threshold_bytes``
    the packet is ECN-marked even though the *real* queue may be empty —
    capping utilization below capacity to keep latency near zero.
    """

    __slots__ = ("drain_bps", "mark_threshold_bytes", "vbytes", "_last_ps", "marks")

    def __init__(self, link_rate_bps: int, gamma: float = 0.95,
                 mark_threshold_bytes: int = 3_000):
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.drain_bps = int(link_rate_bps * gamma)
        self.mark_threshold_bytes = mark_threshold_bytes
        self.vbytes = 0.0
        self._last_ps = 0
        self.marks = 0

    def on_arrival(self, pkt: Packet, now_ps: int) -> None:
        """Account ``pkt`` against the virtual queue, marking if over threshold."""
        if now_ps > self._last_ps:
            self.vbytes = max(
                0.0, self.vbytes - (now_ps - self._last_ps) * self.drain_bps / (8 * SEC)
            )
            self._last_ps = now_ps
        self.vbytes += pkt.wire_bytes
        if self.vbytes > self.mark_threshold_bytes and pkt.ecn_capable:
            pkt.ecn_marked = True
            self.marks += 1

"""Output-queued switch with ECMP forwarding."""

from __future__ import annotations

from typing import Dict, List

from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Simulator


class Switch(Node):
    """A switch forwards packets using its ECMP table.

    ``table[dst_host_id]`` is a sorted list of next-hop node ids on shortest
    paths (see :mod:`repro.net.routing`).  Among several candidates the index
    is ``flow.path_hash % len(candidates)`` — with symmetric hashing this
    mirrors credit and data paths.
    """

    def __init__(self, sim: Simulator, node_id: int, name: str = ""):
        super().__init__(sim, node_id, name or f"sw{node_id}")
        self.table: Dict[int, List[int]] = {}

    def receive(self, pkt: Packet, from_port) -> None:
        pkt.trace_hop(self.id)
        candidates = self.table.get(pkt.dst)
        if not candidates:
            # Under an active fault plan a destination can be legitimately
            # unreachable (switch blackout, partitioned fabric): the packet
            # blackholes here, accounted so audit conservation still closes.
            chaos = self.sim.chaos
            if chaos is not None:
                chaos.record_blackhole(pkt, self)
                return
            raise RuntimeError(f"{self.name}: no route to host {pkt.dst}")
        if len(candidates) == 1:
            next_hop = candidates[0]
        else:
            next_hop = candidates[pkt.flow.path_hash(pkt) % len(candidates)]
        self.ports[next_hop].send(pkt)

"""Shortest-path ECMP routing with symmetric hashing.

``build_ecmp_tables`` computes, for every node and destination host, the
deterministically-sorted list of next hops lying on shortest paths (BFS over
the undirected topology graph).  Path choice among equal-cost next hops uses
``symmetric_flow_hash``: the hash key is the *canonically ordered* 4-tuple,
so a flow's credit packets (receiver→sender) and data packets
(sender→receiver) pick the same index at every switch — the paper's
"symmetric hashing with deterministic ECMP" (§3.1).

Setting ``symmetric=False`` on :func:`flow_hash` models plain direction-
dependent ECMP and is used by the ablation tests/benches to show why path
symmetry matters.
"""

from __future__ import annotations

import struct
import zlib
from collections import deque
from typing import Dict, Iterable, List

_HASH_PACK = struct.Struct("<iiii")


def symmetric_flow_hash(src: int, dst: int, sport: int, dport: int) -> int:
    """Direction-independent flow hash.

    Both directions of a connection canonicalize to the same key, so they
    resolve to the same ECMP index everywhere.  CRC32 keeps the value stable
    across processes (Python's built-in ``hash`` is randomized).
    """
    a = (src, sport)
    b = (dst, dport)
    lo, hi = (a, b) if a <= b else (b, a)
    return zlib.crc32(_HASH_PACK.pack(lo[0], lo[1], hi[0], hi[1]))


def asymmetric_flow_hash(src: int, dst: int, sport: int, dport: int) -> int:
    """Direction-dependent hash (plain ECMP) for the asymmetry ablation."""
    return zlib.crc32(_HASH_PACK.pack(src, sport, dst, dport))


def build_ecmp_tables(nodes: Dict[int, "Node"], host_ids: Iterable[int]) -> None:
    """Populate ``switch.table[dst_host] = [next_hop_id, ...]`` on every node.

    Next-hop lists are sorted by node id — the "deterministic ECMP" half of
    the paper's symmetric routing requirement.
    """
    # Exclude links that are down in *either* direction: §3.1 requires
    # symmetric routing, so a unidirectional failure removes the link for
    # both credits and data.
    adjacency = {}
    for nid, node in nodes.items():
        usable = []
        for neighbor in node.neighbors:
            fwd = node.ports.get(neighbor)
            rev = nodes[neighbor].ports.get(nid)
            if fwd is not None and fwd.up and rev is not None and rev.up:
                usable.append(neighbor)
        adjacency[nid] = usable
    for dst in host_ids:
        dist = {dst: 0}
        frontier = deque([dst])
        while frontier:
            cur = frontier.popleft()
            for neighbor in adjacency[cur]:
                if neighbor not in dist:
                    dist[neighbor] = dist[cur] + 1
                    frontier.append(neighbor)
        for nid, node in nodes.items():
            if nid == dst or not hasattr(node, "table"):
                continue  # hosts just forward out their single NIC
            if nid not in dist:
                continue  # partitioned topologies are allowed in tests
            hops: List[int] = [
                neighbor for neighbor in adjacency[nid]
                if dist.get(neighbor, 1 << 60) == dist[nid] - 1
            ]
            node.table[dst] = hops  # already sorted: neighbors list is sorted

"""Priority Flow Control (IEEE 802.1Qbb analog).

The RDMA congestion controls the paper compares against (§8: DCQCN, TIMELY)
assume a *lossless* fabric built on PFC: when a queue passes XOFF, the
switch pauses its upstream neighbors' data traffic until it drains below
XON.  This prevents loss but causes head-of-line blocking and pause storms
under incast — the contrast ExpressPass draws (§1: "they rely on priority
flow control (PFC) ... to prevent data loss").

Model: the fabric is output-queued, so congestion shows up in egress data
queues.  When any egress queue at node N crosses XOFF, the controller sends
PAUSE toward *all* of N's neighbors (a real switch pauses the ingress ports
feeding the congested egress; with output queueing every ingress can feed
every egress).  PAUSE/RESUME take one propagation delay to arrive — modeled
as MAC control frames that bypass data queues — and pause only the *data*
class: credits and control packets keep flowing, exactly as PFC operates
per traffic class.

Head-of-line blocking and even pause deadlocks on cyclic topologies are
*intentional* emergent behaviours, not bugs: they are the phenomena being
studied.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.net.port import Port
from repro.sim.engine import Simulator


class PfcController:
    """Watches every installed port's data queue and issues PAUSE/RESUME."""

    def __init__(self, sim: Simulator, xoff_bytes: int, xon_bytes: int):
        if not 0 <= xon_bytes < xoff_bytes:
            raise ValueError("need 0 <= xon < xoff")
        self.sim = sim
        self.xoff_bytes = xoff_bytes
        self.xon_bytes = xon_bytes
        self._node_paused: Dict[int, bool] = {}
        self._ports_by_node: Dict[int, list] = {}
        self.pauses_sent = 0
        self.resumes_sent = 0

    def install(self, ports: Iterable[Port]) -> None:
        for port in ports:
            port.pfc = self
            self._ports_by_node.setdefault(port.node.id, []).append(port)
            self._node_paused.setdefault(port.node.id, False)

    # -- queue watching ------------------------------------------------------
    def on_queue_change(self, port: Port) -> None:
        node_id = port.node.id
        if not self._node_paused[node_id]:
            if port.data_queue.bytes >= self.xoff_bytes:
                self._node_paused[node_id] = True
                self._signal_neighbors(port.node, paused=True)
                self.pauses_sent += 1
        else:
            # Resume once *every* egress at this node is below XON.
            if all(p.data_queue.bytes <= self.xon_bytes
                   for p in self._ports_by_node[node_id]):
                self._node_paused[node_id] = False
                self._signal_neighbors(port.node, paused=False)
                self.resumes_sent += 1

    def _signal_neighbors(self, node, paused: bool) -> None:
        """Deliver PAUSE/RESUME to every upstream egress after wire delay."""
        for my_port in node.ports.values():
            peer_node = my_port.peer
            upstream = peer_node.ports.get(node.id)
            if upstream is None:
                continue
            self.sim.schedule(upstream.prop_delay_ps,
                              upstream.set_pfc_paused, paused)

    def node_is_paused(self, node_id: int) -> bool:
        return self._node_paused.get(node_id, False)


def install_pfc(sim: Simulator, ports: Iterable[Port],
                xoff_bytes: int = 150_000,
                xon_bytes: int = 100_000) -> PfcController:
    """Attach PFC to ``ports``; defaults sized for shallow 10 G buffers."""
    controller = PfcController(sim, xoff_bytes, xon_bytes)
    controller.install(ports)
    return controller

"""Packets and Ethernet wire-size accounting.

All sizes are *wire* sizes: they include the 12 B inter-packet gap, 8 B
preamble, 14 B Ethernet header, and 4 B FCS (38 B total overhead), matching
the paper's accounting: a minimum frame occupies 84 B on the wire and a
maximum frame 1538 B.  Credit packets are minimum-size frames; ExpressPass
randomizes their wire size between 84 and 92 B to break switch-level
synchronization (§3.1, "Ensuring fair credit drop").

The credit rate limit falls out of these numbers: one 84 B credit authorizes
one 1538 B data frame, so credits are limited to 84 / (84 + 1538) ≈ 5.18 % of
link capacity and data fills the remaining ≈ 94.8 %.
"""

from __future__ import annotations

from enum import IntEnum
from itertools import count
from typing import Optional

ETHERNET_OVERHEAD = 38  # preamble 8 + header 14 + FCS 4 + IPG 12
MIN_WIRE = 84  # minimum Ethernet frame on the wire
CREDIT_WIRE_MIN = 84
CREDIT_WIRE_MAX = 92  # randomized credit sizes (84..92 B) add switch-level jitter
DATA_WIRE_MAX = 1538  # maximum Ethernet frame on the wire
MTU_PAYLOAD = DATA_WIRE_MAX - ETHERNET_OVERHEAD  # usable bytes per data frame

# One credit schedules one max-size data frame (1538 B).  Credit sizes are
# randomized 84..92 B (mean 88 B) to jitter switch-level drain times (§3.1),
# so the credit-rate reservation uses the *mean* size: data then fills
# 1538/1626 ~ 94.6 % of a link on average, matching the paper's ~94.8 %.
CREDIT_WIRE_MEAN = (CREDIT_WIRE_MIN + CREDIT_WIRE_MAX) // 2
CREDIT_RATE_FRACTION_NUM = CREDIT_WIRE_MEAN
CREDIT_RATE_FRACTION_DEN = CREDIT_WIRE_MEAN + DATA_WIRE_MAX  # 1626


class PacketKind(IntEnum):
    """Wire-level packet classification.

    ``CREDIT``-kind packets (and only those) are steered to the rate-limited
    credit queue at every port; everything else shares the data queue, which
    mirrors the paper's tag-based classification on commodity switches.
    """

    DATA = 0
    CREDIT = 1
    CREDIT_REQUEST = 2
    CREDIT_STOP = 3
    ACK = 4
    CONTROL = 5  # SYN/FIN-style signalling for the baseline transports


_packet_ids = count()


class Packet:
    """A simulated packet.

    Attributes double as protocol headers; unused fields stay at their
    defaults.  ``flow`` is a direct reference to the owning flow object so
    that delivery at a host is a method call, not a table lookup.
    """

    __slots__ = (
        "kind",
        "src",
        "dst",
        "flow",
        "wire_bytes",
        "payload_bytes",
        "seq",
        "ack",
        "credit_seq",
        "ecn_capable",
        "ecn_marked",
        "ecn_echo",
        "rcp_rate",
        "sent_ts",
        "low_priority",
        "uid",
        "hops",
    )

    def __init__(
        self,
        kind: PacketKind,
        src: int,
        dst: int,
        flow=None,
        wire_bytes: int = MIN_WIRE,
        payload_bytes: int = 0,
        seq: int = -1,
        ack: int = -1,
        credit_seq: int = -1,
        ecn_capable: bool = False,
        sent_ts: int = -1,
    ):
        self.kind = kind
        self.src = src
        self.dst = dst
        self.flow = flow
        self.wire_bytes = wire_bytes
        self.payload_bytes = payload_bytes
        self.seq = seq
        self.ack = ack
        self.credit_seq = credit_seq
        self.ecn_capable = ecn_capable
        self.ecn_marked = False
        self.ecn_echo = False
        self.rcp_rate: Optional[int] = None
        self.sent_ts = sent_ts
        self.low_priority = False
        self.uid = next(_packet_ids)
        self.hops: Optional[list] = None  # populated only when path tracing is on

    @property
    def is_credit(self) -> bool:
        return self.kind == PacketKind.CREDIT

    def trace_hop(self, node_id: int) -> None:
        """Record a node on the packet's path (used by path-symmetry tests)."""
        if self.hops is not None:
            self.hops.append(node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet {self.kind.name} {self.src}->{self.dst} "
            f"seq={self.seq} wire={self.wire_bytes}B>"
        )


def data_packet(src: int, dst: int, flow, payload_bytes: int, seq: int,
                credit_seq: int = -1, ecn_capable: bool = False,
                sent_ts: int = -1) -> Packet:
    """Build a data packet; wire size = payload + Ethernet overhead, floored
    at the minimum frame size."""
    wire = max(MIN_WIRE, payload_bytes + ETHERNET_OVERHEAD)
    if wire > DATA_WIRE_MAX:
        raise ValueError(f"payload {payload_bytes}B exceeds MTU {MTU_PAYLOAD}B")
    return Packet(
        PacketKind.DATA,
        src,
        dst,
        flow=flow,
        wire_bytes=wire,
        payload_bytes=payload_bytes,
        seq=seq,
        credit_seq=credit_seq,
        ecn_capable=ecn_capable,
        sent_ts=sent_ts,
    )


def credit_packet(src: int, dst: int, flow, credit_seq: int,
                  wire_bytes: int = CREDIT_WIRE_MIN) -> Packet:
    """Build a credit packet (minimum-size frame, optionally jittered)."""
    if not CREDIT_WIRE_MIN <= wire_bytes <= CREDIT_WIRE_MAX:
        raise ValueError(f"credit wire size {wire_bytes}B outside 84..92B")
    return Packet(
        PacketKind.CREDIT,
        src,
        dst,
        flow=flow,
        wire_bytes=wire_bytes,
        credit_seq=credit_seq,
    )

"""Network substrate: packets, queues, links, switches, hosts, routing.

The model is an output-queued, full-duplex Ethernet network.  Every egress
(port, direction) owns a drop-tail data queue and a rate-limited credit queue
(ExpressPass §3.1); ECN marking, HULL phantom queues, and RCP rate
computation hook into the same port object so that all transports share one
network model.
"""

from repro.net.packet import (
    CREDIT_WIRE_MAX,
    CREDIT_WIRE_MIN,
    DATA_WIRE_MAX,
    ETHERNET_OVERHEAD,
    MTU_PAYLOAD,
    MIN_WIRE,
    Packet,
    PacketKind,
)
from repro.net.queues import CreditQueue, DataQueue, PhantomQueue, TokenBucket
from repro.net.port import Port, PortStats
from repro.net.link import connect
from repro.net.node import Node
from repro.net.switch import Switch
from repro.net.host import Host, HostDelayModel
from repro.net.routing import build_ecmp_tables, symmetric_flow_hash
from repro.net.classes import ClassifiedCreditQueues, install_credit_classes
from repro.net.pfc import PfcController, install_pfc
from repro.net.trace import PortTracer

__all__ = [
    "Packet",
    "PacketKind",
    "CREDIT_WIRE_MIN",
    "CREDIT_WIRE_MAX",
    "DATA_WIRE_MAX",
    "MTU_PAYLOAD",
    "MIN_WIRE",
    "ETHERNET_OVERHEAD",
    "TokenBucket",
    "CreditQueue",
    "DataQueue",
    "PhantomQueue",
    "Port",
    "PortStats",
    "connect",
    "Node",
    "Switch",
    "Host",
    "HostDelayModel",
    "build_ecmp_tables",
    "symmetric_flow_hash",
    "ClassifiedCreditQueues",
    "install_credit_classes",
    "PfcController",
    "install_pfc",
    "PortTracer",
]

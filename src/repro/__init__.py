"""ExpressPass reproduction (SIGCOMM 2017).

Quickstart::

    from repro import Simulator, ExpressPassFlow, ExpressPassParams
    from repro.topology import dumbbell

    sim = Simulator(seed=1)
    topo = dumbbell(sim, n_pairs=2)
    flows = [ExpressPassFlow(s, r, size_bytes=1_000_000)
             for s, r in zip(topo.senders, topo.receivers)]
    sim.run()
    print([f.fct_ps for f in flows])

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.sim import Simulator
from repro.sim.units import GBPS, KB, MB, MS, NS, PS, SEC, US
from repro.core import (
    CreditFeedbackControl,
    ExpressPassFlow,
    ExpressPassParams,
    ReceiverState,
    SenderState,
    max_credit_rate_cps,
)
from repro.transport import (
    CubicFlow,
    DcqcnFlow,
    DctcpFlow,
    DxFlow,
    Flow,
    HullFlow,
    IdealFlow,
    OracleRateController,
    RcpFlow,
    RenoFlow,
    TimelyFlow,
    install_dcqcn_marking,
    install_phantom_queues,
    install_rcp,
)
from repro.topology import (
    LinkSpec,
    Network,
    dumbbell,
    fat_tree,
    multi_bottleneck,
    oversubscribed_clos,
    parking_lot,
    single_switch,
)
from repro.metrics import (
    FctStats,
    fct_stats_by_bucket,
    jain_index,
    percentile,
)

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "PS", "NS", "US", "MS", "SEC", "KB", "MB", "GBPS",
    "ExpressPassFlow", "ExpressPassParams", "CreditFeedbackControl",
    "max_credit_rate_cps", "SenderState", "ReceiverState",
    "Flow", "RenoFlow", "CubicFlow", "DctcpFlow", "HullFlow", "DxFlow",
    "RcpFlow", "IdealFlow", "OracleRateController", "DcqcnFlow", "TimelyFlow",
    "install_rcp", "install_phantom_queues", "install_dcqcn_marking",
    "Network", "LinkSpec", "dumbbell", "single_switch", "parking_lot",
    "multi_bottleneck", "fat_tree", "oversubscribed_clos",
    "jain_index", "percentile", "FctStats", "fct_stats_by_bucket",
]

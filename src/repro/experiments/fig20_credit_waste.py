"""Fig 20: credit-waste ratio by workload, link speed, and α.

Credit waste grows as the average flow size shrinks (Web Server worst) and
as the BDP grows (40 G worse than 10 G); dropping α to 1/16 roughly halves
it.  The ratio is measured at senders: wasted / (wasted + used).
"""

from __future__ import annotations

from typing import Sequence

from repro.core import ExpressPassParams
from repro.experiments.realistic import run_realistic
from repro.experiments.runner import ExperimentResult
from repro.sim.units import GBPS


def run(
    workloads: Sequence[str] = ("data_mining", "web_search",
                                "cache_follower", "web_server"),
    speeds_gbps: Sequence[int] = (10, 40),
    alphas: Sequence[float] = (1 / 2, 1 / 16),
    load: float = 0.6,
    n_flows: int = 800,
    **kwargs,
) -> ExperimentResult:
    rows = []
    for workload in workloads:
        for gbps in speeds_gbps:
            for alpha in alphas:
                params = ExpressPassParams().with_alpha(alpha, alpha)
                result = run_realistic(
                    "expresspass", workload, load, n_flows,
                    rate_bps=gbps * GBPS, ep_params=params, **kwargs,
                )
                rows.append({
                    "workload": workload,
                    "rate_gbps": gbps,
                    "alpha": f"1/{round(1 / alpha)}",
                    "credit_waste": result.credit_waste_ratio,
                })
    return ExperimentResult(
        name=f"Fig 20 credit-waste ratio (load {load})",
        columns=["workload", "rate_gbps", "alpha", "credit_waste"],
        rows=rows,
    )

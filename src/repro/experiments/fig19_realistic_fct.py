"""Fig 19: average / 99th-percentile FCT per size bucket, five protocols.

The paper's headline workload result: ExpressPass wins on S and M flows
(1.3–5.1× faster average than DCTCP, more at p99) by avoiding queueing and
ramping instantly; DCTCP/RCP win on L/XL flows (ExpressPass pays its credit
reservation and wasted credits); DX and HULL sit between.

Like Fig 15, this figure compiles from a declarative scenario spec
(:func:`scenario_dict`, mirrored by ``scenarios/fig19_realistic_fct.yaml``)
through :mod:`repro.scenarios`; :func:`run_legacy` keeps the original
serial loop as the bit-identity reference.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import ExpressPassParams
from repro.core.params import REALISTIC_WORKLOAD_PARAMS
from repro.experiments.realistic import run_realistic
from repro.experiments.runner import ExperimentResult

COLUMNS = ["protocol", "bucket", "flows", "avg_fct_ms", "p99_fct_ms"]


def _bucket_rows(protocol: str, buckets: dict, completed: int) -> list:
    """The figure's row shape: one row per size bucket plus an (all) row."""
    rows = [{
        "protocol": protocol,
        "bucket": bucket,
        "flows": stats["flows"],
        "avg_fct_ms": stats["avg_fct_ms"],
        "p99_fct_ms": stats["p99_fct_ms"],
    } for bucket, stats in sorted(buckets.items())]
    rows.append({
        "protocol": protocol,
        "bucket": "(all)",
        "flows": completed,
        "avg_fct_ms": None,
        "p99_fct_ms": None,
    })
    return rows


def scenario_dict(
    protocols: Sequence[str] = ("expresspass", "rcp", "dctcp", "dx", "hull"),
    workload: str = "web_search",
    load: float = 0.6,
    n_flows: int = 1200,
    rate_bps: int = 10_000_000_000,
    core_rate_bps: Optional[int] = None,
    size_cap_bytes: Optional[int] = 20_000_000,
    drain_ps: int = 10**12,
    seed: int = 1,
) -> dict:
    """This figure as a scenario spec (one cell per protocol)."""
    from repro.scenarios.schema import SCHEMA

    topo: dict = {"kind": "clos", "rate_bps": rate_bps}
    if core_rate_bps is not None:
        topo["params"] = {"core_rate_bps": core_rate_bps}
    return {
        "schema": SCHEMA,
        "name": "fig19",
        "description": f"Fig 19 FCT per size bucket ({workload}, "
                       f"load {load})",
        "topology": topo,
        "workload": {"kind": "poisson", "n_flows": n_flows,
                     "distribution": workload, "load": load,
                     "size_cap_bytes": size_cap_bytes},
        "transport": {"ep_profile": "realistic"},
        "timing": {"drain_ps": drain_ps},
        "seeds": [seed],
        "sweep": {"transport.protocol": list(protocols)},
    }


def run(
    protocols: Sequence[str] = ("expresspass", "rcp", "dctcp", "dx", "hull"),
    workload: str = "web_search",
    load: float = 0.6,
    n_flows: int = 1200,
    ep_params: Optional[ExpressPassParams] = REALISTIC_WORKLOAD_PARAMS,
    **kwargs,
) -> ExperimentResult:
    """Spec-compiled path; sweeps protocols through the runtime.

    Only the named parameter profiles are expressible as spec data; a
    custom ``ep_params`` object falls back to the hand-written loop.
    (Non-ExpressPass harnesses ignore ``ep_params`` entirely, so applying
    the profile uniformly matches the legacy per-protocol conditional.)
    """
    if ep_params not in (None, REALISTIC_WORKLOAD_PARAMS):
        return run_legacy(protocols, workload, load, n_flows,
                          ep_params=ep_params, **kwargs)
    from repro.runtime import SweepError, run_tasks
    from repro.scenarios.compiler import compile_scenario
    from repro.scenarios.schema import Scenario

    spec = scenario_dict(protocols, workload, load, n_flows, **kwargs)
    if ep_params is None:
        spec["transport"]["ep_profile"] = "default"
    matrix = compile_scenario(Scenario.from_dict(spec, source="fig19"))
    results = run_tasks(matrix.plan("fig19"))
    failures = [r for r in results if r.error is not None]
    if failures and len(failures) == len(results):
        raise SweepError(failures)
    rows = []
    for res in results:
        if res.error is not None:
            continue
        rows.extend(_bucket_rows(res.value["protocol"], res.value["buckets"],
                                 res.value["completed"]))
    return ExperimentResult(
        name=f"Fig 19 FCT per size bucket ({workload}, load {load})",
        columns=COLUMNS,
        rows=rows,
    )


def run_legacy(
    protocols: Sequence[str] = ("expresspass", "rcp", "dctcp", "dx", "hull"),
    workload: str = "web_search",
    load: float = 0.6,
    n_flows: int = 1200,
    ep_params: Optional[ExpressPassParams] = REALISTIC_WORKLOAD_PARAMS,
    **kwargs,
) -> ExperimentResult:
    """The pre-scenario serial loop, kept as the bit-identity reference."""
    rows = []
    for protocol in protocols:
        params = ep_params if protocol.startswith("expresspass") else None
        result = run_realistic(protocol, workload, load, n_flows,
                               ep_params=params, **kwargs)
        for bucket, stats in sorted(result.fct_by_bucket.items()):
            rows.append({
                "protocol": protocol,
                "bucket": bucket,
                "flows": stats.count,
                "avg_fct_ms": stats.mean_s * 1e3,
                "p99_fct_ms": stats.p99_s * 1e3,
            })
        rows.append({
            "protocol": protocol,
            "bucket": "(all)",
            "flows": result.completed,
            "avg_fct_ms": None,
            "p99_fct_ms": None,
        })
    return ExperimentResult(
        name=f"Fig 19 FCT per size bucket ({workload}, load {load})",
        columns=COLUMNS,
        rows=rows,
    )

"""Fig 19: average / 99th-percentile FCT per size bucket, five protocols.

The paper's headline workload result: ExpressPass wins on S and M flows
(1.3–5.1× faster average than DCTCP, more at p99) by avoiding queueing and
ramping instantly; DCTCP/RCP win on L/XL flows (ExpressPass pays its credit
reservation and wasted credits); DX and HULL sit between.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import ExpressPassParams
from repro.core.params import REALISTIC_WORKLOAD_PARAMS
from repro.experiments.realistic import run_realistic
from repro.experiments.runner import ExperimentResult


def run(
    protocols: Sequence[str] = ("expresspass", "rcp", "dctcp", "dx", "hull"),
    workload: str = "web_search",
    load: float = 0.6,
    n_flows: int = 1200,
    ep_params: Optional[ExpressPassParams] = REALISTIC_WORKLOAD_PARAMS,
    **kwargs,
) -> ExperimentResult:
    rows = []
    for protocol in protocols:
        params = ep_params if protocol.startswith("expresspass") else None
        result = run_realistic(protocol, workload, load, n_flows,
                               ep_params=params, **kwargs)
        for bucket, stats in sorted(result.fct_by_bucket.items()):
            rows.append({
                "protocol": protocol,
                "bucket": bucket,
                "flows": stats.count,
                "avg_fct_ms": stats.mean_s * 1e3,
                "p99_fct_ms": stats.p99_s * 1e3,
            })
        rows.append({
            "protocol": protocol,
            "bucket": "(all)",
            "flows": result.completed,
            "avg_fct_ms": None,
            "p99_fct_ms": None,
        })
    return ExperimentResult(
        name=f"Fig 19 FCT per size bucket ({workload}, load {load})",
        columns=["protocol", "bucket", "flows", "avg_fct_ms", "p99_fct_ms"],
        rows=rows,
    )

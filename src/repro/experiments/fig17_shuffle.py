"""Fig 17 / §6.2: MapReduce shuffle under heavy incast.

Hosts on one ToR run an all-to-all shuffle (every task sends a fixed-size
flow to every task on every other host).  The paper's finding: DCTCP's
*median* FCT is slightly better, but its tail is far worse (1.5× at p99,
~6.7× at the max) because straggler hosts cannot catch up; ExpressPass's
credit scheduling keeps the tail tight.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import ExpressPassParams
from repro.experiments.runner import ExperimentResult, get_harness
from repro.metrics.fct import percentile
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MS, SEC, US
from repro.topology import LinkSpec, single_switch
from repro.workloads import shuffle_specs


def run_point(
    protocol: str,
    n_hosts: int = 8,
    tasks_per_host: int = 2,
    flow_bytes: int = 100 * KB,
    rate_bps: int = 10 * GBPS,
    seed: int = 1,
    horizon_ps: int = 2 * SEC,
    ep_params: Optional[ExpressPassParams] = None,
) -> dict:
    sim = Simulator(seed=seed)
    base_rtt = 20 * US
    harness = get_harness(protocol, rate_bps, base_rtt, ep_params)
    spec = harness.adapt_link(LinkSpec(rate_bps=rate_bps, prop_delay_ps=2 * US))
    topo = single_switch(sim, n_hosts, link=spec)
    harness.install(sim, topo.net)

    rng = sim.rng("shuffle-jitter")
    specs = shuffle_specs(n_hosts, tasks_per_host, flow_bytes,
                          jitter_ps=100 * US, rng=rng)
    flows = [
        harness.flow(topo.hosts[s.src], topo.hosts[s.dst], s.size_bytes,
                     start_ps=s.start_ps)
        for s in specs
    ]
    sim.run(until=horizon_ps)
    fcts = [f.fct_ps / 1e9 for f in flows if f.completed]  # milliseconds
    completed = len(fcts)
    if completed == 0:
        raise RuntimeError(f"{protocol}: no shuffle flow completed")
    return {
        "protocol": protocol,
        "flows": len(flows),
        "completed": completed,
        "fct_ms_p50": percentile(fcts, 50),
        "fct_ms_p99": percentile(fcts, 99),
        "fct_ms_max": max(fcts),
        "data_drops": sum(f.data_drops for f in flows),
    }


def run(protocols: Sequence[str] = ("expresspass", "dctcp"), **kwargs) -> ExperimentResult:
    rows = [run_point(p, **kwargs) for p in protocols]
    return ExperimentResult(
        name="Fig 17 shuffle workload FCT (median / p99 / max)",
        columns=["protocol", "flows", "completed", "fct_ms_p50",
                 "fct_ms_p99", "fct_ms_max", "data_drops"],
        rows=rows,
    )

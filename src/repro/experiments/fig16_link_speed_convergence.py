"""Fig 16: convergence time when a second flow joins, at 10 G and 100 G.

One flow saturates the bottleneck; a second starts at t0.  We report how
many RTTs until both flows sustain the fair share (±20 %).  Paper findings:
ExpressPass converges in a few RTTs at *both* speeds (the gap from α=1/2 to
α=1/16 roughly doubles it); DCTCP needs hundreds of RTTs at 10 G and
thousands at 100 G (convergence ∝ BDP); RCP converges in a few RTTs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import ExpressPassParams
from repro.experiments.runner import ExperimentResult, get_harness, run_sweep
from repro.metrics.timeseries import FlowThroughputSampler, convergence_time_ps
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, dumbbell


def run_point(
    protocol: str,
    rate_bps: int,
    base_rtt_ps: int = 100 * US,
    seed: int = 1,
    max_rtts: int = 4000,
    ep_params: Optional[ExpressPassParams] = None,
    tolerance: float = 0.25,
) -> dict:
    """Convergence time, in RTTs, of a 2nd flow joining a saturated link."""
    sim = Simulator(seed=seed)
    harness = get_harness(protocol, rate_bps, base_rtt_ps, ep_params)
    # Dumbbell path: 3 links each way; split the base RTT across them.
    prop = base_rtt_ps // 6
    spec = harness.adapt_link(LinkSpec(rate_bps=rate_bps, prop_delay_ps=prop))
    topo = dumbbell(sim, n_pairs=2, bottleneck=spec)
    harness.install(sim, topo.net)

    warmup = 40 * base_rtt_ps
    flow0 = harness.flow(topo.senders[0], topo.receivers[0], None, start_ps=0)
    flow1 = harness.flow(topo.senders[1], topo.receivers[1], None, start_ps=warmup)

    sample = max(base_rtt_ps, 10 * US)
    sampler = FlowThroughputSampler(sim, [flow0, flow1], sample)

    # Fair share: half the achievable data goodput of the bottleneck.
    achievable = rate_bps * 0.9 if protocol.startswith("expresspass") else rate_bps * 0.95
    fair = achievable / 2

    def detect():
        return convergence_time_ps(
            sampler.times_ps,
            [sampler.series[flow0], sampler.series[flow1]],
            fair,
            tolerance=tolerance,
            sustain_intervals=3,
            start_ps=warmup,
        )

    # Run in chunks and stop as soon as convergence is detected + a margin,
    # so fast protocols don't pay the slow protocols' horizon.
    horizon = warmup + max_rtts * base_rtt_ps
    converged_at = None
    t = warmup
    while t < horizon:
        t = min(t + 100 * base_rtt_ps, horizon)
        sim.run(until=t)
        converged_at = detect()
        if converged_at is not None:
            break
    rtts = (converged_at - warmup) / base_rtt_ps if converged_at is not None else None
    return {
        "protocol": protocol,
        "rate_gbps": rate_bps / 1e9,
        "convergence_rtts": rtts,
        "converged": converged_at is not None,
    }


def run_point_labeled(label: str, **kwargs) -> dict:
    """Sweep task: one convergence cell with a display label (e.g. α variant)."""
    row = run_point(**kwargs)
    row["protocol"] = label
    return row


def run_point_labeled_fluid(label: str, **kwargs) -> dict:
    """Fluid trend-mode sweep task: same row shape, no packet events."""
    from repro.sim.fluid import fluid_join_convergence

    kwargs.pop("seed", None)   # the fluid join is deterministic
    row = fluid_join_convergence(**kwargs)
    row["protocol"] = label
    return row


def run(
    protocols: Sequence[str] = ("expresspass", "dctcp", "rcp"),
    rates_gbps: Sequence[int] = (10, 100),
    alpha_variants: Sequence[float] = (0.5, 1 / 16),
    backend: str = "packet",
    **kwargs,
) -> ExperimentResult:
    """``backend="fluid"`` replays the join in the rate-evolution model:
    the convergence-class trend (ExpressPass/RCP a few RTTs, DCTCP far
    more; α halving roughly doubling it) at a fraction of the cost."""
    fluid = backend == "fluid"
    points = []
    for rate in rates_gbps:
        for protocol in protocols:
            if protocol == "expresspass":
                for alpha in alpha_variants:
                    pt = {"label": f"expresspass(a={alpha:g})",
                          "protocol": protocol,
                          "rate_bps": rate * GBPS}
                    if fluid:
                        pt["alpha"] = alpha
                    else:
                        pt["ep_params"] = \
                            ExpressPassParams().with_alpha(alpha, alpha)
                    points.append(pt)
            else:
                points.append({"label": protocol, "protocol": protocol,
                               "rate_bps": rate * GBPS})
    rows = run_sweep(
        run_point_labeled_fluid if fluid else run_point_labeled,
        points,
        common=kwargs,
        name="fig16",
        label=lambda pt: f"{pt['label']}@{pt['rate_bps'] // 10**9}G",
    )
    return ExperimentResult(
        name="Fig 16 convergence time vs link speed"
             + (" (fluid trend mode)" if fluid else ""),
        columns=["protocol", "rate_gbps", "convergence_rtts", "converged"],
        rows=rows,
    )

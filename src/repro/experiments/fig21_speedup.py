"""Fig 21: average-FCT speed-up from upgrading 10 G links to 40 G.

Per size bucket and protocol: larger flows gain the most from bandwidth
(small-flow FCT is RTT-bound).  ExpressPass posts the largest gains for
most buckets (fast convergence exploits the new capacity immediately);
RCP leads for the Web Server's large flows (aggressive start, no credit
waste); DX/HULL gain least (least aggressive).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import ExpressPassParams
from repro.core.params import REALISTIC_WORKLOAD_PARAMS
from repro.experiments.realistic import run_realistic
from repro.experiments.runner import ExperimentResult
from repro.sim.units import GBPS


def run(
    protocols: Sequence[str] = ("expresspass", "rcp", "dctcp", "dx", "hull"),
    workload: str = "web_search",
    load: float = 0.6,
    n_flows: int = 800,
    ep_params: Optional[ExpressPassParams] = REALISTIC_WORKLOAD_PARAMS,
    **kwargs,
) -> ExperimentResult:
    rows = []
    for protocol in protocols:
        params = ep_params if protocol.startswith("expresspass") else None
        slow = run_realistic(protocol, workload, load, n_flows,
                             rate_bps=10 * GBPS, ep_params=params, **kwargs)
        fast = run_realistic(protocol, workload, load, n_flows,
                             rate_bps=40 * GBPS, ep_params=params, **kwargs)
        for bucket in ("S", "M", "L", "XL"):
            a, b = slow.fct_by_bucket.get(bucket), fast.fct_by_bucket.get(bucket)
            if a is None or b is None or b.mean_s == 0:
                continue
            rows.append({
                "protocol": protocol,
                "bucket": bucket,
                "speedup_avg_fct": a.mean_s / b.mean_s,
            })
    return ExperimentResult(
        name=f"Fig 21 avg-FCT speed-up of 40G over 10G ({workload}, load {load})",
        columns=["protocol", "bucket", "speedup_avg_fct"],
        rows=rows,
    )

"""One-page reproduction summary from the *cheap* experiments.

``python -m repro run summary`` executes everything that completes in a few
seconds — the analytic results (Table 1, Fig 5, Fig 12) and the calibration
models (Fig 14) — plus a small live simulation sanity check, and renders a
single report.  It is the quickest end-to-end health check of the
reproduction; the full figure set comes from ``pytest benchmarks/``.
"""

from __future__ import annotations

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.experiments.runner import ExperimentResult
from repro.metrics import jain_index
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, dumbbell


def _live_sanity(seed: int = 1) -> dict:
    """A 20 ms, 8-flow dumbbell run checking the headline invariants."""
    sim = Simulator(seed=seed)
    topo = dumbbell(sim, n_pairs=8,
                    bottleneck=LinkSpec(rate_bps=10 * GBPS, prop_delay_ps=4 * US))
    params = ExpressPassParams(rtt_hint_ps=40 * US)
    flows = [ExpressPassFlow(s, r, None, params=params)
             for s, r in zip(topo.senders, topo.receivers)]
    sim.run(until=10 * MS)
    base = [f.bytes_delivered for f in flows]
    sim.run(until=20 * MS)
    rates = [f.bytes_delivered - b for f, b in zip(flows, base)]
    for f in flows:
        f.stop()
    return {
        "utilization": sum(rates) * 8 / 0.01 / 10e9,
        "fairness": jain_index(rates),
        "max_queue_bytes": topo.net.max_data_queue_bytes(),
        "data_drops": topo.net.total_data_drops(),
    }


def run(seed: int = 1) -> ExperimentResult:
    """Build the summary rows (cheap analytics + one live check).

    The three simulation-backed checks (live dumbbell, Fig 12 feedback
    model, Fig 14a host-delay calibration) are independent, so they run as
    ``repro.runtime`` tasks — parallel under ``--parallel N``, cached like
    any sweep point.  A check whose task fails after retries is reported as
    a failed row instead of aborting the summary.
    """
    from repro.calculus import buffer_bounds, d_star, TopologyParams
    from repro.experiments.fig12_steady_state import run as fig12_run
    from repro.experiments.fig14_host_jitter import run_host_delay
    from repro.runtime import TaskSpec, run_tasks

    live_r, fig12_r, delay_r = run_tasks([
        TaskSpec(_live_sanity, {"seed": seed}, label="live-sanity"),
        TaskSpec(fig12_run, {"n_flows": 8, "periods": 300, "w_mins": (0.01,)},
                 label="fig12-feedback"),
        TaskSpec(run_host_delay, {"samples": 20_000, "seed": seed},
                 label="fig14a-host-delay"),
    ], name="summary")

    def failed_row(check: str, result) -> dict:
        return {"check": check, "value": f"ERROR: {result.error}",
                "expectation": "task completes", "ok": False}

    rows = []

    if live_r.ok:
        live = live_r.value
        rows.append({"check": "live: 8-flow utilization",
                     "value": f"{live['utilization']:.3f}",
                     "expectation": ">= 0.85 (credit ceiling ~0.92)",
                     "ok": live["utilization"] >= 0.85})
        rows.append({"check": "live: 8-flow Jain fairness",
                     "value": f"{live['fairness']:.3f}",
                     "expectation": ">= 0.9", "ok": live["fairness"] >= 0.9})
        rows.append({"check": "live: max data queue",
                     "value": f"{live['max_queue_bytes']} B",
                     "expectation": "< 16 MTUs",
                     "ok": live["max_queue_bytes"] < 16 * 1538})
        rows.append({"check": "live: data drops",
                     "value": str(live["data_drops"]),
                     "expectation": "== 0", "ok": live["data_drops"] == 0})
    else:
        rows.append(failed_row("live: 8-flow sanity run", live_r))

    bounds = buffer_bounds(TopologyParams(), "literal")
    rows.append({"check": "Table 1: ToR-down bound (10/40)",
                 "value": f"{bounds.tor_down_bytes / 1e3:.1f} KB",
                 "expectation": "~577.3 KB (paper)",
                 "ok": 0.6 * 577_300 < bounds.tor_down_bytes < 1.4 * 577_300})

    if fig12_r.ok:
        amp = fig12_r.value.rows[0]
        rows.append({"check": "Fig 12: oscillation == D*",
                     "value": f"{amp['final_amplitude']:.4f}",
                     "expectation": f"~{amp['predicted_D_star']:.4f}",
                     "ok": amp["final_amplitude"]
                           <= amp["predicted_D_star"] * 1.3})
    else:
        rows.append(failed_row("Fig 12: oscillation == D*", fig12_r))

    if delay_r.ok:
        median = next(r["delay_us"] for r in delay_r.value.rows
                      if r["percentile"] == 50)
        rows.append({"check": "Fig 14a: host delay median",
                     "value": f"{median:.2f} us",
                     "expectation": "~0.38 us (paper)",
                     "ok": 0.3 < median < 0.46})
    else:
        rows.append(failed_row("Fig 14a: host delay median", delay_r))

    return ExperimentResult(
        name="Reproduction summary (cheap checks)",
        columns=["check", "value", "expectation", "ok"],
        rows=rows,
        meta={"all_ok": all(r["ok"] for r in rows)},
    )

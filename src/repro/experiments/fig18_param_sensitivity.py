"""Fig 18: sensitivity of 99th-percentile FCT to α and w_init.

Sweeping (α, w_init) from (1/2, 1/2) down to (1/32, 1/32) trades short-flow
FCT (worse at lower α: slower start) against large-flow FCT (better: fewer
wasted credits stealing bandwidth).  The paper picks (1/16, 1/16) as the
sweet spot for realistic workloads.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core import ExpressPassParams
from repro.experiments.realistic import run_realistic
from repro.experiments.runner import ExperimentResult, run_sweep

#: (α, w_init) pairs along the paper's x-axis.
DEFAULT_SWEEP: Tuple[Tuple[float, float], ...] = (
    (1 / 2, 1 / 2),
    (1 / 16, 1 / 2),
    (1 / 16, 1 / 16),
    (1 / 32, 1 / 16),
    (1 / 32, 1 / 32),
)


def run_point(alpha: float, w_init: float, workload: str, load: float,
              n_flows: int, **kwargs) -> dict:
    """One (α, w_init) cell, reduced to its table row.

    The reduction happens *here* (inside the sweep task) rather than in
    ``run`` because a :class:`RealisticRun` carries live flow/simulator
    objects — only the extracted row is picklable and cacheable.
    """
    params = ExpressPassParams(initial_rate_fraction=alpha, w_init=w_init)
    result = run_realistic("expresspass", workload, load, n_flows,
                           ep_params=params, **kwargs)
    row = {"alpha": f"1/{round(1 / alpha)}", "w_init": f"1/{round(1 / w_init)}"}
    for bucket in ("S", "L"):
        stats = result.fct_by_bucket.get(bucket)
        row[f"p99_fct_{bucket}_ms"] = stats.p99_s * 1e3 if stats else None
    row["credit_waste"] = result.credit_waste_ratio
    return row


def run_point_fluid(alpha: float, w_init: float, workload: str, load: float,
                    n_flows: int, **kwargs) -> dict:
    """Fluid trend-mode cell: flow-level processor sharing, same row shape."""
    from repro.sim.fluid import fluid_fct_point

    allowed = ("rate_bps", "seed", "size_cap_bytes", "base_rtt_ps")
    kwargs = {k: v for k, v in kwargs.items() if k in allowed}
    return fluid_fct_point(alpha, w_init, workload, load, n_flows, **kwargs)


def run(
    sweep: Sequence[Tuple[float, float]] = DEFAULT_SWEEP,
    workload: str = "cache_follower",
    load: float = 0.6,
    n_flows: int = 1000,
    backend: str = "packet",
    **kwargs,
) -> ExperimentResult:
    """``backend="fluid"`` scans the (α, w_init) grid with the flow-level
    fluid model — the short-flow-vs-elephant trade-off trend without a
    packet-level Clos run per cell."""
    fluid = backend == "fluid"
    rows = run_sweep(
        run_point_fluid if fluid else run_point,
        [{"alpha": alpha, "w_init": w_init} for alpha, w_init in sweep],
        common={"workload": workload, "load": load, "n_flows": n_flows,
                **kwargs},
        name="fig18",
        label=lambda pt: f"a=1/{round(1 / pt['alpha'])}"
                         f",w=1/{round(1 / pt['w_init'])}",
    )
    return ExperimentResult(
        name=f"Fig 18 (α, w_init) sensitivity — p99 FCT ({workload}, load {load})"
             + (" (fluid trend mode)" if fluid else ""),
        columns=["alpha", "w_init", "p99_fct_S_ms", "p99_fct_L_ms", "credit_waste"],
        rows=rows,
    )

"""Fig 8: the initial-rate trade-off (§3.3).

(a) Convergence time of a new flow joining one existing flow, as the
    initial rate α·max_rate drops from max_rate to max_rate/32.
(b) Credits wasted by a single-packet flow in an idle network: with a high
    initial rate the receiver showers the sender with credits during the
    final RTT (plus the CREDIT_STOP round trip), nearly all wasted.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.experiments.runner import ExperimentResult, get_harness
from repro.metrics.timeseries import FlowThroughputSampler, convergence_time_ps
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, dumbbell


def convergence_point(
    alpha: float,
    rate_bps: int = 10 * GBPS,
    base_rtt_ps: int = 100 * US,
    seed: int = 1,
    max_rtts: int = 500,
) -> dict:
    params = ExpressPassParams(rtt_hint_ps=base_rtt_ps).with_alpha(alpha)
    sim = Simulator(seed=seed)
    harness = get_harness("expresspass", rate_bps, base_rtt_ps, params)
    prop = base_rtt_ps // 6
    spec = LinkSpec(rate_bps=rate_bps, prop_delay_ps=prop)
    topo = dumbbell(sim, n_pairs=2, bottleneck=spec)
    warmup = 40 * base_rtt_ps
    flow0 = harness.flow(topo.senders[0], topo.receivers[0], None)
    flow1 = harness.flow(topo.senders[1], topo.receivers[1], None, start_ps=warmup)
    sampler = FlowThroughputSampler(sim, [flow0, flow1], base_rtt_ps)
    sim.run(until=warmup + max_rtts * base_rtt_ps)
    converged_at = convergence_time_ps(
        sampler.times_ps, [sampler.series[flow0], sampler.series[flow1]],
        rate_bps * 0.9 / 2, tolerance=0.25, sustain_intervals=3, start_ps=warmup,
    )
    return {
        "alpha": alpha,
        "convergence_rtts": ((converged_at - warmup) / base_rtt_ps
                             if converged_at is not None else None),
    }


def waste_point(
    alpha: float,
    rate_bps: int = 10 * GBPS,
    base_rtt_ps: int = 100 * US,
    seed: int = 1,
) -> dict:
    """Credits wasted by a single-packet (1 B payload) flow in an idle net."""
    params = ExpressPassParams(rtt_hint_ps=base_rtt_ps).with_alpha(alpha)
    sim = Simulator(seed=seed)
    prop = base_rtt_ps // 6
    topo = dumbbell(sim, n_pairs=1,
                    bottleneck=LinkSpec(rate_bps=rate_bps, prop_delay_ps=prop))
    flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], 1, params=params)
    sim.run(until=100 * base_rtt_ps)
    return {
        "alpha": alpha,
        "wasted_credits": flow.credits_wasted,
        "credits_sent": flow.credits_sent,
    }


def run(alphas: Sequence[float] = (1.0, 0.5, 0.25, 0.125, 1 / 16, 1 / 32),
        max_rtts: int = 500, **kwargs) -> ExperimentResult:
    rows = []
    for alpha in alphas:
        row = convergence_point(alpha, max_rtts=max_rtts, **kwargs)
        row.update(waste_point(alpha, **kwargs))
        rows.append(row)
    return ExperimentResult(
        name="Fig 8 initial-rate trade-off: convergence vs credit waste",
        columns=["alpha", "convergence_rtts", "wasted_credits", "credits_sent"],
        rows=rows,
    )

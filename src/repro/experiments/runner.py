"""Shared experiment plumbing: protocol harnesses and result tables.

A :class:`ProtocolHarness` hides the per-protocol differences the
experiments must not care about — which LinkSpec knobs to set (ECN marking
for DCTCP/HULL), what to install on the fabric after it is built (RCP link
controllers, HULL phantom queues, the ideal oracle), and how to construct a
flow.  ``get_harness(name, ...)`` is the registry; every figure/table
experiment builds its traffic through it so that all protocols see identical
topologies and arrival sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.runtime import SweepError, SweepPlan, run_tasks
from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.sim.units import US
from repro.topology.network import LinkSpec, Network
from repro.net.pfc import install_pfc
from repro.transport import (
    CubicFlow,
    DcqcnFlow,
    DctcpFlow,
    DxFlow,
    HullFlow,
    IdealFlow,
    OracleRateController,
    RcpFlow,
    RenoFlow,
    TimelyFlow,
    install_dcqcn_marking,
    install_phantom_queues,
    install_rcp,
)
from repro.transport.dctcp import dctcp_gain, dctcp_marking_threshold_bytes


@dataclass
class ExperimentResult:
    """A reproduced table/figure: named rows ready for printing."""

    name: str
    columns: List[str]
    rows: List[dict]
    meta: dict = field(default_factory=dict)

    def column(self, key: str) -> list:
        return [row.get(key) for row in self.rows]


def format_table(result: ExperimentResult, float_fmt: str = "{:.4g}") -> str:
    """Render an ExperimentResult as an aligned text table."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    header = result.columns
    body = [[fmt(row.get(col, "")) for col in header] for row in result.rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "== " + result.name + " ==",
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def run_sweep(
    fn: Callable[..., Any],
    points: Iterable[Mapping[str, Any]],
    common: Optional[Mapping[str, Any]] = None,
    name: Optional[str] = None,
    label: Optional[Callable[[Mapping[str, Any]], str]] = None,
    strict: bool = False,
) -> List[Any]:
    """Run ``fn(**common, **point)`` for every point of a parameter grid.

    This is the experiments' doorway into :mod:`repro.runtime`: execution
    policy (worker count, result cache, retries, telemetry) comes from the
    active runtime config, so ``python -m repro run fig15 --parallel 4`` and
    ``REPRO_PARALLEL=4 pytest benchmarks/`` parallelise every adopter with
    no experiment-side changes.  ``fn`` must be a module-level function and
    each point must carry everything the task needs (including its seed) —
    that is what makes tasks picklable, cacheable, and order-independent.

    Returns the per-point results **in grid order** (parallel execution is
    bit-identical to serial).  Tasks that still fail after the runtime's
    retry budget are dropped from the result (the sweep survives) unless
    ``strict=True``, in which case :class:`repro.runtime.SweepError` lists
    them.  A sweep in which *every* task failed raises regardless — that is
    a broken configuration (e.g. a bad protocol name), not a partial outage,
    and an empty table would bury the actual error.
    """
    plan = SweepPlan.from_grid(fn, points, common, name=name, label=label)
    results = run_tasks(plan)
    failures = [r for r in results if not r.ok]
    if failures and (strict or len(failures) == len(results)):
        raise SweepError(failures)
    return [r.value for r in results if r.ok]


class ProtocolHarness:
    """Per-protocol glue; see module docstring."""

    def __init__(
        self,
        name: str,
        flow_factory: Callable,
        link_mutator: Optional[Callable[[LinkSpec], LinkSpec]] = None,
        post_build: Optional[Callable[[Simulator, Network], None]] = None,
        flow_kwargs: Optional[dict] = None,
    ):
        self.name = name
        self._flow_factory = flow_factory
        self._link_mutator = link_mutator
        self._post_build = post_build
        self._flow_kwargs = flow_kwargs or {}

    def adapt_link(self, spec: LinkSpec) -> LinkSpec:
        """Apply protocol-required LinkSpec changes (e.g. ECN threshold)."""
        return self._link_mutator(spec) if self._link_mutator else spec

    def install(self, sim: Simulator, net: Network) -> None:
        """Install fabric-side components (RCP controllers, phantom queues)."""
        if self._post_build:
            self._post_build(sim, net)

    def flow(self, src: Host, dst: Host, size_bytes: Optional[int],
             start_ps: int = 0, **overrides):
        kwargs = dict(self._flow_kwargs)
        kwargs.update(overrides)
        return self._flow_factory(src, dst, size_bytes, start_ps, **kwargs)


PROTOCOLS = (
    "expresspass",
    "expresspass-naive",
    "dctcp",
    "rcp",
    "hull",
    "dx",
    "reno",
    "cubic",
    "ideal",
    "dcqcn",   # RDMA baselines (§8): run over a PFC lossless fabric
    "timely",
)


def get_harness(
    name: str,
    link_rate_bps: int,
    base_rtt_ps: int = 100 * US,
    ep_params: Optional[ExpressPassParams] = None,
    min_rto_ps: Optional[int] = None,
) -> ProtocolHarness:
    """Build the harness for ``name`` (one of :data:`PROTOCOLS`).

    ``link_rate_bps`` sizes protocol constants that scale with speed (DCTCP
    K and g, HULL's marking threshold); ``base_rtt_ps`` seeds RTT-derived
    timers (ExpressPass update period hint, RCP's control interval).
    """
    if name in ("expresspass", "expresspass-naive"):
        params = ep_params or ExpressPassParams()
        params = replace(params, naive=(name == "expresspass-naive"),
                         rtt_hint_ps=base_rtt_ps)
        return ProtocolHarness(
            name,
            lambda s, d, size, t0, **kw: ExpressPassFlow(
                s, d, size, t0, params=kw.pop("params", params), **kw),
        )

    window_kwargs = {}
    if min_rto_ps is not None:
        window_kwargs["min_rto_ps"] = min_rto_ps

    if name == "dctcp":
        k_bytes = dctcp_marking_threshold_bytes(link_rate_bps)
        g = dctcp_gain(link_rate_bps)
        return ProtocolHarness(
            name,
            lambda s, d, size, t0, **kw: DctcpFlow(s, d, size, t0, g=g, **kw),
            link_mutator=lambda spec: replace(spec, ecn_threshold_bytes=k_bytes),
            flow_kwargs=window_kwargs,
        )
    if name == "hull":
        # HULL marks in the *phantom* queue; the real queue stays unmarked.
        thresh = max(3_000 * link_rate_bps // (10**10), 1_500)
        g = dctcp_gain(link_rate_bps)
        return ProtocolHarness(
            name,
            lambda s, d, size, t0, **kw: HullFlow(s, d, size, t0, g=g, **kw),
            post_build=lambda sim, net: install_phantom_queues(
                net.ports, gamma=0.95, mark_threshold_bytes=thresh),
            flow_kwargs=window_kwargs,
        )
    if name == "rcp":
        return ProtocolHarness(
            name,
            lambda s, d, size, t0, **kw: RcpFlow(s, d, size, t0, **kw),
            post_build=lambda sim, net: install_rcp(sim, net.ports, base_rtt_ps),
        )
    if name == "dx":
        return ProtocolHarness(
            name,
            lambda s, d, size, t0, **kw: DxFlow(s, d, size, t0, **kw),
            flow_kwargs=window_kwargs,
        )
    if name == "reno":
        return ProtocolHarness(
            name,
            lambda s, d, size, t0, **kw: RenoFlow(s, d, size, t0, **kw),
            flow_kwargs=window_kwargs,
        )
    if name == "cubic":
        return ProtocolHarness(
            name,
            lambda s, d, size, t0, **kw: CubicFlow(s, d, size, t0, **kw),
            flow_kwargs=window_kwargs,
        )
    if name == "dcqcn":
        def _install_dcqcn(sim, net):
            install_dcqcn_marking(net.ports, sim=sim)
            install_pfc(sim, net.ports)
        return ProtocolHarness(
            name,
            lambda s, d, size, t0, **kw: DcqcnFlow(s, d, size, t0, **kw),
            post_build=_install_dcqcn,
        )
    if name == "timely":
        return ProtocolHarness(
            name,
            lambda s, d, size, t0, **kw: TimelyFlow(s, d, size, t0, **kw),
            post_build=lambda sim, net: install_pfc(sim, net.ports),
        )
    if name == "ideal":
        oracle = OracleRateController()
        return ProtocolHarness(
            name,
            lambda s, d, size, t0, **kw: IdealFlow(s, d, size, t0,
                                                   oracle=kw.pop("oracle", oracle), **kw),
        )
    raise ValueError(f"unknown protocol {name!r}; choose from {PROTOCOLS}")

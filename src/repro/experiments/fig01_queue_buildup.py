"""Fig 1: bottleneck data-queue length vs number of concurrent flows.

A partition/aggregate-style fan-in: N workers continuously stream responses
to one master.  Even the *ideal* rate control (every flow perfectly paced at
its exact fair share) builds a queue that grows with N, because packets of
independently paced flows collide at the bottleneck; DCTCP builds far more;
the credit-based scheme bounds the queue regardless of fan-in because the
credit arrival order *schedules* data arrivals.

The paper runs fan-outs 32..2048 on an 8-ary fat tree; the default here is a
single ToR with fan-in 8..128 (workers wrap onto hosts exactly as in the
paper when N exceeds the host count).  Queue statistics are taken on the
master's downlink — the incast bottleneck.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import ExpressPassParams
from repro.experiments.runner import ExperimentResult, get_harness
from repro.metrics.fct import percentile
from repro.metrics.timeseries import QueueSampler
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, single_switch


def run_point(
    protocol: str,
    fan_in: int,
    n_hosts: int = 16,
    rate_bps: int = 10 * GBPS,
    duration_ps: int = 20 * MS,
    seed: int = 1,
    ep_params: Optional[ExpressPassParams] = None,
) -> dict:
    sim = Simulator(seed=seed)
    base_rtt = 20 * US
    harness = get_harness(protocol, rate_bps, base_rtt, ep_params)
    spec = harness.adapt_link(LinkSpec(rate_bps=rate_bps, prop_delay_ps=2 * US))
    topo = single_switch(sim, n_hosts, link=spec)
    harness.install(sim, topo.net)

    master = topo.hosts[0]
    rng = sim.rng("fig1-start")
    flows = []
    for i in range(fan_in):
        worker = topo.hosts[1 + i % (n_hosts - 1)]
        # Stagger starts within one RTT: the paper's workers respond to a
        # request wave, which arrives spread over the fan-out.
        start = rng.randint(0, base_rtt)
        flows.append(harness.flow(worker, master, None, start_ps=start))

    bottleneck = topo.net.port_between(topo.switch, master)
    sampler = QueueSampler(sim, bottleneck, interval_ps=50 * US)
    sim.run(until=duration_ps)

    pkts = [b / 1538 for _, b in sampler.samples]
    return {
        "protocol": protocol,
        "fan_in": fan_in,
        "queue_pkts_p50": percentile(pkts, 50),
        "queue_pkts_p99": percentile(pkts, 99),
        "queue_pkts_max": bottleneck.data_queue.stats.max_bytes / 1538,
        "data_drops": topo.net.total_data_drops(),
    }


def run(
    protocols: Sequence[str] = ("ideal", "dctcp", "expresspass"),
    fan_ins: Sequence[int] = (8, 16, 32, 64, 128),
    **kwargs,
) -> ExperimentResult:
    rows = [
        run_point(protocol, n, **kwargs)
        for protocol in protocols
        for n in fan_ins
    ]
    return ExperimentResult(
        name="Fig 1 data-queue length vs concurrent flows",
        columns=["protocol", "fan_in", "queue_pkts_p50", "queue_pkts_p99",
                 "queue_pkts_max", "data_drops"],
        rows=rows,
    )

"""Fig 15: utilization / fairness / max queue vs number of concurrent flows.

N long-running flow pairs share one 10 G bottleneck.  The paper's findings:
ExpressPass holds ≈95 % utilization (the credit reservation), near-perfect
fairness, and a max queue of a few KB regardless of N; DCTCP's fairness
collapses past ~64 flows (window floor of 2) with queue growing toward
capacity; RCP under-utilizes and overflows beyond a few hundred flows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import ExpressPassParams
from repro.experiments.runner import ExperimentResult, get_harness, run_sweep
from repro.metrics import jain_index
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, dumbbell


def run_point(
    protocol: str,
    n_flows: int,
    rate_bps: int = 10 * GBPS,
    warmup_ps: int = 50 * MS,
    measure_ps: int = 50 * MS,
    seed: int = 1,
    ep_params: Optional[ExpressPassParams] = None,
) -> dict:
    """One (protocol, N) cell: run, then measure over the steady window."""
    sim = Simulator(seed=seed)
    base_rtt = 30 * US
    harness = get_harness(protocol, rate_bps, base_rtt, ep_params)
    spec = harness.adapt_link(LinkSpec(rate_bps=rate_bps, prop_delay_ps=4 * US))
    topo = dumbbell(sim, n_pairs=n_flows, bottleneck=spec)
    harness.install(sim, topo.net)
    flows = [harness.flow(s, r, None) for s, r in zip(topo.senders, topo.receivers)]

    sim.run(until=warmup_ps)
    base = {f: f.bytes_delivered for f in flows}
    sim.run(until=warmup_ps + measure_ps)
    seconds = measure_ps / 1e12
    rates = [(f.bytes_delivered - base[f]) * 8 / seconds for f in flows]
    return {
        "protocol": protocol,
        "flows": n_flows,
        "utilization": sum(rates) / rate_bps,
        "fairness": jain_index(rates),
        "max_queue_kb": topo.net.max_data_queue_bytes() / 1e3,
        "data_drops": topo.net.total_data_drops(),
    }


def run(
    protocols: Sequence[str] = ("expresspass", "dctcp", "rcp"),
    flow_counts: Sequence[int] = (4, 16, 64, 256),
    **kwargs,
) -> ExperimentResult:
    rows = run_sweep(
        run_point,
        [{"protocol": protocol, "n_flows": n}
         for protocol in protocols for n in flow_counts],
        common=kwargs,
        name="fig15",
        label=lambda pt: f"{pt['protocol']}/N={pt['n_flows']}",
    )
    return ExperimentResult(
        name="Fig 15 flow scalability (utilization / fairness / max queue)",
        columns=["protocol", "flows", "utilization", "fairness",
                 "max_queue_kb", "data_drops"],
        rows=rows,
    )

"""Fig 15: utilization / fairness / max queue vs number of concurrent flows.

N long-running flow pairs share one 10 G bottleneck.  The paper's findings:
ExpressPass holds ≈95 % utilization (the credit reservation), near-perfect
fairness, and a max queue of a few KB regardless of N; DCTCP's fairness
collapses past ~64 flows (window floor of 2) with queue growing toward
capacity; RCP under-utilizes and overflows beyond a few hundred flows.

This figure is compiled from a declarative scenario spec
(:func:`scenario_dict`, mirrored by ``scenarios/fig15_flow_scalability.yaml``)
through :mod:`repro.scenarios` — the same pipeline ``repro matrix`` drives.
:func:`run_legacy` keeps the original hand-written sweep; the test suite
pins the two paths bit-identical.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import ExpressPassParams
from repro.experiments.runner import ExperimentResult, get_harness, run_sweep
from repro.metrics import jain_index
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, dumbbell

COLUMNS = ["protocol", "flows", "utilization", "fairness",
           "max_queue_kb", "data_drops"]

_NAME = "Fig 15 flow scalability (utilization / fairness / max queue)"


def run_point(
    protocol: str,
    n_flows: int,
    rate_bps: int = 10 * GBPS,
    warmup_ps: int = 50 * MS,
    measure_ps: int = 50 * MS,
    seed: int = 1,
    ep_params: Optional[ExpressPassParams] = None,
) -> dict:
    """One (protocol, N) cell: run, then measure over the steady window.

    Delegates to the scenario cell runner (whose dumbbell arm is this
    figure's exact construction) and keeps the figure's classic columns.
    """
    from repro.scenarios.cells import run_persistent

    row = run_persistent(protocol=protocol, n_flows=n_flows,
                         topology="dumbbell", rate_bps=rate_bps,
                         warmup_ps=warmup_ps, measure_ps=measure_ps,
                         seed=seed, ep_params=ep_params)
    return {key: row[key] for key in COLUMNS}


def run_point_legacy(
    protocol: str,
    n_flows: int,
    rate_bps: int = 10 * GBPS,
    warmup_ps: int = 50 * MS,
    measure_ps: int = 50 * MS,
    seed: int = 1,
    ep_params: Optional[ExpressPassParams] = None,
) -> dict:
    """The original hand-written cell (the spec path's bit-identity oracle)."""
    sim = Simulator(seed=seed)
    base_rtt = 30 * US
    harness = get_harness(protocol, rate_bps, base_rtt, ep_params)
    spec = harness.adapt_link(LinkSpec(rate_bps=rate_bps, prop_delay_ps=4 * US))
    topo = dumbbell(sim, n_pairs=n_flows, bottleneck=spec)
    harness.install(sim, topo.net)
    flows = [harness.flow(s, r, None) for s, r in zip(topo.senders, topo.receivers)]

    sim.run(until=warmup_ps)
    base = {f: f.bytes_delivered for f in flows}
    sim.run(until=warmup_ps + measure_ps)
    seconds = measure_ps / 1e12
    rates = [(f.bytes_delivered - base[f]) * 8 / seconds for f in flows]
    return {
        "protocol": protocol,
        "flows": n_flows,
        "utilization": sum(rates) / rate_bps,
        "fairness": jain_index(rates),
        "max_queue_kb": topo.net.max_data_queue_bytes() / 1e3,
        "data_drops": topo.net.total_data_drops(),
    }


def scenario_dict(
    protocols: Sequence[str] = ("expresspass", "dctcp", "rcp"),
    flow_counts: Sequence[int] = (4, 16, 64, 256),
    rate_bps: int = 10 * GBPS,
    warmup_ps: int = 50 * MS,
    measure_ps: int = 50 * MS,
    seed: int = 1,
    backend: str = "packet",
) -> dict:
    """This figure as a scenario spec (protocol outer axis, N inner).

    ``backend="fluid"`` selects the rate-evolution engine — the 10×+
    faster trend mode for scanning wide (protocol, N) grids before paying
    for packet-level confirmation.
    """
    from repro.scenarios.schema import SCHEMA

    return {
        "schema": SCHEMA,
        "name": "fig15",
        "description": "Fig 15 flow scalability on a shared dumbbell",
        "backend": backend,
        "topology": {"kind": "dumbbell", "rate_bps": rate_bps},
        "workload": {"kind": "persistent"},
        "timing": {"warmup_ps": warmup_ps, "measure_ps": measure_ps},
        "seeds": [seed],
        "sweep": {"transport.protocol": list(protocols),
                  "workload.n_flows": list(flow_counts)},
    }


def run(
    protocols: Sequence[str] = ("expresspass", "dctcp", "rcp"),
    flow_counts: Sequence[int] = (4, 16, 64, 256),
    backend: str = "packet",
    **kwargs,
) -> ExperimentResult:
    """Spec-compiled path: build the scenario, compile, run, shape rows.

    An explicit ``ep_params`` object cannot be expressed as spec data (specs
    name profiles, not parameter objects), so that case falls back to the
    hand-written sweep.  ``backend="fluid"`` runs the same grid on the
    rate-evolution engine (trend mode).
    """
    if kwargs.get("ep_params") is not None:
        if backend != "packet":
            raise ValueError("explicit ep_params require the packet backend")
        return run_legacy(protocols, flow_counts, **kwargs)
    kwargs.pop("ep_params", None)
    kwargs["backend"] = backend
    from repro.runtime import SweepError, run_tasks
    from repro.scenarios.compiler import compile_scenario
    from repro.scenarios.schema import Scenario

    spec = scenario_dict(protocols, flow_counts, **kwargs)
    matrix = compile_scenario(Scenario.from_dict(spec, source="fig15"))
    results = run_tasks(matrix.plan("fig15"))
    failures = [r for r in results if r.error is not None]
    if failures and len(failures) == len(results):
        raise SweepError(failures)
    rows = [{key: r.value[key] for key in COLUMNS}
            for r in results if r.error is None]
    return ExperimentResult(name=_NAME, columns=COLUMNS, rows=rows)


def run_legacy(
    protocols: Sequence[str] = ("expresspass", "dctcp", "rcp"),
    flow_counts: Sequence[int] = (4, 16, 64, 256),
    **kwargs,
) -> ExperimentResult:
    """The pre-scenario sweep, kept as the bit-identity reference."""
    rows = run_sweep(
        run_point_legacy,
        [{"protocol": protocol, "n_flows": n}
         for protocol in protocols for n in flow_counts],
        common=kwargs,
        name="fig15",
        label=lambda pt: f"{pt['protocol']}/N={pt['n_flows']}",
    )
    return ExperimentResult(name=_NAME, columns=COLUMNS, rows=rows)

"""Fig 2: convergence of a naive credit scheme vs TCP CUBIC vs DCTCP.

Two flows on one bottleneck; the second joins once the first is saturated.
The naive credit-based scheme (receivers blast credits at the maximum rate,
switch rate-limiting does all the work) converges to the fair share within
about one RTT; CUBIC and DCTCP take tens of milliseconds.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentResult, get_harness
from repro.metrics.timeseries import FlowThroughputSampler, convergence_time_ps
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, dumbbell


def run_point(
    protocol: str,
    rate_bps: int = 10 * GBPS,
    base_rtt_ps: int = 100 * US,
    max_wait_ps: int = 500 * MS,
    seed: int = 1,
) -> dict:
    sim = Simulator(seed=seed)
    harness = get_harness(protocol, rate_bps, base_rtt_ps)
    prop = base_rtt_ps // 6
    spec = harness.adapt_link(LinkSpec(rate_bps=rate_bps, prop_delay_ps=prop))
    topo = dumbbell(sim, n_pairs=2, bottleneck=spec)
    harness.install(sim, topo.net)

    warmup = 50 * base_rtt_ps
    flow0 = harness.flow(topo.senders[0], topo.receivers[0], None, start_ps=0)
    flow1 = harness.flow(topo.senders[1], topo.receivers[1], None, start_ps=warmup)
    sampler = FlowThroughputSampler(sim, [flow0, flow1], base_rtt_ps)
    sim.run(until=warmup + max_wait_ps)

    achievable = rate_bps * 0.9 if protocol.startswith("expresspass") else rate_bps * 0.95
    # Per-RTT goodput windows hold only ~40 credit slots per flow, so the
    # tolerance must sit above that quantization noise (~±16 %).
    converged_at = convergence_time_ps(
        sampler.times_ps,
        [sampler.series[flow0], sampler.series[flow1]],
        achievable / 2,
        tolerance=0.35,
        sustain_intervals=2,
        start_ps=warmup,
    )
    time_us = (converged_at - warmup) / US if converged_at is not None else None
    return {
        "protocol": protocol,
        "convergence_us": time_us,
        "convergence_rtts": (time_us * US / base_rtt_ps
                             if time_us is not None else None),
        "converged": converged_at is not None,
    }


def run(
    protocols: Sequence[str] = ("expresspass-naive", "cubic", "dctcp"),
    **kwargs,
) -> ExperimentResult:
    rows = [run_point(p, **kwargs) for p in protocols]
    return ExperimentResult(
        name="Fig 2 convergence: naive credit vs TCP CUBIC vs DCTCP",
        columns=["protocol", "convergence_us", "convergence_rtts", "converged"],
        rows=rows,
    )

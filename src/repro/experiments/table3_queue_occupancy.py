"""Table 3: average / maximum queue occupancy across workloads and loads.

Paper shape: ExpressPass's average queue is sub-KB and its *maximum* is a
property of the topology — flat in load — while every reactive scheme's
queue grows with load; RCP pegs the queue capacity; DCTCP sits near its
marking threshold; DX and HULL stay low but load-sensitive.

The averages reported are for the busiest port (time-weighted).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import ExpressPassParams
from repro.core.params import REALISTIC_WORKLOAD_PARAMS
from repro.experiments.realistic import run_realistic
from repro.experiments.runner import ExperimentResult


def run(
    protocols: Sequence[str] = ("expresspass", "rcp", "dctcp", "dx", "hull"),
    workloads: Sequence[str] = ("web_search",),
    loads: Sequence[float] = (0.2, 0.4, 0.6),
    n_flows: int = 800,
    ep_params: Optional[ExpressPassParams] = REALISTIC_WORKLOAD_PARAMS,
    **kwargs,
) -> ExperimentResult:
    rows = []
    for workload in workloads:
        for load in loads:
            for protocol in protocols:
                params = ep_params if protocol.startswith("expresspass") else None
                result = run_realistic(protocol, workload, load, n_flows,
                                       ep_params=params, **kwargs)
                rows.append({
                    "workload": workload,
                    "load": load,
                    "protocol": protocol,
                    "avg_queue_kb": result.avg_queue_kb,
                    "max_queue_kb": result.max_queue_kb,
                    "data_drops": result.data_drops,
                })
    return ExperimentResult(
        name="Table 3 average/maximum queue occupancy",
        columns=["workload", "load", "protocol", "avg_queue_kb",
                 "max_queue_kb", "data_drops"],
        rows=rows,
    )

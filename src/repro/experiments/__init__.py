"""Experiment harness: one module per reproduced figure/table.

Every experiment module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.runner.ExperimentResult` whose rows print as the
same table/series the paper reports.  Benchmarks under ``benchmarks/`` are
thin wrappers that call these with scaled-down defaults (see DESIGN.md §2
for the scaling substitution); pass larger parameters to approach paper
scale.
"""

from repro.experiments.runner import (
    PROTOCOLS,
    ExperimentResult,
    ProtocolHarness,
    format_table,
    get_harness,
)

from repro.experiments import (  # noqa: F401  (re-exported experiment modules)
    ablations,
    rdma_comparison,
)

__all__ = [
    "ExperimentResult",
    "ProtocolHarness",
    "PROTOCOLS",
    "get_harness",
    "format_table",
    "ablations",
    "rdma_comparison",
]

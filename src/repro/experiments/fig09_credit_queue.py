"""Fig 9: credit-queue capacity vs under-utilization (§3.3).

Flows arrive on *different ingress ports* and leave through one egress; a
tiny credit buffer drops credit bursts that arrive simultaneously across
ports, leaving the data direction under-filled.  Eight credits suffice
across flow counts — the paper's chosen default.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.core import ExpressPassParams
from repro.experiments.runner import ExperimentResult, get_harness
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, single_switch


def run_point(
    n_flows: int,
    credit_queue_pkts: int,
    rate_bps: int = 10 * GBPS,
    warmup_ps: int = 20 * MS,
    measure_ps: int = 30 * MS,
    seed: int = 1,
) -> dict:
    sim = Simulator(seed=seed)
    base_rtt = 20 * US
    params = ExpressPassParams(rtt_hint_ps=base_rtt)
    harness = get_harness("expresspass", rate_bps, base_rtt, params)
    spec = LinkSpec(rate_bps=rate_bps, prop_delay_ps=2 * US,
                    credit_capacity_pkts=credit_queue_pkts)
    # Flows from distinct hosts (ports) converging on host 0.
    topo = single_switch(sim, n_flows + 1, link=spec)
    sink = topo.hosts[0]
    flows = [harness.flow(h, sink, None) for h in topo.hosts[1:]]

    sim.run(until=warmup_ps)
    base = sum(f.bytes_delivered for f in flows)
    sim.run(until=warmup_ps + measure_ps)
    delivered = sum(f.bytes_delivered for f in flows) - base
    goodput = delivered * 8 / (measure_ps / 1e12)
    # Max achievable goodput: credit-metered data share x payload fraction.
    achievable = rate_bps * (1538 / 1626) * (1500 / 1538)
    return {
        "flows": n_flows,
        "credit_queue": credit_queue_pkts,
        "under_utilization": max(0.0, 1 - goodput / achievable),
    }


def run(
    flow_counts: Sequence[int] = (2, 4, 8, 16, 32),
    queue_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32),
    **kwargs,
) -> ExperimentResult:
    rows = [
        run_point(n, q, **kwargs)
        for n in flow_counts
        for q in queue_sizes
    ]
    return ExperimentResult(
        name="Fig 9 credit-queue capacity vs under-utilization",
        columns=["flows", "credit_queue", "under_utilization"],
        rows=rows,
    )

"""Fig 12 / §4: steady-state behaviour of the discrete feedback model.

Drives N synchronized :class:`CreditFeedbackControl` instances through the
idealized single-bottleneck model used in the paper's analysis: per period,
the bottleneck passes ``C`` credits; each flow's loss is the common overload
ratio.  Verifies the §4 claims:

* rates converge to C/N regardless of initial conditions;
* the oscillation amplitude D(t) decays to D* = C·w_min·(1 − 1/N);
* w converges to w_min.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import CreditFeedbackControl, ExpressPassParams
from repro.experiments.runner import ExperimentResult


def simulate_model(
    n_flows: int,
    periods: int,
    params: Optional[ExpressPassParams] = None,
    max_rate: float = 1.0,
    initial_rates: Optional[Sequence[float]] = None,
) -> dict:
    """Run the synchronized discrete model; returns trajectories."""
    params = params or ExpressPassParams()
    controls = [CreditFeedbackControl(params, max_rate) for _ in range(n_flows)]
    if initial_rates is not None:
        for control, rate in zip(controls, initial_rates):
            control.cur_rate = rate
    capacity = max_rate  # the bottleneck passes max_rate worth of credits
    rates_t, amplitude_t, w_t = [], [], []
    prev = [c.cur_rate for c in controls]
    for _ in range(periods):
        aggregate = sum(c.cur_rate for c in controls)
        loss = max(0.0, 1 - capacity / aggregate) if aggregate > 0 else 0.0
        for control in controls:
            control.update(loss)
        current = [c.cur_rate for c in controls]
        rates_t.append(current)
        amplitude_t.append(max(abs(a - b) for a, b in zip(current, prev)))
        w_t.append(max(c.w for c in controls))
        prev = current
    return {"rates": rates_t, "amplitude": amplitude_t, "w": w_t,
            "controls": controls}


def run(
    n_flows: int = 8,
    periods: int = 200,
    w_mins: Sequence[float] = (0.01, 0.04, 0.16),
) -> ExperimentResult:
    """D(t) decay and terminal state for several w_min values."""
    rows = []
    for w_min in w_mins:
        params = ExpressPassParams(w_min=w_min)
        out = simulate_model(n_flows, periods, params,
                             initial_rates=[(i + 1) / n_flows
                                            for i in range(n_flows)])
        final = out["rates"][-1]
        fair = 1.0 / n_flows
        d_star = params.w_min * (1 + params.target_loss) * (1 - 1 / n_flows)
        rows.append({
            "w_min": w_min,
            "final_rate_spread": max(final) - min(final),
            "final_amplitude": out["amplitude"][-1],
            "predicted_D_star": d_star,
            "max_rate_error_vs_fair": max(abs(r - fair) for r in final) / fair,
            "final_w": out["w"][-1],
        })
    return ExperimentResult(
        name="Fig 12 steady-state oscillation of the discrete feedback model",
        columns=["w_min", "final_rate_spread", "final_amplitude",
                 "predicted_D_star", "max_rate_error_vs_fair", "final_w"],
        rows=rows,
        meta={"n_flows": n_flows, "periods": periods},
    )

"""Fig 6(b) / Fig 14: host credit-processing delay and inter-credit gap CDFs.

These figures characterize the testbed's SoftNIC implementation; here they
characterize our *model* of it (DESIGN.md substitution): the lognormal host
delay fitted to the paper's median 0.38 µs / p99.99 6.2 µs, and the jittered
credit pacer measured at the receiver NIC egress.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.metrics.fct import percentile
from repro.net.host import HostDelayModel
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.experiments.runner import ExperimentResult
from repro.topology import LinkSpec, dumbbell


def run_host_delay(samples: int = 100_000, seed: int = 1) -> ExperimentResult:
    """Fig 14(a): CDF quantiles of the host credit-processing delay model."""
    sim = Simulator(seed=seed)
    model = HostDelayModel()
    model.bind(sim.rng("host-delay"))
    values = sorted(model.sample() / US for _ in range(samples))
    quantiles = (1, 10, 25, 50, 75, 90, 99, 99.9, 99.99)
    rows = [{"percentile": q, "delay_us": percentile(values, q)} for q in quantiles]
    return ExperimentResult(
        name="Fig 14a host credit-processing delay model (us)",
        columns=["percentile", "delay_us"],
        rows=rows,
        meta={"paper_median_us": 0.38, "paper_p9999_us": 6.2},
    )


def run_inter_credit_gap(
    rate_bps: int = 10 * GBPS,
    duration_ps: int = 5 * MS,
    jitter: float = 0.02,
    seed: int = 1,
) -> ExperimentResult:
    """Fig 6(b)/14(b): inter-credit gap CDF at the sender-side NIC.

    One naive-mode flow paces credits at the maximum rate; gaps are measured
    on credit arrivals at the *sender* (after NIC metering).  The ideal gap
    is one 1626 B credit slot.
    """
    sim = Simulator(seed=seed)
    spec = LinkSpec(rate_bps=rate_bps, prop_delay_ps=4 * US)
    topo = dumbbell(sim, n_pairs=1, bottleneck=spec)
    params = ExpressPassParams(naive=True, jitter=jitter, rtt_hint_ps=40 * US)
    flow = ExpressPassFlow(topo.senders[0], topo.receivers[0], None, params=params)

    gaps = []
    state = {"last": None}
    original = flow._at_sender

    def tap(pkt):
        if pkt.is_credit:
            if state["last"] is not None:
                gaps.append((sim.now - state["last"]) / US)
            state["last"] = sim.now
        original(pkt)

    flow._at_sender = tap
    sim.run(until=duration_ps)
    quantiles = (1, 10, 25, 50, 75, 90, 99, 99.9)
    rows = [{"percentile": q, "gap_us": percentile(gaps, q)} for q in quantiles]
    ideal = 1626 * 8 * 1e6 / rate_bps  # one mean credit slot, in us
    return ExperimentResult(
        name="Fig 6b/14b inter-credit gap at NIC (us)",
        columns=["percentile", "gap_us"],
        rows=rows,
        meta={"ideal_gap_us": ideal, "samples": len(gaps)},
    )

"""Fig 11: fairness with multiple bottlenecks.

Flows 1..N cross Link 1 then Link 2; Flow 0 enters at Link 2 only.  Ideal
max-min gives every flow 1/(N+1) of Link 2.  The naive credit scheme gives
Flow 0 a disproportionate share (its credits never face the Link-1 limiter);
the feedback loop tracks the max-min share until the sub-credit-per-RTT
regime erodes fairness at large N (§3.4).
"""

from __future__ import annotations

from typing import Sequence

from repro.core import ExpressPassParams
from repro.experiments.runner import ExperimentResult, get_harness
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, multi_bottleneck


def run_point(
    n_cross: int,
    naive: bool,
    rate_bps: int = 10 * GBPS,
    warmup_ps: int = 40 * MS,
    measure_ps: int = 60 * MS,
    seed: int = 1,
) -> dict:
    sim = Simulator(seed=seed)
    base_rtt = 40 * US
    protocol = "expresspass-naive" if naive else "expresspass"
    harness = get_harness(protocol, rate_bps, base_rtt,
                          ExpressPassParams(rtt_hint_ps=base_rtt))
    spec = LinkSpec(rate_bps=rate_bps, prop_delay_ps=2 * US)
    topo = multi_bottleneck(sim, n_cross, link=spec)

    flow0 = harness.flow(topo.flow0_src, topo.flow0_dst_hosts[0], None)
    for src, dst in zip(topo.cross_srcs, topo.flow0_dst_hosts[1:]):
        harness.flow(src, dst, None)

    sim.run(until=warmup_ps)
    base = flow0.bytes_delivered
    sim.run(until=warmup_ps + measure_ps)
    goodput = (flow0.bytes_delivered - base) * 8 / (measure_ps / 1e12)
    max_data_goodput = rate_bps * (1538 / 1626) * (1500 / 1538)
    return {
        "cross_flows": n_cross,
        "mode": "naive" if naive else "feedback",
        "flow0_gbps": goodput / 1e9,
        "maxmin_ideal_gbps": max_data_goodput / (n_cross + 1) / 1e9,
    }


def run(counts: Sequence[int] = (1, 4, 16, 64), **kwargs) -> ExperimentResult:
    rows = []
    for n in counts:
        for naive in (True, False):
            rows.append(run_point(n, naive, **kwargs))
    return ExperimentResult(
        name="Fig 11 multi-bottleneck fairness (Flow 0 throughput)",
        columns=["cross_flows", "mode", "flow0_gbps", "maxmin_ideal_gbps"],
        rows=rows,
    )

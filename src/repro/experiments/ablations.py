"""Ablations of ExpressPass design choices (§3.1, §7).

* :func:`run_symmetry_ablation` — what breaks without symmetric routing:
  credit and data paths decouple on a multipath fabric, so the credit
  metering on one path no longer schedules the data on another; queues grow
  and data loss becomes possible (§3.1's motivation for symmetric hashing).
* :func:`run_opportunistic_ablation` — what the §7 RC3-style low-priority
  burst buys: small flows skip the credit-request round trip, cutting their
  FCT, without displacing credited traffic.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.core import ExpressPassFlow, ExpressPassParams
from repro.experiments.runner import ExperimentResult
from repro.metrics.fct import FctStats
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US
from repro.topology import LinkSpec, fat_tree
from repro.workloads import poisson_specs, WORKLOADS


def run_symmetry_ablation(
    k: int = 4,
    n_flows: int = 150,
    load: float = 0.7,
    seed: int = 1,
) -> ExperimentResult:
    """Random traffic on a k-ary fat tree, with and without path symmetry."""
    rows = []
    dist = WORKLOADS["web_server"]
    for symmetric in (True, False):
        sim = Simulator(seed=seed)
        ft = fat_tree(sim, k, edge=LinkSpec(rate_bps=10 * GBPS,
                                            prop_delay_ps=2 * US))
        params = ExpressPassParams(rtt_hint_ps=50 * US)
        hosts = ft.hosts
        # Load the fabric's edge links with Poisson arrivals.
        rate_fps = load * 10e9 / (dist.mean_bytes * 8)
        specs = poisson_specs(sim.rng("ablate"), dist, n_flows, len(hosts),
                              rate_fps * len(hosts) / 4)
        flows = [
            ExpressPassFlow(hosts[s.src], hosts[s.dst], s.size_bytes,
                            start_ps=s.start_ps, params=params,
                            symmetric_routing=symmetric)
            for s in specs
        ]
        sim.run(until=specs[-1].start_ps + 1 * SEC)
        fcts = [f.fct_ps for f in flows if f.completed]
        rows.append({
            "routing": "symmetric" if symmetric else "asymmetric",
            "completed": len(fcts),
            "max_queue_kb": ft.net.max_data_queue_bytes() / 1e3,
            "data_drops": ft.net.total_data_drops(),
            "p99_fct_ms": (FctStats.from_fcts_ps(fcts).p99_s * 1e3
                           if fcts else None),
        })
    return ExperimentResult(
        name="Ablation: path symmetry on a fat tree (§3.1)",
        columns=["routing", "completed", "max_queue_kb", "data_drops",
                 "p99_fct_ms"],
        rows=rows,
    )


def run_opportunistic_ablation(
    burst_sizes: Sequence[int] = (0, 4, 16),
    n_flows: int = 200,
    seed: int = 1,
) -> ExperimentResult:
    """Small-flow FCT with increasing opportunistic burst budgets (§7)."""
    from repro.experiments.realistic import run_realistic

    rows = []
    for burst in burst_sizes:
        params = ExpressPassParams(rtt_hint_ps=60 * US,
                                   initial_rate_fraction=1 / 16,
                                   w_init=1 / 16,
                                   opportunistic_segments=burst)
        result = run_realistic("expresspass", "web_server", 0.4, n_flows,
                               seed=seed, ep_params=params)
        s = result.fct_by_bucket.get("S")
        m = result.fct_by_bucket.get("M")
        rows.append({
            "burst_segments": burst,
            "S_avg_fct_us": s.mean_s * 1e6 if s else None,
            "M_avg_fct_us": m.mean_s * 1e6 if m else None,
            "data_drops": result.data_drops,
            "completed": result.completed,
        })
    return ExperimentResult(
        name="Ablation: opportunistic low-priority burst (§7 extension)",
        columns=["burst_segments", "S_avg_fct_us", "M_avg_fct_us",
                 "data_drops", "completed"],
        rows=rows,
    )

"""§6.3 realistic-workload machinery shared by Figs 18–21 and Table 3.

Builds the paper's oversubscribed Clos (scaled down per DESIGN.md §2),
generates Poisson arrivals with Table 2 flow sizes at a target ToR-uplink
load, runs them under any protocol harness, and returns per-flow and
fabric-wide measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import ExpressPassParams
from repro.experiments.runner import ExperimentResult, get_harness
from repro.metrics.fct import FctStats, fct_stats_by_bucket
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US
from repro.topology import LinkSpec, oversubscribed_clos
from repro.workloads import (
    WORKLOADS,
    FlowSizeDistribution,
    poisson_specs,
)
from repro.workloads.generators import poisson_arrival_rate_fps


@dataclass
class RealisticRun:
    """Everything measured from one realistic-workload simulation."""

    protocol: str
    workload: str
    load: float
    flows: List[object]
    fct_by_bucket: Dict[str, FctStats]
    completed: int
    avg_queue_kb: float
    max_queue_kb: float
    data_drops: int
    credit_waste_ratio: float
    meta: dict = field(default_factory=dict)


def run_realistic(
    protocol: str,
    workload: str = "web_search",
    load: float = 0.6,
    n_flows: int = 1500,
    rate_bps: int = 10 * GBPS,
    core_rate_bps: Optional[int] = None,
    seed: int = 1,
    ep_params: Optional[ExpressPassParams] = None,
    size_cap_bytes: Optional[int] = 20_000_000,
    drain_ps: int = 1 * SEC,
    chaos_plan: Optional[dict] = None,
) -> RealisticRun:
    """One (protocol, workload, load) simulation on the scaled Clos fabric.

    ``size_cap_bytes`` truncates samples so a single 100 MB+ elephant cannot
    dominate a scaled-down run (recorded as a substitution in DESIGN.md);
    pass ``None`` for the unclipped distribution.  The run ends when all
    flows complete or ``drain_ps`` after the last arrival.  ``chaos_plan``
    (a ``FaultPlan.to_dict()`` dict, e.g. compiled from a scenario spec's
    ``chaos`` section) injects faults into the fabric during the run; event
    node names must match the Clos (``tor0``/``agg0``/``h0``...).
    """
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}: {sorted(WORKLOADS)}")
    dist: FlowSizeDistribution = WORKLOADS[workload]
    sim = Simulator(seed=seed)
    base_rtt = 60 * US
    harness = get_harness(protocol, rate_bps, base_rtt, ep_params,
                          min_rto_ps=2 * MS)
    core_rate = core_rate_bps or rate_bps
    edge = harness.adapt_link(LinkSpec(rate_bps=rate_bps, prop_delay_ps=4 * US))
    core = harness.adapt_link(LinkSpec(rate_bps=core_rate, prop_delay_ps=4 * US))
    topo = oversubscribed_clos(sim, edge=edge, core=core)
    if chaos_plan is not None:
        from repro.chaos import ChaosController, FaultPlan
        if getattr(sim, "chaos", None) is not None:
            raise RuntimeError("chaos_plan conflicts with an ambient "
                               "REPRO_CHAOS plan; unset one of them")
        ChaosController(sim, topo.net, FaultPlan.from_dict(chaos_plan))
    harness.install(sim, topo.net)

    hosts = topo.hosts
    hosts_per_tor = len(hosts) // len(topo.tors)
    cross_fraction = 1 - (hosts_per_tor - 1) / (len(hosts) - 1)
    uplink_capacity = sum(p.rate_bps for p in topo.tor_uplink_ports)
    mean_size = dist.mean_bytes if size_cap_bytes is None else min(
        dist.mean_bytes, size_cap_bytes)
    rate_fps = poisson_arrival_rate_fps(load, uplink_capacity, mean_size,
                                        cross_fraction)
    rng = sim.rng("workload")
    specs = poisson_specs(rng, dist, n_flows, len(hosts), rate_fps)
    if size_cap_bytes is not None:
        specs = [
            s if s.size_bytes <= size_cap_bytes else
            type(s)(s.src, s.dst, size_cap_bytes, s.start_ps)
            for s in specs
        ]
    flows = [
        harness.flow(hosts[s.src], hosts[s.dst], s.size_bytes, start_ps=s.start_ps)
        for s in specs
    ]

    horizon = specs[-1].start_ps + drain_ps
    sim.run(until=horizon)

    all_ports = topo.net.ports
    avg_q = max(
        (p.data_queue.stats.average_bytes(sim.now) for p in all_ports),
        default=0.0,
    )
    max_q = topo.net.max_data_queue_bytes()
    wasted = sum(getattr(f, "credits_wasted", 0) for f in flows)
    used = sum(getattr(f, "credits_used", 0) for f in flows)
    waste_ratio = wasted / (wasted + used) if (wasted + used) else 0.0
    return RealisticRun(
        protocol=protocol,
        workload=workload,
        load=load,
        flows=flows,
        fct_by_bucket=fct_stats_by_bucket(flows),
        completed=sum(1 for f in flows if f.completed),
        avg_queue_kb=avg_q / 1e3,
        max_queue_kb=max_q / 1e3,
        data_drops=topo.net.total_data_drops(),
        credit_waste_ratio=waste_ratio,
        meta={"n_flows": n_flows, "arrival_rate_fps": rate_fps,
              "mean_size": mean_size, "events": sim.events_processed},
    )

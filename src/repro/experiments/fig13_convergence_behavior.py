"""Fig 13: convergence behaviour of five staggered flows (testbed analog).

Five flows arrive one every ``stagger`` and depart in reverse order; the
figure shows per-flow throughput and the bottleneck queue over time.
ExpressPass should show stable plateaus near the fair share with a
near-empty queue; DCTCP shows larger queue and noisier shares.
"""

from __future__ import annotations

from typing import Optional

from repro.core import ExpressPassParams
from repro.experiments.runner import ExperimentResult, get_harness
from repro.obs import MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, dumbbell


def run(
    protocol: str = "expresspass",
    n_flows: int = 5,
    stagger_ps: int = 50 * MS,
    rate_bps: int = 10 * GBPS,
    seed: int = 1,
    sample_ps: int = 10 * MS,
    ep_params: Optional[ExpressPassParams] = None,
) -> ExperimentResult:
    """Each flow i runs [i*stagger, (2*n - 1 - i)*stagger)."""
    sim = Simulator(seed=seed)
    base_rtt = 30 * US
    harness = get_harness(protocol, rate_bps, base_rtt, ep_params)
    spec = harness.adapt_link(LinkSpec(rate_bps=rate_bps, prop_delay_ps=4 * US))
    topo = dumbbell(sim, n_pairs=n_flows, bottleneck=spec)
    harness.install(sim, topo.net)

    total_ps = 2 * n_flows * stagger_ps
    flows = []
    for i, (s, r) in enumerate(zip(topo.senders, topo.receivers)):
        flow = harness.flow(s, r, None, start_ps=i * stagger_ps)
        stop_at = (2 * n_flows - 1 - i) * stagger_ps
        sim.schedule_at(stop_at, flow.stop)
        flows.append(flow)

    # Time series come from the shared observability plane: the samplers are
    # registry-built, so the same values land in registry series (and hence
    # any exporter / dashboard) as in the rows below.
    reg = MetricsRegistry.attach(sim)
    sampler = reg.sample_throughput(flows, sample_ps)
    qseries = reg.sample_queue(topo.bottleneck_fwd, sample_ps,
                               name="queue.bottleneck_bytes").series
    sim.run(until=total_ps)
    reg.finalize()

    tput = [reg.series[f"throughput.f{flow.fid}_bps"] for flow in flows]
    rows = []
    for i, t in enumerate(sampler.times_ps):
        row = {"time_ms": t / MS}
        for j, flow in enumerate(flows):
            row[f"flow{j}_gbps"] = tput[j].values[i] / 1e9
        if i < len(qseries.values):
            row["queue_kb"] = qseries.values[i] / 1e3
        rows.append(row)
    columns = ["time_ms"] + [f"flow{j}_gbps" for j in range(n_flows)] + ["queue_kb"]
    return ExperimentResult(
        name=f"Fig 13 convergence behaviour ({protocol})",
        columns=columns,
        rows=rows,
        meta={
            "protocol": protocol,
            "max_queue_bytes": topo.net.max_data_queue_bytes(),
            "data_drops": topo.net.total_data_drops(),
        },
    )

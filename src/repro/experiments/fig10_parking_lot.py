"""Fig 10: parking-lot utilization — naive credits vs the feedback loop.

One long flow crosses N bottlenecks, each also carrying a one-hop cross
flow.  With naive max-rate credits, upstream links carry credits that will
be dropped downstream, wasting reverse-path bandwidth: utilization of the
worst link drops to 83.3 % with two bottlenecks and ~60 % with six.  The
feedback loop keeps every link ≳97 %.

Utilization is normalized to the maximum *data* rate (excluding the credit
reservation), as in the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import ExpressPassParams
from repro.experiments.runner import ExperimentResult, get_harness
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, parking_lot


def run_point(
    n_bottlenecks: int,
    naive: bool,
    rate_bps: int = 10 * GBPS,
    warmup_ps: int = 30 * MS,
    measure_ps: int = 50 * MS,
    seed: int = 1,
) -> dict:
    sim = Simulator(seed=seed)
    base_rtt = 40 * US
    protocol = "expresspass-naive" if naive else "expresspass"
    harness = get_harness(protocol, rate_bps, base_rtt,
                          ExpressPassParams(rtt_hint_ps=base_rtt))
    spec = LinkSpec(rate_bps=rate_bps, prop_delay_ps=2 * US)
    topo = parking_lot(sim, n_bottlenecks, link=spec)

    harness.flow(topo.long_src, topo.long_dst, None)
    for src, dst in zip(topo.cross_srcs, topo.cross_dsts):
        harness.flow(src, dst, None)

    sim.run(until=warmup_ps)
    base = [p.stats.data_bytes_sent for p in topo.bottleneck_ports]
    sim.run(until=warmup_ps + measure_ps)
    seconds = measure_ps / 1e12
    max_data = rate_bps * 1538 / 1626  # credit reservation excluded
    utils = [
        (p.stats.data_bytes_sent - b) * 8 / seconds / max_data
        for p, b in zip(topo.bottleneck_ports, base)
    ]
    return {
        "bottlenecks": n_bottlenecks,
        "mode": "naive" if naive else "feedback",
        "min_link_utilization": min(utils),
    }


def run(counts: Sequence[int] = (1, 2, 3, 4, 5, 6), **kwargs) -> ExperimentResult:
    rows = []
    for n in counts:
        for naive in (True, False):
            rows.append(run_point(n, naive, **kwargs))
    return ExperimentResult(
        name="Fig 10 parking-lot utilization (worst link, normalized to max data rate)",
        columns=["bottlenecks", "mode", "min_link_utilization"],
        rows=rows,
    )

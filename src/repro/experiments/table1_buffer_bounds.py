"""Table 1 / Fig 5: zero-loss buffer bounds from network calculus.

Pure analysis (no simulation): evaluates the Eq. 1 recursion for the
paper's four topology configurations and the Fig 5 ToR-switch breakdown.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.calculus import TopologyParams, buffer_bounds, tor_switch_buffer_breakdown
from repro.experiments.runner import ExperimentResult
from repro.sim.units import GBPS, US

#: The paper's Table 1 rows: (label, host rate Gbps, core rate Gbps).
TABLE1_CONFIGS: Tuple[Tuple[str, int, int], ...] = (
    ("32-ary fat tree (10/40)", 10, 40),
    ("32-ary fat tree (40/100)", 40, 100),
    ("3-tier Clos (10/40)", 10, 40),
    ("3-tier Clos (40/100)", 40, 100),
)

#: Paper's published values in KB for shape comparison (ToR down, up, core).
TABLE1_PAPER_KB = {
    (10, 40): (577.3, 19.0, 131.1),
    (40, 100): (1060.0, 37.2, 221.8),
}


def run(mode: str = "literal",
        credit_queue_pkts: int = 8,
        host_delay_spread_us: float = 5.1) -> ExperimentResult:
    """Table 1: per-port buffer bound for each topology configuration.

    The fat tree and Clos rows coincide (as in the paper): the recursion
    depends on layer speeds and depths, not on switch radix.
    """
    rows = []
    for label, host_g, core_g in TABLE1_CONFIGS:
        params = TopologyParams(
            host_rate_bps=host_g * GBPS,
            core_rate_bps=core_g * GBPS,
            credit_queue_pkts=credit_queue_pkts,
            host_delay_spread_ps=int(host_delay_spread_us * US),
        )
        bounds = buffer_bounds(params, mode)
        paper = TABLE1_PAPER_KB.get((host_g, core_g))
        rows.append({
            "config": label,
            "tor_down_kb": bounds.tor_down_bytes / 1e3,
            "tor_up_kb": bounds.tor_up_bytes / 1e3,
            "core_kb": bounds.core_bytes / 1e3,
            "paper_tor_down_kb": paper[0] if paper else None,
            "paper_tor_up_kb": paper[1] if paper else None,
            "paper_core_kb": paper[2] if paper else None,
        })
    return ExperimentResult(
        name=f"Table 1 zero-loss buffer bounds (mode={mode})",
        columns=["config", "tor_down_kb", "tor_up_kb", "core_kb",
                 "paper_tor_down_kb", "paper_tor_up_kb", "paper_core_kb"],
        rows=rows,
        meta={"mode": mode},
    )


def run_fig5(
    speed_pairs: Sequence[Tuple[int, int]] = ((10, 40), (40, 100), (100, 100)),
    k: int = 32,
) -> ExperimentResult:
    """Fig 5: max ToR-switch buffer breakdown for the two parameter sets.

    (a) 8-credit queues, ∆d_host = 5.1 µs (testbed / SoftNIC);
    (b) 4-credit queues, ∆d_host = 1 µs (hardware NIC).
    """
    rows = []
    for setting, credits, spread_us in (("(a) software", 8, 5.1),
                                        ("(b) hw NIC", 4, 1.0)):
        for host_g, core_g in speed_pairs:
            params = TopologyParams(
                host_rate_bps=host_g * GBPS,
                core_rate_bps=core_g * GBPS,
                credit_queue_pkts=credits,
                host_delay_spread_ps=int(spread_us * US),
            )
            breakdown = tor_switch_buffer_breakdown(params, k)
            rows.append({
                "setting": setting,
                "speeds": f"{host_g}/{core_g}",
                "total_mb": breakdown["total"] / 1e6,
                "host_delay_mb": breakdown["host_delay"] / 1e6,
                "credit_queue_mb": breakdown["credit_queue"] / 1e6,
                "static_credit_kb": breakdown["static_credit"] / 1e3,
                "base_mb": breakdown["base"] / 1e6,
            })
    return ExperimentResult(
        name=f"Fig 5 ToR buffer breakdown ({k}-ary fat tree)",
        columns=["setting", "speeds", "total_mb", "host_delay_mb",
                 "credit_queue_mb", "static_credit_kb", "base_mb"],
        rows=rows,
    )

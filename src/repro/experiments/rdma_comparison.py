"""ExpressPass vs the deployed RDMA congestion controls (§8 context).

DCQCN and TIMELY achieve zero loss by running over PFC; ExpressPass
achieves it by scheduling data with credits.  This experiment puts all
three under the same synchronized incast and reports what each pays:

* data drops (should be 0 everywhere — different mechanisms, same goal),
* PFC pause events (only the RDMA schemes generate them),
* bottleneck queue (credits keep it near zero; PFC lets it grow to XOFF),
* incast FCT statistics.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentResult, get_harness
from repro.metrics.fct import percentile
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MS, SEC, US
from repro.topology import LinkSpec, single_switch
from repro.workloads import incast_specs


def run_point(
    protocol: str,
    fan_in: int = 8,
    response_kb: int = 64,
    rate_bps: int = 10 * GBPS,
    seed: int = 1,
) -> dict:
    sim = Simulator(seed=seed)
    base_rtt = 20 * US
    harness = get_harness(protocol, rate_bps, base_rtt)
    spec = harness.adapt_link(LinkSpec(rate_bps=rate_bps, prop_delay_ps=2 * US))
    topo = single_switch(sim, fan_in + 1, link=spec)
    harness.install(sim, topo.net)

    specs = incast_specs(fan_in, receiver=0, bytes_per_sender=response_kb * KB,
                         n_hosts=fan_in + 1)
    flows = [harness.flow(topo.hosts[s.src], topo.hosts[s.dst], s.size_bytes,
                          start_ps=s.start_ps) for s in specs]
    sim.run(until=2 * SEC)

    fcts = [f.fct_ps / 1e9 for f in flows if f.completed]
    pauses = 0
    for port in topo.net.ports:
        controller = port.pfc
        if controller is not None:
            pauses = controller.pauses_sent
            break
    return {
        "protocol": protocol,
        "completed": len(fcts),
        "fct_ms_p50": percentile(fcts, 50) if fcts else None,
        "fct_ms_max": max(fcts) if fcts else None,
        "data_drops": topo.net.total_data_drops(),
        "pfc_pauses": pauses,
        "max_queue_kb": topo.net.max_data_queue_bytes() / 1e3,
    }


def run(protocols: Sequence[str] = ("expresspass", "dcqcn", "timely"),
        **kwargs) -> ExperimentResult:
    rows = [run_point(p, **kwargs) for p in protocols]
    return ExperimentResult(
        name="ExpressPass vs RDMA congestion controls under incast",
        columns=["protocol", "completed", "fct_ms_p50", "fct_ms_max",
                 "data_drops", "pfc_pauses", "max_queue_kb"],
        rows=rows,
    )

"""Closed-loop partition/aggregate incast (the literal §2 / Fig 1 workload).

The paper's Fig 1 traffic is not open-loop: "a single master server
continuously generates a 200 B request to multiple workers using persistent
connections, and each worker responds with 1 000 B of data for each
request".  This experiment reproduces that loop with the
:class:`~repro.apps.rpc.PartitionAggregate` application and reports the
master-downlink queue and per-round (wave) latency across fan-outs.

The open-loop variant (persistent senders) lives in
:mod:`repro.experiments.fig01_queue_buildup`; the two bracket the paper's
methodology.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps import PartitionAggregate
from repro.core import ExpressPassParams
from repro.experiments.runner import ExperimentResult, get_harness
from repro.metrics.fct import percentile
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, SEC, US
from repro.topology import LinkSpec, single_switch


def run_point(
    protocol: str,
    fan_in: int,
    n_hosts: int = 16,
    rounds: int = 50,
    request_bytes: int = 200,
    response_bytes: int = 1000,
    rate_bps: int = 10 * GBPS,
    seed: int = 1,
    ep_params: Optional[ExpressPassParams] = None,
) -> dict:
    sim = Simulator(seed=seed)
    base_rtt = 20 * US
    harness = get_harness(protocol, rate_bps, base_rtt, ep_params)
    spec = harness.adapt_link(LinkSpec(rate_bps=rate_bps, prop_delay_ps=2 * US))
    topo = single_switch(sim, n_hosts, link=spec)
    harness.install(sim, topo.net)

    master = topo.hosts[0]
    # Workers wrap onto hosts when fan_in exceeds them (§2 footnote 2).
    workers = [topo.hosts[1 + i % (n_hosts - 1)] for i in range(fan_in)]
    app = PartitionAggregate(sim, harness, master, workers,
                             request_bytes=request_bytes,
                             response_bytes=response_bytes,
                             rounds=rounds)
    sim.run(until=30 * SEC)

    downlink = topo.net.port_between(topo.switch, master)
    waves_ms = [t / 1e9 for t in app.round_latencies_ps]
    return {
        "protocol": protocol,
        "fan_in": fan_in,
        "rounds_done": app.completed_rounds,
        "wave_ms_p50": percentile(waves_ms, 50) if waves_ms else None,
        "wave_ms_p99": percentile(waves_ms, 99) if waves_ms else None,
        "downlink_queue_max_pkts": downlink.data_queue.stats.max_bytes / 1538,
        "data_drops": topo.net.total_data_drops(),
    }


def run(
    protocols: Sequence[str] = ("expresspass", "dctcp"),
    fan_ins: Sequence[int] = (8, 32, 64),
    **kwargs,
) -> ExperimentResult:
    rows = [run_point(p, n, **kwargs) for p in protocols for n in fan_ins]
    return ExperimentResult(
        name="Closed-loop partition/aggregate incast (§2 workload)",
        columns=["protocol", "fan_in", "rounds_done", "wave_ms_p50",
                 "wave_ms_p99", "downlink_queue_max_pkts", "data_drops"],
        rows=rows,
    )

"""Fig 6(a): credit pacing jitter vs fairness of credit drops.

Concurrent naive-mode flows (credits at maximum rate) share one bottleneck;
Jain's index of delivered data is computed over 1 ms intervals.  Perfect
pacing with deterministic drop ordering is grossly unfair; jitter — from the
pacer and from randomized credit sizes — breaks the synchronization.

``randomize_credit_size`` can be disabled to isolate the two mechanisms
(the paper's §3.1 explains why both exist: end-host jitter alone cannot fix
synchronized drops *across* switches).
"""

from __future__ import annotations

from typing import Sequence

from repro.core import ExpressPassParams
from repro.experiments.runner import ExperimentResult, get_harness
from repro.metrics import jain_index
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, US
from repro.topology import LinkSpec, dumbbell


def run_point(
    jitter: float,
    n_flows: int,
    rate_bps: int = 10 * GBPS,
    randomize_credit_size: bool = True,
    warmup_ps: int = 2 * MS,
    windows: int = 5,
    window_ps: int = 1 * MS,
    seed: int = 1,
) -> dict:
    sim = Simulator(seed=seed)
    params = ExpressPassParams(naive=True, jitter=jitter,
                               randomize_credit_size=randomize_credit_size,
                               rtt_hint_ps=40 * US)
    harness = get_harness("expresspass-naive", rate_bps, 40 * US, params)
    spec = LinkSpec(rate_bps=rate_bps, prop_delay_ps=4 * US)
    topo = dumbbell(sim, n_pairs=n_flows, bottleneck=spec)
    flows = [harness.flow(s, r, None) for s, r in zip(topo.senders, topo.receivers)]

    sim.run(until=warmup_ps)
    indices = []
    last = {f: f.bytes_delivered for f in flows}
    for w in range(windows):
        sim.run(until=warmup_ps + (w + 1) * window_ps)
        deltas = [f.bytes_delivered - last[f] for f in flows]
        last = {f: f.bytes_delivered for f in flows}
        indices.append(jain_index(deltas))
    return {
        "jitter": jitter,
        "flows": n_flows,
        "randomized_sizes": randomize_credit_size,
        "fairness": sum(indices) / len(indices),
    }


def run(
    jitters: Sequence[float] = (0.0, 0.01, 0.02, 0.04, 0.08),
    flow_counts: Sequence[int] = (16, 64, 256),
    **kwargs,
) -> ExperimentResult:
    rows = [
        run_point(j, n, **kwargs)
        for j in jitters
        for n in flow_counts
    ]
    return ExperimentResult(
        name="Fig 6a jitter vs credit-drop fairness (naive mode)",
        columns=["jitter", "flows", "randomized_sizes", "fairness"],
        rows=rows,
    )

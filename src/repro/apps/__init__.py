"""Application layer: closed-loop request/response traffic.

The paper's motivating workloads are not open-loop flows but
partition/aggregate services (§2): a master keeps a request outstanding to
each worker and issues the next request as soon as the response returns.
This package implements that pattern on top of *any* transport harness:

* :class:`~repro.apps.rpc.RpcClient` — drives repeated request/response
  exchanges against one server and records per-RPC latency.
* :class:`~repro.apps.rpc.PartitionAggregate` — a master fanning requests
  to N workers, with per-round completion (the barrier the paper's incast
  comes from).
"""

from repro.apps.rpc import PartitionAggregate, RpcClient

__all__ = ["RpcClient", "PartitionAggregate"]

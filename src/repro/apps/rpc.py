"""Closed-loop RPC traffic over any transport.

An "RPC" here is a pair of flows: a small request flow (client → server)
followed, on completion, by a response flow (server → client).  The next
request is issued only after the response lands — the closed loop that
makes partition/aggregate traffic bursty at the aggregator (§2).

Both classes are transport-agnostic: they build flows through a
:class:`~repro.experiments.runner.ProtocolHarness`, so the same workload
runs unchanged over ExpressPass, DCTCP, or any other registered protocol.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.runner import ProtocolHarness
from repro.net.host import Host
from repro.sim.engine import Simulator


class RpcClient:
    """Repeated request/response exchanges against one server.

    Each round: send ``request_bytes`` to the server; when it completes,
    the server sends ``response_bytes`` back; when *that* completes, the
    round's latency is recorded and the next round starts (after
    ``think_time_ps``).  Runs ``rounds`` times, or forever if ``rounds``
    is None.
    """

    def __init__(
        self,
        sim: Simulator,
        harness: ProtocolHarness,
        client: Host,
        server: Host,
        request_bytes: int = 200,
        response_bytes: int = 1000,
        rounds: Optional[int] = None,
        think_time_ps: int = 0,
        start_ps: int = 0,
    ):
        if request_bytes <= 0 or response_bytes <= 0:
            raise ValueError("request and response sizes must be positive")
        self.sim = sim
        self.harness = harness
        self.client = client
        self.server = server
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.rounds = rounds
        self.think_time_ps = think_time_ps
        self.latencies_ps: List[int] = []
        self.completed_rounds = 0
        self._round_start_ps = 0
        self._stopped = False
        sim.schedule_at(max(start_ps, sim.now), self._start_round)

    def stop(self) -> None:
        self._stopped = True

    # -- round machinery ------------------------------------------------------
    def _start_round(self) -> None:
        if self._stopped or (self.rounds is not None
                             and self.completed_rounds >= self.rounds):
            return
        self._round_start_ps = self.sim.now
        request = self.harness.flow(self.client, self.server,
                                    self.request_bytes, start_ps=self.sim.now)
        request.on_complete.append(self._on_request_done)

    def _on_request_done(self, flow) -> None:
        if self._stopped:
            return
        response = self.harness.flow(self.server, self.client,
                                     self.response_bytes, start_ps=self.sim.now)
        response.on_complete.append(self._on_response_done)

    def _on_response_done(self, flow) -> None:
        if self._stopped:
            return
        self.latencies_ps.append(self.sim.now - self._round_start_ps)
        self.completed_rounds += 1
        if self.rounds is None or self.completed_rounds < self.rounds:
            self.sim.schedule(max(self.think_time_ps, 1), self._start_round)


class PartitionAggregate:
    """A master fanning a request wave to N workers (§2's traffic pattern).

    Each round, the master sends ``request_bytes`` to *every* worker; each
    worker replies with ``response_bytes``; when **all** responses are in,
    the round latency is recorded and the next wave starts.  The barrier is
    what synchronizes the responses into an incast at the master's downlink.
    """

    def __init__(
        self,
        sim: Simulator,
        harness: ProtocolHarness,
        master: Host,
        workers: List[Host],
        request_bytes: int = 200,
        response_bytes: int = 1000,
        rounds: Optional[int] = None,
        start_ps: int = 0,
    ):
        if not workers:
            raise ValueError("need at least one worker")
        self.sim = sim
        self.harness = harness
        self.master = master
        self.workers = list(workers)
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.rounds = rounds
        self.round_latencies_ps: List[int] = []
        self.completed_rounds = 0
        self._outstanding = 0
        self._round_start_ps = 0
        self._stopped = False
        sim.schedule_at(max(start_ps, sim.now), self._start_round)

    def stop(self) -> None:
        self._stopped = True

    def _start_round(self) -> None:
        if self._stopped or (self.rounds is not None
                             and self.completed_rounds >= self.rounds):
            return
        self._round_start_ps = self.sim.now
        self._outstanding = len(self.workers)
        for worker in self.workers:
            request = self.harness.flow(self.master, worker,
                                        self.request_bytes, start_ps=self.sim.now)
            request.on_complete.append(self._request_done)

    def _request_done(self, flow) -> None:
        if self._stopped:
            return
        worker = flow.dst
        response = self.harness.flow(worker, self.master,
                                     self.response_bytes, start_ps=self.sim.now)
        response.on_complete.append(self._response_done)

    def _response_done(self, flow) -> None:
        if self._stopped:
            return
        self._outstanding -= 1
        if self._outstanding == 0:
            self.round_latencies_ps.append(self.sim.now - self._round_start_ps)
            self.completed_rounds += 1
            if self.rounds is None or self.completed_rounds < self.rounds:
                self.sim.schedule(1, self._start_round)

"""Self-chaos: fault injection aimed at the execution substrate itself.

``repro.chaos`` breaks the *simulated* fabric; this module breaks the
*simulator's own machinery* — killed workers, torn cache blobs, full
disks, hung shards — so tests (and the CI ``resilience-smoke`` job) can
assert that journaling, failover, and cache hygiene actually recover.

Directives come from ``REPRO_SELFCHAOS``, comma-separated:

============================  =============================================
``task:kill=<substr>``        a pool worker SIGKILLs itself when it starts
                              a task whose label contains ``<substr>``
``parent:kill=<n>``           the scheduler's own process SIGKILLs itself
                              once ``<n>`` tasks have completed
``parent:int=<n>``            the scheduler's own process sends itself
                              SIGINT once ``<n>`` tasks have completed
                              (deterministic Ctrl-C: exercises the
                              graceful drain without racing a timer)
``cache:torn``                the next cache put writes a truncated blob
``cache:enospc``              the next cache put fails with ENOSPC
``shard:kill=<w>``            a shard worker SIGKILLs itself on entering
                              conservative window ``<w>`` (1-based)
``shard:hang=<w>``            a shard worker stops replying (and
                              heartbeating) at window ``<w>``
============================  =============================================

Every directive fires **once per run**, claimed through an ``O_EXCL``
marker file so exactly one process wins even when the directive is
eligible in several workers at once.  Markers live in
``REPRO_SELFCHAOS_DIR`` when set (tests point it at a tmpdir), else in a
tempdir keyed by the directive string.  Production code calls
:func:`fire` at the injection points; with ``REPRO_SELFCHAOS`` unset the
cost is one env lookup.
"""

from __future__ import annotations

import errno
import hashlib
import os
import re
import signal
import tempfile
import time
from typing import List, Optional, Tuple

ENV_VAR = "REPRO_SELFCHAOS"
ENV_DIR = "REPRO_SELFCHAOS_DIR"

#: Injection points production code may fire.
POINTS = ("task:kill", "parent:kill", "parent:int", "cache:torn",
          "cache:enospc", "shard:kill", "shard:hang")


def armed() -> bool:
    return bool(os.environ.get(ENV_VAR))


def _directives() -> List[Tuple[str, Optional[str]]]:
    out = []
    for raw in os.environ.get(ENV_VAR, "").split(","):
        raw = raw.strip()
        if not raw:
            continue
        point, _, arg = raw.partition("=")
        out.append((point, arg or None))
    return out


def _marker_dir() -> str:
    explicit = os.environ.get(ENV_DIR)
    if explicit:
        return explicit
    tag = hashlib.sha1(os.environ.get(ENV_VAR, "").encode()).hexdigest()[:10]
    return os.path.join(tempfile.gettempdir(), f"repro-selfchaos-{tag}")


def _claim(directive: str) -> bool:
    """Claim a directive's once-only marker; True if this caller won."""
    path = os.path.join(_marker_dir(),
                        re.sub(r"[^A-Za-z0-9_.=-]", "_", directive))
    try:
        os.makedirs(_marker_dir(), exist_ok=True)
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False
    with os.fdopen(fd, "w") as fh:
        fh.write(f"pid={os.getpid()} t={time.time():.3f}\n")
    return True


def _matches(point: str, arg: Optional[str], *, label: Optional[str],
             count: Optional[int], window: Optional[int]) -> bool:
    if point in ("cache:torn", "cache:enospc"):
        return True
    if point == "task:kill":
        return label is not None and (arg or "") in label
    if point in ("parent:kill", "parent:int"):
        return count is not None and arg is not None and count >= int(arg)
    if point in ("shard:kill", "shard:hang"):
        return window is not None and arg is not None and window == int(arg)
    return False


def fire(point: str, *, label: Optional[str] = None,
         count: Optional[int] = None,
         window: Optional[int] = None) -> bool:
    """True when an armed directive for ``point`` matches and was claimed."""
    if not armed():
        return False
    for d_point, arg in _directives():
        if d_point != point:
            continue
        try:
            matched = _matches(point, arg, label=label, count=count,
                               window=window)
        except ValueError:
            continue  # malformed numeric arg: ignore the directive
        if matched and _claim(f"{d_point}={arg}" if arg else d_point):
            return True
    return False


def kill_self() -> None:
    """SIGKILL the current process (no cleanup, no flush — that's the point)."""
    os.kill(os.getpid(), signal.SIGKILL)


def interrupt_self() -> None:
    """SIGINT the current process — a deterministic Ctrl-C.

    Unlike :func:`kill_self` this is *meant* to be survived: the graceful
    shutdown handler catches it, drains in-flight work, and exits with the
    interrupted status so ``repro resume`` can pick the campaign back up.
    """
    os.kill(os.getpid(), signal.SIGINT)


def enospc() -> OSError:
    return OSError(errno.ENOSPC, "injected ENOSPC (REPRO_SELFCHAOS)")


__all__ = ["ENV_VAR", "ENV_DIR", "POINTS", "armed", "fire", "kill_self",
           "interrupt_self", "enospc"]

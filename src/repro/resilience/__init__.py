"""Crash-safe execution: run journal, graceful shutdown, self-chaos.

The resilience plane makes long campaigns survivable rather than fragile:

* :mod:`repro.resilience.journal` — an append-only, torn-write-tolerant
  JSONL manifest of task states (``repro.resilience/v1``) that the
  scheduler writes as a campaign runs, and that ``repro resume`` replays.
* :mod:`repro.resilience.signals` — SIGINT/SIGTERM handlers that drain
  in-flight work, mark the rest interrupted, and exit with
  :data:`EXIT_INTERRUPTED` instead of a half-written report.
* :mod:`repro.resilience.selfchaos` — ``REPRO_SELFCHAOS`` fault injection
  aimed at the *execution substrate itself* (killed workers, torn cache
  blobs, ENOSPC, hung shards), the counterpart of :mod:`repro.chaos`
  which faults the simulated fabric.

Nothing here changes results: a resumed campaign's report is bit-identical
to an uninterrupted run because tasks are deterministic, cache-addressed by
content, and reassembled by index.
"""

from repro.resilience.journal import (
    JOURNAL_SCHEMA,
    JournalState,
    RunJournal,
    activate,
    current,
    deactivate,
    load_journal,
)
from repro.resilience.signals import (
    EXIT_INTERRUPTED,
    graceful_shutdown,
    shutdown_requested,
)
from repro.resilience import selfchaos

__all__ = [
    "JOURNAL_SCHEMA",
    "JournalState",
    "RunJournal",
    "activate",
    "current",
    "deactivate",
    "load_journal",
    "EXIT_INTERRUPTED",
    "graceful_shutdown",
    "shutdown_requested",
    "selfchaos",
]

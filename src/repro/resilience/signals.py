"""Graceful shutdown: turn SIGINT/SIGTERM into a drain, not a traceback.

:func:`graceful_shutdown` installs handlers that set a flag the scheduler
polls between tasks (serial) and between wait rounds (pool).  On the first
signal the campaign *drains*: running tasks get a grace period to finish
and bank their results (and cache entries — work already done should
survive), everything not yet started is marked ``interrupted`` in results,
telemetry, trace, and journal.  A second signal restores the default
handler, so an impatient third Ctrl-C kills the process the classic way.

Processes that drained exit with :data:`EXIT_INTERRUPTED` (75,
``EX_TEMPFAIL`` — "try again later", which a resume literally is) so
wrappers and CI can tell "interrupted, resumable" from "failed".
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator, Optional

#: Exit code for a drained interruption (os.EX_TEMPFAIL: retry later).
EXIT_INTERRUPTED = 75

#: Grace given to in-flight pool tasks after the first signal before they
#: are abandoned and marked interrupted.
DRAIN_GRACE_S = 10.0

_requested: Optional[str] = None


def shutdown_requested() -> Optional[str]:
    """The signal name that requested shutdown, or ``None``."""
    return _requested


def request(signame: str = "SIGINT") -> None:
    """Mark shutdown as requested (handlers and tests both land here)."""
    global _requested
    _requested = signame


def reset() -> None:
    global _requested
    _requested = None


def _is_default_handler(sig: int) -> bool:
    """True when ``sig`` still has its interpreter-default disposition.

    Python's default for SIGINT is :func:`signal.default_int_handler`
    (raises KeyboardInterrupt); every other signal defaults to
    ``SIG_DFL``.  ``getsignal`` returns ``None`` for a handler installed
    from C — unknowable and unrestorable, so treated as non-default.
    """
    handler = signal.getsignal(sig)
    if sig == signal.SIGINT and handler is signal.default_int_handler:
        return True
    # SIG_IGN counts as non-default: a parent (nohup, shell job control)
    # ignored the signal on purpose, and the classic Unix rule is to
    # respect an inherited ignore.
    return handler is signal.SIG_DFL


@contextlib.contextmanager
def graceful_shutdown() -> Iterator[None]:
    """Install SIGINT/SIGTERM drain handlers for the enclosed block.

    Only the main thread may set signal handlers; elsewhere (or when a
    handler is already non-default, e.g. under a test harness or an
    embedding application with its own signal strategy) this is a no-op
    context so library callers can use it unconditionally.
    """
    reset()
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    sigs = (signal.SIGINT, signal.SIGTERM)
    if any(not _is_default_handler(s) for s in sigs):
        # A host already routed these signals somewhere deliberate;
        # replacing its handlers — even temporarily — would swallow its
        # shutdown logic.  Leave them alone and run unprotected.
        yield
        return
    prior = {}

    def _handler(signum, frame):
        if _requested is not None:
            # Second signal: the user means it.  Restore the default
            # disposition so the *next* one terminates immediately, and
            # raise KeyboardInterrupt now to break out of any wait.
            for s in sigs:
                try:
                    signal.signal(s, prior.get(s, signal.SIG_DFL))
                except (OSError, ValueError):
                    pass
            raise KeyboardInterrupt
        request(signal.Signals(signum).name)

    try:
        for s in sigs:
            prior[s] = signal.signal(s, _handler)
    except (OSError, ValueError):
        # Embedded interpreter / exotic platform: run unprotected.
        yield
        return
    try:
        yield
    finally:
        for s in sigs:
            try:
                signal.signal(s, prior[s])
            except (OSError, ValueError):
                pass


__all__ = ["EXIT_INTERRUPTED", "DRAIN_GRACE_S", "graceful_shutdown",
           "shutdown_requested", "request", "reset"]

"""Run journal: an append-only JSONL manifest of campaign task states.

Schema ``repro.resilience/v1``.  Two record kinds share the file:

* ``{"record": "meta", ...}`` — one per process generation: the schema
  tag, the sanitized argv needed to re-invoke the run, the campaign name
  and task total, and a ``generation`` counter (0 for the original run,
  incremented by every resume).
* ``{"record": "task", "index": i, "state": s, ...}`` — one per task
  state change: ``queued`` (carries the result-cache ``key`` when caching
  is on), ``running``, ``done`` (``cached``/``wall_s``), ``failed``
  (``error``), or ``interrupted``.

The writer appends one line per record and flushes after each write, so a
SIGKILLed process loses at most the final line — and that line may be torn
(partial).  :func:`load_journal` therefore parses defensively: a non-JSON
*final* line is counted and skipped, never fatal.  Folding the records by
``(sweep, index)`` (last state wins) reconstructs the campaign's frontier:
which tasks finished (and under which cache keys), which were in flight,
and which never started.  The sweep ordinal is derived while folding — the
scheduler emits a ``sweep`` note before each ``run_tasks`` batch, so a
campaign that runs several sweeps through one journal keeps their
identically-numbered tasks distinct; each ``meta`` record (a resume
generation replaying the same argv) restarts the ordinal at zero so a
resumed sweep's records overwrite its earlier generation's, not stack
beside them.

Resume is deliberately thin: ``repro resume <journal>`` re-invokes the
recorded argv with the journal re-attached.  Completed tasks replay from
the result cache (their keys are in the journal; a missing cache entry
simply re-executes, and determinism keeps the report byte-identical), so
the journal never stores result payloads — it is a manifest, not a second
cache.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
import warnings
from typing import Any, Dict, List, Optional, Sequence

JOURNAL_SCHEMA = "repro.resilience/v1"

#: Task states a journal records (mirrors scheduler/telemetry vocabulary).
TASK_STATES = ("queued", "running", "done", "failed", "interrupted")


class RunJournal:
    """Append-only writer for one campaign's journal file.

    Thread-safe (the pool dispatcher and signal handlers share it); every
    record is one line, flushed immediately so the OS page cache — which
    survives process death — holds it even if the process is SIGKILLed a
    microsecond later.
    """

    def __init__(self, path: pathlib.Path):
        self.path = pathlib.Path(path)
        self._lock = threading.Lock()
        self._fh = None

    # -- writing ------------------------------------------------------------

    def _write(self, record: Dict[str, Any]) -> None:
        record.setdefault("t", round(time.time(), 6))
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            try:
                if self._fh is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    self._fh = self.path.open("a")
                self._fh.write(line + "\n")
                self._fh.flush()
            except OSError:
                # The journal is a safety net, never a failure mode: a full
                # or read-only disk must not kill the campaign it protects.
                pass

    def meta(self, argv: Sequence[str], command: str = "",
             name: str = "", total: int = 0,
             generation: int = 0) -> None:
        """Record a process generation (original run or a resume)."""
        self._write({"record": "meta", "schema": JOURNAL_SCHEMA,
                     "argv": list(argv), "command": command, "name": name,
                     "total": total, "generation": generation,
                     "pid": os.getpid()})

    def task(self, index: int, state: str, label: str = "",
             **fields: Any) -> None:
        """Record one task state change (``queued``/``done``/...)."""
        record = {"record": "task", "index": index, "state": state}
        if label:
            record["label"] = label
        record.update(fields)
        self._write(record)

    def note(self, kind: str, **fields: Any) -> None:
        """Free-form annotation record (e.g. the matrix scenario name)."""
        self._write({"record": kind, **fields})

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None


class JournalState:
    """A journal file folded into its latest-state-per-task view.

    ``tasks`` is keyed by ``(sweep, index)``: the sweep ordinal within the
    latest generation (0 when a campaign runs a single sweep, which is the
    common case) and the task index within that sweep.
    """

    def __init__(self, path: pathlib.Path):
        self.path = pathlib.Path(path)
        self.metas: List[dict] = []
        self.tasks: Dict[tuple, dict] = {}
        self.notes: List[dict] = []
        self.torn_lines = 0

    # -- derived views ------------------------------------------------------

    @property
    def meta(self) -> Optional[dict]:
        """The most recent generation's meta record."""
        return self.metas[-1] if self.metas else None

    @property
    def generation(self) -> int:
        return int(self.meta.get("generation", 0)) if self.meta else 0

    @property
    def argv(self) -> List[str]:
        return list(self.meta.get("argv", [])) if self.meta else []

    @property
    def total(self) -> int:
        return int(self.meta.get("total", 0)) if self.meta else 0

    def by_state(self, state: str) -> List[int]:
        """Task indices in ``state``; multi-sweep campaigns may repeat an
        index (one entry per sweep that has a task in that state)."""
        return sorted(i for (_sweep, i), rec in self.tasks.items()
                      if rec.get("state") == state)

    def unfinished(self) -> List[int]:
        """Indices whose last recorded state is not ``done``/``failed``."""
        return sorted(i for (_sweep, i), rec in self.tasks.items()
                      if rec.get("state") not in ("done", "failed"))

    def summary(self) -> dict:
        counts = {state: 0 for state in TASK_STATES}
        for rec in self.tasks.values():
            state = rec.get("state")
            if state in counts:
                counts[state] += 1
        return {"path": str(self.path), "generation": self.generation,
                "total": self.total, "torn_lines": self.torn_lines,
                **counts}


def load_journal(path: pathlib.Path) -> JournalState:
    """Parse a journal, tolerating a torn final line (crash mid-write).

    Any unparsable line is skipped with a warning; only well-formed
    records fold into the state.  (A crash can tear at most the final
    line, but replayed/concatenated journals may carry earlier tears —
    skipping is always the right recovery, so no line is fatal.)
    """
    state = JournalState(path)
    try:
        text = pathlib.Path(path).read_text()
    except OSError as exc:
        raise FileNotFoundError(f"cannot read journal {path}: {exc}")
    #: "sweep" notes seen in the current generation; task records fold
    #: under the ordinal of the most recent one (0 before any note, so
    #: hand-written journals without sweep notes still load).
    sweeps = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            state.torn_lines += 1
            warnings.warn(f"{path}:{lineno}: skipping torn journal line "
                          f"({line[:40]!r}...)", stacklevel=2)
            continue
        if not isinstance(record, dict):
            state.torn_lines += 1
            continue
        kind = record.get("record")
        if kind == "meta":
            state.metas.append(record)
            sweeps = 0  # a resume generation replays sweeps from the top
        elif kind == "task":
            index = record.get("index")
            if isinstance(index, int):
                state.tasks[(max(0, sweeps - 1), index)] = record
        else:
            if kind == "sweep":
                sweeps += 1
            state.notes.append(record)
    return state


# -- ambient journal (mirrors repro.obs.trace's activation idiom) -----------

_ACTIVE: Optional[RunJournal] = None


def activate(path: pathlib.Path) -> RunJournal:
    """Install ``path`` as the process-wide journal and return the writer."""
    global _ACTIVE
    deactivate()
    _ACTIVE = RunJournal(path)
    return _ACTIVE


def current() -> Optional[RunJournal]:
    """The active journal, or ``None`` (the scheduler's one-line check)."""
    return _ACTIVE


def deactivate() -> None:
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = None


__all__ = ["JOURNAL_SCHEMA", "TASK_STATES", "RunJournal", "JournalState",
           "load_journal", "activate", "current", "deactivate"]

"""The chaos controller: compiles a FaultPlan onto the event heap and
executes it against live networks.

One controller serves one :class:`~repro.sim.engine.Simulator` (it installs
itself as ``sim.chaos``, mirroring ``sim.auditor`` / ``sim.metrics``) and
any number of attached networks.  At construction it expands the plan's
timeline and schedules every primitive action; at fire time it resolves
node names against the attached networks — events naming nodes that do not
exist are counted in :attr:`skipped`, not fatal, so one plan can run
against many topologies.

Responsibilities beyond flipping state:

* **Accounting.**  Every packet the chaos plane eats — Gilbert–Elliott
  episode drops and routing blackholes — is charged per flow id, split
  credit/data.  The audit plane subtracts these budgets from its
  conservation checks, so an *injected* drop is not a violation while a
  *real* silent leak still is.
* **Routing-convergence delay.**  Topology changes do not reroute
  immediately: one coalesced reconvergence per network fires
  ``plan.reconverge_delay_ps`` after the latest change — the blackhole
  window real fabrics exhibit.
* **Path-symmetry excuses.**  Links a fault touched are recorded in
  :attr:`affected_links` (both orientations); the auditor skips them when
  comparing credit and data paths.
* **Observability.**  Each applied fault becomes a ``repro.obs`` event and
  bumps chaos counters when metrics are attached; with a log sink every
  action is narrated as it fires.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Set, Tuple

from repro.chaos.gilbert import GilbertElliott
from repro.chaos.plan import FaultPlan, LossBurst
from repro.net.packet import Packet, PacketKind


class _BurstFilter:
    """Port drop-filter bound to one Gilbert–Elliott episode."""

    __slots__ = ("controller", "model", "match")

    def __init__(self, controller: "ChaosController", model: GilbertElliott,
                 match: str):
        self.controller = controller
        self.model = model
        self.match = match

    def __call__(self, pkt: Packet) -> bool:
        match = self.match
        if match == "credit":
            if not pkt.is_credit:
                return False
        elif match == "data":
            if pkt.kind != PacketKind.DATA:
                return False
        if self.model.step():
            self.controller.record_injected(pkt)
            return True
        return False


class ChaosController:
    """Executes one :class:`FaultPlan` against a simulation."""

    def __init__(self, sim, net, plan: FaultPlan, log=None):
        existing = getattr(sim, "chaos", None)
        if existing is not None and existing is not self:
            raise RuntimeError("simulator already has a chaos controller attached")
        self.sim = sim
        self.plan = plan
        self.log = log
        self._nets: List[object] = []
        self._nodes: Dict[str, Tuple[object, object]] = {}  # name -> (net, node)
        #: Per-fid injected-drop budgets the auditor consumes.
        self._injected_credit: Dict[int, int] = {}
        self._injected_data: Dict[int, int] = {}
        self.total_injected_credit = 0
        self.total_injected_data = 0
        self.blackholed_credit = 0
        self.blackholed_data = 0
        #: (node_id, node_id) pairs (both orientations) any fault touched.
        self.affected_links: Set[Tuple[int, int]] = set()
        #: True once any link/switch op changed the topology: flows that
        #: lived through a reconvergence straddle two paths, so the audit
        #: plane's path-symmetry set comparison no longer applies.
        self.topology_changed = False
        #: (t_ps, description) for every action actually applied.
        self.applied: List[Tuple[int, str]] = []
        #: Actions that referenced nodes absent from every attached network.
        self.skipped = 0
        self._active_bursts: Dict[Tuple[int, str], Tuple[object, _BurstFilter]] = {}
        self._saved_rates: Dict[int, Tuple[object, int]] = {}   # id(port) -> (port, bps)
        self._saved_delays: Dict[int, Tuple[object, object]] = {}  # id(host) -> (host, model)
        self._reconverge_events: Dict[int, object] = {}  # id(net) -> Event
        sim.chaos = self
        self.attach_network(net)
        now = sim.now
        for t_ps, op, event, idx in plan.timeline():
            sim.schedule_at(max(t_ps, now), self._fire, op, event, idx)

    # -- attachment ----------------------------------------------------------
    def attach_network(self, net) -> "ChaosController":
        if all(net is not existing for existing in self._nets):
            self._nets.append(net)
            for node in net.nodes.values():
                self._nodes[node.name] = (net, node)
        return self

    # -- action dispatch -----------------------------------------------------
    def _fire(self, op: str, event, idx: int) -> None:
        getattr(self, "_op_" + op)(event, idx)

    def _resolve(self, name: str):
        """(net, node) for ``name``, or (None, None) + a skip if unknown."""
        entry = self._nodes.get(name)
        if entry is None:
            self.skipped += 1
            self._note(f"skip: no node named {name!r} in any attached network")
            return None, None
        return entry

    def _note(self, message: str) -> None:
        now = self.sim.now
        self.applied.append((now, message))
        if self.log is not None:
            print(f"[chaos t={now}ps] {message}", file=self.log)
        metrics = getattr(self.sim, "metrics", None)
        if metrics is not None:
            metrics.counter("chaos.actions").inc()
            metrics.log_event(now, f"chaos: {message}", 0)

    def _mark_link(self, a, b) -> None:
        self.affected_links.add((a.id, b.id))
        self.affected_links.add((b.id, a.id))

    def _schedule_reconverge(self, net) -> None:
        """(Re)start the per-network routing-convergence timer: routing
        notices the *latest* change ``reconverge_delay_ps`` after it."""
        self.topology_changed = True
        key = id(net)
        pending = self._reconverge_events.get(key)
        if pending is not None:
            pending.cancel()
        self._reconverge_events[key] = self.sim.schedule(
            self.plan.reconverge_delay_ps, self._do_reconverge, net)

    def _do_reconverge(self, net) -> None:
        self._reconverge_events.pop(id(net), None)
        net.reconverge()
        self._note("routing reconverged")

    # -- link faults ---------------------------------------------------------
    def _op_link_down(self, ev, idx: int) -> None:
        net, a = self._resolve(ev.a)
        _, b = self._resolve(ev.b)
        if a is None or b is None:
            return
        direction = getattr(ev, "direction", "both")
        net.set_link_state(a, b, up=False, direction=direction)
        self._mark_link(a, b)
        self._note(f"link down {ev.a}<->{ev.b} ({direction})")
        self._schedule_reconverge(net)

    def _op_link_up(self, ev, idx: int) -> None:
        net, a = self._resolve(ev.a)
        _, b = self._resolve(ev.b)
        if a is None or b is None:
            return
        net.set_link_state(a, b, up=True)
        self._mark_link(a, b)
        self._note(f"link up {ev.a}<->{ev.b}")
        self._schedule_reconverge(net)

    def _op_switch_down(self, ev, idx: int) -> None:
        net, node = self._resolve(ev.node)
        if node is None:
            return
        for peer_id in node.ports:
            peer = net.nodes[peer_id]
            net.set_link_state(node, peer, up=False)
            self._mark_link(node, peer)
        self._note(f"switch blackout {ev.node} ({len(node.ports)} links)")
        self._schedule_reconverge(net)

    def _op_switch_up(self, ev, idx: int) -> None:
        net, node = self._resolve(ev.node)
        if node is None:
            return
        for peer_id in node.ports:
            peer = net.nodes[peer_id]
            net.set_link_state(node, peer, up=True)
        self._note(f"switch recovered {ev.node}")
        self._schedule_reconverge(net)

    # -- loss episodes -------------------------------------------------------
    def _burst_targets(self, ev: LossBurst):
        _, a = self._resolve(ev.a)
        _, b = self._resolve(ev.b)
        if a is None or b is None:
            return ()
        targets = []
        if ev.direction in ("a->b", "both"):
            targets.append(("fwd", a.ports.get(b.id)))
        if ev.direction in ("b->a", "both"):
            targets.append(("rev", b.ports.get(a.id)))
        return [(tag, port) for tag, port in targets if port is not None]

    def _op_burst_start(self, ev: LossBurst, idx: int) -> None:
        for tag, port in self._burst_targets(ev):
            key = (idx, tag)
            if key in self._active_bursts:  # overlapping duplicate in a plan
                continue
            # The stream name folds in the plan seed and the event's plan
            # position: reseeding the plan reshuffles drops, nothing else.
            rng = self.sim.rng(f"chaos-ge-{self.plan.seed}-{idx}-{tag}")
            model = GilbertElliott(rng, ev.p_enter_bad, ev.p_exit_bad,
                                   ev.loss_good, ev.loss_bad)
            flt = _BurstFilter(self, model, ev.match)
            port.add_drop_filter(flt)
            self._active_bursts[key] = (port, flt)
            self._mark_link(port.node, port.peer)
            self._note(f"loss burst on {port.name} "
                       f"(match={ev.match}, E[loss]="
                       f"{model.expected_loss_rate:.3f})")

    def _op_burst_end(self, ev: LossBurst, idx: int) -> None:
        for tag in ("fwd", "rev"):
            entry = self._active_bursts.pop((idx, tag), None)
            if entry is None:
                continue
            port, flt = entry
            port.remove_drop_filter(flt)
            self._note(f"loss burst over on {port.name} "
                       f"({flt.model.drops}/{flt.model.steps} dropped)")

    # -- credit-meter misconfiguration --------------------------------------
    def _op_meter_set(self, ev, idx: int) -> None:
        net, a = self._resolve(ev.a)
        _, b = self._resolve(ev.b)
        if a is None or b is None:
            return
        port = a.ports.get(b.id)
        if port is None:
            self.skipped += 1
            self._note(f"skip: no link {ev.a}->{ev.b}")
            return
        bucket = port.credit_bucket
        self._saved_rates.setdefault(id(port), (port, bucket.rate_bps))
        new_rate = max(1, int(bucket.rate_bps * ev.factor))
        bucket.set_rate(new_rate, self.sim.now)
        self._notify_meter(port, new_rate)
        self._note(f"credit meter on {port.name} x{ev.factor:g} "
                   f"-> {new_rate / 1e9:.3f} Gbps")

    def _op_meter_restore(self, ev, idx: int) -> None:
        _, a = self._resolve(ev.a)
        _, b = self._resolve(ev.b)
        if a is None or b is None:
            return
        port = a.ports.get(b.id)
        if port is None:
            return
        saved = self._saved_rates.pop(id(port), None)
        if saved is None:
            return
        _, rate = saved
        port.credit_bucket.set_rate(rate, self.sim.now)
        self._notify_meter(port, rate)
        self._note(f"credit meter restored on {port.name}")

    def _notify_meter(self, port, rate_bps: int) -> None:
        """Keep the audit plane's independent rate mirror tracking the
        *configured* rate: the misconfiguration is an injected fault (and is
        reported as such), while transmitting faster than even the
        misconfigured meter allows remains a violation."""
        auditor = getattr(self.sim, "auditor", None)
        if auditor is not None:
            auditor.on_credit_rate_change(port, rate_bps)

    # -- host jitter ---------------------------------------------------------
    def _op_jitter_set(self, ev, idx: int) -> None:
        _, host = self._resolve(ev.host)
        if host is None:
            return
        # Delay models may be shared across hosts: spike a per-host copy
        # (same RNG stream, so other streams never shift).
        self._saved_delays.setdefault(id(host), (host, host.delay_model))
        spiked = copy.copy(host.delay_model)
        spiked.set_scale(ev.factor)
        host.delay_model = spiked
        self._note(f"host jitter x{ev.factor:g} on {ev.host}")

    def _op_jitter_restore(self, ev, idx: int) -> None:
        _, host = self._resolve(ev.host)
        if host is None:
            return
        saved = self._saved_delays.pop(id(host), None)
        if saved is None:
            return
        host.delay_model = saved[1]
        self._note(f"host jitter restored on {ev.host}")

    # -- drop accounting (consumed by repro.audit) ---------------------------
    def record_injected(self, pkt: Packet) -> None:
        """Charge one chaos-eaten packet to its flow's injected budget."""
        fid = pkt.flow.fid if pkt.flow is not None else 0
        if pkt.is_credit:
            self._injected_credit[fid] = self._injected_credit.get(fid, 0) + 1
            self.total_injected_credit += 1
        else:
            self._injected_data[fid] = self._injected_data.get(fid, 0) + 1
            self.total_injected_data += 1
        metrics = getattr(self.sim, "metrics", None)
        if metrics is not None:
            kind = "credit" if pkt.is_credit else "data"
            metrics.counter(f"chaos.injected_{kind}_drops").inc()

    def record_blackhole(self, pkt: Packet, switch) -> None:
        """A routed-into-nowhere packet (blackout window): account it so
        conservation still closes, attributed to the chaos plane."""
        if pkt.is_credit:
            self.blackholed_credit += 1
        else:
            self.blackholed_data += 1
        self.record_injected(pkt)

    def injected_credit_drops(self, fid: int) -> int:
        return self._injected_credit.get(fid, 0)

    def injected_data_drops(self, fid: int) -> int:
        return self._injected_data.get(fid, 0)

    # -- reporting -----------------------------------------------------------
    def summary(self) -> dict:
        return {
            "plan": self.plan.name,
            "seed": self.plan.seed,
            "applied": len(self.applied),
            "skipped": self.skipped,
            "injected_credit_drops": self.total_injected_credit,
            "injected_data_drops": self.total_injected_data,
            "blackholed_credit": self.blackholed_credit,
            "blackholed_data": self.blackholed_data,
            "affected_links": len(self.affected_links) // 2,
        }

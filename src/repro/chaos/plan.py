"""Declarative fault plans: what breaks, when, and for how long.

A :class:`FaultPlan` is a seeded, serializable timeline of fault events.
Compound events (a link *flap*, a switch *blackout*, a bounded *loss
episode*) expand into primitive actions via :meth:`FaultPlan.timeline`,
which the :class:`~repro.chaos.controller.ChaosController` compiles onto
the simulator's event heap before the run starts.  Everything is plain
data: ``to_json``/``from_json`` round-trip exactly, so a plan can live in a
file, ride an environment variable (``REPRO_CHAOS=plan.json``), or be
hashed into a sweep cache key.

Determinism contract: the same (plan, seed) pair always produces the same
fault timeline *and* the same stochastic drop decisions — loss episodes
draw from named RNG streams derived from the plan seed and the event's
position in the plan, never from any stream a transport uses.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Tuple, Type

from repro.sim.units import US


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one scheduled fault.  ``t_ps`` is absolute sim time."""

    t_ps: int

    kind = "abstract"

    def __post_init__(self):
        if self.t_ps < 0:
            raise ValueError(f"{type(self).__name__}.t_ps must be >= 0")

    def to_dict(self) -> dict:
        d = asdict(self)
        d["kind"] = self.kind
        return d


@dataclass(frozen=True)
class LinkDown(FaultEvent):
    """Administratively fail the a<->b link (no automatic repair)."""

    a: str = ""
    b: str = ""
    #: "both" (paper §3.1 treats unidirectional failures as full failures
    #: for routing), "a->b", or "b->a".
    direction: str = "both"

    kind = "link_down"

    def __post_init__(self):
        super().__post_init__()
        if not self.a or not self.b:
            raise ValueError("link_down needs both endpoint names")
        if self.direction not in ("both", "a->b", "b->a"):
            raise ValueError(f"bad direction {self.direction!r}")


@dataclass(frozen=True)
class LinkUp(FaultEvent):
    """Repair the a<->b link (both directions)."""

    a: str = ""
    b: str = ""

    kind = "link_up"

    def __post_init__(self):
        super().__post_init__()
        if not self.a or not self.b:
            raise ValueError("link_up needs both endpoint names")


@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """``flaps`` down/up cycles: down ``down_ps``, then up ``gap_ps``."""

    a: str = ""
    b: str = ""
    down_ps: int = 1000 * US
    flaps: int = 1
    gap_ps: int = 1000 * US

    kind = "link_flap"

    def __post_init__(self):
        super().__post_init__()
        if not self.a or not self.b:
            raise ValueError("link_flap needs both endpoint names")
        if self.down_ps <= 0 or self.flaps < 1 or self.gap_ps < 0:
            raise ValueError("link_flap needs down_ps > 0, flaps >= 1, gap_ps >= 0")


@dataclass(frozen=True)
class SwitchBlackout(FaultEvent):
    """Every link of switch ``node`` goes down, then back up."""

    node: str = ""
    duration_ps: int = 1000 * US

    kind = "switch_blackout"

    def __post_init__(self):
        super().__post_init__()
        if not self.node:
            raise ValueError("switch_blackout needs a node name")
        if self.duration_ps <= 0:
            raise ValueError("switch_blackout duration must be positive")


@dataclass(frozen=True)
class LossBurst(FaultEvent):
    """A Gilbert–Elliott loss episode on the a->b egress (optionally both).

    ``match`` selects which packets the episode may drop: "all", "credit"
    (only ExpressPass credit packets — the interesting case, since credit
    loss is the feedback signal), or "data".
    """

    a: str = ""
    b: str = ""
    duration_ps: int = 1000 * US
    p_enter_bad: float = 0.05
    p_exit_bad: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 1.0
    match: str = "all"
    direction: str = "a->b"

    kind = "loss_burst"

    def __post_init__(self):
        super().__post_init__()
        if not self.a or not self.b:
            raise ValueError("loss_burst needs both endpoint names")
        if self.duration_ps <= 0:
            raise ValueError("loss_burst duration must be positive")
        if self.match not in ("all", "credit", "data"):
            raise ValueError(f"bad match {self.match!r}")
        if self.direction not in ("a->b", "b->a", "both"):
            raise ValueError(f"bad direction {self.direction!r}")
        # Probability ranges are validated again by GilbertElliott; check
        # here too so a bad plan fails at load time, not mid-run.
        if not 0.0 <= self.p_enter_bad <= 1.0 or not 0.0 < self.p_exit_bad <= 1.0:
            raise ValueError("loss_burst needs p_enter_bad in [0,1], p_exit_bad in (0,1]")


@dataclass(frozen=True)
class CreditMeterFault(FaultEvent):
    """Misconfigure the a->b port's credit rate limiter by ``factor``.

    ``factor > 1`` models an operator fat-fingering the 5 % reservation
    upward (the fault the audit plane's credit-rate mirror exists to catch);
    ``factor < 1`` starves credits.  Restored after ``duration_ps``.
    """

    a: str = ""
    b: str = ""
    duration_ps: int = 1000 * US
    factor: float = 2.0

    kind = "credit_meter"

    def __post_init__(self):
        super().__post_init__()
        if not self.a or not self.b:
            raise ValueError("credit_meter needs both endpoint names")
        if self.duration_ps <= 0 or self.factor <= 0:
            raise ValueError("credit_meter needs duration > 0 and factor > 0")


@dataclass(frozen=True)
class HostJitterFault(FaultEvent):
    """Scale host ``host``'s credit-processing delay by ``factor`` (a
    CPU-starved SoftNIC, Fig 14a's tail) for ``duration_ps``."""

    host: str = ""
    duration_ps: int = 1000 * US
    factor: float = 8.0

    kind = "host_jitter"

    def __post_init__(self):
        super().__post_init__()
        if not self.host:
            raise ValueError("host_jitter needs a host name")
        if self.duration_ps <= 0 or self.factor <= 0:
            raise ValueError("host_jitter needs duration > 0 and factor > 0")


_KINDS: Dict[str, Type[FaultEvent]] = {
    cls.kind: cls
    for cls in (LinkDown, LinkUp, LinkFlap, SwitchBlackout, LossBurst,
                CreditMeterFault, HostJitterFault)
}


def event_from_dict(data: dict) -> FaultEvent:
    """Inverse of :meth:`FaultEvent.to_dict`; unknown kinds/fields raise."""
    data = dict(data)
    kind = data.pop("kind", None)
    cls = _KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault kind {kind!r}; "
                         f"known: {', '.join(sorted(_KINDS))}")
    allowed = {f.name for f in fields(cls)}
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(f"{kind}: unknown field(s) {sorted(unknown)}")
    return cls(**data)


#: One primitive action the controller executes: (time, opcode, source
#: event, source-event index).  The index names RNG streams and pairs
#: start/end actions, so expansion is stable across serialization.
Action = Tuple[int, str, FaultEvent, int]


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded timeline of fault events."""

    name: str = "chaos"
    seed: int = 0
    #: How long routing takes to "notice" a topology change and reroute —
    #: the blackhole window.  The paper's testbed recovers via rerouting in
    #: well under a second; default 200 µs keeps sims short but nonzero.
    reconverge_delay_ps: int = 200 * US
    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.reconverge_delay_ps < 0:
            raise ValueError("reconverge_delay_ps must be >= 0")
        object.__setattr__(self, "events", tuple(self.events))

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": 1,
            "name": self.name,
            "seed": self.seed,
            "reconverge_delay_ps": self.reconverge_delay_ps,
            "events": [ev.to_dict() for ev in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        version = data.get("version", 1)
        if version != 1:
            raise ValueError(f"unsupported fault-plan version {version}")
        return cls(
            name=data.get("name", "chaos"),
            seed=int(data.get("seed", 0)),
            reconverge_delay_ps=int(data.get("reconverge_delay_ps", 200 * US)),
            events=tuple(event_from_dict(e) for e in data.get("events", ())),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())

    def with_seed(self, seed: int) -> "FaultPlan":
        from dataclasses import replace
        return replace(self, seed=seed)

    # -- compilation ---------------------------------------------------------
    def timeline(self) -> List[Action]:
        """Expand compound events into time-sorted primitive actions.

        Sorting is stable on (time, plan position): two actions landing on
        the same picosecond fire in plan order, every run.
        """
        actions: List[Action] = []
        for idx, ev in enumerate(self.events):
            if isinstance(ev, LinkDown):
                actions.append((ev.t_ps, "link_down", ev, idx))
            elif isinstance(ev, LinkUp):
                actions.append((ev.t_ps, "link_up", ev, idx))
            elif isinstance(ev, LinkFlap):
                t = ev.t_ps
                for _ in range(ev.flaps):
                    actions.append((t, "link_down", ev, idx))
                    actions.append((t + ev.down_ps, "link_up", ev, idx))
                    t += ev.down_ps + ev.gap_ps
            elif isinstance(ev, SwitchBlackout):
                actions.append((ev.t_ps, "switch_down", ev, idx))
                actions.append((ev.t_ps + ev.duration_ps, "switch_up", ev, idx))
            elif isinstance(ev, LossBurst):
                actions.append((ev.t_ps, "burst_start", ev, idx))
                actions.append((ev.t_ps + ev.duration_ps, "burst_end", ev, idx))
            elif isinstance(ev, CreditMeterFault):
                actions.append((ev.t_ps, "meter_set", ev, idx))
                actions.append((ev.t_ps + ev.duration_ps, "meter_restore", ev, idx))
            elif isinstance(ev, HostJitterFault):
                actions.append((ev.t_ps, "jitter_set", ev, idx))
                actions.append((ev.t_ps + ev.duration_ps, "jitter_restore", ev, idx))
            else:  # pragma: no cover - _KINDS and this dispatch move together
                raise TypeError(f"unhandled fault event {type(ev).__name__}")
        actions.sort(key=lambda a: a[0])
        return actions

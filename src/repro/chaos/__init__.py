"""repro.chaos — scheduled fault plans, failure recovery, chaos harness.

Three ways in:

*Explicit* — build a :class:`FaultPlan`, hand it to a
:class:`ChaosController` after the network is finalized::

    plan = FaultPlan(name="flap", seed=1, events=(
        LinkFlap(t_ps=5 * MS, a="agg0_0", b="core0", down_ps=2 * MS),))
    ChaosController(sim, topo.net, plan)
    sim.run(until=...)
    print(sim.chaos.summary())

*Ambient* — export ``REPRO_CHAOS=/path/to/plan.json`` and every
:meth:`Network.finalize` in the process attaches the plan automatically
(``REPRO_CHAOS_SEED`` overrides the plan's seed; ``REPRO_CHAOS_LOG=1``
narrates actions on stderr).  This is how an unmodified experiment runs
under fault injection.

*Scenario harness* — ``python -m repro chaos <scenario>`` runs a canned
fault scenario under the audit plane and reports recovery metrics; see
:mod:`repro.chaos.scenarios`.

Injected drops are *budgeted*: the controller accounts every packet it eats
per flow, the auditor subtracts those budgets, so an audited chaos run
passes clean while any drop the chaos plane did **not** inject still fails
the conservation checks.
"""

from __future__ import annotations

import os
import sys
from typing import Optional

from repro.chaos.controller import ChaosController
from repro.chaos.gilbert import GilbertElliott
from repro.chaos.plan import (
    CreditMeterFault,
    FaultEvent,
    FaultPlan,
    HostJitterFault,
    LinkDown,
    LinkFlap,
    LinkUp,
    LossBurst,
    SwitchBlackout,
    event_from_dict,
)

__all__ = [
    "ChaosController", "CreditMeterFault", "FaultEvent", "FaultPlan",
    "GilbertElliott", "HostJitterFault", "LinkDown", "LinkFlap", "LinkUp",
    "LossBurst", "SwitchBlackout", "event_from_dict", "is_active",
    "maybe_attach",
]

#: Plan cache for the ambient path keyed on (path, mtime_ns): a sweep of N
#: tasks in one process parses the JSON once, while an edited plan file is
#: picked up without a restart.
_plan_cache: dict = {}


def is_active() -> bool:
    """True when ``REPRO_CHAOS`` names a fault-plan file."""
    return bool(os.environ.get("REPRO_CHAOS", ""))


def _load_env_plan(path: str) -> FaultPlan:
    key = (path, os.stat(path).st_mtime_ns)
    plan = _plan_cache.get(key)
    if plan is None:
        plan = FaultPlan.load(path)
        _plan_cache.clear()
        _plan_cache[key] = plan
    seed_override = os.environ.get("REPRO_CHAOS_SEED", "")
    if seed_override:
        plan = plan.with_seed(int(seed_override))
    return plan


def maybe_attach(net) -> Optional[ChaosController]:
    """Attach the ambient fault plan to ``net`` if one is configured.

    Called by :meth:`repro.topology.network.Network.finalize`.  Reuses the
    simulator's existing controller so multi-network simulations share one
    plan and one injected-drop ledger.  No-op without ``REPRO_CHAOS``.
    """
    path = os.environ.get("REPRO_CHAOS", "")
    if not path:
        return None
    controller = getattr(net.sim, "chaos", None)
    if controller is not None:
        return controller.attach_network(net)
    plan = _load_env_plan(path)
    log = sys.stderr if os.environ.get("REPRO_CHAOS_LOG", "") in ("1", "true") else None
    return ChaosController(net.sim, net, plan, log=log)

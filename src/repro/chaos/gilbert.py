"""Gilbert–Elliott bursty loss model.

A two-state Markov chain: GOOD with loss probability ``loss_good`` (usually
0) and BAD with ``loss_bad`` (usually 1).  Per packet the chain first makes
one transition step — GOOD→BAD with ``p_enter_bad``, BAD→GOOD with
``p_exit_bad`` — then the packet is lost with the current state's loss
probability.  The stationary loss rate and geometric burst-length
distribution are closed-form, which is what the chaos statistics tests pin:

* ``P(bad) = p_enter / (p_enter + p_exit)``
* ``E[loss] = P(bad)·loss_bad + P(good)·loss_good``
* ``E[burst length] = 1 / p_exit``  (consecutive BAD steps)

The model owns no randomness — it consumes a dedicated named RNG stream
handed in by the chaos controller, so an active loss episode never perturbs
any other stream (credit jitter, host delays) and runs stay bit-identical
per (plan, seed).
"""

from __future__ import annotations


class GilbertElliott:
    """One burst-loss process; drive with :meth:`step` per candidate packet."""

    __slots__ = ("p_enter_bad", "p_exit_bad", "loss_good", "loss_bad",
                 "bad", "steps", "bad_steps", "bursts", "drops", "_rng")

    def __init__(self, rng, p_enter_bad: float, p_exit_bad: float,
                 loss_good: float = 0.0, loss_bad: float = 1.0):
        if not 0.0 <= p_enter_bad <= 1.0:
            raise ValueError("p_enter_bad must be in [0, 1]")
        if not 0.0 < p_exit_bad <= 1.0:
            raise ValueError("p_exit_bad must be in (0, 1] (bursts must end)")
        for name, p in (("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self._rng = rng
        self.p_enter_bad = p_enter_bad
        self.p_exit_bad = p_exit_bad
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False
        self.steps = 0
        self.bad_steps = 0
        self.bursts = 0
        self.drops = 0

    def step(self) -> bool:
        """Advance one packet through the chain; True means *drop it*."""
        self.steps += 1
        if self.bad:
            if self._rng.random() < self.p_exit_bad:
                self.bad = False
        elif self._rng.random() < self.p_enter_bad:
            self.bad = True
            self.bursts += 1
        loss_p = self.loss_bad if self.bad else self.loss_good
        if self.bad:
            self.bad_steps += 1
        if loss_p >= 1.0:
            dropped = True
        elif loss_p <= 0.0:
            dropped = False
        else:
            dropped = self._rng.random() < loss_p
        if dropped:
            self.drops += 1
        return dropped

    # -- closed-form expectations (for the statistics tests) -----------------
    @property
    def stationary_bad(self) -> float:
        total = self.p_enter_bad + self.p_exit_bad
        return self.p_enter_bad / total if total else 0.0

    @property
    def expected_loss_rate(self) -> float:
        pb = self.stationary_bad
        return pb * self.loss_bad + (1.0 - pb) * self.loss_good

    @property
    def expected_burst_len(self) -> float:
        return 1.0 / self.p_exit_bad

    # -- measured statistics --------------------------------------------------
    @property
    def observed_loss_rate(self) -> float:
        return self.drops / self.steps if self.steps else 0.0

    @property
    def observed_burst_len(self) -> float:
        return self.bad_steps / self.bursts if self.bursts else 0.0

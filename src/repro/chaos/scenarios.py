"""Canned chaos scenarios: fault plans + recovery measurement on a fabric.

Every scenario runs the same harness on a k-ary fat tree carrying
persistent inter-pod ExpressPass flows:

1. warm the fabric up,
2. execute the scenario's :class:`~repro.chaos.plan.FaultPlan`,
3. sample aggregate goodput in fixed bins throughout,
4. stop the flows, drain to quiescence, and audit (injected drops
   budgeted — any *other* loss is a violation).

The report answers the operational questions: how far did goodput fall,
how long until it was back within 90 % of the pre-fault level, did any
flow stall outright, and did the run stay within every invariant the audit
plane checks.

``run_point`` is the module-level, picklable entry the sweep scheduler and
``benchmarks/bench_chaos_recovery.py`` fan out over seeds; ``run`` wraps it
into an :class:`~repro.experiments.runner.ExperimentResult` for the CLI.
"""

from __future__ import annotations

from typing import Dict, List

from repro.audit import NetworkAuditor
from repro.audit.golden import trace_digest
from repro.chaos.controller import ChaosController
from repro.chaos.plan import (
    CreditMeterFault,
    FaultPlan,
    HostJitterFault,
    LinkFlap,
    LossBurst,
    SwitchBlackout,
)
from repro.core import ExpressPassFlow, ExpressPassParams
from repro.net.trace import PortTracer
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.topology.fattree import fat_tree

#: Goodput must return to this fraction of its pre-fault level to count as
#: recovered (the acceptance bar for every scenario).
RECOVERY_FRACTION = 0.9


def _fabric_plan(scenario: str, seed: int, fault_ps: int, duration_ps: int,
                 reconverge_delay_ps: int) -> FaultPlan:
    """The fault plan for one named scenario on the k=4 fat tree."""
    if scenario == "link-flap":
        events = (LinkFlap(t_ps=fault_ps, a="agg0_0", b="core0",
                           down_ps=duration_ps),)
    elif scenario == "switch-blackout":
        events = (SwitchBlackout(t_ps=fault_ps, node="agg0_0",
                                 duration_ps=duration_ps),)
    elif scenario == "loss-burst":
        # Stationary loss ≈ 0.1/(0.1+0.4) = 20 %, mean burst 2.5 packets:
        # heavy enough to bite, partial enough that Algorithm 1 (not the
        # dead-path watchdog) is what absorbs it.
        events = (LossBurst(t_ps=fault_ps, a="tor0_0", b="agg0_0",
                            duration_ps=duration_ps, p_enter_bad=0.1,
                            p_exit_bad=0.4, direction="both"),)
    elif scenario == "credit-misconfig":
        # Triple the credit meter at the receiver NIC: the first hop on the
        # credit path over-admits, downstream 5 % meters shed the excess as
        # ordinary (accounted) credit drops — the fabric self-corrects.
        events = (CreditMeterFault(t_ps=fault_ps, a="h2_0_0", b="tor2_0",
                                   duration_ps=duration_ps, factor=3.0),)
    elif scenario == "host-jitter":
        events = (HostJitterFault(t_ps=fault_ps, host="h0_0_0",
                                  duration_ps=duration_ps, factor=16.0),)
    else:
        raise ValueError(f"unknown chaos scenario {scenario!r}; "
                         f"known: {', '.join(sorted(SCENARIOS))}")
    return FaultPlan(name=scenario, seed=seed,
                     reconverge_delay_ps=reconverge_delay_ps, events=events)


def run_point(
    scenario: str = "link-flap",
    seed: int = 1,
    k: int = 4,
    n_flows: int = 8,
    fault_ps: int = 6 * MS,
    duration_ps: int = 4 * MS,
    horizon_ps: int = 18 * MS,
    bin_ps: int = 500 * US,
    warmup_ps: int = 2 * MS,
    reconverge_delay_ps: int = 200 * US,
    digest: bool = False,
    series: bool = False,
) -> dict:
    """Run one chaos scenario once; returns a flat metrics dict.

    Flows are persistent ExpressPass transfers between mirrored hosts of
    pods p and p+2 (every flow crosses the core, where the faults live).
    """
    if fault_ps + duration_ps >= horizon_ps:
        raise ValueError("fault must start and end within the horizon")
    if warmup_ps >= fault_ps:
        raise ValueError("warmup must end before the fault starts")
    sim = Simulator(seed=seed)
    topo = fat_tree(sim, k)
    if getattr(sim, "chaos", None) is not None:
        raise RuntimeError("scenario runs build their own fault plan; "
                           "unset REPRO_CHAOS to run one")
    auditor = getattr(sim, "auditor", None) or NetworkAuditor(sim)
    auditor.attach_network(topo.net)

    plan = _fabric_plan(scenario, seed, fault_ps, duration_ps,
                        reconverge_delay_ps)
    chaos = ChaosController(sim, topo.net, plan)

    by_name = {h.name: h for h in topo.hosts}
    half = k // 2
    params = ExpressPassParams()
    flows: List[ExpressPassFlow] = []
    pairs = [(f"h{p}_{t}_{h}", f"h{p + 2}_{t}_{h}")
             for p in (0, 1) for t in range(half) for h in range(half)]
    for i, (src, dst) in enumerate(pairs[:n_flows]):
        flows.append(ExpressPassFlow(
            by_name[src], by_name[dst], size_bytes=None,
            start_ps=i * 10 * US, params=params))

    tracers = []
    if digest:
        # The flapped link's both directions plus one host NIC: enough wire
        # to make any divergence (drop choice, timing, routing) visible.
        nodes = {n.name: n for n in topo.net.nodes.values()}
        for a, b in (("agg0_0", "core0"), ("core0", "agg0_0")):
            tracers.append(PortTracer(nodes[a].ports[nodes[b].id]))
        tracers.append(PortTracer(by_name["h0_0_0"].nic))

    # Pre-scheduled goodput sampling: fixed bin edges, no self-rescheduling
    # event to keep the heap alive past the horizon.
    n_bins = horizon_ps // bin_ps
    totals: List[int] = []
    per_flow_late: Dict[int, int] = {}
    stall_window_ps = max(2 * bin_ps, 2 * MS)

    def _sample_total() -> None:
        totals.append(sum(f.bytes_delivered for f in flows))

    def _sample_flows() -> None:
        per_flow_late.update({f.fid: f.bytes_delivered for f in flows})

    for i in range(n_bins + 1):
        sim.schedule_at(i * bin_ps, _sample_total)
    sim.schedule_at(horizon_ps - stall_window_ps, _sample_flows)

    sim.run(until=horizon_ps)
    for flow in flows:
        flow.stop()
    sim.run()  # drain in-flight packets so conservation holds exactly
    report = auditor.finalize()

    # -- goodput series ------------------------------------------------------
    bin_s = bin_ps * 1e-12
    gbps = [(totals[i + 1] - totals[i]) * 8 / bin_s / 1e9
            for i in range(min(n_bins, len(totals) - 1))]

    def _bin_mean(lo_ps: int, hi_ps: int) -> float:
        vals = [gbps[i] for i in range(len(gbps))
                if i * bin_ps >= lo_ps and (i + 1) * bin_ps <= hi_ps]
        return sum(vals) / len(vals) if vals else 0.0

    pre = _bin_mean(warmup_ps, fault_ps)
    post = _bin_mean(horizon_ps - stall_window_ps, horizon_ps)
    fault_bins = [gbps[i] for i in range(len(gbps)) if i * bin_ps >= fault_ps]
    low = min(fault_bins) if fault_bins else 0.0

    # Time to recover: first bin after fault onset from which goodput stays
    # at >= RECOVERY_FRACTION of pre for two consecutive bins.
    threshold = RECOVERY_FRACTION * pre
    recovery_ps = -1
    first_fault_bin = fault_ps // bin_ps
    for i in range(first_fault_bin, len(gbps) - 1):
        if gbps[i] >= threshold and gbps[i + 1] >= threshold:
            recovery_ps = (i + 1) * bin_ps - fault_ps
            break

    stalled = sum(1 for f in flows
                  if f.bytes_delivered <= per_flow_late.get(f.fid, 0))
    recovered_frac = post / pre if pre > 0 else 0.0
    ok = (len(report.violations) == 0 and stalled == 0
          and recovery_ps >= 0 and recovered_frac >= RECOVERY_FRACTION)

    result = {
        "scenario": scenario,
        "seed": seed,
        "pre_gbps": round(pre, 3),
        "low_gbps": round(low, 3),
        "post_gbps": round(post, 3),
        "recovered_frac": round(recovered_frac, 4),
        "recovery_ms": round(recovery_ps / MS, 3) if recovery_ps >= 0 else -1.0,
        "stalled": stalled,
        "violations": len(report.violations),
        "faults": len(chaos.applied),
        "injected_credit": chaos.total_injected_credit,
        "injected_data": chaos.total_injected_data,
        "rehashes": sum(f.path_rehashes for f in flows),
        "recoveries": sum(f.path_recoveries for f in flows),
        "credit_drops": sum(f.credit_drops for f in flows),
        "max_queue_kb": round(topo.net.max_data_queue_bytes() / 1e3, 1),
        "ok": ok,
    }
    if digest:
        result["trace_digest"] = trace_digest(
            [r for t in tracers for r in t.records])
    if series:
        result["gbps_series"] = [round(g, 3) for g in gbps]
        result["bin_ps"] = bin_ps
    return result


SCENARIOS = ("link-flap", "switch-blackout", "loss-burst",
             "credit-misconfig", "host-jitter")


def plan_for(scenario: str, seed: int = 1, fault_ps: int = 6 * MS,
             duration_ps: int = 4 * MS,
             reconverge_delay_ps: int = 200 * US) -> FaultPlan:
    """The scenario's fault plan, standalone — e.g. to save for REPRO_CHAOS."""
    return _fabric_plan(scenario, seed, fault_ps, duration_ps,
                        reconverge_delay_ps)


def run(scenario: str = "link-flap", seed: int = 1, seeds=None, **overrides):
    """CLI entry: run one scenario (optionally across seeds, swept through
    the runtime scheduler) and return an ExperimentResult."""
    from repro.experiments.runner import ExperimentResult, run_sweep

    if scenario not in SCENARIOS:
        raise ValueError(f"unknown chaos scenario {scenario!r}; "
                         f"known: {', '.join(SCENARIOS)}")
    seed_list = list(seeds) if seeds else [seed]
    rows = run_sweep(
        run_point,
        [{"scenario": scenario, "seed": s} for s in seed_list],
        common=overrides,
        name=f"chaos-{scenario}",
        label=lambda p: f"{p['scenario']}/seed{p['seed']}",
    )
    columns = ["scenario", "seed", "pre_gbps", "low_gbps", "post_gbps",
               "recovered_frac", "recovery_ms", "stalled", "violations",
               "rehashes", "recoveries", "ok"]
    return ExperimentResult(
        name=f"chaos: {scenario}",
        columns=columns,
        rows=rows,
        meta={"ok": all(r["ok"] for r in rows), "scenario": scenario},
    )

"""Discrete-event simulation engine.

This package is the lowest substrate of the reproduction: a deterministic
event scheduler with an integer-picosecond clock and named, independently
seeded random streams.  Everything else in :mod:`repro` (links, switches,
transports) is built on top of it.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.units import (
    GBPS,
    KB,
    MB,
    MS,
    NS,
    PS,
    SEC,
    US,
    bits_to_ps,
    fmt_time,
    ps_to_seconds,
    seconds_to_ps,
    tx_time_ps,
)

__all__ = [
    "Event",
    "Simulator",
    "PS",
    "NS",
    "US",
    "MS",
    "SEC",
    "KB",
    "MB",
    "GBPS",
    "bits_to_ps",
    "tx_time_ps",
    "ps_to_seconds",
    "seconds_to_ps",
    "fmt_time",
]

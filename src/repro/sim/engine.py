"""Deterministic discrete-event scheduler.

The scheduler is a binary heap of ``(time, sequence, event)`` entries.  The
monotonically increasing sequence number breaks ties between events scheduled
for the same picosecond, which makes runs bit-for-bit reproducible for a given
seed.  Cancellation is O(1): events carry a ``cancelled`` flag and are skipped
when popped.

Random numbers come from *named streams* (:meth:`Simulator.rng`): each stream
is an independent ``random.Random`` seeded from ``(simulator seed, name)``, so
adding a consumer of randomness in one subsystem never perturbs another.
"""

from __future__ import annotations

import heapq
import random
import zlib
from typing import Any, Callable, Dict, List, Optional


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} {getattr(self.fn, '__qualname__', self.fn)} {state}>"


class Simulator:
    """Event loop with an integer-picosecond clock.

    Parameters
    ----------
    seed:
        Master seed.  All named RNG streams derive from it.
    """

    def __init__(self, seed: int = 0):
        self.now: int = 0
        self.seed = seed
        self._heap: List[tuple] = []
        self._seq: int = 0
        self._rngs: Dict[str, random.Random] = {}
        self.events_processed: int = 0
        self._flow_counter = 0
        self._port_counter = 10_000
        #: Optional :class:`repro.audit.NetworkAuditor`; installed by the
        #: auditor itself, consulted by the run loop and by flows.
        self.auditor = None

    def next_flow_id(self) -> int:
        """Allocate a flow id (per-simulator, so runs are reproducible)."""
        self._flow_counter += 1
        return self._flow_counter

    def next_port_number(self) -> int:
        """Allocate an ephemeral transport port number."""
        self._port_counter += 1
        return self._port_counter

    # -- randomness -------------------------------------------------------
    def rng(self, name: str) -> random.Random:
        """Return the named random stream, creating it on first use."""
        stream = self._rngs.get(name)
        if stream is None:
            stream_seed = (self.seed << 32) ^ zlib.crc32(name.encode())
            stream = random.Random(stream_seed)
            self._rngs[name] = stream
        return stream

    # -- scheduling -------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` picoseconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute picosecond timestamp."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past (t={time} < now={self.now})")
        event = Event(time, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    # -- execution --------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap empties, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events processed.

        ``until`` is inclusive: events scheduled exactly at ``until`` run, and
        the clock is left at ``until`` if the simulation outlived it.
        """
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        while heap:
            time, _, event = heap[0]
            if until is not None and time > until:
                self.now = until
                break
            pop(heap)
            if event.cancelled:
                continue
            self.now = time
            if self.auditor is not None:
                self.auditor.on_event(time)
            event.fn(*event.args)
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        else:
            if until is not None and until > self.now:
                self.now = until
        self.events_processed += processed
        return processed

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for _, _, e in self._heap if not e.cancelled)

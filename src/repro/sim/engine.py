"""Deterministic discrete-event scheduler.

The scheduler orders ``(time, sequence, event)`` entries.  The monotonically
increasing sequence number breaks ties between events scheduled for the same
picosecond, which makes runs bit-for-bit reproducible for a given seed.
Cancellation is O(1): events carry a ``cancelled`` flag and are skipped when
popped.

Two queue backends implement that order (``REPRO_SCHED`` or the ``sched=``
constructor argument select one per simulator):

``heap`` (default)
    A binary heap (``heapq``): O(log n), C-speed constants, insensitive to
    timestamp distribution.

``calendar``
    A :class:`repro.sim.calendar.CalendarQueue`: O(1) amortized when event
    timestamps are regular (credit pacing makes them extremely regular),
    self-tuning its bucket width from observed inter-event gaps.  Pop order
    is the identical ``(time, sequence)`` total order, so runs are
    bit-identical to the heap backend — ``tests/test_calendar.py`` holds
    both backends to one differential oracle and the golden traces.

Cancelled entries do not accumulate unboundedly: the simulator counts them
(which also makes :meth:`Simulator.pending` O(1)) and, past the
:mod:`repro.perf` thresholds, rebuilds the heap in place with the garbage
filtered out.  Compaction never changes pop order — the ``(time, sequence)``
key is a strict total order, so any valid heap over the same live entries
drains identically.

Hot-path callers that never cancel what they schedule (a port's transmit
completion, a wire delivery) should use :meth:`Simulator.schedule_unref`: it
returns no handle, which lets the simulator recycle the Event object through
a freelist instead of reallocating.  Handle-returning ``schedule`` /
``schedule_at`` events are *never* recycled, so holding an Event reference
after it fired stays safe (cancelling it is a no-op, as before).

Random numbers come from *named streams* (:meth:`Simulator.rng`): each stream
is an independent ``random.Random`` seeded from ``(simulator seed, name)``, so
adding a consumer of randomness in one subsystem never perturbs another.
Stream seeds are derived through CRC32; two names that collide there would
silently share a generator, so collisions raise at stream creation instead.
"""

from __future__ import annotations

import hashlib
import heapq
import os
import random
import zlib
from itertools import count
from typing import Any, Callable, Dict, List, Optional

from repro import perf

#: ``object.__new__`` alias: builds a bare Event without running its
#: ``__init__`` (the schedule fast paths assign every slot themselves).
_new_raw = object.__new__
_heappush = heapq.heappush
_heappop = heapq.heappop

#: Sentinel "run forever" bound — far beyond any picosecond timestamp, so
#: the run loop needs no per-event ``is None`` test.
_NO_LIMIT = 1 << 63

#: Optional callable invoked with each newly constructed :class:`Simulator`.
#: Used by :mod:`repro.perf.profile` to attach profilers ambiently; tests may
#: install their own hook.  ``None`` (the default) costs one ``is None``.
on_simulator_created: Optional[Callable[["Simulator"], None]] = None


# Event.state bits.  One int field instead of two bools: the schedule fast
# paths reset it with a single store per event.
_CANCELLED = 1
#: Set only on ``schedule_unref`` events, which have no external handle and
#: may be pooled after they fire.
_RECYCLE = 2


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`."""

    __slots__ = ("time", "fn", "args", "state", "sim")

    def __init__(self, time: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.state = 0
        #: Owning simulator while the entry sits in its heap; cleared when
        #: the entry is popped so late cancels don't skew the garbage count.
        self.sim: Optional["Simulator"] = None

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return bool(self.state & _CANCELLED)

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if not self.state & _CANCELLED:
            self.state |= _CANCELLED
            sim = self.sim
            if sim is not None:
                sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.state & _CANCELLED else "pending"
        return f"<Event t={self.time} {getattr(self.fn, '__qualname__', self.fn)} {state}>"


#: Queue backends ``Simulator(sched=...)`` / ``REPRO_SCHED`` may name.
SCHEDULERS = ("heap", "calendar")


class Simulator:
    """Event loop with an integer-picosecond clock.

    Parameters
    ----------
    seed:
        Master seed.  All named RNG streams derive from it.
    sched:
        Queue backend, one of :data:`SCHEDULERS`.  Defaults to the
        ``REPRO_SCHED`` environment variable, else ``"heap"``.  Both
        backends drain in the same ``(time, sequence)`` order, so the
        choice never changes simulation results — only throughput.
    """

    def __init__(self, seed: int = 0, sched: Optional[str] = None):
        if sched is None:
            sched = os.environ.get("REPRO_SCHED", "heap") or "heap"
        if sched not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {sched!r}; "
                             f"choose from {SCHEDULERS}")
        self.sched = sched
        self.now: int = 0
        self.seed = seed
        self._heap: List[tuple] = []
        #: Calendar-queue backend; ``None`` in heap mode.  The schedule
        #: fast paths are swapped per instance so the heap path keeps its
        #: zero-indirection ``heapq`` calls.
        self._cal = None
        if sched == "calendar":
            from repro.sim.calendar import CalendarQueue

            self._cal = CalendarQueue()
            self.schedule = self._schedule_cal  # type: ignore[method-assign]
            self.schedule_at = self._schedule_at_cal  # type: ignore[method-assign]
            self.schedule_unref = self._schedule_unref_cal  # type: ignore[method-assign]
        #: Tie-break sequence for same-picosecond events; a C-level counter
        #: is cheaper per event than ``self._seq += 1``.
        self._seq = count(1)
        self._rngs: Dict[str, random.Random] = {}
        self._rng_stream_seeds: Dict[int, str] = {}
        self.events_processed: int = 0
        self._flow_counter = 0
        self._port_counter = 10_000
        #: Cancelled-but-unpopped entries currently in the heap.
        self._cancelled = 0
        #: Pooled Event objects from fired ``schedule_unref`` entries.
        self._freelist: List[Event] = []
        #: Optional :class:`repro.audit.NetworkAuditor`; installed by the
        #: auditor itself, consulted by the run loop and by flows.
        self.auditor = None
        #: Optional :class:`repro.perf.profile.Profiler`; when set the run
        #: loop counts and wall-clock-samples every callback.
        self.profiler = None
        #: Optional :class:`repro.obs.MetricsRegistry`; installed by
        #: ``MetricsRegistry.attach``, consulted by ``Flow.__init__``.
        self.metrics = None
        #: Optional :class:`repro.chaos.ChaosController`; installed when a
        #: fault plan is compiled onto this simulator.  Consulted by
        #: switches (blackhole accounting) and the auditor (injected-drop
        #: budgets).
        self.chaos = None
        #: Optional :class:`repro.obs.trace.Tracer` bound at construction
        #: (the ambient tracer or a worker capture buffer, if any): each
        #: ``run()`` call then emits one sim-clock ``engine.run`` span.
        #: Observation-only — the tracer never touches the heap or RNGs.
        from repro.obs.trace import emit_target as _trace_target
        self.obs_trace = _trace_target()
        hook = on_simulator_created
        if hook is not None:
            hook(self)

    def next_flow_id(self) -> int:
        """Allocate a flow id (per-simulator, so runs are reproducible)."""
        self._flow_counter += 1
        return self._flow_counter

    def next_port_number(self) -> int:
        """Allocate an ephemeral transport port number."""
        self._port_counter += 1
        return self._port_counter

    # -- randomness -------------------------------------------------------
    def rng(self, name: str) -> random.Random:
        """Return the named random stream, creating it on first use.

        Raises ``RuntimeError`` if the new name's CRC32-derived seed collides
        with an existing stream's: the two streams would silently share one
        generator, violating the independence contract.  (The seed formula
        is kept as-is — salting with the full name would reshuffle every
        stream and break trace reproducibility against older fixtures.)
        """
        stream = self._rngs.get(name)
        if stream is None:
            stream_seed = (self.seed << 32) ^ zlib.crc32(name.encode())
            clash = self._rng_stream_seeds.get(stream_seed)
            if clash is not None:
                raise RuntimeError(
                    f"RNG stream name {name!r} collides with existing stream "
                    f"{clash!r}: both hash to seed {stream_seed} "
                    f"(CRC32 collision). Rename one stream to keep them "
                    f"independent.")
            self._rng_stream_seeds[stream_seed] = name
            stream = random.Random(stream_seed)
            self._rngs[name] = stream
        return stream

    def rng_for(self, family: str, index: int) -> random.Random:
        """An independent stream for one member of a high-cardinality family.

        Per-entity randomness — per-flow jitter, per-host delay — needs one
        stream per (family, entity) pair so that adding or removing *other*
        entities never perturbs a given entity's draws: that is what keeps
        a sharded run's per-entity trajectories identical to serial, and a
        100k-flow run reproducible flow-by-flow.  Unlike :meth:`rng` these
        streams are neither memoised nor collision-guarded (CRC32 would
        birthday-collide around ~2^16 names); the seed mixes a 64-bit
        BLAKE2b digest of ``"family:index"``, making accidental collisions
        ~n²/2⁶⁵ and each call a fresh generator the caller owns.
        """
        tag = hashlib.blake2b(f"{family}:{index}".encode(),
                              digest_size=8).digest()
        return random.Random((self.seed << 64)
                             ^ int.from_bytes(tag, "big"))

    # -- scheduling -------------------------------------------------------
    # Event construction is inlined in each schedule variant: these run once
    # per event, and a helper call costs ~15 % of pure scheduler throughput.

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` picoseconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        free = self._freelist
        event = free.pop() if free else _new_raw(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.state = 0
        event.sim = self
        _heappush(self._heap, (time, next(self._seq), event))
        return event

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute picosecond timestamp."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past (t={time} < now={self.now})")
        free = self._freelist
        event = free.pop() if free else _new_raw(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.state = 0
        event.sim = self
        _heappush(self._heap, (time, next(self._seq), event))
        return event

    def schedule_unref(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget scheduling for the hot path.

        Identical semantics to :meth:`schedule` except no handle is returned,
        which guarantees nobody can cancel the event — so the simulator may
        recycle the Event object once it fires, cutting allocation churn on
        per-packet events (transmit completions, wire deliveries).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        free = self._freelist
        event = free.pop() if free else _new_raw(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.state = _RECYCLE
        event.sim = self
        _heappush(self._heap, (time, next(self._seq), event))

    # -- calendar-backend scheduling ---------------------------------------
    # Bound over the heap variants (instance attributes) when the simulator
    # is built with ``sched="calendar"``; body-identical except for the push
    # target.  Kept separate so the heap fast path pays no dispatch cost.

    def _schedule_cal(self, delay: int, fn: Callable[..., Any],
                      *args: Any) -> Event:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        free = self._freelist
        event = free.pop() if free else _new_raw(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.state = 0
        event.sim = self
        self._cal.push((time, next(self._seq), event))
        return event

    def _schedule_at_cal(self, time: int, fn: Callable[..., Any],
                         *args: Any) -> Event:
        if time < self.now:
            raise ValueError(f"cannot schedule into the past (t={time} < now={self.now})")
        free = self._freelist
        event = free.pop() if free else _new_raw(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.state = 0
        event.sim = self
        self._cal.push((time, next(self._seq), event))
        return event

    def _schedule_unref_cal(self, delay: int, fn: Callable[..., Any],
                            *args: Any) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        free = self._freelist
        event = free.pop() if free else _new_raw(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.state = _RECYCLE
        event.sim = self
        self._cal.push((time, next(self._seq), event))

    # -- cancellation bookkeeping -----------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` while the entry is still heaped."""
        self._cancelled += 1
        threshold = perf.COMPACT_MIN
        if (threshold
                and self._cancelled >= threshold
                and self._cancelled * perf.COMPACT_RATIO
                    >= len(self._heap) - self._cancelled):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the queue in place with cancelled entries filtered out.

        In place (slice assignment / ``reload``, not rebinding) because the
        run loop holds a local reference to the queue while callbacks —
        which may cancel events — are executing.  Rebuilds never change pop
        order: the ``(time, sequence)`` key is a strict total order, so any
        valid queue over the same live entries drains identically.
        """
        source = self._heap if self._cal is None else self._cal
        free = self._freelist
        cap = perf.FREELIST_MAX
        live = []
        for entry in source:
            event = entry[2]
            if event.state & _CANCELLED:
                event.sim = None
                if event.state & _RECYCLE and len(free) < cap:
                    event.fn = None
                    event.args = ()
                    free.append(event)
            else:
                live.append(entry)
        if self._cal is None:
            heap = self._heap
            heap[:] = live
            heapq.heapify(heap)
        else:
            self._cal.reload(live)
        self._cancelled = 0

    # -- execution --------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap empties, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events processed.

        ``until`` is inclusive: events scheduled exactly at ``until`` run, and
        the clock is left at ``until`` if the simulation outlived it.
        """
        tracer = self.obs_trace
        if tracer is None:
            return self._run(until, max_events)
        import time as _time
        t0_ps = self.now
        wall0 = _time.monotonic()
        processed = self._run(until, max_events)
        tracer.span("sim", "engine.run", track="engine", clock="sim",
                    t0=t0_ps, t1=self.now,
                    args={"events": processed,
                          "wall_us": round((_time.monotonic() - wall0) * 1e6,
                                           3)})
        return processed

    def _run(self, until: Optional[int] = None,
             max_events: Optional[int] = None) -> int:
        """The untraced dispatch: calendar / profiled / inline heap loop."""
        if self._cal is not None:
            return self._run_calendar(until, max_events)
        if self.profiler is not None:
            return self._run_profiled(until, max_events)
        heap = self._heap
        pop = heapq.heappop
        free = self._freelist
        freelist_cap = perf.FREELIST_MAX
        time_limit = _NO_LIMIT if until is None else until
        event_limit = _NO_LIMIT if max_events is None else max_events
        processed = 0
        # Pop-first loop: peeking then popping costs an extra index per
        # event, while overshooting ``until`` happens at most once per call —
        # so pop eagerly and push the overshooting entry back.
        while heap:
            entry = pop(heap)
            time = entry[0]
            if time > time_limit:
                _heappush(heap, entry)
                self.now = until
                break
            event = entry[2]
            event.sim = None
            state = event.state
            if state & _CANCELLED:
                self._cancelled -= 1
                if state & _RECYCLE and len(free) < freelist_cap:
                    event.fn = None
                    event.args = ()
                    free.append(event)
                continue
            self.now = time
            if self.auditor is not None:
                self.auditor.on_event(time)
            event.fn(*event.args)
            if state and len(free) < freelist_cap:
                event.fn = None
                event.args = ()
                free.append(event)
            processed += 1
            if processed >= event_limit:
                break
        else:
            if until is not None and until > self.now:
                self.now = until
        self.events_processed += processed
        return processed

    def _run_profiled(self, until: Optional[int], max_events: Optional[int]) -> int:
        """The run loop with per-callback counting and sampled timing.

        Kept separate so profiling costs nothing when off.  The simulation
        itself is bit-identical either way: the profiler only observes.
        """
        profiler = self.profiler
        heap = self._heap
        pop = heapq.heappop
        free = self._freelist
        freelist_cap = perf.FREELIST_MAX
        time_limit = _NO_LIMIT if until is None else until
        event_limit = _NO_LIMIT if max_events is None else max_events
        processed = 0
        while heap:
            entry = pop(heap)
            time = entry[0]
            if time > time_limit:
                _heappush(heap, entry)
                self.now = until
                break
            event = entry[2]
            event.sim = None
            state = event.state
            if state & _CANCELLED:
                self._cancelled -= 1
                profiler.on_cancelled_reaped()
                if state & _RECYCLE and len(free) < freelist_cap:
                    event.fn = None
                    event.args = ()
                    free.append(event)
                continue
            self.now = time
            if self.auditor is not None:
                self.auditor.on_event(time)
            profiler.fire(event.fn, event.args)
            if state and len(free) < freelist_cap:
                event.fn = None
                event.args = ()
                free.append(event)
            processed += 1
            if processed >= event_limit:
                break
        else:
            if until is not None and until > self.now:
                self.now = until
        self.events_processed += processed
        return processed

    def _run_calendar(self, until: Optional[int],
                      max_events: Optional[int]) -> int:
        """The run loop over the calendar-queue backend.

        Mirrors the heap loop exactly (pop-first, inclusive ``until``,
        freelist recycling) with the profiler folded in as per-event
        branches: the calendar backend is about structural queue wins, not
        the last branch, and a single loop keeps the semantics obviously
        aligned with the heap ones above.
        """
        cal = self._cal
        profiler = self.profiler
        free = self._freelist
        freelist_cap = perf.FREELIST_MAX
        time_limit = _NO_LIMIT if until is None else until
        event_limit = _NO_LIMIT if max_events is None else max_events
        processed = 0
        while cal._size:
            entry = cal.pop()
            time = entry[0]
            if time > time_limit:
                cal.push(entry)
                self.now = until
                break
            event = entry[2]
            event.sim = None
            state = event.state
            if state & _CANCELLED:
                self._cancelled -= 1
                if profiler is not None:
                    profiler.on_cancelled_reaped()
                if state & _RECYCLE and len(free) < freelist_cap:
                    event.fn = None
                    event.args = ()
                    free.append(event)
                continue
            self.now = time
            if self.auditor is not None:
                self.auditor.on_event(time)
            if profiler is not None:
                profiler.fire(event.fn, event.args)
            else:
                event.fn(*event.args)
            if state and len(free) < freelist_cap:
                event.fn = None
                event.args = ()
                free.append(event)
            processed += 1
            if processed >= event_limit:
                break
        else:
            if until is not None and until > self.now:
                self.now = until
        self.events_processed += processed
        return processed

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        if self._cal is not None:
            return self._peek_time_cal()
        heap = self._heap
        while heap and heap[0][2].state & _CANCELLED:
            event = _heappop(heap)[2]
            event.sim = None
            self._cancelled -= 1
            if event.state & _RECYCLE and len(self._freelist) < perf.FREELIST_MAX:
                event.fn = None
                event.args = ()
                self._freelist.append(event)
        return heap[0][0] if heap else None

    def _peek_time_cal(self) -> Optional[int]:
        cal = self._cal
        while cal._size:
            entry = cal.peek()
            event = entry[2]
            if not event.state & _CANCELLED:
                return entry[0]
            cal.pop()
            event.sim = None
            self._cancelled -= 1
            if event.state & _RECYCLE and len(self._freelist) < perf.FREELIST_MAX:
                event.fn = None
                event.args = ()
                self._freelist.append(event)
        return None

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue.  O(1)."""
        size = len(self._heap) if self._cal is None else self._cal._size
        return size - self._cancelled

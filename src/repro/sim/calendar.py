"""Calendar-queue event scheduler: O(1) amortized hold for regular traffic.

A calendar queue (Brown, CACM 1988) spreads pending events over an array of
*buckets*, each covering a fixed slice of simulated time (the *bucket
width*).  Time wraps around the array like days around a wall calendar:
bucket ``i`` holds every event whose timestamp falls in year-slice
``[i*w, (i+1)*w) mod n*w``.  When event timestamps are regular — and credit
pacing in ExpressPass makes them extremely regular — enqueue and dequeue
are O(1) amortized, versus the binary heap's O(log n).

Entries are the engine's exact ``(time, sequence, event)`` tuples and every
comparison is on that tuple, so the drain order is the same strict total
order the heap uses: time-ascending, FIFO within a timestamp.  That is the
whole equivalence argument — any scheduler that pops this key order drains
identically — and ``tests/test_calendar.py`` enforces it with a randomized
differential oracle against the heap.

The queue is self-tuning: when occupancy drifts past the resize thresholds
the bucket array doubles or halves and the width is re-estimated from the
observed inter-event gaps near the head of the queue, keeping roughly
``_TARGET_OCC`` events per bucket regardless of event-rate drift.  Unlike
Brown's one-event-per-bucket tuning, fat buckets are deliberate: in CPython
the expensive unit is the interpreted scan step, while within-bucket
``insort``/``pop(0)`` run at C speed, and a ~16× smaller bucket array stays
cache-resident at million-event populations (where this queue overtakes the
C-accelerated heap).
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Iterator, List, Optional, Tuple

#: Head-of-queue sample size for the width estimate at resize.
_WIDTH_SAMPLE = 32
#: Events per bucket the tuning aims for.  Brown's classic analysis targets
#: ~1, minimizing comparisons; in CPython the expensive unit is instead the
#: interpreted scan iteration, while within-bucket work (``insort``,
#: ``list.pop(0)``) runs at C speed.  Fat buckets buy one scan step per
#: ``_TARGET_OCC`` pops and keep the bucket array small enough to stay
#: cache-resident even with a million pending events.
_TARGET_OCC = 16
#: A popped bucket longer than this hints the width is stale (event gaps
#: shrank since the last resize, piling far too many events per bucket) and
#: triggers a same-size rebuild to re-estimate it — rate-limited to one
#: rebuild per queue turnover so the O(size) rebuild amortizes to O(1) per
#: pop even when the pile-up is irreducible (same-timestamp ties).
_RETUNE_LEN = 8 * _TARGET_OCC


class CalendarQueue:
    """A priority queue of ``(time, seq, event)`` tuples, calendar-bucketed.

    Drop-in ordering replacement for the engine's heap: ``push`` accepts the
    same entries, ``pop`` returns them in ``(time, seq)`` order.  Not
    thread-safe (neither is the engine).
    """

    __slots__ = ("_buckets", "_n", "_width", "_cursor", "_top", "_size",
                 "_grow_at", "_shrink_at", "_pops_since_rebuild")

    def __init__(self, width: int = 1 << 10, n_buckets: int = 8):
        if width < 1:
            raise ValueError(f"bucket width must be >= 1, got {width}")
        if n_buckets < 2:
            raise ValueError(f"need >= 2 buckets, got {n_buckets}")
        self._width = width
        self._n = n_buckets
        self._buckets: List[List[tuple]] = [[] for _ in range(n_buckets)]
        self._size = 0
        #: Bucket the current virtual clock position falls in, and the
        #: exclusive upper time edge of that bucket in the current year.
        self._cursor = 0
        self._top = width
        self._grow_at = 2 * _TARGET_OCC * n_buckets
        self._shrink_at = _TARGET_OCC * n_buckets // 4
        self._pops_since_rebuild = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[tuple]:
        """All pending entries, in no particular order (compaction scan)."""
        for bucket in self._buckets:
            yield from bucket

    # -- core operations --------------------------------------------------
    def push(self, entry: tuple) -> None:
        """Insert an entry; O(1) amortized for well-tuned widths."""
        width = self._width
        slot = entry[0] // width
        insort(self._buckets[slot % self._n], entry)
        self._size += 1
        # Pop's year scan assumes no pending entry precedes the cursor's
        # window.  An entry earlier than the current virtual-clock window
        # (possible right after a resize repositioned the cursor at the
        # then-minimum) would be scanned *last*, so rewind to its window.
        if entry[0] < self._top - width:
            self._cursor = slot % self._n
            self._top = (slot + 1) * width
        if self._size > self._grow_at:
            self._rebuild(self._n * 2)

    def pop(self) -> tuple:
        """Remove and return the minimum entry by ``(time, seq)``."""
        size = self._size
        if not size:
            raise IndexError("pop from an empty CalendarQueue")
        buckets = self._buckets
        i = self._cursor
        top = self._top
        # Fast path: the cursor bucket still holds in-window events — with
        # fat buckets (``_TARGET_OCC``) this is where almost every pop
        # lands, and nothing about the cursor needs to move.
        bucket = buckets[i]
        if bucket and bucket[0][0] < top:
            self._size = size = size - 1
            self._pops_since_rebuild += 1
            entry = bucket.pop(0)
            if size < self._shrink_at:
                self._rebuild(self._n // 2)
            elif (len(bucket) >= _RETUNE_LEN
                    and self._pops_since_rebuild >= size):
                # Overfull bucket: the width is stale for the current
                # event-gap regime (e.g. tuned during a sparse warmup,
                # now drowning in dense steady-state traffic).
                self._rebuild(self._n)
            return entry
        width = self._width
        n = self._n
        # Scan one calendar year from the cursor: buckets are visited in
        # increasing time-window order, so the first in-window head is the
        # global minimum.  Each bucket is kept sorted, so its head is its
        # own minimum, and a head beyond ``top`` belongs to a later year.
        for _ in range(n):
            bucket = buckets[i]
            if bucket and bucket[0][0] < top:
                self._cursor = i
                self._top = top
                self._size -= 1
                self._pops_since_rebuild += 1
                entry = bucket.pop(0)
                if self._size < self._shrink_at:
                    self._rebuild(self._n // 2)
                elif (len(bucket) >= _RETUNE_LEN
                        and self._pops_since_rebuild >= self._size):
                    # Same stale-width retune as the fast path: a workload
                    # whose head keeps landing outside the cursor window
                    # (every pop a year scan) would otherwise never trigger
                    # it and drag the scan cost forever.
                    self._rebuild(self._n)
                return entry
            i += 1
            if i == n:
                i = 0
            top += width
        # Sparse queue: nothing within a whole year of the cursor.  Jump
        # straight to the globally minimal head (a "direct search").
        best: Optional[tuple] = None
        best_bucket: Optional[List[tuple]] = None
        for bucket in buckets:
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
                best_bucket = bucket
        assert best is not None and best_bucket is not None
        slot = best[0] // width
        self._cursor = slot % n
        self._top = (slot + 1) * width
        self._size -= 1
        self._pops_since_rebuild += 1
        best_bucket.pop(0)
        if self._size < self._shrink_at:
            self._rebuild(self._n // 2)
        return best

    def peek(self) -> tuple:
        """The minimum entry without removing it (O(n_buckets))."""
        if not self._size:
            raise IndexError("peek on an empty CalendarQueue")
        best: Optional[tuple] = None
        for bucket in self._buckets:
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        assert best is not None
        return best

    def reload(self, entries: List[tuple]) -> None:
        """Replace the contents wholesale (engine compaction).

        Re-tunes bucket count and width for the new population, exactly as
        a resize would.  Pop order over the surviving entries is unchanged:
        ordering is a property of the ``(time, seq)`` keys, not of bucket
        layout.
        """
        self._size = len(entries)
        n = max(2, 1 << max(0, self._size // _TARGET_OCC - 1).bit_length())
        self._rebuild(n, entries)

    # -- tuning ------------------------------------------------------------
    def _rebuild(self, n_buckets: int,
                 entries: Optional[List[tuple]] = None) -> None:
        """Re-bucket everything into ``n_buckets`` with a re-estimated width."""
        if n_buckets < 2:
            return
        if entries is None:
            entries = [e for bucket in self._buckets for e in bucket]
        self._width = width = self._estimate_width(entries)
        self._n = n_buckets
        self._grow_at = 2 * _TARGET_OCC * n_buckets
        self._shrink_at = _TARGET_OCC * n_buckets // 4
        self._pops_since_rebuild = 0
        buckets = [[] for _ in range(n_buckets)]
        for entry in entries:
            insort(buckets[(entry[0] // width) % n_buckets], entry)
        self._buckets = buckets
        if entries:
            slot = min(entry[0] for entry in entries) // width
            self._cursor = slot % n_buckets
            self._top = (slot + 1) * width
        else:
            self._cursor = 0
            self._top = width

    def _estimate_width(self, entries: List[tuple]) -> int:
        """Bucket width from observed inter-event gaps near the queue head.

        ``_TARGET_OCC`` times the mean positive gap among the
        ``_WIDTH_SAMPLE`` earliest pending events, so one bucket covers
        about ``_TARGET_OCC`` events and one year covers about the whole
        pending span.  Same-timestamp clusters (credit ties) contribute no
        gap; if every sampled gap is zero the current width is kept — there
        is nothing to learn from a single instant.
        """
        if len(entries) < 2:
            return self._width
        sample = heapq.nsmallest(_WIDTH_SAMPLE, entries)
        gaps = [b[0] - a[0] for a, b in zip(sample, sample[1:]) if b[0] > a[0]]
        if not gaps:
            return self._width
        return max(1, _TARGET_OCC * sum(gaps) // len(gaps))

    # -- introspection (stats / tests) -------------------------------------
    @property
    def bucket_width(self) -> int:
        return self._width

    @property
    def n_buckets(self) -> int:
        return self._n

    def layout(self) -> Tuple[int, int, List[int]]:
        """(width, n_buckets, per-bucket occupancy) — debugging aid."""
        return self._width, self._n, [len(b) for b in self._buckets]


__all__ = ["CalendarQueue"]

"""Time, size, and rate units used throughout the simulator.

The simulation clock is an integer number of **picoseconds**.  One byte at
100 Gbit/s takes exactly 80 ps, so transmission and propagation arithmetic at
every datacenter link speed used in the paper (10/40/100 Gbit/s) is exact, and
event ordering is fully deterministic.

Rates are expressed in **bits per second** as plain integers
(``10 * GBPS == 10_000_000_000``).
"""

from __future__ import annotations

from functools import lru_cache

# --- time units (picoseconds) -------------------------------------------------
PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
SEC = 1_000_000_000_000

# --- sizes (bytes) ------------------------------------------------------------
KB = 1_000
MB = 1_000_000

# --- rates (bits per second) --------------------------------------------------
GBPS = 1_000_000_000


def bits_to_ps(bits: int, rate_bps: int) -> int:
    """Time to serialize ``bits`` at ``rate_bps``, in integer picoseconds.

    Rounds up so that a link is never modelled as faster than it is.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return -((-bits * SEC) // rate_bps)


@lru_cache(maxsize=None)
def tx_time_ps(nbytes: int, rate_bps: int) -> int:
    """Serialization delay of ``nbytes`` at ``rate_bps`` in picoseconds.

    Memoized per ``(nbytes, rate_bps)``: simulations see a handful of wire
    sizes over a handful of link rates, so the cache stays tiny while the
    hot transmit path skips the division.  (Ports additionally keep a local
    per-size cache, since their rate is fixed.)
    """
    return bits_to_ps(nbytes * 8, rate_bps)


def ps_to_seconds(t_ps: int) -> float:
    """Convert a picosecond timestamp to float seconds (for reporting)."""
    return t_ps / SEC


def seconds_to_ps(t_s: float) -> int:
    """Convert float seconds to integer picoseconds (rounded)."""
    return round(t_s * SEC)


def fmt_time(t_ps: int) -> str:
    """Human-readable rendering of a picosecond timestamp."""
    if t_ps >= SEC:
        return f"{t_ps / SEC:.6g} s"
    if t_ps >= MS:
        return f"{t_ps / MS:.6g} ms"
    if t_ps >= US:
        return f"{t_ps / US:.6g} us"
    if t_ps >= NS:
        return f"{t_ps / NS:.6g} ns"
    return f"{t_ps} ps"

"""The fluid network model: rates, water-filling, queue integrators.

State is three arrays — per-flow rate, per-link queue, per-flow delivered
bytes — advanced in fixed RTT-sized steps:

1. **Targets**: max-min fair shares over the flow/link incidence
   (water-filling), against each link's *achievable* capacity
   (``capacity × Dynamics.utilization`` — credit overhead for ExpressPass,
   ECN headroom for DCTCP/HULL, and so on).
2. **Relaxation**: each flow moves a ``gain_per_rtt`` fraction of the way
   from its current rate to its target — the first-order stand-in for the
   protocol's control loop (feedback aggregation, AIMD, rate updates).
3. **Queues**: each link integrates ``max(0, inflow − capacity)`` into a
   byte backlog and drains the excess; on top of that backlog a saturated
   link reports the protocol's *standing* queue (``queue_bytes``: DCTCP's
   marking threshold, the loss-based buffer fill, ExpressPass's sub-MTU
   credit jitter).  Credit-throttled protocols additionally cap aggregate
   arrivals at capacity, which is why their dynamic backlog stays ~0 — the
   fluid expression of "credits never admit more than the link can carry".

The model is deterministic: no RNG, no event ordering, so a fluid cell is a
pure function of its arguments (the same property the result cache relies
on for packet cells).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: One MTU in bytes — the granularity floor for standing-queue estimates.
_MTU = 1_500


@dataclass(frozen=True)
class Dynamics:
    """Per-protocol constants driving the fluid evolution.

    ``utilization``: achievable fraction of raw link capacity (data
    goodput / line rate at saturation).  ``gain_per_rtt``: first-order
    convergence gain per RTT step (1 = jump straight to target).
    ``queue_bytes``: standing queue at a saturated bottleneck.
    ``start_fraction``: initial rate as a fraction of the fair share
    (ExpressPass's ``w_init``, slow-start's first windows).
    ``credit_throttled``: arrivals are capped at link capacity (credit
    scheduling), so dynamic backlog cannot build.
    """

    utilization: float
    gain_per_rtt: float
    queue_bytes: int
    start_fraction: float = 0.05
    credit_throttled: bool = False


#: Fluid dynamics for every packet-backend transport.  ``utilization`` and
#: ``queue_bytes`` are calibrated against the packet simulator's persistent
#: dumbbell (tests/test_fluid.py pins the agreement and its tolerances);
#: ``gain_per_rtt`` reflects each scheme's convergence-speed class (Fig 16:
#: ExpressPass/RCP a few RTTs, DCTCP hundreds).
PROTOCOL_DYNAMICS: Dict[str, Dynamics] = {
    "expresspass": Dynamics(utilization=0.92, gain_per_rtt=0.35,
                            queue_bytes=5 * _MTU, start_fraction=1 / 16,
                            credit_throttled=True),
    "expresspass-naive": Dynamics(utilization=0.92, gain_per_rtt=0.5,
                                  queue_bytes=5 * _MTU, start_fraction=0.5,
                                  credit_throttled=True),
    "dctcp": Dynamics(utilization=0.97, gain_per_rtt=0.04,
                      queue_bytes=155 * _MTU, start_fraction=0.02),
    "rcp": Dynamics(utilization=0.90, gain_per_rtt=0.45,
                    queue_bytes=250 * _MTU, start_fraction=0.1),
    "hull": Dynamics(utilization=0.88, gain_per_rtt=0.04,
                     queue_bytes=4 * _MTU, start_fraction=0.02),
    "dx": Dynamics(utilization=0.93, gain_per_rtt=0.08,
                   queue_bytes=6 * _MTU, start_fraction=0.02),
    "reno": Dynamics(utilization=0.97, gain_per_rtt=0.02,
                     queue_bytes=150 * _MTU, start_fraction=0.02),
    "cubic": Dynamics(utilization=0.97, gain_per_rtt=0.03,
                      queue_bytes=150 * _MTU, start_fraction=0.02),
    "ideal": Dynamics(utilization=1.0, gain_per_rtt=1.0,
                      queue_bytes=0, start_fraction=1.0),
    "dcqcn": Dynamics(utilization=0.94, gain_per_rtt=0.06,
                      queue_bytes=30 * _MTU, start_fraction=0.05),
    "timely": Dynamics(utilization=0.93, gain_per_rtt=0.06,
                       queue_bytes=25 * _MTU, start_fraction=0.05),
}


@dataclass
class FluidLink:
    """A capacity with a byte backlog (no per-packet queue)."""

    capacity_bps: float
    queue_bytes: float = 0.0
    max_queue_bytes: float = 0.0


@dataclass
class FluidFlow:
    """A rate on a route (tuple of link indices; empty = unconstrained)."""

    route: Tuple[int, ...]
    rate_bps: float = 0.0
    delivered_bytes: float = 0.0
    start_ps: int = 0


class FluidNetwork:
    """Flows over links, advanced one RTT per :meth:`step`."""

    def __init__(self, links: Sequence[FluidLink], flows: Sequence[FluidFlow],
                 dynamics: Dynamics, rtt_ps: int):
        if rtt_ps <= 0:
            raise ValueError(f"rtt_ps must be positive, got {rtt_ps}")
        self.links = list(links)
        self.flows = list(flows)
        self.dynamics = dynamics
        self.rtt_ps = rtt_ps
        self.now_ps = 0

    # -- fair-share targets ------------------------------------------------
    def _weights(self, active: List[int],
                 users: List[List[int]]) -> Dict[int, float]:
        """Per-flow water-filling weights.

        Plain max-min for window/rate protocols (weight 1).  For
        credit-throttled protocols, a flow crossing ``c`` *contended* links
        is beaten down to weight ``0.5**c`` (c >= 2): every extra
        credit-throttled hop drops roughly half the surviving credits, the
        multi-bottleneck penalty the ExpressPass paper measures on the
        parking lot.  Calibrated against the packet backend in
        ``tests/test_fluid.py``.
        """
        if not self.dynamics.credit_throttled:
            return {idx: 1.0 for idx in active}
        contended = {l for l, flow_ids in enumerate(users)
                     if len(flow_ids) >= 2}
        weights = {}
        for idx in active:
            c = sum(1 for l in self.flows[idx].route if l in contended)
            weights[idx] = 0.5 ** c if c >= 2 else 1.0
        return weights

    def max_min_shares(self, active: List[int]) -> List[float]:
        """Water-filling: the (weighted) max-min rate for each active flow.

        Classic progressive filling over achievable capacities: repeatedly
        saturate the tightest link, freeze its flows at their weighted
        split of its remaining capacity, remove it, repeat.  O(links ×
        flows) per call — negligible next to the packet backend it
        replaces.
        """
        util = self.dynamics.utilization
        remaining = [link.capacity_bps * util for link in self.links]
        users: List[List[int]] = [[] for _ in self.links]
        for idx in active:
            for l in self.flows[idx].route:
                users[l].append(idx)
        weights = self._weights(active, users)
        share = {idx: float("inf") for idx in active}
        unfrozen = set(active)
        while unfrozen:
            tight_link = None
            tight_unit = None
            for l, flow_ids in enumerate(users):
                live_w = sum(weights[i] for i in flow_ids if i in unfrozen)
                if not live_w:
                    continue
                unit = remaining[l] / live_w
                if tight_unit is None or unit < tight_unit:
                    tight_unit = unit
                    tight_link = l
            if tight_link is None:
                # Remaining flows traverse no constrained link: cap at the
                # fastest link so "unconstrained" still means line rate.
                top = max((lk.capacity_bps for lk in self.links),
                          default=0.0) * util
                for idx in unfrozen:
                    share[idx] = top
                break
            frozen = [i for i in users[tight_link] if i in unfrozen]
            for idx in frozen:
                share[idx] = tight_unit * weights[idx]
                unfrozen.discard(idx)
                for l in self.flows[idx].route:
                    remaining[l] = max(0.0, remaining[l] - share[idx])
        return [share[idx] for idx in active]

    # -- evolution ---------------------------------------------------------
    def step(self) -> None:
        """Advance one RTT: retarget, relax, deliver, integrate queues."""
        dt_s = self.rtt_ps * 1e-12
        dyn = self.dynamics
        active = [i for i, f in enumerate(self.flows)
                  if f.start_ps <= self.now_ps]
        if active:
            targets = self.max_min_shares(active)
            gain = min(1.0, dyn.gain_per_rtt)
            for idx, target in zip(active, targets):
                flow = self.flows[idx]
                if flow.rate_bps == 0.0:
                    flow.rate_bps = dyn.start_fraction * target
                flow.rate_bps += gain * (target - flow.rate_bps)

        # Per-link arrivals; credit throttling caps admission at capacity.
        inflow = [0.0] * len(self.links)
        for idx in active:
            flow = self.flows[idx]
            for l in flow.route:
                inflow[l] += flow.rate_bps
        for l, link in enumerate(self.links):
            cap = link.capacity_bps
            arriving = min(inflow[l], cap) if dyn.credit_throttled \
                else inflow[l]
            link.queue_bytes = max(
                0.0, link.queue_bytes + (arriving - cap) * dt_s / 8)
            # A saturated link carries the protocol's standing queue on top
            # of any transient backlog (sub-RTT burstiness the rate model
            # integrates away).
            standing = dyn.queue_bytes if inflow[l] >= 0.5 * cap else 0.0
            link.max_queue_bytes = max(link.max_queue_bytes,
                                       link.queue_bytes + standing)

        for idx in active:
            flow = self.flows[idx]
            flow.delivered_bytes += flow.rate_bps * dt_s / 8
        self.now_ps += self.rtt_ps

    def run(self, until_ps: int,
            sample_every_ps: Optional[int] = None,
            samples: Optional[List[float]] = None) -> None:
        """Step to ``until_ps``; optionally record total delivered bytes
        every ``sample_every_ps`` (bin edges, like the packet sampler)."""
        next_sample = self.now_ps if sample_every_ps else None
        while self.now_ps < until_ps:
            if next_sample is not None and self.now_ps >= next_sample:
                samples.append(sum(f.delivered_bytes for f in self.flows))
                next_sample += sample_every_ps
            self.step()
        if next_sample is not None:
            samples.append(sum(f.delivered_bytes for f in self.flows))

    def max_queue_bytes(self) -> float:
        return max((link.max_queue_bytes for link in self.links), default=0.0)


__all__ = ["Dynamics", "FluidFlow", "FluidLink", "FluidNetwork",
           "PROTOCOL_DYNAMICS"]

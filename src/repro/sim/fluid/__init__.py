"""repro.sim.fluid: a discrete-time rate-evolution (fluid) backend.

No per-packet events: flows are rates, links are capacities with a queue
integrator, and the network state advances one RTT per step.  A fluid run
costs ``O(steps × (flows + links))`` — thousands of arithmetic updates
instead of millions of scheduler events — which buys the 10×+ speedups
ROADMAP item 2 asks for on trend-mode sweeps.

The model is deliberately small: max-min fair-share targets (water-filling
over the flow/link incidence), first-order per-protocol convergence gains,
and a credit-throttle arrival cap for ExpressPass.  What it preserves —
steady utilization, Jain fairness, queue occupancy scale, convergence-time
order — is pinned against the packet backend by ``tests/test_fluid.py``
with explicit tolerances.  What it cannot express (per-packet loss, chaos
fault bursts, FCT microbursts) is refused at the schema layer: see
:func:`repro.scenarios.schema.fluid_blockers`.
"""

from repro.sim.fluid.model import (
    Dynamics,
    FluidFlow,
    FluidLink,
    FluidNetwork,
    PROTOCOL_DYNAMICS,
)
from repro.sim.fluid.cells import (
    fluid_fct_point,
    fluid_join_convergence,
    run_fluid,
)

__all__ = [
    "Dynamics",
    "FluidFlow",
    "FluidLink",
    "FluidNetwork",
    "PROTOCOL_DYNAMICS",
    "fluid_fct_point",
    "fluid_join_convergence",
    "run_fluid",
]

"""Fluid cell functions: the picklable units a ``backend: fluid`` cell runs.

:func:`run_fluid` mirrors :func:`repro.scenarios.cells.run_persistent` —
same signature, same row keys, same topology capacity semantics — so the
matrix report, ranking, and figure plumbing read fluid and packet rows off
one shape.  The extra ``backend: "fluid"`` row key is the only tell.

:func:`fluid_join_convergence` is Fig 16's trend mode (a second flow joins
a saturated link; how many RTTs to fair share) and :func:`fluid_fct_point`
is Fig 18's (flow-level processor sharing with (α, w_init) ramp dynamics).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.metrics import jain_index
from repro.sim.fluid.model import (
    Dynamics,
    FluidFlow,
    FluidLink,
    FluidNetwork,
    PROTOCOL_DYNAMICS,
)
from repro.sim.units import GBPS, MS, US

#: Persistent cells use the same control RTT as the packet path
#: (repro.scenarios.cells hard-codes base_rtt = 30 us).
_BASE_RTT_PS = 30 * US


def _dynamics(protocol: str, ep_profile: str = "default") -> Dynamics:
    if protocol not in PROTOCOL_DYNAMICS:
        raise ValueError(f"no fluid dynamics for protocol {protocol!r}; "
                         f"choose from {sorted(PROTOCOL_DYNAMICS)}")
    dyn = PROTOCOL_DYNAMICS[protocol]
    if protocol.startswith("expresspass") and ep_profile == "realistic":
        # The realistic profile runs α = w_init = 1/16 aggregation: slower
        # individual ramp, same steady state.
        dyn = Dynamics(utilization=dyn.utilization,
                       gain_per_rtt=dyn.gain_per_rtt / 2,
                       queue_bytes=dyn.queue_bytes,
                       start_fraction=1 / 16,
                       credit_throttled=True)
    return dyn


def _fluid_fabric(topology: str, n_flows: int, rate_bps: int,
                  topo_params: dict,
                  ) -> Tuple[List[FluidLink], List[Tuple[int, ...]], int]:
    """(links, routes, capacity_bps) mirroring ``_persistent_fabric``.

    Capacity denominators match the packet cells exactly: dumbbell and
    multi-bottleneck report against one contended link, parking lot against
    the chain sum, star and fat tree against per-pair edge capacity.
    """
    if topology == "dumbbell":
        links = [FluidLink(rate_bps)]
        routes = [(0,)] * n_flows
        return links, routes, rate_bps
    if topology == "single_switch":
        # Non-blocking for the pairing the packet cells use: every pair
        # rides its own edge links, so each flow is capped at line rate.
        links = [FluidLink(rate_bps) for _ in range(n_flows)]
        routes = [(i,) for i in range(n_flows)]
        return links, routes, n_flows * rate_bps
    if topology == "fat_tree":
        # The packet fabric hashes flows onto k/2 uplinks per ToR; with the
        # inter-pod pairing the cells use, same-ToR flows deterministically
        # collide onto a shared path (measured: aggregate goodput equals
        # one fair-shared uplink per source ToR, robust across seeds).  The
        # fluid fabric models that *average* collision capacity — one
        # shared link per group of k/2 consecutive flows — not the
        # per-flow hash outcome, so fairness agreement is loose here
        # (tests/test_fluid.py declares the tolerance).
        half = max(1, int(topo_params.get("k", 4)) // 2)
        n_groups = math.ceil(n_flows / half)
        links = [FluidLink(rate_bps) for _ in range(n_groups)]
        routes = [(i // half,) for i in range(n_flows)]
        return links, routes, n_flows * rate_bps
    if topology == "parking_lot":
        links = [FluidLink(rate_bps) for _ in range(n_flows - 1)]
        routes = [tuple(range(n_flows - 1))]
        routes += [(i,) for i in range(n_flows - 1)]
        return links, routes, (n_flows - 1) * rate_bps
    if topology == "multi_bottleneck":
        links = [FluidLink(rate_bps) for _ in range(n_flows - 1)]
        routes = [tuple(range(n_flows - 1))]
        routes += [(i,) for i in range(n_flows - 1)]
        return links, routes, rate_bps
    raise ValueError(f"unknown topology kind {topology!r}")


def _first_sustained_ps(gbps: List[float], threshold: float,
                        bin_ps: int) -> int:
    """Same two-consecutive-bins rule as the packet cells."""
    for i in range(len(gbps) - 1):
        if gbps[i] >= threshold and gbps[i + 1] >= threshold:
            return (i + 1) * bin_ps
    if len(gbps) == 1 and gbps[0] >= threshold:
        return bin_ps
    return -1


def run_fluid(
    protocol: str,
    n_flows: int,
    topology: str = "dumbbell",
    topo_params: Optional[dict] = None,
    rate_bps: int = 10 * GBPS,
    prop_delay_ps: int = 4 * US,
    warmup_ps: int = 50 * MS,
    measure_ps: int = 50 * MS,
    bin_ps: int = 500 * US,
    seed: int = 1,
    ep_profile: str = "default",
) -> dict:
    """One persistent-flow cell on the fluid backend.

    Row shape matches :func:`repro.scenarios.cells.run_persistent` (plus
    ``backend: "fluid"``); ``seed`` is recorded but the evolution is
    deterministic — a fluid cell has no event ordering to randomize.
    Chaos plans are rejected at the schema layer (:func:`fluid_blockers`),
    so this cell takes none.
    """
    dyn = _dynamics(protocol, ep_profile)
    links, routes, capacity_bps = _fluid_fabric(
        topology, n_flows, rate_bps, topo_params or {})
    flows = [FluidFlow(route=route) for route in routes]
    net = FluidNetwork(links, flows, dyn, rtt_ps=_BASE_RTT_PS)

    horizon_ps = warmup_ps + measure_ps
    totals: List[float] = []
    net.run(warmup_ps, sample_every_ps=bin_ps, samples=totals)
    base = [f.delivered_bytes for f in flows]
    net.run(horizon_ps, sample_every_ps=bin_ps, samples=totals)

    seconds = measure_ps / 1e12
    rates = [(f.delivered_bytes - b) * 8 / seconds
             for f, b in zip(flows, base)]
    bin_s = bin_ps * 1e-12
    gbps = [(totals[i + 1] - totals[i]) * 8 / bin_s / 1e9
            for i in range(len(totals) - 1)]
    steady = sum(rates) / 1e9
    threshold = 0.9 * (steady if steady > 0 else float("inf"))
    convergence_ps = _first_sustained_ps(gbps, threshold, bin_ps)

    return {
        "protocol": protocol,
        "flows": n_flows,
        "utilization": sum(rates) / capacity_bps,
        "fairness": jain_index(rates),
        "max_queue_kb": net.max_queue_bytes() / 1e3,
        "data_drops": 0,   # the fluid model admits no overflow, so no loss
        "topology": topology,
        "seed": seed,
        "agg_gbps": round(steady, 4),
        "convergence_ms": (round(convergence_ps / MS, 3)
                           if convergence_ps >= 0 else -1.0),
        "backend": "fluid",
    }


def fluid_join_convergence(
    protocol: str,
    rate_bps: int,
    base_rtt_ps: int = 100 * US,
    max_rtts: int = 4000,
    tolerance: float = 0.25,
    alpha: Optional[float] = None,
) -> dict:
    """Fig 16 trend mode: RTTs for a joining flow to reach fair share.

    Flow 0 saturates the bottleneck; flow 1 joins at rate 0.  Convergence =
    first step where both rates are within ``tolerance`` of the fair share
    (the packet path's ±25 % band).  ``alpha`` overrides the ExpressPass
    aggression (Fig 16's α variants: halving α roughly doubles the time).
    """
    dyn = _dynamics(protocol)
    if alpha is not None:
        dyn = Dynamics(utilization=dyn.utilization,
                       gain_per_rtt=min(1.0, 2 * alpha),
                       queue_bytes=dyn.queue_bytes,
                       start_fraction=alpha,
                       credit_throttled=dyn.credit_throttled)
    link = FluidLink(rate_bps)
    flows = [FluidFlow(route=(0,)), FluidFlow(route=(0,), start_ps=0)]
    net = FluidNetwork([link], flows, dyn, rtt_ps=base_rtt_ps)
    # Pre-converge flow 0 alone, then admit flow 1 at its start fraction.
    flows[0].rate_bps = link.capacity_bps * dyn.utilization
    fair = link.capacity_bps * dyn.utilization / 2
    lo, hi = (1 - tolerance) * fair, (1 + tolerance) * fair
    for step in range(1, max_rtts + 1):
        net.step()
        if all(lo <= f.rate_bps <= hi for f in flows):
            return {"protocol": protocol, "rate_gbps": rate_bps / 1e9,
                    "convergence_rtts": float(step), "converged": True}
    return {"protocol": protocol, "rate_gbps": rate_bps / 1e9,
            "convergence_rtts": None, "converged": False}


# -- flow-level fluid FCT (Fig 18 trend mode) --------------------------------

def _ramp_fraction(age_rtts: float, w_init: float) -> float:
    """Fraction of path capacity a flow of this age can use.

    ExpressPass doubles the credit rate every uncongested RTT, so a flow
    starting at ``w_init`` reaches line rate after ``log2(1/w_init)``
    RTTs — that handful of RTTs is exactly the short-flow penalty Fig 18
    charges to small ``w_init``.  (α shapes behaviour *after* congestion
    feedback, i.e. the waste term, not this initial ramp.)
    """
    return min(1.0, w_init * 2.0 ** age_rtts)


def fluid_fct_point(
    alpha: float,
    w_init: float,
    workload: str,
    load: float,
    n_flows: int,
    rate_bps: int = 10 * GBPS,
    seed: int = 1,
    size_cap_bytes: Optional[int] = 20_000_000,
    base_rtt_ps: int = 60 * US,
) -> dict:
    """Fig 18 trend mode: (α, w_init) sensitivity via processor sharing.

    The same Poisson arrival stream the packet path would draw (identical
    RNG discipline: seed → sizes and inter-arrivals) feeds a single-server
    processor-sharing fabric: active flows split capacity equally, each
    capped at line rate times its (α, w_init) ramp fraction, with the
    capacity shaved by the credit waste lower α avoids.  Reductions match
    ``fig18_param_sensitivity.run_point``: p99 FCT for S and L buckets plus
    the waste ratio.
    """
    import random

    from repro.metrics.fct import FctStats, bucket_of
    from repro.workloads import WORKLOADS
    from repro.workloads.generators import poisson_arrival_rate_fps, \
        poisson_specs

    dist = WORKLOADS[workload]
    rng = random.Random(seed)
    n_hosts = 32
    mean = dist.mean_bytes if size_cap_bytes is None \
        else min(dist.mean_bytes, size_cap_bytes)
    fps = poisson_arrival_rate_fps(load, n_hosts * rate_bps, mean)
    specs = poisson_specs(rng, dist, n_flows, n_hosts, fps)
    if size_cap_bytes is not None:
        specs = [s if s.size_bytes <= size_cap_bytes else
                 type(s)(s.src, s.dst, size_cap_bytes, s.start_ps)
                 for s in specs]

    # Unfinished credits are wasted bandwidth: high α probes hard and
    # wastes more.  Waste shaves every flow's *path* capacity (an elephant
    # is NIC-bottlenecked, and the wasted credits ride its own links),
    # which is what makes low α a win for large flows (the paper's Fig 18
    # trade-off) even though it slows every flow's ramp.
    # Both knobs feed it: α drives steady-state probing waste, w_init the
    # first-RTT burst of speculative credits.
    waste = 0.3 * alpha + 0.3 * w_init
    path_bps = rate_bps * (1 - waste)
    capacity = n_hosts * path_bps
    dt_ps = base_rtt_ps
    dt_s = dt_ps * 1e-12

    remaining = {i: float(s.size_bytes) for i, s in enumerate(specs)}
    started: Dict[int, int] = {}
    fcts: List[Tuple[int, int]] = []   # (size_bytes, fct_ps)
    now_ps = 0
    arrivals = sorted(range(len(specs)), key=lambda i: specs[i].start_ps)
    next_arrival = 0
    active: List[int] = []
    horizon_guard = specs[-1].start_ps + 10**13 if specs else 0

    while (next_arrival < len(arrivals) or active) \
            and now_ps <= horizon_guard:
        while next_arrival < len(arrivals) and \
                specs[arrivals[next_arrival]].start_ps <= now_ps:
            idx = arrivals[next_arrival]
            started[idx] = now_ps
            active.append(idx)
            next_arrival += 1
        if active:
            share = capacity / len(active)
            done = []
            for idx in active:
                age = (now_ps - started[idx]) / base_rtt_ps
                cap = path_bps * _ramp_fraction(age, w_init)
                rate = min(share, cap)
                remaining[idx] -= rate * dt_s / 8
                if remaining[idx] <= 0:
                    fcts.append((specs[idx].size_bytes,
                                 now_ps + dt_ps - specs[idx].start_ps))
                    done.append(idx)
            for idx in done:
                active.remove(idx)
        elif next_arrival < len(arrivals):
            now_ps = specs[arrivals[next_arrival]].start_ps
            continue
        now_ps += dt_ps

    by_bucket: Dict[str, List[int]] = {}
    for size, fct_ps in fcts:
        by_bucket.setdefault(bucket_of(size), []).append(fct_ps)
    row = {"alpha": f"1/{round(1 / alpha)}",
           "w_init": f"1/{round(1 / w_init)}"}
    for bucket in ("S", "L"):
        vals = by_bucket.get(bucket)
        row[f"p99_fct_{bucket}_ms"] = (
            FctStats.from_fcts_ps(vals).p99_s * 1e3 if vals else None)
    row["credit_waste"] = round(waste, 4)
    return row


__all__ = ["run_fluid", "fluid_join_convergence", "fluid_fct_point"]
